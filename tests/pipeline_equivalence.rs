//! Integration: the hybrid MPI+OpenMP pipeline produces the same assembly
//! as the original single-node layout — the paper's central correctness
//! claim (§IV), checked exactly (same seeds → same partition-invariant
//! output) rather than statistically.

mod common;

use mpisim::NetModel;
use trinity::pipeline::{run_pipeline, PipelineConfig, PipelineMode, PipelineOutput};

use common::tiny_reads as tiny;

fn run(reads: &[seqio::fasta::Record], mode: PipelineMode) -> PipelineOutput {
    let mut cfg = PipelineConfig::small(12);
    cfg.mode = mode;
    run_pipeline(reads, &cfg)
}

fn sorted_seqs(out: &PipelineOutput) -> Vec<Vec<u8>> {
    let mut v: Vec<Vec<u8>> = out.transcripts.iter().map(|t| t.seq.clone()).collect();
    v.sort();
    v
}

#[test]
fn hybrid_equals_serial_across_rank_counts() {
    let reads = tiny(common::EQUIVALENCE_SEED);
    let serial = run(&reads, PipelineMode::Serial);
    for ranks in [2usize, 3, 5, 8] {
        let hybrid = run(
            &reads,
            PipelineMode::Hybrid {
                ranks,
                net: NetModel::idataplex(),
            },
        );
        assert_eq!(hybrid.components, serial.components, "ranks={ranks}");
        assert_eq!(hybrid.assignments, serial.assignments, "ranks={ranks}");
        assert_eq!(sorted_seqs(&hybrid), sorted_seqs(&serial), "ranks={ranks}");
    }
}

#[test]
fn pipeline_is_deterministic() {
    let reads = tiny(common::DETERMINISM_SEED);
    let a = run(&reads, PipelineMode::Serial);
    let b = run(&reads, PipelineMode::Serial);
    assert_eq!(a.components, b.components);
    assert_eq!(sorted_seqs(&a), sorted_seqs(&b));
}

#[test]
fn network_model_changes_time_not_output() {
    let reads = tiny(common::NET_MODEL_SEED);
    let fast = run(
        &reads,
        PipelineMode::Hybrid {
            ranks: 4,
            net: NetModel::ideal(),
        },
    );
    let slow = run(
        &reads,
        PipelineMode::Hybrid {
            ranks: 4,
            net: NetModel::gigabit(),
        },
    );
    assert_eq!(sorted_seqs(&fast), sorted_seqs(&slow));
    // Gigabit's per-byte cost must show up somewhere in GFF comms.
    let comm =
        |o: &PipelineOutput| -> f64 { o.gff_timings.iter().map(|t| t.comm1 + t.comm2).sum() };
    assert!(comm(&slow) >= comm(&fast));
}

#[test]
fn jitter_emulates_run_to_run_variation() {
    // Trinity's output is "slightly indeterministic" across runs; the
    // jitter seed reproduces that: different seeds may differ, same seed
    // never does.
    let reads = tiny(common::JITTER_SEED);
    let mut cfg = PipelineConfig::small(12);
    cfg.inchworm.jitter_seed = Some(1);
    let a = run_pipeline(&reads, &cfg);
    let b = run_pipeline(&reads, &cfg);
    assert_eq!(sorted_seqs(&a), sorted_seqs(&b), "same seed, same output");
}

#[test]
fn stage_trace_covers_whole_pipeline() {
    let reads = tiny(common::TRACE_SEED);
    let out = run(&reads, PipelineMode::Serial);
    let mut stages: Vec<&obs::SpanRecord> = out
        .trace
        .with_cat("stage")
        .into_iter()
        .filter(|s| s.track == 0)
        .collect();
    stages.sort_by(|a, b| a.start.total_cmp(&b.start));
    let names: Vec<&str> = stages.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "Jellyfish",
            "Inchworm",
            "Bowtie",
            "GraphFromFasta",
            "QuantifyGraph",
            "ReadsToTranscripts",
            "Butterfly"
        ]
    );
    // Stages are contiguous on the virtual-time axis.
    for w in stages.windows(2) {
        assert!((w[0].end - w[1].start).abs() < 1e-12);
    }
    assert!(out.trace.max_counter("ram").unwrap_or(0.0) > 0.0);
}

//! Checkpoint/resume round trips through the real pipeline: a seeded run
//! writes one checkpoint per checkpointable stage, a resume run replays
//! the completed prefix byte-for-byte, and a corrupted checkpoint —
//! *any* stage, any byte — is detected by its checksum, recomputed, and
//! rewritten, never silently trusted.

mod common;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use trinity::checkpoint::stage_path;
use trinity::pipeline::{run_pipeline_opts, PipelineConfig, PipelineOutput, RunOptions};

/// The checkpointable stages, in pipeline order. Bowtie is deliberately
/// absent: its SAM stream only feeds scaffolding, whose result is
/// checkpointed at QuantifyGraph.
const STAGES: [&str; 5] = [
    "Jellyfish",
    "Inchworm",
    "GraphFromFasta",
    "QuantifyGraph",
    "ReadsToTranscripts",
];

/// A unique scratch directory under the system temp dir, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "trinity-ckpt-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create scratch dir");
        ScratchDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run(reads: &[seqio::fasta::Record], dir: &Path, resume: bool) -> PipelineOutput {
    let opts = RunOptions {
        faults: None,
        checkpoint_dir: Some(dir.to_path_buf()),
        resume,
    };
    run_pipeline_opts(reads, &PipelineConfig::small(12), &opts)
}

fn count(out: &PipelineOutput, name: &str) -> u64 {
    out.metrics.counter(name).unwrap_or(0)
}

fn stage_duration(out: &PipelineOutput, stage: &str) -> f64 {
    out.trace
        .with_cat("stage")
        .into_iter()
        .filter(|s| s.track == 0 && s.name == stage)
        .map(|s| s.end - s.start)
        .sum()
}

#[test]
fn full_round_trip_resumes_every_stage() {
    let reads = common::tiny_reads(common::CHAOS_WORKLOAD_SEED);
    let dir = ScratchDir::new("roundtrip");
    let seeded = run(&reads, dir.path(), false);
    assert_eq!(count(&seeded, "ckpt.saved"), STAGES.len() as u64);
    for stage in STAGES {
        assert!(
            stage_path(dir.path(), stage).is_file(),
            "{stage} checkpoint on disk"
        );
    }

    let resumed = run(&reads, dir.path(), true);
    assert_eq!(count(&resumed, "ckpt.resumed"), STAGES.len() as u64);
    assert_eq!(count(&resumed, "ckpt.saved"), 0, "nothing recomputed");
    assert_eq!(count(&resumed, "ckpt.invalid"), 0);
    assert_eq!(common::artifacts(&resumed), common::artifacts(&seeded));
    // A resumed stage replays its recorded duration, so the wall-clock-
    // measured stages stop being a source of trace jitter. (Comparison is
    // to ulp-level tolerance, not bits: stage *starts* shift by the
    // recomputed — wall-measured — Bowtie stage between the runs.)
    for stage in STAGES {
        let (a, b) = (
            stage_duration(&seeded, stage),
            stage_duration(&resumed, stage),
        );
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1e-12),
            "{stage} duration replayed ({a} vs {b})"
        );
    }
    // Timings for resumed Chrysalis stages are empty by contract.
    assert!(resumed.gff_timings.is_empty());
    assert!(resumed.rtt_timings.is_empty());
}

#[test]
fn resume_into_empty_dir_is_a_seeding_run() {
    let reads = common::tiny_reads(common::CHAOS_WORKLOAD_SEED);
    let dir = ScratchDir::new("empty");
    let out = run(&reads, dir.path(), true);
    // Missing checkpoints are the normal "nothing completed yet" case:
    // not an error, not counted as corruption — just compute and save.
    assert_eq!(count(&out, "ckpt.resumed"), 0);
    assert_eq!(count(&out, "ckpt.invalid"), 0);
    assert_eq!(count(&out, "ckpt.saved"), STAGES.len() as u64);
}

#[test]
fn corrupting_any_stage_is_detected_and_recomputed() {
    let reads = common::tiny_reads(common::CHAOS_WORKLOAD_SEED);
    let baseline = common::artifacts(&run(&reads, ScratchDir::new("corrupt-base").path(), false));
    for (idx, stage) in STAGES.iter().enumerate() {
        let dir = ScratchDir::new("corrupt");
        run(&reads, dir.path(), false);
        // Flip one mid-file byte. The trailing FNV checksum covers every
        // preceding byte, so any single-byte change must be rejected.
        let path = stage_path(dir.path(), stage);
        let mut bytes = std::fs::read(&path).expect("read checkpoint");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write corrupted checkpoint");

        let resumed = run(&reads, dir.path(), true);
        assert_eq!(
            count(&resumed, "ckpt.invalid"),
            1,
            "{stage}: corruption detected"
        );
        // Completed-prefix semantics: stages before the corrupt one
        // resume; it and everything after recompute and rewrite.
        assert_eq!(count(&resumed, "ckpt.resumed"), idx as u64, "{stage}");
        assert_eq!(
            count(&resumed, "ckpt.saved"),
            (STAGES.len() - idx) as u64,
            "{stage}: corrupt suffix rewritten"
        );
        assert_eq!(
            common::artifacts(&resumed),
            baseline,
            "{stage}: recompute restores the fault-free artifacts"
        );
        // The rewrite repaired the file: a further resume is clean.
        let repaired = run(&reads, dir.path(), true);
        assert_eq!(count(&repaired, "ckpt.resumed"), STAGES.len() as u64);
        assert_eq!(count(&repaired, "ckpt.invalid"), 0);
    }
}

#[test]
fn fingerprint_rejects_checkpoints_from_another_run() {
    // Checkpoints are bound to (reads, config): resuming against a
    // different read set must ignore every stale file rather than serve
    // the wrong assembly.
    let reads_a = common::tiny_reads(common::CHAOS_WORKLOAD_SEED);
    let reads_b = common::tiny_reads(common::CHAOS_WORKLOAD_SEED + 1);
    let dir = ScratchDir::new("fingerprint");
    run(&reads_a, dir.path(), false);

    let fresh_b = run_pipeline_opts(&reads_b, &PipelineConfig::small(12), &RunOptions::default());
    let resumed_b = run(&reads_b, dir.path(), true);
    assert_eq!(count(&resumed_b, "ckpt.resumed"), 0, "stale prefix refused");
    assert!(count(&resumed_b, "ckpt.invalid") >= 1);
    assert_eq!(common::artifacts(&resumed_b), common::artifacts(&fresh_b));
}

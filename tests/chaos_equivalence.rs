//! The chaos differential harness — the golden invariant of the fault
//! layer: **any seeded fault plan that eventually delivers yields
//! byte-identical pipeline artifacts to the fault-free run**, at every
//! rank count. Delays and drops-with-retry may only move virtual time;
//! crashes trigger a deterministic stage replay that converges to the
//! same bytes. The matrix runs [`common::CHAOS_PLANS_PER_RANK_COUNT`]
//! plans (mixing delays, drops, and crashes) against rank counts
//! {1, 2, 4, 7}, one `#[test]` per rank count so the suite parallelises.

mod common;

use std::sync::Arc;

use mpisim::{FaultPlan, NetModel};
use trinity::pipeline::{
    run_pipeline_opts, PipelineConfig, PipelineMode, PipelineOutput, RunOptions,
};

fn run_with(
    reads: &[seqio::fasta::Record],
    ranks: usize,
    faults: Option<Arc<FaultPlan>>,
) -> PipelineOutput {
    let mut cfg = PipelineConfig::small(12);
    if ranks > 1 {
        cfg.mode = PipelineMode::Hybrid {
            ranks,
            net: NetModel::idataplex(),
        };
    }
    let opts = RunOptions {
        faults,
        ..RunOptions::default()
    };
    run_pipeline_opts(reads, &cfg, &opts)
}

use common::artifacts;

/// Plan `i` of the matrix: rotate through delay-only, drop-only, mixed,
/// and mixed-plus-crash shapes. Crash ops stay at 0/1 because the tiny
/// pipeline's cluster stages issue only a couple of comm calls per rank —
/// larger indices would never fire.
fn chaos_plan(i: usize, ranks: usize) -> Arc<FaultPlan> {
    let seed = common::CHAOS_PLAN_SEED_BASE + i as u64;
    let plan = match i % 4 {
        0 => FaultPlan::new(seed).with_delays(0.9, 1e-3),
        1 => FaultPlan::new(seed).with_drops(0.6, 3),
        2 => FaultPlan::new(seed)
            .with_delays(0.7, 5e-4)
            .with_drops(0.4, 2),
        _ => FaultPlan::new(seed)
            .with_delays(0.8, 1e-3)
            .with_drops(0.5, 3)
            .with_crash(i % ranks, (i / 4) as u64 % 2),
    };
    Arc::new(plan)
}

fn count(out: &PipelineOutput, name: &str) -> u64 {
    out.metrics.counter(name).unwrap_or(0)
}

fn spans_named(out: &PipelineOutput, name: &str) -> usize {
    out.trace.spans.iter().filter(|s| s.name == name).count()
}

/// The differential matrix at one rank count: every plan's artifacts must
/// equal the fault-free baseline's, and every injected fault must be
/// observable (counters agree with `mpi.delay` / `mpi.retry` /
/// `fault.crash` spans in the merged trace).
fn assert_chaos_equivalence(ranks: usize) {
    let reads = common::tiny_reads(common::CHAOS_WORKLOAD_SEED);
    let baseline = artifacts(&run_with(&reads, ranks, None));
    let (mut delays, mut retries, mut crashes) = (0u64, 0u64, 0u64);
    for i in 0..common::CHAOS_PLANS_PER_RANK_COUNT {
        let plan = chaos_plan(i, ranks);
        let out = run_with(&reads, ranks, Some(Arc::clone(&plan)));
        assert_eq!(
            artifacts(&out),
            baseline,
            "plan {i} (seed {}) diverged from the fault-free run at ranks={ranks}",
            plan.seed
        );
        // Faults that fired are visible: each nonzero counter has matching
        // spans in the trace, and vice versa.
        let (d, r, c) = (
            count(&out, "fault.delays"),
            count(&out, "fault.retries"),
            count(&out, "fault.rank_crashes"),
        );
        assert_eq!(spans_named(&out, "mpi.delay") as u64, d, "plan {i}");
        assert_eq!(spans_named(&out, "mpi.retry") as u64, r, "plan {i}");
        assert_eq!(spans_named(&out, "fault.crash") as u64, c, "plan {i}");
        if c > 0 {
            assert!(
                count(&out, "fault.replays") > 0,
                "plan {i}: a crash must force at least one stage replay"
            );
        }
        delays += d;
        retries += r;
        crashes += c;
    }
    // The matrix as a whole exercised every fault kind (deterministic:
    // the seeds are fixed, so this can never flake).
    assert!(delays > 0, "no delay ever fired at ranks={ranks}");
    assert!(retries > 0, "no drop ever fired at ranks={ranks}");
    assert!(crashes > 0, "no crash ever fired at ranks={ranks}");
}

#[test]
fn chaos_plans_preserve_artifacts_at_1_rank() {
    assert_chaos_equivalence(1);
}

#[test]
fn chaos_plans_preserve_artifacts_at_2_ranks() {
    assert_chaos_equivalence(2);
}

#[test]
fn chaos_plans_preserve_artifacts_at_4_ranks() {
    assert_chaos_equivalence(4);
}

#[test]
fn chaos_plans_preserve_artifacts_at_7_ranks() {
    assert_chaos_equivalence(7);
}

#[test]
fn crash_is_replayed_and_reported() {
    // A scheduled crash fires exactly once, forces exactly one stage
    // replay, leaves its marker span in the merged trace — and changes
    // not a single artifact byte.
    let reads = common::tiny_reads(common::CHAOS_WORKLOAD_SEED);
    let clean = run_with(&reads, 4, None);
    let plan = Arc::new(FaultPlan::new(7).with_crash(2, 1));
    let faulty = run_with(&reads, 4, Some(Arc::clone(&plan)));
    assert_eq!(artifacts(&faulty), artifacts(&clean));
    assert_eq!(count(&faulty, "fault.rank_crashes"), 1);
    assert_eq!(count(&faulty, "fault.replays"), 1);
    assert!(plan.crashes()[0].has_fired());
    assert_eq!(
        spans_named(&faulty, "fault.crash"),
        1,
        "the crashed attempt's salvaged trace carries the marker"
    );
}

#[test]
fn fault_runs_are_reproducible() {
    // Two identical plans (same seed/shape, fresh crash points) produce
    // identical artifacts and identical fault counters — the property
    // that makes a chaos failure debuggable by re-running its seed.
    // (Virtual *timelines* are not compared: compute charges are
    // wall-measured, so only the fault decisions are reproducible.)
    let reads = common::tiny_reads(common::CHAOS_WORKLOAD_SEED);
    let mk = || {
        Arc::new(
            FaultPlan::new(common::CHAOS_PLAN_SEED_BASE)
                .with_delays(0.8, 1e-3)
                .with_drops(0.5, 3)
                .with_crash(1, 0),
        )
    };
    let a = run_with(&reads, 4, Some(mk()));
    let b = run_with(&reads, 4, Some(mk()));
    assert_eq!(artifacts(&a), artifacts(&b));
    for c in [
        "fault.delays",
        "fault.retries",
        "fault.rank_crashes",
        "fault.replays",
    ] {
        assert_eq!(count(&a, c), count(&b, c), "{c} differs between reruns");
    }
}

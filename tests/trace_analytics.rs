//! Integration: the trace-analytics layer (`obs::analyze` / `obs::diff`)
//! against real pipeline runs and the `trinity analyze` / `trinity diff`
//! CLI against real artifacts.
//!
//! The load-bearing property: the critical path's exclusive contributions
//! sum to the analyzed total, which equals the run's wall-clock — the
//! path *is* the wall-clock, itemized. It is asserted here on a fixed-seed
//! 4-rank run and property-tested on random traces.

mod common;

use std::path::{Path, PathBuf};
use std::process::Command;

use mpisim::NetModel;
use proptest::prelude::*;
use trinity::pipeline::{run_pipeline, PipelineConfig, PipelineMode, PipelineOutput};

fn four_rank_run() -> PipelineOutput {
    let reads = common::tiny_reads(common::ANALYTICS_SEED);
    let mut cfg = PipelineConfig::small(12);
    cfg.mode = PipelineMode::Hybrid {
        ranks: 4,
        net: NetModel::idataplex(),
    };
    run_pipeline(&reads, &cfg)
}

#[test]
fn critical_path_accounts_for_the_full_run() {
    let out = four_rank_run();
    let a = obs::analyze(&out.trace);

    // The path total equals the analyzed total equals the wall-clock.
    assert!(a.total > 0.0);
    assert!(
        (a.path_total() - a.total).abs() < 1e-9 * a.total.max(1.0),
        "path {} != total {}",
        a.path_total(),
        a.total
    );
    assert!(
        (a.total - out.trace.total_time()).abs() < 1e-9 * a.total.max(1.0),
        "total {} != wall-clock {}",
        a.total,
        out.trace.total_time()
    );

    // Every pipeline stage appears on the path (stages are serialized).
    let stage_names: Vec<&str> = a.stages.iter().map(|s| s.name.as_str()).collect();
    for name in &stage_names {
        assert!(
            a.critical_path
                .iter()
                .any(|p| p.name == *name && p.track == 0),
            "stage {name} missing from path"
        );
    }

    // A 4-rank run produces rank-lane stats and a communication matrix.
    assert!(
        a.stages.iter().any(|s| s.straggler.is_some()),
        "no hybrid stage found a straggler: {stage_names:?}"
    );
    assert!(!a.comm.is_empty(), "no mpi.* comm spans collected");
    for s in &a.stages {
        assert!(s.imbalance >= 1.0 - 1e-12, "{s:?}");
        assert!((0.0..=1.0).contains(&s.idle_frac), "{s:?}");
    }

    // The artifact round-trips losslessly.
    let text = obs::analyze::analysis_json(&a);
    assert_eq!(obs::analyze::parse_analysis(&text).unwrap(), a);
}

#[test]
fn diff_flags_exactly_the_injected_regression() {
    let out = four_rank_run();
    let baseline = obs::analyze(&out.trace);

    // Inject a 3x slowdown into the longest stage (well past the 25%
    // relative and 50 ms absolute default bands).
    let slow = baseline
        .stages
        .iter()
        .max_by(|a, b| a.duration().total_cmp(&b.duration()))
        .unwrap()
        .name
        .clone();
    let mut base_series = obs::diff::analysis_series(&baseline);
    let mut cur_series = base_series.clone();
    let key = format!("stage:{slow}");
    let grow = base_series[&key].max(0.05) * 2.0;
    *cur_series.get_mut(&key).unwrap() += grow;
    *cur_series.get_mut("total").unwrap() += grow;

    let report = obs::diff::diff_series(&base_series, &cur_series, obs::Tolerance::default());
    assert!(!report.passed());
    let mut flagged: Vec<&str> = report.regressions.iter().map(|d| d.span.as_str()).collect();
    flagged.sort_unstable();
    assert_eq!(flagged, vec![&key as &str, "total"], "{report:#?}");
    assert!(report.improvements.is_empty());

    // Identical series pass.
    base_series.insert("noise".into(), 1.0);
    cur_series = base_series.clone();
    assert!(obs::diff::diff_series(&base_series, &cur_series, obs::Tolerance::default()).passed());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On *any* trace — random stages on track 0, random work spans on
    /// random rank lanes — contributions sum to the total and everything
    /// stays finite.
    #[test]
    fn path_total_matches_total_on_random_traces(
        stage_durs in proptest::collection::vec(0.0f64..5.0, 0..4),
        work in proptest::collection::vec(
            (1u32..4, 0.0f64..20.0, 0.0f64..5.0, any::<bool>()),
            0..24
        ),
    ) {
        let tr = obs::Tracer::new();
        let mut t = 0.0;
        for (i, d) in stage_durs.iter().enumerate() {
            tr.record(0, "stage", format!("stage{i}"), t, t + d);
            t += d;
        }
        for (i, &(lane, start, dur, comm)) in work.iter().enumerate() {
            let (cat, name) = if comm {
                ("comm", format!("mpi.op{}", i % 3))
            } else {
                ("work", format!("w{i}"))
            };
            tr.record(lane, cat, &name, start, start + dur);
        }
        let a = obs::analyze_vs(&tr.take(), Some(t * 2.0));

        let expected_total: f64 = stage_durs.iter().sum();
        prop_assert!((a.total - expected_total).abs() < 1e-9);
        prop_assert!(
            (a.path_total() - a.total).abs() < 1e-9 * a.total.max(1.0),
            "path {} != total {} ({a:#?})", a.path_total(), a.total
        );
        for s in &a.critical_path {
            prop_assert!(s.contribution.is_finite() && s.contribution >= 0.0);
            prop_assert!(s.slack.is_finite() && s.slack >= 0.0);
        }
        for s in &a.stages {
            prop_assert!(s.imbalance.is_finite() && s.imbalance >= 1.0 - 1e-12);
            prop_assert!(s.idle_frac.is_finite());
        }
        // The artifact round-trips even for degenerate random traces.
        let text = obs::analyze::analysis_json(&a);
        prop_assert_eq!(obs::analyze::parse_analysis(&text).unwrap(), a);
    }
}

// ---- the CLI, end to end ------------------------------------------------

fn trinity_bin() -> &'static str {
    env!("CARGO_BIN_EXE_trinity")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "trinity_trace_analytics_{}_{tag}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_analysis(path: &Path, a: &obs::Analysis) {
    std::fs::write(path, obs::analyze::analysis_json(a)).unwrap();
}

#[test]
fn analyze_subcommand_writes_a_valid_artifact() {
    let dir = scratch_dir("analyze");
    let out = four_rank_run();
    let trace_path = dir.join("trace.json");
    std::fs::write(&trace_path, obs::export::trace_json(&out.trace)).unwrap();

    let artifact = dir.join("analysis.json");
    let st = Command::new(trinity_bin())
        .args(["analyze", trace_path.to_str().unwrap(), "--out"])
        .arg(&artifact)
        .output()
        .unwrap();
    assert!(
        st.status.success(),
        "{}",
        String::from_utf8_lossy(&st.stderr)
    );
    let stdout = String::from_utf8_lossy(&st.stdout);
    assert!(stdout.contains("critical path"), "{stdout}");
    assert!(stdout.contains("straggler"), "{stdout}");

    let a = obs::analyze::parse_analysis(&std::fs::read_to_string(&artifact).unwrap())
        .expect("artifact parses");
    assert!((a.path_total() - a.total).abs() < 1e-9 * a.total.max(1.0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_subcommand_exit_codes_follow_the_verdict() {
    let dir = scratch_dir("diff");
    let out = four_rank_run();
    let baseline = obs::analyze(&out.trace);
    let base_path = dir.join("baseline.json");
    write_analysis(&base_path, &baseline);

    // Same artifact on both sides: pass, exit 0.
    let st = Command::new(trinity_bin())
        .args(["diff"])
        .args([&base_path, &base_path])
        .output()
        .unwrap();
    assert!(
        st.status.success(),
        "identical diff failed: {}",
        String::from_utf8_lossy(&st.stderr)
    );

    // Inject a regression into the longest stage: fail, exit 1, and the
    // verdict names that stage (and only flags genuine regressions).
    let mut current = baseline.clone();
    let slow = current
        .stages
        .iter_mut()
        .max_by(|a, b| a.duration().total_cmp(&b.duration()))
        .unwrap();
    let grow = slow.duration().max(0.1) * 2.0;
    slow.end += grow;
    let slow_name = slow.name.clone();
    current.total += grow;
    let cur_path = dir.join("current.json");
    write_analysis(&cur_path, &current);

    let st = Command::new(trinity_bin())
        .args(["diff", "--json"])
        .args([&base_path, &cur_path])
        .output()
        .unwrap();
    assert_eq!(st.status.code(), Some(1), "regression must exit 1");
    let stdout = String::from_utf8_lossy(&st.stdout);
    assert!(
        stdout.contains(&format!("stage:{slow_name}")),
        "verdict names the slow stage: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&st.stderr);
    assert!(
        stderr.contains("trinity analyze"),
        "failure explains how to refresh the baseline: {stderr}"
    );

    // Widening the absolute band past the injected slowdown (at most
    // ~0.2 s on this tiny virtual run) swallows it: exit 0.
    let st = Command::new(trinity_bin())
        .args(["diff", "--tol-abs", "1.0"])
        .args([&base_path, &cur_path])
        .output()
        .unwrap();
    assert!(
        st.status.success(),
        "tolerant diff should pass: {}",
        String::from_utf8_lossy(&st.stdout)
    );

    // Unreadable input is a usage error: exit 2.
    let st = Command::new(trinity_bin())
        .args(["diff"])
        .args([&base_path, &dir.join("missing.json")])
        .output()
        .unwrap();
    assert_eq!(st.status.code(), Some(2), "IO error must exit 2");
    std::fs::remove_dir_all(&dir).ok();
}

//! Shared fixtures for the integration tests: every hard-coded RNG seed
//! lives here under a name that says what it pins, so a seed bump (after a
//! generator change, say) is one edit instead of a grep across test files.
//!
//! Each integration test binary compiles its own copy of this module and
//! uses only part of it, so the module-wide `dead_code` allowance is
//! deliberate.
#![allow(dead_code)]

use seqio::fasta::Record;
use simulate::datasets::{Dataset, DatasetPreset};
use trinity::pipeline::PipelineOutput;

/// Workload for `pipeline_equivalence`: hybrid == serial across rank counts.
pub const EQUIVALENCE_SEED: u64 = 17;

/// Workload for the run-to-run determinism check.
pub const DETERMINISM_SEED: u64 = 23;

/// Workload for the network-model-changes-time-not-output check.
pub const NET_MODEL_SEED: u64 = 29;

/// Workload for the Inchworm jitter (emulated indeterminism) check.
pub const JITTER_SEED: u64 = 31;

/// Workload for the stage-trace coverage check.
pub const TRACE_SEED: u64 = 37;

/// Workload for `distributed_semantics`: the Chrysalis chain fixtures.
pub const WORKLOAD_SEED: u64 = 5;

/// Workload for `chaos_equivalence` and `checkpoint_resume`: the read set
/// every fault plan must reproduce byte-for-byte.
pub const CHAOS_WORKLOAD_SEED: u64 = 41;

/// Workload for `trace_analytics`: the fixed-seed 4-rank run whose
/// critical path must account for the full wall-clock.
pub const ANALYTICS_SEED: u64 = 43;

/// Base seed for the chaos fault plans; plan `i` uses
/// `CHAOS_PLAN_SEED_BASE + i` so each plan draws a distinct but
/// reproducible decision stream.
pub const CHAOS_PLAN_SEED_BASE: u64 = 1000;

/// Fault plans per rank count in the chaos differential matrix.
pub const CHAOS_PLANS_PER_RANK_COUNT: usize = 20;

/// Generate the Tiny dataset's reads for a named seed above.
pub fn tiny_reads(seed: u64) -> Vec<Record> {
    Dataset::generate(DatasetPreset::Tiny, seed).all_reads()
}

/// Everything a fault plan or a checkpoint resume must leave untouched,
/// in comparable form: contigs in assembly order, components, read
/// assignments, and the transcript set (sorted — reconstruction order is
/// not part of the contract).
pub type Artifacts = (Vec<Vec<u8>>, Vec<Vec<usize>>, Vec<(u32, u32)>, Vec<Vec<u8>>);

pub fn artifacts(out: &PipelineOutput) -> Artifacts {
    let contigs: Vec<Vec<u8>> = out.contigs.iter().map(|c| c.seq.clone()).collect();
    let mut transcripts: Vec<Vec<u8>> = out.transcripts.iter().map(|t| t.seq.clone()).collect();
    transcripts.sort();
    (
        contigs,
        out.components.clone(),
        out.assignments.clone(),
        transcripts,
    )
}

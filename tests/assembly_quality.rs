//! Integration: assembly quality against simulated ground truth — the
//! §IV validation logic exercised end to end.

use align::validate::{
    all_to_all_categories, count_full_length, FullLengthCriteria, RefTranscript,
};
use seqio::stats::length_stats;
use simulate::datasets::{Dataset, DatasetPreset};
use trinity::pipeline::{run_pipeline, PipelineConfig};

fn refs(ds: &Dataset) -> Vec<RefTranscript> {
    ds.reference
        .iter()
        .map(|r| RefTranscript {
            gene: r.gene.clone(),
            isoform: r.isoform.clone(),
            seq: r.seq.clone(),
        })
        .collect()
}

#[test]
fn most_reference_isoforms_reconstructed_full_length() {
    // The dataset draw is pinned to the workspace's deterministic
    // (vendored, xoshiro256++-based) RNG stream, which differs from the
    // upstream-rand stream the original draw was calibrated on. The
    // paper-derived claim under test — at least half the reference
    // isoforms come back full-length at adequate coverage (§IV) — is
    // unchanged; only the seed picking the concrete random transcriptome
    // was recalibrated (seed 41 draws a paralog-heavy instance that tops
    // out at 4/9 regardless of implementation).
    let ds = Dataset::generate(DatasetPreset::Tiny, 14);
    let out = run_pipeline(&ds.all_reads(), &PipelineConfig::small(12));
    let counts = count_full_length(&out.transcripts, &refs(&ds), FullLengthCriteria::default());
    let total = ds.reference.len();
    assert!(
        counts.isoforms * 2 >= total,
        "at least half the isoforms full-length: {}/{total}",
        counts.isoforms
    );
    assert!(counts.genes > 0);
}

#[test]
fn self_comparison_is_all_identical() {
    let ds = Dataset::generate(DatasetPreset::Tiny, 43);
    let out = run_pipeline(&ds.all_reads(), &PipelineConfig::small(12));
    let cats = all_to_all_categories(
        &out.transcripts,
        &out.transcripts,
        FullLengthCriteria::default(),
    );
    assert_eq!(cats.identical_full, out.transcripts.len());
    assert_eq!(cats.partial, 0);
    assert_eq!(cats.unaligned, 0);
}

#[test]
fn transcript_lengths_are_plausible() {
    let ds = Dataset::generate(DatasetPreset::Tiny, 47);
    let out = run_pipeline(&ds.all_reads(), &PipelineConfig::small(12));
    let stats = length_stats(out.transcripts.iter().map(|t| t.seq.len()));
    let ref_stats = length_stats(ds.reference.iter().map(|r| r.seq.len()));
    assert!(stats.count > 0);
    // No transcript wildly exceeds the longest reference (fusions are
    // bounded by two genes at this scale).
    assert!(
        stats.max <= 2 * ref_stats.max + 100,
        "max transcript {} vs max reference {}",
        stats.max,
        ref_stats.max
    );
    // N50 within a sane band of the reference N50.
    assert!(
        stats.n50 * 4 >= ref_stats.n50,
        "N50 {} vs {}",
        stats.n50,
        ref_stats.n50
    );
}

#[test]
fn coverage_depth_improves_reconstruction() {
    // More reads -> at least as many full-length reconstructions.
    use simulate::expression::ExpressionModel;
    use simulate::reads::{simulate_reads, ReadSimConfig};
    use simulate::transcriptome::{Transcriptome, TranscriptomeConfig};

    let t = Transcriptome::generate(TranscriptomeConfig {
        genes: 6,
        exons_per_gene: (2, 3),
        exon_len: (90, 220),
        isoforms_per_gene: (1, 1),
        paralog_fraction: 0.0,
        paralog_divergence: 0.03,
        seed: 9,
    });
    let reference = t.reference();
    let expr = ExpressionModel::default();
    let mk = |pairs: usize| {
        simulate_reads(
            &reference,
            &expr,
            ReadSimConfig {
                pairs,
                read_len: 36,
                insert_mean: 110.0,
                insert_sd: 10.0,
                error_rate: 0.0,
                seed: 77,
            },
        )
        .all()
    };
    let shallow = run_pipeline(&mk(150), &PipelineConfig::small(12));
    let deep = run_pipeline(&mk(1500), &PipelineConfig::small(12));
    let refs: Vec<RefTranscript> = reference
        .iter()
        .map(|r| RefTranscript {
            gene: r.gene.clone(),
            isoform: r.isoform.clone(),
            seq: r.seq.clone(),
        })
        .collect();
    let c_shallow = count_full_length(&shallow.transcripts, &refs, FullLengthCriteria::default());
    let c_deep = count_full_length(&deep.transcripts, &refs, FullLengthCriteria::default());
    assert!(
        c_deep.isoforms >= c_shallow.isoforms,
        "deep {} >= shallow {}",
        c_deep.isoforms,
        c_shallow.isoforms
    );
    assert!(c_deep.isoforms > 0);
}

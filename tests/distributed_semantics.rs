//! Integration: distributed-execution semantics across crates — the MPI
//! substrate, the chunked round-robin distribution, and the Chrysalis
//! stages composed the way `Trinity.pl` composes them.

mod common;

use std::sync::Arc;

use bowtie::align::AlignConfig;
use chrysalis::bowtie_mpi::{bowtie_mpi, contig_name_index};
use chrysalis::config::ChrysalisConfig;
use chrysalis::graph_from_fasta::{gff_hybrid, GffShared};
use chrysalis::reads_to_transcripts::{rtt_hybrid, RttShared};
use chrysalis::scaffold::{scaffold_pairs, ScaffoldConfig};
use mpisim::cluster::rank_time_spread;
use mpisim::{run_cluster, NetModel};
use seqio::fasta::Record;
use simulate::datasets::{Dataset, DatasetPreset};

fn workload() -> (
    Vec<Record>,
    Vec<Record>,
    kcount::counter::KmerCounts,
    ChrysalisConfig,
) {
    let ds = Dataset::generate(DatasetPreset::Tiny, common::WORKLOAD_SEED);
    let reads = ds.all_reads();
    let cfg = ChrysalisConfig::small(12);
    // Assemble contigs with Inchworm.
    let counts = kcount::counter::count_kmers(&reads, kcount::counter::CounterConfig::new(cfg.k));
    let dict = inchworm::dictionary::Dictionary::from_counts(counts.clone(), 1);
    let contigs: Vec<Record> = inchworm::assemble::assemble(
        &dict,
        inchworm::assemble::InchwormConfig {
            min_seed_count: 1,
            min_extend_count: 1,
            min_contig_len: 24,
            jitter_seed: None,
        },
    )
    .iter()
    .map(|c| c.to_record())
    .collect();
    (contigs, reads, counts, cfg)
}

#[test]
fn full_chrysalis_chain_under_one_cluster() {
    // Run Bowtie -> GFF -> RTT inside a single cluster run, accumulating
    // one virtual clock per rank — the shape of the real MPI job.
    let (contigs, reads, counts, cfg) = workload();
    let packed_contigs = Arc::new(seqio::packed::encode_all(&contigs));
    let gff_shared = Arc::new(GffShared::prepare(
        packed_contigs.as_ref().clone(),
        counts,
        cfg,
    ));
    let contigs = Arc::new(contigs);
    let reads = Arc::new(reads);

    let (c, pc, r, g) = (
        Arc::clone(&contigs),
        Arc::clone(&packed_contigs),
        Arc::clone(&reads),
        Arc::clone(&gff_shared),
    );
    let outs = run_cluster(4, NetModel::idataplex(), move |comm| {
        let bowtie = bowtie_mpi(comm, &c, &r, &cfg, AlignConfig::default());
        let gff = gff_hybrid(comm, &g);
        // RTT needs the component map; build it per rank from the (identical)
        // GFF output, replicated exactly like the paper's code.
        let rtt_shared = RttShared::prepare(r.as_ref().clone(), &pc, &gff.components, cfg);
        let rtt = rtt_hybrid(comm, &rtt_shared);
        (bowtie.sam.len(), gff.pairs, rtt.assignments)
    });

    // All ranks agree on every stage's output.
    for o in &outs[1..] {
        assert_eq!(o.value, outs[0].value);
    }
    // Clocks are sane and ordered: total time is positive and the spread
    // is bounded (no rank finished at 0).
    let (min, max) = rank_time_spread(&outs);
    assert!(min > 0.0 && max >= min);
}

#[test]
fn scaffold_pairs_integrate_with_clustering() {
    let (contigs, reads, _counts, cfg) = workload();
    let contigs = Arc::new(contigs);
    let reads_arc = Arc::new(reads);
    let (c, r) = (Arc::clone(&contigs), Arc::clone(&reads_arc));
    let outs = run_cluster(2, NetModel::ideal(), move |comm| {
        bowtie_mpi(comm, &c, &r, &cfg, AlignConfig::default()).sam
    });
    let sam = &outs[0].value;
    let name_index = contig_name_index(&contigs);
    let lens: Vec<usize> = contigs.iter().map(|c| c.seq.len()).collect();
    let pairs = scaffold_pairs(sam, &name_index, &lens, ScaffoldConfig::default());
    // Pairs are well-formed: ordered, in range, no self-links.
    for &(a, b) in &pairs {
        assert!(a < b);
        assert!((b as usize) < contigs.len());
    }
    // Clustering with the scaffold pairs never panics and keeps counts.
    let (comp_of, comps) = chrysalis::graph_from_fasta::cluster(contigs.len(), &pairs);
    assert_eq!(comp_of.len(), contigs.len());
    assert_eq!(comps.iter().map(Vec::len).sum::<usize>(), contigs.len());
}

#[test]
fn rank_counts_beyond_work_degrade_gracefully() {
    // More ranks than contigs/chunks: idle ranks, identical results.
    let (contigs, _reads, counts, cfg) = workload();
    let n_contigs = contigs.len();
    let gff_shared = Arc::new(GffShared::prepare(
        seqio::packed::encode_all(&contigs),
        counts,
        cfg,
    ));
    let g1 = Arc::clone(&gff_shared);
    let one = run_cluster(1, NetModel::ideal(), move |comm| {
        gff_hybrid(comm, &g1).pairs
    });
    let gmany = Arc::clone(&gff_shared);
    let many = run_cluster(n_contigs + 5, NetModel::ideal(), move |comm| {
        // The pooling contract idle ranks rely on: `allgatherv` is
        // positional. A rank with nothing to say contributes a
        // *zero-length* part — never an absent one — and every rank
        // receives exactly `size` entries, so indexing the pooled vector
        // by rank stays aligned however many ranks sit idle.
        let mine: Vec<u8> = if comm.rank() < n_contigs {
            vec![comm.rank() as u8; 3]
        } else {
            Vec::new()
        };
        let parts = comm.allgatherv(&mine);
        assert_eq!(parts.len(), comm.size(), "one entry per rank, always");
        for (r, part) in parts.iter().enumerate() {
            if r < n_contigs {
                assert_eq!(part, &vec![r as u8; 3], "busy rank {r} part intact");
            } else {
                assert!(
                    part.is_empty(),
                    "idle rank {r} contributes zero-length, not absent"
                );
            }
        }
        gff_hybrid(comm, &gmany).pairs
    });
    assert_eq!(one[0].value, many[0].value);
}

#[test]
fn communication_volume_ordering() {
    // Loop 1 ships strings, loop 2 ships integers: per the paper, loop 2
    // uses "substantially less communication". Virtual *time* around each
    // collective includes rank-arrival skew from real measured loop costs,
    // so assert on the deterministic byte volume the `mpi.allgatherv`
    // spans carry instead.
    let (contigs, _reads, counts, cfg) = workload();
    let gff_shared = Arc::new(GffShared::prepare(
        seqio::packed::encode_all(&contigs),
        counts,
        cfg,
    ));
    let outs = run_cluster(4, NetModel::idataplex(), move |comm| {
        let welds = gff_hybrid(comm, &gff_shared).welds.len();
        (welds, comm.track())
    });
    let (welds, track) = outs[0].value;
    let mut gathers: Vec<&obs::SpanRecord> = outs[0]
        .trace
        .on_track(track)
        .filter(|s| s.name == "mpi.allgatherv")
        .collect();
    gathers.sort_by(|a, b| a.start.total_cmp(&b.start));
    assert_eq!(gathers.len(), 2, "gff_hybrid pools welds then matches");
    let bytes1 = gathers[0].arg("bytes_total").unwrap_or(0.0);
    let bytes2 = gathers[1].arg("bytes_total").unwrap_or(0.0);
    if welds > 0 {
        assert!(
            bytes1 >= bytes2,
            "string pooling ({bytes1} B) should ship at least as much as integer pooling ({bytes2} B)"
        );
    }
}

//! Offline stand-in for `crossbeam`.
//!
//! Provides the two pieces this workspace uses: [`scope`] (scoped threads
//! whose closure receives the scope handle, panics surfaced as `Err`) and
//! [`channel`] (unbounded MPMC-ish channels; the workspace only ever fans
//! *in*, so std's `mpsc` suffices underneath).

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scoped-thread handle passed to [`scope`] closures and spawned threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. The closure receives the scope so it
    /// can spawn further threads, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a thread scope; all spawned threads are joined before this
/// returns. A panicking child (or closure) yields `Err(payload)` instead of
/// propagating, matching crossbeam's result contract.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// Unbounded channels with crossbeam's module layout.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half; clonable for many-producer use.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error returned when all receivers are gone.
    pub type SendError<T> = mpsc::SendError<T>;
    /// Error returned when all senders are gone and the queue is drained.
    pub type RecvError = mpsc::RecvError;
    /// Error returned by [`Receiver::recv_timeout`].
    pub type RecvTimeoutError = mpsc::RecvTimeoutError;

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails once all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Block for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_and_collects() {
        let total = std::sync::atomic::AtomicUsize::new(0);
        let r = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
            7
        });
        assert_eq!(r.unwrap(), 7);
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 4);
    }

    #[test]
    fn scope_surfaces_child_panic_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_fan_in() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.recv().is_err());
    }
}

//! Offline stand-in for `proptest`.
//!
//! The benchmark container cannot reach crates.io, so this crate vendors the
//! slice of proptest the workspace's property tests actually use: the
//! [`proptest!`] macro, `prop_assert*`, [`prop_oneof!`], [`Just`],
//! [`any`], range and tuple strategies, `prop_map` / `prop_filter`, and
//! `collection::vec`. Generation is purely random (no shrinking); failures
//! report the seed-derived case index so a failing case can be replayed by
//! running the test again (generation is deterministic per test name).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub use strategy::{any, Any, Just, Strategy};
pub use test_runner::ProptestConfig;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::RngExt;

    /// Size specification for [`vec()`]: a fixed size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy over `element`, sized by `size` (a `usize` or range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.random_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Like `assert!` but inside a property: reports the failing predicate.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Like `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Like `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
///
/// Expands to a `continue` targeting the per-test cases loop, so it is only
/// valid directly inside a `proptest!` body (which is where real proptest
/// allows it too). Unlike real proptest the skipped case is not re-drawn.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Choose uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::arm($strat)),+
        ])
    };
}

/// The property-test entry point. Accepts an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                // One strategy instance across cases (they are stateless).
                let strats = ($(&$strat,)+);
                for case in 0..cfg.cases {
                    let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                    let ($($pat,)+) = $crate::strategy::generate_tuple(&strats, &mut rng);
                    $body
                }
            }
        )*
    };
}

/// Strategy core: trait, combinators, primitive strategies.
pub mod strategy {
    use super::{RngExt, StdRng};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree or shrinking: `generate`
    /// draws one value. Filters retry a bounded number of times.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `pred` (bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected 1000 candidates", self.reason);
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Full-domain strategy for `T`, built by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The canonical strategy for all values of `T`.
    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random::<$t>()
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// String patterns: a `&str` is a tiny regex-style generator supporting
    /// literal characters, `[...]` classes (with `a-z` ranges and `\`
    /// escapes), and `{n}` / `{lo,hi}` repetition — the subset the
    /// workspace's tests use (e.g. `"[a-zA-Z0-9_.-]{1,12}"`).
    impl Strategy for str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            let chars: Vec<char> = self.chars().collect();
            let mut out = String::new();
            let mut i = 0;
            while i < chars.len() {
                let alphabet: Vec<char> = if chars[i] == '[' {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if chars[i] == '\\' {
                            set.push(chars[i + 1]);
                            i += 2;
                        } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']'
                        {
                            set.extend(chars[i]..=chars[i + 2]);
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    i += 1; // closing ']'
                    set
                } else {
                    if chars[i] == '\\' {
                        i += 1;
                    }
                    let c = chars[i];
                    i += 1;
                    vec![c]
                };
                assert!(!alphabet.is_empty(), "empty character class in {self:?}");
                let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                    let close = i + chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unclosed repetition");
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("bad repetition"),
                            b.trim().parse().expect("bad repetition"),
                        ),
                        None => {
                            let n: usize = body.trim().parse().expect("bad repetition");
                            (n, n)
                        }
                    }
                } else {
                    (1, 1)
                };
                for _ in 0..rng.random_range(lo..=hi) {
                    out.push(alphabet[rng.random_range(0..alphabet.len())]);
                }
            }
            out
        }
    }

    /// One boxed generator arm of a [`Union`].
    pub type UnionArm<T> = Box<dyn Fn(&mut StdRng) -> T>;

    /// Uniform choice among same-valued strategies (see [`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<UnionArm<T>>,
    }

    impl<T> Union<T> {
        /// Build from boxed generator arms.
        pub fn new(arms: Vec<UnionArm<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }

        /// Erase one strategy into a generator arm.
        pub fn arm<S>(strat: S) -> Box<dyn Fn(&mut StdRng) -> T>
        where
            S: Strategy<Value = T> + 'static,
        {
            Box::new(move |rng| strat.generate(rng))
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.random_range(0..self.arms.len());
            (self.arms[i])(rng)
        }
    }

    /// Generate a tuple of values from a tuple of strategy references
    /// (used by the [`crate::proptest!`] expansion).
    pub fn generate_tuple<S: Strategy>(strats: &S, rng: &mut StdRng) -> S::Value {
        strats.generate(rng)
    }
}

/// Test-run configuration and deterministic per-case RNG derivation.
pub mod test_runner {
    use super::{SeedableRng, StdRng};

    /// Run configuration; only `cases` is consulted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG for `(test name, case index)`: reruns reproduce
    /// the same sequence, keeping CI failures replayable.
    pub fn case_rng(name: &str, case: u32) -> StdRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn byte_pairs() -> impl Strategy<Value = Vec<(u8, u8)>> {
        crate::collection::vec((any::<u8>(), 1u8..5), 0..8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3usize..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn oneof_and_map(b in prop_oneof![Just(1u32), (5u32..8).prop_map(|x| x * 10)]) {
            prop_assert!(b == 1 || (50..80).contains(&b));
        }

        #[test]
        fn filter_applies(v in crate::collection::vec(0u32..100, 0..20)
                              .prop_filter("nonempty", |v| !v.is_empty())) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_compose(pairs in byte_pairs()) {
            for &(_, n) in &pairs {
                prop_assert!((1..5).contains(&n));
            }
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        let mut a = crate::test_runner::case_rng("t", 3);
        let mut b = crate::test_runner::case_rng("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::case_rng("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}

//! Offline stand-in for the `bytes` crate.
//!
//! The benchmark container has no crates.io access, so the workspace vendors
//! the *exact* API surface it consumes: [`Buf`] for `&[u8]` cursors and
//! [`BufMut`] for `Vec<u8>` builders, little-endian integer accessors only.

/// Read-side cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Skip `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copy out the next `dst.len()` bytes. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read a little-endian `u32`. Panics on underflow.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`. Panics on underflow.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write-side builder for a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        buf.put_u32_le(7);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_slice(b"xy");
        let mut cur = buf.as_slice();
        assert_eq!(cur.remaining(), 14);
        assert_eq!(cur.get_u32_le(), 7);
        assert_eq!(cur.get_u64_le(), u64::MAX - 1);
        let mut two = [0u8; 2];
        cur.copy_to_slice(&mut two);
        assert_eq!(&two, b"xy");
        assert!(!cur.has_remaining());
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut cur = &data[..];
        cur.advance(3);
        assert_eq!(cur, &[4]);
    }
}

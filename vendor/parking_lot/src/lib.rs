//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's panic-free `lock()` API
//! (poisoning is swallowed: a poisoned std lock still hands out its guard,
//! which is exactly parking_lot's behaviour of not tracking poison at all).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new unlocked mutex (usable in `static` items).
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn const_static_usable() {
        static M: Mutex<u32> = Mutex::new(7);
        assert_eq!(*M.lock(), 7);
    }
}

//! Offline stand-in for `criterion`.
//!
//! Implements the subset of criterion's API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`)
//! over a simple wall-clock harness: each benchmark is warmed up, then
//! sampled `sample_size` times with adaptive batching so that one sample
//! lasts ≥ ~2 ms, and the median per-iteration time is reported. Finished
//! measurements stay queryable via [`Criterion::reports`] so benches can
//! persist machine-readable results (the real crate writes JSON itself).

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Median seconds-per-iteration for one finished benchmark.
#[derive(Debug, Clone)]
pub struct Report {
    /// Full benchmark id (`group/function` or `group/function/param`).
    pub id: String,
    /// Median seconds per iteration.
    pub seconds: f64,
}

/// Top-level harness state.
#[derive(Debug, Default)]
pub struct Criterion {
    reports: Vec<Report>,
    sample_size: usize,
}

/// A named benchmark id, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `f`: warm up, pick a batch size lasting ≥ ~2 ms, then take
    /// `sample_size` timed samples of that batch.
    ///
    /// Under `cargo test` (which runs `harness = false` bench targets with
    /// `--test`) each closure executes exactly once, unmeasured — the same
    /// smoke-test behaviour as real criterion.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if test_mode() {
            black_box(f());
            self.samples.clear();
            return;
        }
        // Warmup + batch sizing: grow the batch until it takes >= 2 ms.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(2) || batch >= 1 << 20 {
                break;
            }
            // Aim directly for the target once we have a signal.
            batch = if dt.is_zero() {
                batch * 8
            } else {
                (batch * 8).min((2e-3 / dt.as_secs_f64() * batch as f64).ceil() as u64 + batch)
            };
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }

    fn median(&self) -> f64 {
        let mut v = self.samples.clone();
        if v.is_empty() {
            return 0.0;
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<I: IntoBenchmarkId>(
        &mut self,
        id: I,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(id, self.sample_size, f);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized>(
        &mut self,
        id: I,
        input: &T,
        mut f: impl FnMut(&mut Bencher, &T),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_id());
        self.criterion
            .run_one(id, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (report separator; kept for API parity).
    pub fn finish(&mut self) {}
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        self.run_one(id.into_id(), sample_size, f);
        self
    }

    fn run_one(&mut self, id: String, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
        };
        f(&mut b);
        let seconds = b.median();
        println!("bench: {id:<50} {}", format_time(seconds));
        self.reports.push(Report { id, seconds });
    }

    /// All measurements taken so far, in execution order.
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }
}

/// True unless the binary was launched by `cargo bench` (which passes
/// `--bench`). Like real criterion, any other invocation — `cargo test`
/// in particular — is a smoke run executing each closure once.
fn test_mode() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| !std::env::args().any(|a| a == "--bench"))
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("busy", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
        assert_eq!(c.reports().len(), 2);
        assert_eq!(c.reports()[0].id, "g/busy");
        assert_eq!(c.reports()[1].id, "g/param/4");
        // Under `cargo test` (no --bench flag) iter runs in smoke mode and
        // records no timing, so only presence of the reports is asserted.
        assert!(c.reports()[0].seconds >= 0.0);
    }
}

//! Offline stand-in for `rand`.
//!
//! Implements exactly what the `simulate` crate and property tests consume:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `RngExt` extension
//! with `random::<T>()` / `random_range(range)`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across platforms,
//! which is all the dataset presets require (they fix seeds).

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

/// Ranges samplable via [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the (non-empty) range.
    fn sample_from(self, rng: &mut rngs::StdRng) -> T;
}

/// Extension methods mirroring rand's `Rng`.
pub trait RngExt {
    /// A uniform sample over the full domain of `T`.
    fn random<T: Standard>(&mut self) -> T;

    /// A uniform sample from `range`. Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

pub mod rngs {
    use super::SeedableRng;

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

impl RngExt for rngs::StdRng {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl Standard for f64 {
    fn sample(rng: &mut rngs::StdRng) -> f64 {
        // 53 high-quality mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut rngs::StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from(self, rng: &mut rngs::StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5u64..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! Suffix-array construction by prefix doubling.
//!
//! O(n log n) with radix-free sorting (we sort rank pairs with the standard
//! library's pdqsort); ample for the contig-scale references this pipeline
//! indexes, and independent of alphabet size so the separator bytes used to
//! join contigs need no special handling.

/// Build the suffix array of `text`. Returns `sa` with `sa[i]` = start
/// position of the i-th smallest suffix. The caller is expected to have
/// appended a unique smallest terminator (byte 0) if total ordering of
/// rotations matters (the BWT builder does).
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(
        n <= u32::MAX as usize,
        "text too large for u32 suffix array"
    );

    // Initial ranks = byte values.
    let mut rank: Vec<u32> = text.iter().map(|&b| b as u32).collect();
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut tmp: Vec<u32> = vec![0; n];

    let mut k = 1usize;
    loop {
        // Sort by (rank[i], rank[i+k]) pairs.
        let key = |i: u32| -> (u32, u32) {
            let i = i as usize;
            let second = if i + k < n { rank[i + k] + 1 } else { 0 };
            (rank[i], second)
        };
        sa.sort_unstable_by_key(|&i| key(i));

        // Re-rank.
        tmp[sa[0] as usize] = 0;
        for w in 1..n {
            let prev = sa[w - 1];
            let cur = sa[w];
            let bump = u32::from(key(prev) != key(cur));
            tmp[cur as usize] = tmp[prev as usize] + bump;
        }
        std::mem::swap(&mut rank, &mut tmp);

        if rank[sa[n - 1] as usize] as usize == n - 1 {
            break; // all ranks distinct
        }
        k *= 2;
        debug_assert!(k < 2 * n, "doubling must terminate");
    }
    sa
}

/// Naive O(n^2 log n) construction, kept as the test oracle.
pub fn suffix_array_naive(text: &[u8]) -> Vec<u32> {
    let mut sa: Vec<u32> = (0..text.len() as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banana() {
        // Suffixes of "banana$" sorted: $ a$ ana$ anana$ banana$ na$ nana$
        let sa = suffix_array(b"banana\x00");
        assert_eq!(sa, vec![6, 5, 3, 1, 0, 4, 2]);
    }

    #[test]
    fn empty_and_single() {
        assert!(suffix_array(b"").is_empty());
        assert_eq!(suffix_array(b"A"), vec![0]);
    }

    #[test]
    fn all_same_byte() {
        // Longest suffix of identical bytes is largest.
        let sa = suffix_array(b"AAAA");
        assert_eq!(sa, vec![3, 2, 1, 0]);
    }

    #[test]
    fn matches_naive_on_dna() {
        let texts: [&[u8]; 5] = [
            b"ACGTACGTACGT\x00",
            b"GATTACA\x00",
            b"AAACCCGGGTTT\x00",
            b"ACGT\x01TGCA\x00",
            b"TTTTTTTTAAAAAAAA\x00",
        ];
        for t in texts {
            assert_eq!(suffix_array(t), suffix_array_naive(t), "text {t:?}");
        }
    }

    #[test]
    fn matches_naive_on_pseudorandom() {
        // Deterministic pseudo-random DNA.
        let mut state = 12345u64;
        let mut text: Vec<u8> = (0..500)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect();
        text.push(0);
        assert_eq!(suffix_array(&text), suffix_array_naive(&text));
    }
}

//! `-v`-mode read alignment: up to `v` mismatches, both strands.
//!
//! Bowtie 1's `-v` mode reports end-to-end (ungapped) alignments with at
//! most `v` substitutions. We reproduce it with depth-first backtracking
//! over the FM-index: the read is consumed right-to-left through backward
//! search; at each position the true base extends free, the other three
//! bases spend one unit of mismatch budget.

use seqio::alphabet::revcomp;

use crate::fmindex::FmIndex;

/// Which strand of the read matched the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strand {
    /// Read aligned as given.
    Forward,
    /// The read's reverse complement aligned.
    Reverse,
}

/// One reported alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Contig index in the index's input order.
    pub contig: usize,
    /// 0-based offset of the alignment start within the contig.
    pub offset: usize,
    /// Strand of the read.
    pub strand: Strand,
    /// Number of substitutions.
    pub mismatches: u8,
    /// Read length (alignments are end-to-end).
    pub read_len: usize,
}

/// Alignment parameters (Bowtie `-v` / `-k` style).
#[derive(Debug, Clone, Copy)]
pub struct AlignConfig {
    /// Maximum substitutions (`-v`). Bowtie caps this at 3; so do we.
    pub max_mismatches: u8,
    /// Report at most this many alignments per read (`-k`).
    pub max_hits: usize,
    /// Only report the best stratum (fewest mismatches), like
    /// `--best --strata`.
    pub best_strata: bool,
    /// Also try the reverse complement of the read.
    pub both_strands: bool,
}

impl Default for AlignConfig {
    fn default() -> Self {
        AlignConfig {
            max_mismatches: 2,
            max_hits: 16,
            best_strata: true,
            both_strands: true,
        }
    }
}

const DNA: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// DFS over the index, collecting SA ranges of full-length matches with
/// their mismatch counts.
#[allow(clippy::too_many_arguments)]
fn backtrack(
    idx: &FmIndex,
    pattern: &[u8],
    i: usize,
    lo: usize,
    hi: usize,
    mm: u8,
    budget: u8,
    out: &mut Vec<(u8, usize, usize)>,
) {
    if i == 0 {
        out.push((mm, lo, hi));
        return;
    }
    let want = pattern[i - 1].to_ascii_uppercase();
    // Exact extension first so low-mismatch hits surface first.
    if let Some((l, h)) = idx.bwt().backward_step(lo, hi, want) {
        backtrack(idx, pattern, i - 1, l, h, mm, budget, out);
    }
    if mm < budget {
        for &b in DNA.iter().filter(|&&b| b != want) {
            if let Some((l, h)) = idx.bwt().backward_step(lo, hi, b) {
                backtrack(idx, pattern, i - 1, l, h, mm + 1, budget, out);
            }
        }
    }
}

fn align_one_strand(
    idx: &FmIndex,
    seq: &[u8],
    strand: Strand,
    cfg: AlignConfig,
    out: &mut Vec<Alignment>,
) {
    if seq.is_empty() {
        return;
    }
    let budget = cfg.max_mismatches.min(3);
    let mut ranges = Vec::new();
    backtrack(
        idx,
        seq,
        seq.len(),
        0,
        idx.bwt().len(),
        0,
        budget,
        &mut ranges,
    );
    for (mm, lo, hi) in ranges {
        for r in lo..hi {
            if let Some(hit) = idx.resolve(idx.bwt().sa_at(r), seq.len()) {
                out.push(Alignment {
                    contig: hit.contig,
                    offset: hit.offset,
                    strand,
                    mismatches: mm,
                    read_len: seq.len(),
                });
            }
        }
    }
}

/// Align one read against the index per `cfg`. Results are sorted by
/// (mismatches, contig, offset, strand) and truncated to `max_hits`; with
/// `best_strata` only the fewest-mismatch stratum survives.
pub fn align_read(idx: &FmIndex, read: &[u8], cfg: AlignConfig) -> Vec<Alignment> {
    let mut out = Vec::new();
    align_one_strand(idx, read, Strand::Forward, cfg, &mut out);
    if cfg.both_strands {
        let rc = revcomp(read);
        align_one_strand(idx, &rc, Strand::Reverse, cfg, &mut out);
    }
    out.sort_by_key(|a| {
        (
            a.mismatches,
            a.contig,
            a.offset,
            matches!(a.strand, Strand::Reverse),
        )
    });
    if cfg.best_strata {
        if let Some(best) = out.first().map(|a| a.mismatches) {
            out.retain(|a| a.mismatches == best);
        }
    }
    out.truncate(cfg.max_hits.max(1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio::fasta::Record;

    fn index() -> FmIndex {
        FmIndex::build(&[
            Record::new("c0", b"ACGTACGTGGCCATTA".to_vec()),
            Record::new("c1", b"TTGACCAGTTGACCAG".to_vec()),
        ])
    }

    fn cfg(v: u8) -> AlignConfig {
        AlignConfig {
            max_mismatches: v,
            max_hits: 32,
            best_strata: true,
            both_strands: true,
        }
    }

    #[test]
    fn exact_forward_hit() {
        let idx = index();
        // Note: a palindromic read would hit both strands; this one is not.
        let hits = align_read(&idx, b"ACGTACGTGG", cfg(0));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].contig, 0);
        assert_eq!(hits[0].offset, 0);
        assert_eq!(hits[0].strand, Strand::Forward);
        assert_eq!(hits[0].mismatches, 0);
    }

    #[test]
    fn reverse_strand_hit() {
        let idx = index();
        // revcomp(TAATGGCC) = GGCCATTA, at c0 offset 8.
        let hits = align_read(&idx, b"TAATGGCC", cfg(0));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].strand, Strand::Reverse);
        assert_eq!(hits[0].contig, 0);
        assert_eq!(hits[0].offset, 8);
    }

    #[test]
    fn one_mismatch_found_with_budget() {
        let idx = index();
        //            v mismatch at position 3 (T->A)
        let read = b"ACGAACGTGG";
        assert!(align_read(&idx, read, cfg(0)).is_empty());
        let hits = align_read(&idx, read, cfg(1));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].mismatches, 1);
        assert_eq!(hits[0].offset, 0);
    }

    #[test]
    fn best_strata_hides_worse_hits() {
        let idx = FmIndex::build(&[Record::new("r", b"AAAATAAAACAAAA".to_vec())]);
        // Read AAAA: exact hits exist, so 1-mismatch hits are suppressed.
        let hits = align_read(&idx, b"AAAA", cfg(1));
        assert!(hits.iter().all(|h| h.mismatches == 0));
        let all = align_read(
            &idx,
            b"AAAA",
            AlignConfig {
                best_strata: false,
                ..cfg(1)
            },
        );
        assert!(all.iter().any(|h| h.mismatches == 1));
    }

    #[test]
    fn max_hits_truncates() {
        let idx = FmIndex::build(&[Record::new("r", b"ACAC".repeat(20))]);
        let hits = align_read(
            &idx,
            b"ACAC",
            AlignConfig {
                max_hits: 5,
                ..cfg(0)
            },
        );
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn unalignable_read() {
        let idx = index();
        assert!(align_read(&idx, b"CCCCCCCC", cfg(1)).is_empty());
    }

    #[test]
    fn empty_read_yields_nothing() {
        let idx = index();
        assert!(align_read(&idx, b"", cfg(2)).is_empty());
    }

    #[test]
    fn two_mismatches() {
        let idx = index();
        let read = b"AGGTACGTGGCCATAA"; // c0 with subs at pos 1 and 14
        assert!(align_read(&idx, read, cfg(1)).is_empty());
        let hits = align_read(&idx, read, cfg(2));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].mismatches, 2);
        assert_eq!(hits[0].contig, 0);
    }

    #[test]
    fn forward_only_mode() {
        let idx = index();
        let hits = align_read(
            &idx,
            b"TAATGGCC",
            AlignConfig {
                both_strands: false,
                ..cfg(0)
            },
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn multi_contig_hits_sorted() {
        let idx = FmIndex::build(&[
            Record::new("a", b"GATTACAGG".to_vec()),
            Record::new("b", b"CCGATTACA".to_vec()),
        ]);
        let hits = align_read(&idx, b"GATTACA", cfg(0));
        assert_eq!(hits.len(), 2);
        assert!(hits[0].contig < hits[1].contig);
    }
}

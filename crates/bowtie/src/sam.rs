//! Minimal SAM records for the alignment output.
//!
//! Each rank of the distributed Bowtie step "produces an alignment output
//! file in SAM format, and the files from all nodes are merged into a
//! single file at the end of the job" (§III-A). We emit the subset of SAM
//! the downstream scaffolding step consumes: QNAME, FLAG (strand bit),
//! RNAME, POS, MAPQ, CIGAR and the NM mismatch tag.

use std::io::{BufRead, Write};

use crate::align::{Alignment, Strand};

/// SAM flag bit: read is reverse-complemented.
pub const FLAG_REVERSE: u16 = 0x10;
/// SAM flag bit: read is unmapped.
pub const FLAG_UNMAPPED: u16 = 0x4;

/// One SAM alignment line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamRecord {
    /// Read name.
    pub qname: String,
    /// Bitwise flags.
    pub flag: u16,
    /// Reference (contig) name, `*` if unmapped.
    pub rname: String,
    /// 1-based leftmost position, 0 if unmapped.
    pub pos: u64,
    /// Mapping quality (255 = unavailable, like bowtie's default).
    pub mapq: u8,
    /// CIGAR string (`{len}M` for our ungapped alignments).
    pub cigar: String,
    /// Mismatch count (NM tag).
    pub nm: u32,
}

impl SamRecord {
    /// Build from an [`Alignment`] and the names involved.
    pub fn from_alignment(qname: &str, rname: &str, aln: &Alignment) -> Self {
        SamRecord {
            qname: qname.to_string(),
            flag: match aln.strand {
                Strand::Forward => 0,
                Strand::Reverse => FLAG_REVERSE,
            },
            rname: rname.to_string(),
            pos: aln.offset as u64 + 1,
            mapq: 255,
            cigar: format!("{}M", aln.read_len),
            nm: aln.mismatches as u32,
        }
    }

    /// An unmapped placeholder record.
    pub fn unmapped(qname: &str) -> Self {
        SamRecord {
            qname: qname.to_string(),
            flag: FLAG_UNMAPPED,
            rname: "*".to_string(),
            pos: 0,
            mapq: 0,
            cigar: "*".to_string(),
            nm: 0,
        }
    }

    /// True if the unmapped flag is set.
    pub fn is_unmapped(&self) -> bool {
        self.flag & FLAG_UNMAPPED != 0
    }

    /// True if the reverse-strand flag is set.
    pub fn is_reverse(&self) -> bool {
        self.flag & FLAG_REVERSE != 0
    }

    /// Serialize as one SAM line (SEQ/QUAL columns elided with `*`).
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t*\t0\t0\t*\t*\tNM:i:{}",
            self.qname, self.flag, self.rname, self.pos, self.mapq, self.cigar, self.nm
        )
    }

    /// Parse a line produced by [`SamRecord::to_line`] (also tolerates
    /// missing NM tag). Returns `None` on malformed input.
    pub fn parse_line(line: &str) -> Option<Self> {
        let mut f = line.trim_end().split('\t');
        let qname = f.next()?.to_string();
        let flag: u16 = f.next()?.parse().ok()?;
        let rname = f.next()?.to_string();
        let pos: u64 = f.next()?.parse().ok()?;
        let mapq: u8 = f.next()?.parse().ok()?;
        let cigar = f.next()?.to_string();
        let nm = f
            .clone()
            .find_map(|t| t.strip_prefix("NM:i:"))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        Some(SamRecord {
            qname,
            flag,
            rname,
            pos,
            mapq,
            cigar,
            nm,
        })
    }
}

/// Write records as SAM lines (no header; the pipeline's merge step simply
/// concatenates per-rank files, exactly like the paper's final `cat`).
pub fn write_sam<W: Write>(mut w: W, records: &[SamRecord]) -> std::io::Result<()> {
    for r in records {
        writeln!(w, "{}", r.to_line())?;
    }
    Ok(())
}

/// Read SAM lines, skipping `@` headers and malformed lines.
pub fn read_sam<R: BufRead>(r: R) -> Vec<SamRecord> {
    r.lines()
        .map_while(Result::ok)
        .filter(|l| !l.starts_with('@') && !l.trim().is_empty())
        .filter_map(|l| SamRecord::parse_line(&l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aln() -> Alignment {
        Alignment {
            contig: 0,
            offset: 9,
            strand: Strand::Reverse,
            mismatches: 2,
            read_len: 36,
        }
    }

    #[test]
    fn from_alignment_fields() {
        let r = SamRecord::from_alignment("read1", "contig7", &aln());
        assert_eq!(r.pos, 10); // 1-based
        assert!(r.is_reverse());
        assert!(!r.is_unmapped());
        assert_eq!(r.cigar, "36M");
        assert_eq!(r.nm, 2);
    }

    #[test]
    fn line_round_trip() {
        let r = SamRecord::from_alignment("r", "c", &aln());
        let parsed = SamRecord::parse_line(&r.to_line()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn unmapped_record() {
        let r = SamRecord::unmapped("r9");
        assert!(r.is_unmapped());
        let parsed = SamRecord::parse_line(&r.to_line()).unwrap();
        assert!(parsed.is_unmapped());
        assert_eq!(parsed.rname, "*");
    }

    #[test]
    fn read_sam_skips_headers_and_garbage() {
        let text = "@HD\tVN:1.0\nr\t0\tc\t1\t255\t4M\t*\t0\t0\t*\t*\tNM:i:0\nnot a sam line\n";
        let records = read_sam(text.as_bytes());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].qname, "r");
    }

    #[test]
    fn write_then_read() {
        let records = vec![
            SamRecord::from_alignment("a", "c0", &aln()),
            SamRecord::unmapped("b"),
        ];
        let mut buf = Vec::new();
        write_sam(&mut buf, &records).unwrap();
        let back = read_sam(&buf[..]);
        assert_eq!(back, records);
    }

    #[test]
    fn parse_tolerates_missing_nm() {
        let r = SamRecord::parse_line("q\t0\tc\t5\t255\t10M\t*\t0\t0\t*\t*").unwrap();
        assert_eq!(r.nm, 0);
        assert_eq!(r.pos, 5);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(SamRecord::parse_line("").is_none());
        assert!(SamRecord::parse_line("q\tx\tc\t5\t255\t10M").is_none());
        assert!(SamRecord::parse_line("q\t0\tc").is_none());
    }
}

//! The queryable FM-index over a multi-contig reference.
//!
//! Contigs are joined with a separator byte (0x01) and terminated with the
//! unique smallest byte (0x00); since reads contain only `ACGT`, backward
//! search can never match across a separator. Hit positions are mapped back
//! to `(contig, offset)` through the boundary table.

use seqio::fasta::Record;

use crate::bwt::Bwt;

/// An FM-index over a set of named contigs.
#[derive(Debug, Clone)]
pub struct FmIndex {
    bwt: Bwt,
    /// Contig names, in input order.
    names: Vec<String>,
    /// Start offset of each contig in the concatenated text.
    starts: Vec<usize>,
    /// Length of each contig.
    lengths: Vec<usize>,
}

/// A located exact occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// Index of the contig in the input set.
    pub contig: usize,
    /// 0-based offset within the contig.
    pub offset: usize,
}

impl FmIndex {
    /// Build an index over `contigs`. Sequences are uppercased; bytes
    /// outside `ACGT` are kept verbatim (they simply never match a read).
    pub fn build(contigs: &[Record]) -> Self {
        let total: usize = contigs.iter().map(|c| c.seq.len() + 1).sum();
        let mut text = Vec::with_capacity(total + 1);
        let mut names = Vec::with_capacity(contigs.len());
        let mut starts = Vec::with_capacity(contigs.len());
        let mut lengths = Vec::with_capacity(contigs.len());
        for rec in contigs {
            names.push(rec.id.clone());
            starts.push(text.len());
            lengths.push(rec.seq.len());
            text.extend(rec.seq.iter().map(|b| b.to_ascii_uppercase()));
            text.push(1); // separator
        }
        text.push(0); // unique terminator
        FmIndex {
            bwt: Bwt::build(&text),
            names,
            starts,
            lengths,
        }
    }

    /// Number of indexed contigs.
    pub fn contig_count(&self) -> usize {
        self.names.len()
    }

    /// Name of contig `i`.
    pub fn contig_name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Length of contig `i`.
    pub fn contig_len(&self, i: usize) -> usize {
        self.lengths[i]
    }

    /// Total reference bases (excluding separators).
    pub fn total_bases(&self) -> usize {
        self.lengths.iter().sum()
    }

    /// Borrow the underlying BWT (the mismatch aligner drives it directly).
    pub fn bwt(&self) -> &Bwt {
        &self.bwt
    }

    /// Count exact occurrences of `pattern`.
    pub fn count(&self, pattern: &[u8]) -> usize {
        self.bwt
            .search(pattern)
            .map(|(lo, hi)| hi - lo)
            .unwrap_or(0)
    }

    /// Locate every exact occurrence of `pattern` as `(contig, offset)`,
    /// sorted for determinism.
    pub fn locate(&self, pattern: &[u8]) -> Vec<Hit> {
        let Some((lo, hi)) = self.bwt.search(pattern) else {
            return Vec::new();
        };
        let mut hits: Vec<Hit> = (lo..hi)
            .filter_map(|r| self.resolve(self.bwt.sa_at(r), pattern.len()))
            .collect();
        hits.sort_by_key(|h| (h.contig, h.offset));
        hits
    }

    /// Map a text position to `(contig, offset)`; `None` if the match would
    /// overlap a separator (cannot happen for ACGT-only patterns, but the
    /// check keeps `resolve` total).
    pub(crate) fn resolve(&self, pos: usize, pattern_len: usize) -> Option<Hit> {
        // Binary search for the contig whose range contains `pos`.
        let idx = match self.starts.binary_search(&pos) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let offset = pos - self.starts[idx];
        (offset + pattern_len <= self.lengths[idx]).then_some(Hit {
            contig: idx,
            offset,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contigs() -> Vec<Record> {
        vec![
            Record::new("c0", b"ACGTACGT".to_vec()),
            Record::new("c1", b"TTTTACGT".to_vec()),
            Record::new("c2", b"GGGG".to_vec()),
        ]
    }

    #[test]
    fn metadata() {
        let idx = FmIndex::build(&contigs());
        assert_eq!(idx.contig_count(), 3);
        assert_eq!(idx.contig_name(1), "c1");
        assert_eq!(idx.contig_len(2), 4);
        assert_eq!(idx.total_bases(), 20);
    }

    #[test]
    fn locate_across_contigs() {
        let idx = FmIndex::build(&contigs());
        let hits = idx.locate(b"ACGT");
        assert_eq!(
            hits,
            vec![
                Hit {
                    contig: 0,
                    offset: 0
                },
                Hit {
                    contig: 0,
                    offset: 4
                },
                Hit {
                    contig: 1,
                    offset: 4
                },
            ]
        );
        assert_eq!(idx.count(b"ACGT"), 3);
    }

    #[test]
    fn no_match_across_separator() {
        let idx = FmIndex::build(&contigs());
        // "ACGTTTTT" would span c0's end into c1 — must not match.
        assert_eq!(idx.count(b"ACGTTTTT"), 0);
        assert!(idx.locate(b"GTTT").is_empty());
    }

    #[test]
    fn absent_pattern() {
        let idx = FmIndex::build(&contigs());
        assert_eq!(idx.count(b"AAAA"), 0);
        assert!(idx.locate(b"CCCC").is_empty());
    }

    #[test]
    fn lowercase_reference_is_uppercased() {
        let idx = FmIndex::build(&[Record::new("x", b"acgtacgt".to_vec())]);
        assert_eq!(idx.count(b"CGTA"), 1);
    }

    #[test]
    fn single_contig_full_match() {
        let idx = FmIndex::build(&[Record::new("x", b"GATTACA".to_vec())]);
        let hits = idx.locate(b"GATTACA");
        assert_eq!(
            hits,
            vec![Hit {
                contig: 0,
                offset: 0
            }]
        );
    }

    #[test]
    fn empty_contig_is_tolerated() {
        let idx = FmIndex::build(&[
            Record::new("e", Vec::new()),
            Record::new("x", b"ACGT".to_vec()),
        ]);
        let hits = idx.locate(b"ACGT");
        assert_eq!(
            hits,
            vec![Hit {
                contig: 1,
                offset: 0
            }]
        );
    }

    #[test]
    fn every_substring_is_found() {
        let seq = b"ACGTGCATGGCATTAC";
        let idx = FmIndex::build(&[Record::new("s", seq.to_vec())]);
        for start in 0..seq.len() {
            for end in start + 1..=seq.len() {
                let pat = &seq[start..end];
                let hits = idx.locate(pat);
                assert!(
                    hits.iter().any(|h| h.contig == 0 && h.offset == start),
                    "missing {start}..{end}"
                );
            }
        }
    }
}

//! Burrows–Wheeler transform and rank (Occ) structures.
//!
//! The BWT of the reference (terminated by a unique smallest byte 0) plus a
//! checkpointed Occ table supports the O(1)-per-step LF-mapping that
//! backward search is built on.

use crate::suffix::suffix_array;

/// Checkpoint spacing for the Occ table (bytes of BWT per checkpoint).
const OCC_SAMPLE: usize = 64;

/// The BWT with rank support over an arbitrary byte alphabet (at most 8
/// distinct symbols in practice: terminator, separator, A, C, G, T).
#[derive(Debug, Clone)]
pub struct Bwt {
    /// The transformed text.
    bwt: Vec<u8>,
    /// Dense code per byte value (255 = absent).
    code_of: [u8; 256],
    /// Number of distinct symbols.
    sigma: usize,
    /// `c_table[code]` = number of symbols strictly smaller (the "C" array).
    c_table: Vec<usize>,
    /// Occ checkpoints: at row r, counts of each code in `bwt[..r*OCC_SAMPLE]`.
    checkpoints: Vec<u32>,
    /// Suffix array (kept whole; locating is a direct lookup).
    sa: Vec<u32>,
}

impl Bwt {
    /// Build the BWT of `text`. `text` must end with a byte 0 terminator
    /// that appears nowhere else.
    pub fn build(text: &[u8]) -> Self {
        assert!(!text.is_empty(), "text must be non-empty");
        assert_eq!(
            *text.last().unwrap(),
            0,
            "text must end with the 0 terminator"
        );
        assert_eq!(
            text.iter().filter(|&&b| b == 0).count(),
            1,
            "terminator must be unique"
        );
        let sa = suffix_array(text);
        let n = text.len();
        let mut bwt = Vec::with_capacity(n);
        for &p in &sa {
            let p = p as usize;
            bwt.push(if p == 0 { text[n - 1] } else { text[p - 1] });
        }

        // Dense alphabet codes in byte order.
        let mut present = [false; 256];
        for &b in text {
            present[b as usize] = true;
        }
        let mut code_of = [255u8; 256];
        let mut sigma = 0usize;
        for b in 0..256 {
            if present[b] {
                code_of[b] = sigma as u8;
                sigma += 1;
            }
        }

        // C array: prefix sums of symbol frequencies in sorted order.
        let mut freq = vec![0usize; sigma];
        for &b in text {
            freq[code_of[b as usize] as usize] += 1;
        }
        let mut c_table = vec![0usize; sigma + 1];
        for s in 0..sigma {
            c_table[s + 1] = c_table[s] + freq[s];
        }

        // Occ checkpoints.
        let rows = n / OCC_SAMPLE + 1;
        let mut checkpoints = vec![0u32; rows * sigma];
        let mut running = vec![0u32; sigma];
        for (i, &b) in bwt.iter().enumerate() {
            if i % OCC_SAMPLE == 0 {
                let row = i / OCC_SAMPLE;
                checkpoints[row * sigma..(row + 1) * sigma].copy_from_slice(&running);
            }
            running[code_of[b as usize] as usize] += 1;
        }
        if n % OCC_SAMPLE == 0 {
            let row = n / OCC_SAMPLE;
            if row < rows {
                checkpoints[row * sigma..(row + 1) * sigma].copy_from_slice(&running);
            }
        }

        Bwt {
            bwt,
            code_of,
            sigma,
            c_table,
            checkpoints,
            sa,
        }
    }

    /// Length of the text (including terminator).
    pub fn len(&self) -> usize {
        self.bwt.len()
    }

    /// True if empty (never: build rejects empty text).
    pub fn is_empty(&self) -> bool {
        self.bwt.is_empty()
    }

    /// Dense code of a byte, if the byte occurs in the text.
    pub fn code(&self, b: u8) -> Option<u8> {
        let c = self.code_of[b as usize];
        (c != 255).then_some(c)
    }

    /// `C[code]`: count of symbols smaller than `code` in the text.
    pub fn c_of(&self, code: u8) -> usize {
        self.c_table[code as usize]
    }

    /// `Occ(code, i)`: occurrences of `code` in `bwt[..i]`.
    pub fn occ(&self, code: u8, i: usize) -> usize {
        debug_assert!(i <= self.bwt.len());
        let row = i / OCC_SAMPLE;
        let mut count = self.checkpoints[row * self.sigma + code as usize] as usize;
        for &b in &self.bwt[row * OCC_SAMPLE..i] {
            if self.code_of[b as usize] == code {
                count += 1;
            }
        }
        count
    }

    /// Text position of the suffix at BWT row `r`.
    pub fn sa_at(&self, r: usize) -> usize {
        self.sa[r] as usize
    }

    /// One backward-search step: refine `[lo, hi)` by prepending `byte`.
    /// Returns `None` when the byte is absent or the range empties.
    pub fn backward_step(&self, lo: usize, hi: usize, byte: u8) -> Option<(usize, usize)> {
        let code = self.code(byte)?;
        let c = self.c_of(code);
        let new_lo = c + self.occ(code, lo);
        let new_hi = c + self.occ(code, hi);
        (new_lo < new_hi).then_some((new_lo, new_hi))
    }

    /// Full backward search for `pattern`; returns the SA range of exact
    /// occurrences.
    pub fn search(&self, pattern: &[u8]) -> Option<(usize, usize)> {
        let mut range = (0usize, self.len());
        for &b in pattern.iter().rev() {
            range = self.backward_step(range.0, range.1, b)?;
        }
        Some(range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text() -> Vec<u8> {
        b"ACGTACGTGGTACA\x00".to_vec()
    }

    #[test]
    fn bwt_of_known_text() {
        // Verify against the definition: bwt[i] = text[sa[i]-1].
        let t = text();
        let b = Bwt::build(&t);
        assert_eq!(b.len(), t.len());
        for r in 0..b.len() {
            let p = b.sa_at(r);
            let expect = if p == 0 { t[t.len() - 1] } else { t[p - 1] };
            assert_eq!(b.occ_probe(r), expect);
        }
    }

    impl Bwt {
        /// Test helper: the BWT byte at row r.
        fn occ_probe(&self, r: usize) -> u8 {
            self.bwt[r]
        }
    }

    #[test]
    fn occ_counts_match_naive() {
        let t = text();
        let b = Bwt::build(&t);
        for byte in [0u8, b'A', b'C', b'G', b'T'] {
            let code = b.code(byte).unwrap();
            let mut naive = 0usize;
            for i in 0..=b.len() {
                assert_eq!(b.occ(code, i), naive, "byte {byte} i {i}");
                if i < b.len() {
                    if b.occ_probe(i) == byte {
                        naive += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn search_finds_all_occurrences() {
        let t = text();
        let b = Bwt::build(&t);
        let (lo, hi) = b.search(b"ACGT").unwrap();
        let mut pos: Vec<usize> = (lo..hi).map(|r| b.sa_at(r)).collect();
        pos.sort_unstable();
        assert_eq!(pos, vec![0, 4]);
    }

    #[test]
    fn search_single_occurrence() {
        let b = Bwt::build(&text());
        let (lo, hi) = b.search(b"GGTA").unwrap();
        assert_eq!(hi - lo, 1);
        assert_eq!(b.sa_at(lo), 8);
    }

    #[test]
    fn search_absent_pattern() {
        let b = Bwt::build(&text());
        assert!(b.search(b"AAAA").is_none());
        assert!(b.search(b"ACGN").is_none());
    }

    #[test]
    fn search_empty_pattern_is_full_range() {
        let b = Bwt::build(&text());
        assert_eq!(b.search(b""), Some((0, b.len())));
    }

    #[test]
    fn build_rejects_bad_terminator() {
        let r = std::panic::catch_unwind(|| Bwt::build(b"ACGT"));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| Bwt::build(b"AC\x00GT\x00"));
        assert!(r.is_err());
    }

    #[test]
    fn long_text_checkpoint_boundaries() {
        // Text spanning several checkpoint rows exercises both Occ paths.
        let mut t: Vec<u8> = b"ACGT".repeat(50);
        t.push(0);
        let b = Bwt::build(&t);
        let (lo, hi) = b.search(b"GTACGT").unwrap();
        assert_eq!(hi - lo, 49);
        for r in lo..hi {
            let p = b.sa_at(r);
            assert_eq!(&t[p..p + 6], b"GTACGT");
        }
    }
}

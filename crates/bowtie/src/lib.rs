//! Bowtie substrate: an FM-index short-read aligner.
//!
//! Trinity's Chrysalis step begins by aligning every input read against the
//! Inchworm contigs with Bowtie (an ungapped FM-index aligner). The paper
//! parallelizes this by splitting the *target* FASTA across ranks; each
//! rank builds an index over its slice and aligns all reads against it.
//!
//! This crate is the aligner itself, same algorithmic family as Bowtie 1:
//!
//! * [`suffix`] — suffix-array construction (prefix doubling);
//! * [`bwt`] — Burrows–Wheeler transform and the C/Occ tables;
//! * [`fmindex`] — the queryable index over a multi-contig reference with
//!   exact backward search and position location;
//! * [`align`] — `-v`-style alignment: up to `v` mismatches, both strands,
//!   backtracking over the index;
//! * [`sam`] — minimal SAM records for the alignment output files the
//!   pipeline merges.

pub mod align;
pub mod bwt;
pub mod fmindex;
pub mod sam;
pub mod suffix;

pub use align::{align_read, AlignConfig, Alignment, Strand};
pub use fmindex::FmIndex;
pub use sam::SamRecord;

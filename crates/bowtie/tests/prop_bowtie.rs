//! Property-based tests for the aligner substrate: FM-index results always
//! agree with naive string search, on any DNA reference and pattern.

use bowtie::align::{align_read, AlignConfig, Strand};
use bowtie::fmindex::FmIndex;
use bowtie::suffix::{suffix_array, suffix_array_naive};
use proptest::prelude::*;
use seqio::alphabet::revcomp;
use seqio::fasta::Record;

fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')],
        len,
    )
}

/// Count naive occurrences of `pat` in `text`.
fn naive_count(text: &[u8], pat: &[u8]) -> usize {
    if pat.is_empty() || pat.len() > text.len() {
        return 0;
    }
    text.windows(pat.len()).filter(|w| w == &pat).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn suffix_array_matches_naive(mut text in dna(1..300)) {
        text.push(0);
        prop_assert_eq!(suffix_array(&text), suffix_array_naive(&text));
    }

    #[test]
    fn fmindex_count_matches_naive(seqs in proptest::collection::vec(dna(5..80), 1..5),
                                   pat in dna(1..12)) {
        let contigs: Vec<Record> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| Record::new(format!("c{i}"), s.clone()))
            .collect();
        let idx = FmIndex::build(&contigs);
        let expect: usize = seqs.iter().map(|s| naive_count(s, &pat)).sum();
        prop_assert_eq!(idx.count(&pat), expect);
        // locate agrees with count and every hit verifies.
        let hits = idx.locate(&pat);
        prop_assert_eq!(hits.len(), expect);
        for h in hits {
            prop_assert_eq!(&seqs[h.contig][h.offset..h.offset + pat.len()], pat.as_slice());
        }
    }

    #[test]
    fn exact_alignment_finds_planted_read(seq in dna(40..120), start in 0usize..20, len in 12usize..24) {
        prop_assume!(start + len <= seq.len());
        let read = seq[start..start + len].to_vec();
        let idx = FmIndex::build(&[Record::new("c", seq.clone())]);
        let hits = align_read(&idx, &read, AlignConfig {
            max_mismatches: 0,
            max_hits: 64,
            best_strata: true,
            both_strands: true,
        });
        prop_assert!(
            hits.iter().any(|h| h.offset == start && h.strand == Strand::Forward),
            "planted read must be found"
        );
    }

    #[test]
    fn revcomp_read_found_on_reverse_strand(seq in dna(40..120)) {
        let read = revcomp(&seq[5..30]);
        let idx = FmIndex::build(&[Record::new("c", seq.clone())]);
        let hits = align_read(&idx, &read, AlignConfig::default());
        prop_assert!(hits.iter().any(|h| h.strand == Strand::Reverse && h.offset == 5));
    }

    #[test]
    fn mismatch_budget_is_respected(seq in dna(60..120), pos in 10usize..30) {
        let mut read = seq[5..45].to_vec();
        let i = pos - 5;
        read[i] = match read[i] {
            b'A' => b'C',
            b'C' => b'G',
            b'G' => b'T',
            _ => b'A',
        };
        let idx = FmIndex::build(&[Record::new("c", seq.clone())]);
        // Budget 1 finds it at offset 5 with exactly 1 mismatch...
        let hits = align_read(&idx, &read, AlignConfig {
            max_mismatches: 1,
            max_hits: 64,
            best_strata: false,
            both_strands: false,
        });
        prop_assert!(hits.iter().any(|h| h.offset == 5 && h.mismatches <= 1));
        // ...and every reported alignment verifies its mismatch count.
        for h in &hits {
            if h.strand == Strand::Forward {
                let region = &seq[h.offset..h.offset + read.len()];
                let mm = region.iter().zip(&read).filter(|(a, b)| a != b).count();
                prop_assert_eq!(mm, h.mismatches as usize);
            }
        }
    }
}

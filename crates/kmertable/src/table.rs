//! The single-threaded open-addressing table: packed `u64` k-mer → `u32`.

use crate::mix64;

/// Slot sentinel for "empty". A real packed k-mer only equals `u64::MAX`
/// for the all-T 32-mer, which is stored out-of-line (`max_key`), so every
/// in-array key is unambiguous.
const EMPTY: u64 = u64::MAX;

/// Minimum allocated capacity once the table holds anything.
const MIN_CAPACITY: usize = 16;

/// Open-addressing, linear-probing hash table from packed k-mers to `u32`
/// values (counts, component ids, node ids, occurrence-pool indices).
///
/// Insert-or-update only — no tombstones. [`retain`](Self::retain) rebuilds
/// the backing array, which is fine off the hot path (abundance filtering
/// runs once per pipeline stage).
#[derive(Debug, Clone, Default)]
pub struct PackedKmerTable {
    keys: Vec<u64>,
    vals: Vec<u32>,
    /// Occupied in-array slots (excludes the out-of-line `max_key`).
    occupied: usize,
    mask: usize,
    /// Value for the key `u64::MAX` (the all-T 32-mer), stored out-of-line
    /// because `u64::MAX` is the in-array empty sentinel.
    max_key: Option<u32>,
}

impl PackedKmerTable {
    /// An empty table; allocates nothing until the first insert.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty table pre-sized for `n` distinct keys without rehashing.
    pub fn with_capacity(n: usize) -> Self {
        let mut t = Self::new();
        if n > 0 {
            t.allocate(Self::capacity_for(n));
        }
        t
    }

    /// Smallest power-of-two capacity holding `n` keys under 1/2 load.
    fn capacity_for(n: usize) -> usize {
        (n * 2 + 1).next_power_of_two().max(MIN_CAPACITY)
    }

    fn allocate(&mut self, capacity: usize) {
        debug_assert!(capacity.is_power_of_two());
        self.keys = vec![EMPTY; capacity];
        self.vals = vec![0; capacity];
        self.mask = capacity - 1;
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.occupied + usize::from(self.max_key.is_some())
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocated slot count.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Slot index of `key`, or of the empty slot where it would go.
    /// Requires a non-full table (guaranteed by the 1/2 load cap).
    #[inline(always)]
    fn probe(&self, key: u64) -> usize {
        let mut i = (mix64(key) as usize) & self.mask;
        loop {
            let k = unsafe { *self.keys.get_unchecked(i) };
            if k == key || k == EMPTY {
                return i;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Grow if inserting one more key would exceed 1/2 load. The low cap
    /// trades slot memory (12 bytes each) for short probe chains on the
    /// pipeline's probe-dominated phases.
    #[inline]
    fn ensure_room(&mut self) {
        if self.keys.is_empty() {
            self.allocate(MIN_CAPACITY);
        } else if (self.occupied + 1) * 2 > self.keys.len() {
            self.grow(self.keys.len() * 2);
        }
    }

    fn grow(&mut self, capacity: usize) {
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; capacity]);
        let old_vals = std::mem::take(&mut self.vals);
        self.vals = vec![0; capacity];
        self.mask = capacity - 1;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                let i = self.probe(k);
                self.keys[i] = k;
                self.vals[i] = v;
            }
        }
    }

    /// Value of `key`, if present.
    #[inline(always)]
    pub fn get(&self, key: u64) -> Option<u32> {
        if key == EMPTY {
            return self.max_key;
        }
        if self.keys.is_empty() {
            return None;
        }
        let i = self.probe(key);
        if self.keys[i] == key {
            Some(self.vals[i])
        } else {
            None
        }
    }

    /// Insert `key → val`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, val: u32) -> Option<u32> {
        if key == EMPTY {
            return self.max_key.replace(val);
        }
        self.ensure_room();
        let i = self.probe(key);
        if self.keys[i] == key {
            Some(std::mem::replace(&mut self.vals[i], val))
        } else {
            self.keys[i] = key;
            self.vals[i] = val;
            self.occupied += 1;
            None
        }
    }

    /// Add `delta` to the count of `key` (insert at `delta` if absent).
    /// Saturates at `u32::MAX` — the Jellyfish counter semantics.
    #[inline]
    pub fn add(&mut self, key: u64, delta: u32) {
        if key == EMPTY {
            let cur = self.max_key.unwrap_or(0);
            self.max_key = Some(cur.saturating_add(delta));
            return;
        }
        self.ensure_room();
        let i = self.probe(key);
        if self.keys[i] == key {
            self.vals[i] = self.vals[i].saturating_add(delta);
        } else {
            self.keys[i] = key;
            self.vals[i] = delta;
            self.occupied += 1;
        }
    }

    /// Value of `key`, inserting `val` first if absent. Returns the value
    /// now stored — the "first claim wins" primitive.
    #[inline]
    pub fn get_or_insert(&mut self, key: u64, val: u32) -> u32 {
        if key == EMPTY {
            return *self.max_key.get_or_insert(val);
        }
        self.ensure_room();
        let i = self.probe(key);
        if self.keys[i] == key {
            self.vals[i]
        } else {
            self.keys[i] = key;
            self.vals[i] = val;
            self.occupied += 1;
            val
        }
    }

    /// Keep the minimum of the stored value and `val` (insert if absent) —
    /// the cross-batch merge rule for first-claim component ids.
    pub fn update_min(&mut self, key: u64, val: u32) {
        if key == EMPTY {
            let cur = self.max_key.unwrap_or(u32::MAX);
            self.max_key = Some(cur.min(val));
            return;
        }
        self.ensure_room();
        let i = self.probe(key);
        if self.keys[i] == key {
            if val < self.vals[i] {
                self.vals[i] = val;
            }
        } else {
            self.keys[i] = key;
            self.vals[i] = val;
            self.occupied += 1;
        }
    }

    /// Add every entry of `other` into this table (count semantics).
    pub fn absorb(&mut self, other: &PackedKmerTable) {
        self.reserve(other.len());
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Pre-size for `additional` more distinct keys.
    pub fn reserve(&mut self, additional: usize) {
        let want = Self::capacity_for(self.occupied + additional);
        if want > self.keys.len() {
            if self.keys.is_empty() {
                self.allocate(want);
            } else {
                self.grow(want);
            }
        }
    }

    /// Iterate `(packed key, value)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.keys
            .iter()
            .zip(&self.vals)
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &v)| (k, v))
            .chain(self.max_key.map(|v| (EMPTY, v)))
    }

    /// Fraction of allocated slots occupied, in `[0, 0.5]` by the load cap
    /// (0 for an unallocated table).
    pub fn load_factor(&self) -> f64 {
        if self.keys.is_empty() {
            0.0
        } else {
            self.occupied as f64 / self.keys.len() as f64
        }
    }

    /// Probe length (displacement from the home slot) of every stored
    /// in-array key, by walking the table once. Probing itself stays
    /// uninstrumented — this reconstructs the exact chain lengths offline,
    /// at zero hot-path cost.
    pub fn probe_lengths(&self) -> impl Iterator<Item = u64> + '_ {
        self.keys.iter().enumerate().filter_map(move |(i, &k)| {
            if k == EMPTY {
                None
            } else {
                let home = (mix64(k) as usize) & self.mask;
                Some((i.wrapping_sub(home) & self.mask) as u64)
            }
        })
    }

    /// Record table health into `registry`: `{prefix}.entries`,
    /// `{prefix}.capacity` and `{prefix}.load_factor` as gauges (snapshot
    /// values — recording twice, e.g. per-batch health checks, must not
    /// accumulate) and `{prefix}.probe_len` as a histogram of per-key
    /// displacements.
    pub fn record_metrics(&self, registry: &obs::MetricsRegistry, prefix: &str) {
        registry
            .gauge(format!("{prefix}.entries"))
            .set(self.len() as f64);
        registry
            .gauge(format!("{prefix}.capacity"))
            .set(self.capacity() as f64);
        registry
            .gauge(format!("{prefix}.load_factor"))
            .set(self.load_factor());
        let h = registry.histogram(format!("{prefix}.probe_len"));
        for d in self.probe_lengths() {
            h.record(d);
        }
    }

    /// Keep only entries where `pred(key, value)` holds. Rebuilds the
    /// backing array (no tombstones); off-hot-path by design.
    pub fn retain(&mut self, mut pred: impl FnMut(u64, u32) -> bool) {
        if let Some(v) = self.max_key {
            if !pred(EMPTY, v) {
                self.max_key = None;
            }
        }
        let old_keys = std::mem::take(&mut self.keys);
        let old_vals = std::mem::take(&mut self.vals);
        let survivors: Vec<(u64, u32)> = old_keys
            .into_iter()
            .zip(old_vals)
            .filter(|&(k, v)| k != EMPTY && pred(k, v))
            .collect();
        self.occupied = 0;
        self.mask = 0;
        if !survivors.is_empty() {
            self.allocate(Self::capacity_for(survivors.len()));
            for (k, v) in survivors {
                let i = self.probe(k);
                self.keys[i] = k;
                self.vals[i] = v;
                self.occupied += 1;
            }
        }
    }
}

impl FromIterator<(u64, u32)> for PackedKmerTable {
    /// Collect with *insert* (last value wins), not count accumulation.
    fn from_iter<I: IntoIterator<Item = (u64, u32)>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut t = Self::with_capacity(iter.size_hint().0);
        for (k, v) in iter {
            t.insert(k, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_replace() {
        let mut t = PackedKmerTable::new();
        assert_eq!(t.get(7), None);
        assert_eq!(t.insert(7, 1), None);
        assert_eq!(t.insert(7, 2), Some(1));
        assert_eq!(t.get(7), Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn add_accumulates_and_saturates() {
        let mut t = PackedKmerTable::new();
        t.add(9, 3);
        t.add(9, 4);
        assert_eq!(t.get(9), Some(7));
        t.add(9, u32::MAX);
        assert_eq!(t.get(9), Some(u32::MAX));
    }

    #[test]
    fn sentinel_key_is_a_real_key() {
        // u64::MAX packs the all-T 32-mer; it must behave like any key.
        let mut t = PackedKmerTable::new();
        t.add(u64::MAX, 2);
        t.add(u64::MAX, 1);
        assert_eq!(t.get(u64::MAX), Some(3));
        assert_eq!(t.len(), 1);
        assert!(t.iter().any(|(k, v)| k == u64::MAX && v == 3));
        t.retain(|_, v| v > 5);
        assert_eq!(t.get(u64::MAX), None);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t = PackedKmerTable::new();
        for k in 0..10_000u64 {
            t.add(k.wrapping_mul(0x2545_F491_4F6C_DD1D), 1);
        }
        assert_eq!(t.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(t.get(k.wrapping_mul(0x2545_F491_4F6C_DD1D)), Some(1));
        }
    }

    #[test]
    fn get_or_insert_first_claim() {
        let mut t = PackedKmerTable::new();
        assert_eq!(t.get_or_insert(5, 10), 10);
        assert_eq!(t.get_or_insert(5, 99), 10);
        assert_eq!(t.get(5), Some(10));
    }

    #[test]
    fn update_min_keeps_smallest() {
        let mut t = PackedKmerTable::new();
        t.update_min(4, 8);
        t.update_min(4, 3);
        t.update_min(4, 7);
        assert_eq!(t.get(4), Some(3));
    }

    #[test]
    fn retain_rebuilds() {
        let mut t = PackedKmerTable::new();
        for k in 0..100 {
            t.insert(k, k as u32);
        }
        t.retain(|_, v| v % 2 == 0);
        assert_eq!(t.len(), 50);
        assert_eq!(t.get(3), None);
        assert_eq!(t.get(4), Some(4));
        // Still usable after rebuild.
        t.add(3, 1);
        assert_eq!(t.get(3), Some(1));
    }

    #[test]
    fn absorb_merges_counts() {
        let mut a = PackedKmerTable::new();
        a.add(1, 1);
        a.add(2, 2);
        let mut b = PackedKmerTable::new();
        b.add(2, 5);
        b.add(3, 1);
        a.absorb(&b);
        assert_eq!(a.get(1), Some(1));
        assert_eq!(a.get(2), Some(7));
        assert_eq!(a.get(3), Some(1));
    }

    #[test]
    fn iter_covers_all_entries() {
        let mut t = PackedKmerTable::with_capacity(4);
        for k in 0..40 {
            t.insert(k * 3, k as u32);
        }
        let mut got: Vec<_> = t.iter().collect();
        got.sort_unstable();
        let want: Vec<_> = (0..40).map(|k| (k * 3, k as u32)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn from_iter_last_wins() {
        let t: PackedKmerTable = [(1u64, 1u32), (2, 2), (1, 9)].into_iter().collect();
        assert_eq!(t.get(1), Some(9));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn probe_stats_reflect_occupancy() {
        let mut t = PackedKmerTable::new();
        assert_eq!(t.load_factor(), 0.0);
        for k in 0..1000u64 {
            t.insert(k, 0);
        }
        assert!(t.load_factor() > 0.0 && t.load_factor() <= 0.5);
        let lens: Vec<u64> = t.probe_lengths().collect();
        assert_eq!(lens.len(), 1000);
        // Linear probing at <=1/2 load keeps chains short on average.
        let mean = lens.iter().sum::<u64>() as f64 / lens.len() as f64;
        assert!(mean < 2.0, "mean displacement {mean}");
        // Every stored key must be reachable within its recorded length.
        let reg = obs::MetricsRegistry::new();
        t.record_metrics(&reg, "tbl");
        // Snapshot values must not accumulate across repeated recordings.
        t.record_metrics(&reg, "tbl");
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("tbl.entries"), Some(1000.0));
        assert_eq!(snap.gauge("tbl.capacity"), Some(t.capacity() as f64));
        assert_eq!(snap.gauge("tbl.load_factor"), Some(t.load_factor()));
        // The probe-length histogram intentionally accumulates samples.
        assert_eq!(snap.histogram("tbl.probe_len").unwrap().count, 2000);
    }

    #[test]
    fn empty_table_queries() {
        let t = PackedKmerTable::new();
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(u64::MAX), None);
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
    }
}

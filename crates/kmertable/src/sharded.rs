//! The concurrent counting table: per-shard locks over [`PackedKmerTable`]s.

use parking_lot::Mutex;

use crate::mix64;
use crate::table::PackedKmerTable;

/// A sharded concurrent k-mer table for the parallel counting pass.
///
/// Keys are spread over `S` shards by the *high* bits of the same
/// multiplicative hash whose *low* bits pick the slot inside a shard, so
/// shard choice and probe position never correlate. Each shard is a plain
/// [`PackedKmerTable`] behind a mutex; worker threads stage counts in a
/// thread-local table and flush with [`absorb`](Self::absorb), which sorts
/// the staged entries by shard and takes each lock exactly once.
///
/// # Examples
///
/// ```
/// use kmertable::ShardedKmerTable;
///
/// let table = ShardedKmerTable::new(8);
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|| {
///             for kmer in 0..100u64 {
///                 table.add(kmer, 1); // concurrent counting
///             }
///         });
///     }
/// });
/// assert_eq!(table.get(42), Some(4));
/// assert_eq!(table.into_merged().len(), 100);
/// ```
#[derive(Debug)]
pub struct ShardedKmerTable {
    shards: Vec<Mutex<PackedKmerTable>>,
    shard_bits: u32,
}

impl ShardedKmerTable {
    /// A table with `shards` shards (rounded up to a power of two, min 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedKmerTable {
            shards: (0..n).map(|_| Mutex::new(PackedKmerTable::new())).collect(),
            shard_bits: n.trailing_zeros(),
        }
    }

    /// Number of shards (a power of two).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard index of a key: the top `shard_bits` of the mixed hash.
    #[inline(always)]
    pub fn shard_of(&self, key: u64) -> usize {
        if self.shard_bits == 0 {
            0
        } else {
            (mix64(key) >> (64 - self.shard_bits)) as usize
        }
    }

    /// Add `delta` to `key`'s count (locks one shard).
    pub fn add(&self, key: u64, delta: u32) {
        self.shards[self.shard_of(key)].lock().add(key, delta);
    }

    /// Current count of `key` (locks one shard).
    pub fn get(&self, key: u64) -> Option<u32> {
        self.shards[self.shard_of(key)].lock().get(key)
    }

    /// Flush a thread-local staging table into the shared shards, grouping
    /// entries per shard so each lock is taken once per flush.
    pub fn absorb(&self, local: &PackedKmerTable) {
        if local.is_empty() {
            return;
        }
        let mut grouped: Vec<Vec<(u64, u32)>> = vec![Vec::new(); self.shards.len()];
        for (k, v) in local.iter() {
            grouped[self.shard_of(k)].push((k, v));
        }
        for (si, entries) in grouped.into_iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            let mut shard = self.shards[si].lock();
            shard.reserve(entries.len());
            for (k, v) in entries {
                shard.add(k, v);
            }
        }
    }

    /// Total distinct keys across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record the table's aggregate health into `registry` under `prefix`:
    /// `{prefix}.entries`/`{prefix}.capacity` gauges sum over shards,
    /// `{prefix}.load_factor` is the whole-table ratio, and
    /// `{prefix}.probe_len` collects every shard's per-key displacements
    /// into one histogram. Snapshot gauges overwrite on re-recording; only
    /// the histogram accumulates.
    pub fn record_metrics(&self, registry: &obs::MetricsRegistry, prefix: &str) {
        let mut entries = 0u64;
        let mut capacity = 0u64;
        let hist = registry.histogram(format!("{prefix}.probe_len"));
        for shard in &self.shards {
            let shard = shard.lock();
            entries += shard.len() as u64;
            capacity += shard.capacity() as u64;
            for d in shard.probe_lengths() {
                hist.record(d);
            }
        }
        registry
            .gauge(format!("{prefix}.entries"))
            .set(entries as f64);
        registry
            .gauge(format!("{prefix}.capacity"))
            .set(capacity as f64);
        registry
            .gauge(format!("{prefix}.load_factor"))
            .set(if capacity == 0 {
                0.0
            } else {
                entries as f64 / capacity as f64
            });
    }

    /// Merge all shards into one owned table. Shards are disjoint by
    /// construction, so this is a move of each entry, not a re-count.
    pub fn into_merged(self) -> PackedKmerTable {
        let mut shards = self.shards.into_iter().map(Mutex::into_inner);
        let Some(mut merged) = shards.next() else {
            return PackedKmerTable::new();
        };
        for shard in shards {
            if merged.len() < shard.len() {
                let big = shard;
                let small = std::mem::replace(&mut merged, big);
                merged.reserve(small.len());
                for (k, v) in small.iter() {
                    merged.insert(k, v);
                }
            } else {
                merged.reserve(shard.len());
                for (k, v) in shard.iter() {
                    merged.insert(k, v);
                }
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedKmerTable::new(0).shards(), 1);
        assert_eq!(ShardedKmerTable::new(5).shards(), 8);
        assert_eq!(ShardedKmerTable::new(64).shards(), 64);
    }

    #[test]
    fn add_and_get_across_shards() {
        let t = ShardedKmerTable::new(8);
        for k in 0..1000u64 {
            t.add(k, 1);
            t.add(k, 1);
        }
        assert_eq!(t.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(t.get(k), Some(2));
        }
    }

    #[test]
    fn absorb_groups_by_shard() {
        let t = ShardedKmerTable::new(4);
        let mut local = PackedKmerTable::new();
        for k in 0..500u64 {
            local.add(k, 3);
        }
        t.absorb(&local);
        t.absorb(&local);
        let merged = t.into_merged();
        assert_eq!(merged.len(), 500);
        for k in 0..500u64 {
            assert_eq!(merged.get(k), Some(6));
        }
    }

    #[test]
    fn concurrent_counting_matches_serial() {
        let t = ShardedKmerTable::new(8);
        std::thread::scope(|s| {
            for _tid in 0..4 {
                let t = &t;
                s.spawn(move || {
                    // All threads hit the same keys to contend on shards.
                    for k in 0..2000u64 {
                        t.add(k, 1);
                    }
                });
            }
        });
        for k in 0..2000u64 {
            assert_eq!(t.get(k), Some(4), "key {k}");
        }
    }

    #[test]
    fn merge_of_empty_is_empty() {
        assert!(ShardedKmerTable::new(4).into_merged().is_empty());
    }

    #[test]
    fn sharded_metrics_aggregate() {
        let t = ShardedKmerTable::new(4);
        for k in 0..800u64 {
            t.add(k, 1);
        }
        let reg = obs::MetricsRegistry::new();
        t.record_metrics(&reg, "jf");
        // Re-recording must overwrite the snapshot gauges, not add to them.
        t.record_metrics(&reg, "jf");
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("jf.entries"), Some(800.0));
        let lf = snap.gauge("jf.load_factor").unwrap();
        assert!(lf > 0.0 && lf <= 0.5, "whole-table load factor {lf}");
        assert_eq!(snap.histogram("jf.probe_len").unwrap().count, 1600);
    }
}

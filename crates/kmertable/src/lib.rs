//! Hash tables specialized for 2-bit packed k-mers.
//!
//! Every k-mer-keyed structure on the Chrysalis hot paths — the Jellyfish
//! counter shards, the GraphFromFasta weld-seed index, the
//! ReadsToTranscripts k-mer→component table, the Inchworm dictionary and the
//! per-component de Bruijn node index — is a map from a packed `u64` k-mer
//! to a small integer. `std::collections::HashMap` serves those loops
//! through SipHash (a keyed cryptographic hash) and a buckets-of-groups
//! layout; Jellyfish's core trick, and the lesson of the extreme-scale
//! assemblers (Georganas et al. 2014, Guidi et al. 2021), is that a table
//! *specialized* for fixed-width integer keys wins big:
//!
//! * **multiplicative hashing** — two multiplies and two shifts mix all 64
//!   key bits; no per-byte loop, no secret key;
//! * **open addressing, linear probing** — one flat array of `(u64, u32)`
//!   slots, no per-entry allocation, cache-line-friendly probes;
//! * **power-of-two capacity** — the probe start is a mask, not a modulo;
//! * **tombstone-free updates** — the pipeline only ever inserts or updates
//!   in its hot loops; deletion (`retain`) rebuilds, which the abundance
//!   filter does once, off the hot path.
//!
//! [`PackedKmerTable`] is the single-threaded table; [`ShardedKmerTable`]
//! wraps `S` of them behind per-shard locks for the parallel counting pass
//! (shard chosen by the *high* hash bits, slot by the *low* bits, so the
//! two decisions never correlate); [`PackedWeldSet`] is the same layout
//! over `u128` keys for ≤63-base weld windows.

#![warn(missing_docs)]

pub mod set;
pub mod sharded;
pub mod table;

pub use set::PackedWeldSet;
pub use sharded::ShardedKmerTable;
pub use table::PackedKmerTable;

/// Mix all bits of a packed k-mer into a table hash.
///
/// SplitMix64-style finalizer: two odd-constant multiplies with xor-shifts
/// in between. Low bits select the slot, high bits select the shard, so
/// both need full avalanche — a single Fibonacci multiply only randomizes
/// the high bits.
#[inline(always)]
pub fn mix64(key: u64) -> u64 {
    let mut h = key;
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::mix64;

    #[test]
    fn mix64_avalanches_low_bits() {
        // Consecutive packed k-mers (the common scan pattern) must land far
        // apart in both the low (slot) and high (shard) bits.
        let mut low_seen = std::collections::HashSet::new();
        let mut high_seen = std::collections::HashSet::new();
        for k in 0u64..256 {
            let h = mix64(k);
            low_seen.insert(h & 0xFFFF);
            high_seen.insert(h >> 48);
        }
        assert!(low_seen.len() > 250);
        assert!(high_seen.len() > 250);
    }

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(12345), mix64(12345));
        assert_ne!(mix64(0), mix64(1));
    }
}

//! An open-addressing set for packed weld windows (`u128` keys).

/// Empty-slot sentinel. Weld windows are at most 63 bases = 126 bits, so a
/// packed window can never equal `u128::MAX`.
const EMPTY: u128 = u128::MAX;

const MIN_CAPACITY: usize = 16;

/// Dedup set for ≤63-base 2-bit-packed windows (weld candidates).
///
/// GraphFromFasta loop 1 deduplicates weld windows per contig; with a
/// `HashSet<Vec<u8>>` every *candidate* costs an allocation plus a SipHash
/// over the bytes. Packing the canonical window into a `u128` makes the
/// membership test two multiplies and a probe, with no allocation at all.
#[derive(Debug, Clone, Default)]
pub struct PackedWeldSet {
    keys: Vec<u128>,
    len: usize,
    mask: usize,
}

/// Mix a packed window into a hash: SplitMix64 finalizer over both halves.
#[inline(always)]
fn mix128(key: u128) -> u64 {
    let lo = crate::mix64(key as u64);
    let hi = crate::mix64((key >> 64) as u64);
    lo ^ hi.rotate_left(32)
}

impl PackedWeldSet {
    /// An empty set; allocates nothing until the first insert.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored windows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline(always)]
    fn probe(&self, key: u128) -> usize {
        let mut i = (mix128(key) as usize) & self.mask;
        loop {
            let k = unsafe { *self.keys.get_unchecked(i) };
            if k == key || k == EMPTY {
                return i;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// True if `key` was already inserted.
    pub fn contains(&self, key: u128) -> bool {
        debug_assert_ne!(key, EMPTY, "packed weld windows use at most 126 bits");
        if self.keys.is_empty() {
            return false;
        }
        self.keys[self.probe(key)] == key
    }

    /// Insert `key`; returns `true` if it was newly added.
    pub fn insert(&mut self, key: u128) -> bool {
        debug_assert_ne!(key, EMPTY, "packed weld windows use at most 126 bits");
        if self.keys.is_empty() {
            self.keys = vec![EMPTY; MIN_CAPACITY];
            self.mask = MIN_CAPACITY - 1;
        } else if (self.len + 1) * 4 > self.keys.len() * 3 {
            let doubled = self.keys.len() * 2;
            let old = std::mem::replace(&mut self.keys, vec![EMPTY; doubled]);
            self.mask = doubled - 1;
            for k in old {
                if k != EMPTY {
                    let i = self.probe(k);
                    self.keys[i] = k;
                }
            }
        }
        let i = self.probe(key);
        if self.keys[i] == key {
            false
        } else {
            self.keys[i] = key;
            self.len += 1;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_is_idempotent() {
        let mut s = PackedWeldSet::new();
        assert!(s.insert(42));
        assert!(!s.insert(42));
        assert!(s.contains(42));
        assert!(!s.contains(43));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn grows_with_many_windows() {
        let mut s = PackedWeldSet::new();
        for i in 0..5000u128 {
            assert!(s.insert(i * 0x1_0000_0001));
        }
        assert_eq!(s.len(), 5000);
        for i in 0..5000u128 {
            assert!(s.contains(i * 0x1_0000_0001));
            assert!(!s.insert(i * 0x1_0000_0001));
        }
    }

    #[test]
    fn high_bits_participate_in_hash() {
        // Keys differing only above bit 64 must not all collide.
        let mut s = PackedWeldSet::new();
        for i in 0..100u128 {
            s.insert(i << 64 | 7);
        }
        assert_eq!(s.len(), 100);
        assert!(s.contains(99u128 << 64 | 7));
        assert!(!s.contains(100u128 << 64 | 7));
    }
}

//! Property tests: [`PackedKmerTable`] and [`ShardedKmerTable`] must match
//! a `std::collections::HashMap` reference model on random packed-k-mer
//! workloads — the correctness contract for swapping the table into every
//! Chrysalis hot path.

use std::collections::HashMap;

use kmertable::{PackedKmerTable, PackedWeldSet, ShardedKmerTable};
use proptest::prelude::*;

/// Random packed k-mers biased toward collisions: a small key universe
/// exercises the update paths, full-range keys exercise probing.
fn keys() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![0u64..32, any::<u64>(), Just(u64::MAX), Just(0u64)],
        0..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_matches_hashmap_counts(ks in keys()) {
        let mut table = PackedKmerTable::new();
        let mut model: HashMap<u64, u32> = HashMap::new();
        for &k in &ks {
            table.add(k, 1);
            *model.entry(k).or_insert(0) += 1;
        }
        prop_assert_eq!(table.len(), model.len());
        for (&k, &v) in &model {
            prop_assert_eq!(table.get(k), Some(v));
        }
        let mut dumped: Vec<_> = table.iter().collect();
        dumped.sort_unstable();
        let mut want: Vec<_> = model.iter().map(|(&k, &v)| (k, v)).collect();
        want.sort_unstable();
        prop_assert_eq!(dumped, want);
    }

    #[test]
    fn insert_matches_hashmap_replace(pairs in proptest::collection::vec(
        (0u64..64, any::<u32>()), 0..200))
    {
        let mut table = PackedKmerTable::new();
        let mut model: HashMap<u64, u32> = HashMap::new();
        for &(k, v) in &pairs {
            prop_assert_eq!(table.insert(k, v), model.insert(k, v));
        }
        for (&k, &v) in &model {
            prop_assert_eq!(table.get(k), Some(v));
        }
    }

    #[test]
    fn get_or_insert_matches_entry_or_insert(pairs in proptest::collection::vec(
        (0u64..48, any::<u32>()), 0..200))
    {
        let mut table = PackedKmerTable::new();
        let mut model: HashMap<u64, u32> = HashMap::new();
        for &(k, v) in &pairs {
            let got = table.get_or_insert(k, v);
            let want = *model.entry(k).or_insert(v);
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn update_min_matches_model(pairs in proptest::collection::vec(
        (0u64..48, any::<u32>()), 0..200))
    {
        let mut table = PackedKmerTable::new();
        let mut model: HashMap<u64, u32> = HashMap::new();
        for &(k, v) in &pairs {
            table.update_min(k, v);
            model
                .entry(k)
                .and_modify(|cur| *cur = (*cur).min(v))
                .or_insert(v);
        }
        for (&k, &v) in &model {
            prop_assert_eq!(table.get(k), Some(v));
        }
    }

    #[test]
    fn retain_matches_hashmap_retain(ks in keys(), cutoff in 1u32..5) {
        let mut table = PackedKmerTable::new();
        let mut model: HashMap<u64, u32> = HashMap::new();
        for &k in &ks {
            table.add(k, 1);
            *model.entry(k).or_insert(0) += 1;
        }
        table.retain(|_, v| v >= cutoff);
        model.retain(|_, v| *v >= cutoff);
        prop_assert_eq!(table.len(), model.len());
        for (&k, &v) in &model {
            prop_assert_eq!(table.get(k), Some(v));
        }
        // The rebuilt table still accepts inserts correctly.
        for &k in ks.iter().take(10) {
            table.add(k, 1);
            *model.entry(k).or_insert(0) += 1;
            prop_assert_eq!(table.get(k), model.get(&k).copied());
        }
    }

    #[test]
    fn sharded_concurrent_matches_hashmap(
        ks in keys(),
        threads in 2usize..5,
        shards in 1usize..9)
    {
        // cfg.threads > 1: several real threads hammer the same sharded
        // table; the merged result must equal a serial HashMap count that
        // saw every thread's stream.
        let sharded = ShardedKmerTable::new(shards);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let sharded = &sharded;
                let ks = &ks;
                scope.spawn(move || {
                    // Half direct adds, half staged-and-absorbed, the two
                    // write paths the counting pass uses.
                    let (direct, staged) = ks.split_at(ks.len() / 2);
                    for &k in direct {
                        sharded.add(k, 1);
                    }
                    let mut local = PackedKmerTable::new();
                    for &k in staged {
                        local.add(k, 1);
                    }
                    sharded.absorb(&local);
                });
            }
        });
        let mut model: HashMap<u64, u32> = HashMap::new();
        for &k in &ks {
            *model.entry(k).or_insert(0) += threads as u32;
        }
        let merged = sharded.into_merged();
        prop_assert_eq!(merged.len(), model.len());
        for (&k, &v) in &model {
            prop_assert_eq!(merged.get(k), Some(v));
        }
    }

    #[test]
    fn weld_set_matches_hashset(ks in proptest::collection::vec(
        prop_oneof![
            (0u64..64).prop_map(|x| x as u128),
            (any::<u64>(), any::<u64>())
                .prop_map(|(hi, lo)| ((hi as u128) << 64 | lo as u128) & ((1u128 << 126) - 1)),
        ],
        0..300))
    {
        let mut set = PackedWeldSet::new();
        let mut model = std::collections::HashSet::new();
        for &k in &ks {
            prop_assert_eq!(set.insert(k), model.insert(k));
        }
        prop_assert_eq!(set.len(), model.len());
        for &k in &ks {
            prop_assert!(set.contains(k));
        }
    }
}

//! Property-based tests for the scheduling substrate.

use omp::makespan::simulate_loop;
use omp::schedule::{chunk_sequence, chunked_round_robin, Schedule};
use proptest::prelude::*;

fn any_schedule() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static { chunk: None }),
        (1usize..20).prop_map(|c| Schedule::Static { chunk: Some(c) }),
        (1usize..20).prop_map(|c| Schedule::Dynamic { chunk: c }),
        (1usize..20).prop_map(|c| Schedule::Guided { min_chunk: c }),
    ]
}

proptest! {
    #[test]
    fn chunks_partition_iterations(n in 0usize..500, threads in 1usize..32, s in any_schedule()) {
        let chunks = chunk_sequence(n, threads, s);
        let mut covered = vec![0u8; n];
        for c in &chunks {
            prop_assert!(c.start < c.end || n == 0);
            prop_assert!(c.end <= n);
            for i in c.start..c.end {
                covered[i] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
        // Chunks are emitted in increasing order.
        for w in chunks.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn chunked_rr_partitions(n in 0usize..500, ranks in 1usize..16, chunk in 1usize..40) {
        let per_rank = chunked_round_robin(n, ranks, chunk);
        prop_assert_eq!(per_rank.len(), ranks);
        let mut covered = vec![0u8; n];
        for chunks in &per_rank {
            for c in chunks {
                for i in c.start..c.end {
                    covered[i] += 1;
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn makespan_bounds_hold(
        costs in proptest::collection::vec(0.0f64..10.0, 0..200),
        threads in 1usize..32,
        s in any_schedule(),
    ) {
        let sim = simulate_loop(&costs, threads, s);
        let serial: f64 = costs.iter().sum();
        let max_item = costs.iter().cloned().fold(0.0, f64::max);
        prop_assert!(sim.makespan <= serial + 1e-9);
        prop_assert!(sim.makespan + 1e-9 >= max_item);
        prop_assert!(sim.makespan + 1e-9 >= serial / threads as f64);
        let busy_total: f64 = sim.thread_busy.iter().sum();
        prop_assert!((busy_total - serial).abs() < 1e-6 * serial.max(1.0));
    }

    #[test]
    fn more_threads_never_slower_dynamic(
        costs in proptest::collection::vec(0.0f64..10.0, 1..100),
        threads in 1usize..16,
    ) {
        let a = simulate_loop(&costs, threads, Schedule::Dynamic { chunk: 1 });
        let b = simulate_loop(&costs, threads + 1, Schedule::Dynamic { chunk: 1 });
        // Greedy list scheduling with chunk 1 is monotone in thread count.
        prop_assert!(b.makespan <= a.makespan + 1e-9);
    }
}

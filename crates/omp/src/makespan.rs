//! Deterministic virtual-time replay of a scheduled loop.
//!
//! Given the measured cost of every loop iteration, [`simulate_loop`] replays
//! the configured schedule with greedy list scheduling: the next chunk in the
//! schedule's grab order goes to the thread that becomes idle first. For
//! `schedule(dynamic)` this is *exactly* the runtime behaviour of an OpenMP
//! team (modulo scheduler noise); for `schedule(static)` ownership is fixed
//! up front. The result is a per-thread busy-time vector and the loop
//! makespan, computable for any thread count on any host.

use crate::schedule::{chunk_sequence, static_owner, Chunk, Schedule};

/// Outcome of replaying one loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopSim {
    /// Busy time per thread, seconds.
    pub thread_busy: Vec<f64>,
    /// Virtual duration of the loop (max completion time across threads).
    pub makespan: f64,
    /// Sum of all item costs (serial time).
    pub serial_time: f64,
    /// Number of chunks dispatched.
    pub chunks: usize,
}

impl LoopSim {
    /// Parallel efficiency: `serial / (threads * makespan)`, in (0, 1].
    pub fn efficiency(&self) -> f64 {
        if self.makespan == 0.0 {
            1.0
        } else {
            self.serial_time / (self.thread_busy.len() as f64 * self.makespan)
        }
    }

    /// Load imbalance: `max_thread_busy / mean_thread_busy` (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let sum: f64 = self.thread_busy.iter().sum();
        if sum == 0.0 {
            return 1.0;
        }
        let mean = sum / self.thread_busy.len() as f64;
        let max = self.thread_busy.iter().cloned().fold(0.0, f64::max);
        max / mean
    }

    /// Record per-thread busy/idle spans for this replayed loop into
    /// `tracer`. The loop is placed at virtual time `t0`; thread `t` gets a
    /// `{name}.busy` span of its busy time followed by a `{name}.idle` span
    /// until the loop's makespan, both `cat:"omp"` on track
    /// `base_track + t` (callers typically pass
    /// [`obs::THREAD_TRACK_BASE`], keeping thread lanes clear of rank
    /// lanes).
    pub fn record_spans(&self, tracer: &obs::Tracer, t0: f64, base_track: u32, name: &str) {
        for (t, &busy) in self.thread_busy.iter().enumerate() {
            let track = base_track + t as u32;
            if busy > 0.0 {
                tracer.record(track, "omp", format!("{name}.busy"), t0, t0 + busy);
            }
            if self.makespan > busy {
                tracer.record(
                    track,
                    "omp",
                    format!("{name}.idle"),
                    t0 + busy,
                    t0 + self.makespan,
                );
            }
        }
    }

    /// Record this loop's summary into a [`obs::MetricsRegistry`]:
    /// `{prefix}.chunks` (counter), `{prefix}.efficiency` and
    /// `{prefix}.imbalance` (gauges).
    ///
    /// `chunks` is *intentionally additive*: each call describes one loop
    /// replay, so recording several replays under one prefix (e.g. the
    /// per-chunk `rtt.loop` invocations) accumulates total chunks
    /// scheduled — an event count, not a snapshot. The efficiency and
    /// imbalance gauges are snapshots and keep the latest replay's value.
    pub fn record_metrics(&self, registry: &obs::MetricsRegistry, prefix: &str) {
        registry
            .counter(format!("{prefix}.chunks"))
            .add(self.chunks as u64);
        registry
            .gauge(format!("{prefix}.efficiency"))
            .set(self.efficiency());
        registry
            .gauge(format!("{prefix}.imbalance"))
            .set(self.imbalance());
    }
}

fn chunk_cost(costs: &[f64], c: Chunk) -> f64 {
    costs[c.start..c.end].iter().sum()
}

/// Replay `schedule` over `costs` with `threads` workers.
pub fn simulate_loop(costs: &[f64], threads: usize, schedule: Schedule) -> LoopSim {
    let threads = threads.max(1);
    let chunks = chunk_sequence(costs.len(), threads, schedule);
    let mut busy = vec![0.0f64; threads];
    match schedule {
        Schedule::Static { .. } => {
            for (i, &c) in chunks.iter().enumerate() {
                busy[static_owner(i, threads)] += chunk_cost(costs, c);
            }
        }
        Schedule::Dynamic { .. } | Schedule::Guided { .. } => {
            // Greedy list scheduling: next chunk to the earliest-idle thread.
            for &c in &chunks {
                let t = earliest(&busy);
                busy[t] += chunk_cost(costs, c);
            }
        }
    }
    let makespan = busy.iter().cloned().fold(0.0, f64::max);
    LoopSim {
        makespan,
        serial_time: costs.iter().sum(),
        chunks: chunks.len(),
        thread_busy: busy,
    }
}

/// Replay a list of pre-assigned chunk groups (e.g. the chunked round-robin
/// MPI distribution): each group is one rank's chunk list; within a rank the
/// chunks' items are further scheduled over `threads` OpenMP threads with
/// `inner` scheduling. Returns one [`LoopSim`] per group.
pub fn simulate_grouped(
    costs: &[f64],
    groups: &[Vec<Chunk>],
    threads: usize,
    inner: Schedule,
) -> Vec<LoopSim> {
    groups
        .iter()
        .map(|chunks| {
            // Flatten this rank's items into a contiguous cost vector and
            // replay the inner OpenMP schedule over them.
            let rank_costs: Vec<f64> = chunks
                .iter()
                .flat_map(|c| costs[c.start..c.end].iter().copied())
                .collect();
            simulate_loop(&rank_costs, threads, inner)
        })
        .collect()
}

fn earliest(busy: &[f64]) -> usize {
    let mut best = 0;
    for (i, &b) in busy.iter().enumerate().skip(1) {
        if b < busy[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_costs_perfectly_balanced() {
        let costs = vec![1.0; 16];
        let sim = simulate_loop(&costs, 4, Schedule::Dynamic { chunk: 1 });
        assert!((sim.makespan - 4.0).abs() < 1e-12);
        assert!((sim.imbalance() - 1.0).abs() < 1e-12);
        assert!((sim.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_bounds() {
        let costs = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        for threads in 1..6 {
            for s in [
                Schedule::Static { chunk: None },
                Schedule::Static { chunk: Some(2) },
                Schedule::Dynamic { chunk: 1 },
                Schedule::Dynamic { chunk: 3 },
                Schedule::Guided { min_chunk: 1 },
            ] {
                let sim = simulate_loop(&costs, threads, s);
                let serial: f64 = costs.iter().sum();
                let max_item = 9.0;
                assert!(sim.makespan <= serial + 1e-9);
                assert!(sim.makespan >= max_item - 1e-9, "{s:?} t={threads}");
                assert!(sim.makespan >= serial / threads as f64 - 1e-9);
                let total: f64 = sim.thread_busy.iter().sum();
                assert!((total - serial).abs() < 1e-9, "work conserved");
            }
        }
    }

    #[test]
    fn one_thread_is_serial() {
        let costs = vec![2.0, 3.0, 5.0];
        let sim = simulate_loop(&costs, 1, Schedule::Dynamic { chunk: 1 });
        assert!((sim.makespan - 10.0).abs() < 1e-12);
    }

    #[test]
    fn dynamic_beats_static_on_skew() {
        // One huge item at the front: static-block puts it with a full block
        // of other work; dynamic isolates it.
        let mut costs = vec![100.0];
        costs.extend(std::iter::repeat_n(1.0, 99));
        let stat = simulate_loop(&costs, 4, Schedule::Static { chunk: None });
        let dyn_ = simulate_loop(&costs, 4, Schedule::Dynamic { chunk: 1 });
        assert!(dyn_.makespan < stat.makespan);
        assert!((dyn_.makespan - 100.0).abs() < 1e-9); // bounded by the big item
    }

    #[test]
    fn empty_loop() {
        let sim = simulate_loop(&[], 4, Schedule::Dynamic { chunk: 2 });
        assert_eq!(sim.makespan, 0.0);
        assert_eq!(sim.chunks, 0);
        assert_eq!(sim.efficiency(), 1.0);
        assert_eq!(sim.imbalance(), 1.0);
    }

    #[test]
    fn record_spans_cover_makespan() {
        let costs = vec![3.0, 1.0, 1.0, 1.0];
        let sim = simulate_loop(&costs, 2, Schedule::Dynamic { chunk: 1 });
        let tracer = obs::Tracer::new();
        sim.record_spans(&tracer, 10.0, obs::THREAD_TRACK_BASE, "gff.loop1");
        let trace = tracer.take();
        for t in 0..2u32 {
            let track = obs::THREAD_TRACK_BASE + t;
            let busy = trace.span_sum(track, "gff.loop1.busy");
            let idle = trace.span_sum(track, "gff.loop1.idle");
            assert!(
                (busy + idle - sim.makespan).abs() < 1e-12,
                "thread lane spans tile the makespan"
            );
            assert!((busy - sim.thread_busy[t as usize]).abs() < 1e-12);
        }
        // spans start at the requested offset
        let first = trace
            .spans
            .iter()
            .map(|s| s.start)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(first, 10.0);
    }

    #[test]
    fn record_metrics_summary() {
        let sim = simulate_loop(&[1.0; 8], 4, Schedule::Dynamic { chunk: 2 });
        let reg = obs::MetricsRegistry::new();
        sim.record_metrics(&reg, "loop1");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("loop1.chunks"), Some(4));
        assert_eq!(snap.gauge("loop1.efficiency"), Some(1.0));
        assert_eq!(snap.gauge("loop1.imbalance"), Some(1.0));
    }

    #[test]
    fn grouped_replay_per_rank() {
        use crate::schedule::chunked_round_robin;
        let costs = vec![1.0; 40];
        let groups = chunked_round_robin(40, 4, 5);
        let sims = simulate_grouped(&costs, &groups, 2, Schedule::Dynamic { chunk: 1 });
        assert_eq!(sims.len(), 4);
        // Each rank: 10 items over 2 threads -> makespan 5.
        for sim in &sims {
            assert!((sim.makespan - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn grouped_skew_shows_imbalance() {
        use crate::schedule::chunked_round_robin;
        // Rank 0's chunks carry heavy items.
        let mut costs = vec![1.0; 40];
        for c in costs.iter_mut().take(5) {
            *c = 10.0;
        }
        let groups = chunked_round_robin(40, 4, 5);
        let sims = simulate_grouped(&costs, &groups, 1, Schedule::Dynamic { chunk: 1 });
        let times: Vec<f64> = sims.iter().map(|s| s.makespan).collect();
        let max = times.iter().cloned().fold(0.0, f64::max);
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 2.0 * min, "skewed chunks must show rank imbalance");
    }
}

//! Real parallel execution of work loops.
//!
//! [`parallel_map`] executes a loop body over a slice with a shared atomic
//! cursor — the execution model of OpenMP `schedule(dynamic, 1)`. On this
//! workspace's single-core benchmark host the threads serialize, which is
//! exactly why timing is handled separately by [`crate::makespan`]: the
//! *results* come from here, the *clock* from the replay.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A simple reusable description of a thread team.
///
/// # Examples
///
/// ```
/// use omp::Pool;
///
/// let team = Pool::new(4);
/// let squares = team.map(&[1, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]); // input order is preserved
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    /// Number of worker threads the team uses.
    pub threads: usize,
}

impl Pool {
    /// Create a team of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A team sized to the host's available parallelism.
    pub fn host() -> Self {
        Pool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Map `f` over `items` with dynamic self-scheduling.
    pub fn map<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
        parallel_map(items, self.threads, f)
    }
}

/// Map `f` over `items` using `threads` OS threads and a shared cursor
/// (dynamic schedule, chunk 1). Results are returned in input order.
pub fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let out_slots = SlotWriter::new(&mut out);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                // SAFETY: each index is claimed exactly once by the cursor.
                unsafe { out_slots.write(i, r) };
            });
        }
    })
    .expect("worker thread panicked");
    out.into_iter().map(|r| r.expect("slot filled")).collect()
}

/// Map `f` over `items`, also measuring each item's wall-clock cost in
/// seconds. Runs *single-threaded* so the per-item costs are clean; callers
/// feed the costs into the makespan replay to obtain parallel timings.
pub fn parallel_map_timed<T, R>(items: &[T], mut f: impl FnMut(&T) -> R) -> (Vec<R>, Vec<f64>) {
    let mut results = Vec::with_capacity(items.len());
    let mut costs = Vec::with_capacity(items.len());
    for item in items {
        let t0 = Instant::now();
        results.push(f(item));
        costs.push(t0.elapsed().as_secs_f64());
    }
    (results, costs)
}

/// Shared-slot writer used by `parallel_map` to scatter results by index
/// without locks. Each index must be written at most once.
struct SlotWriter<R> {
    ptr: *mut Option<R>,
}

impl<R> SlotWriter<R> {
    fn new(slots: &mut [Option<R>]) -> Self {
        SlotWriter {
            ptr: slots.as_mut_ptr(),
        }
    }

    /// # Safety
    /// `i` must be in bounds and claimed by exactly one writer.
    unsafe fn write(&self, i: usize, value: R) {
        std::ptr::write(self.ptr.add(i), Some(value));
    }
}

// SAFETY: disjoint-index writes are externally guaranteed by the atomic
// cursor; the raw pointer itself is safe to share under that protocol.
unsafe impl<R: Send> Sync for SlotWriter<R> {}
unsafe impl<R: Send> Send for SlotWriter<R> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_single_thread_path() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn map_empty() {
        let items: Vec<u32> = vec![];
        assert!(parallel_map(&items, 8, |&x| x).is_empty());
    }

    #[test]
    fn map_more_threads_than_items() {
        let items = vec![5u32; 3];
        assert_eq!(parallel_map(&items, 64, |&x| x).len(), 3);
    }

    #[test]
    fn pool_interface() {
        let p = Pool::new(0);
        assert_eq!(p.threads, 1);
        let out = Pool::new(3).map(&[1, 2, 3, 4], |&x| x * x);
        assert_eq!(out, vec![1, 4, 9, 16]);
        assert!(Pool::host().threads >= 1);
    }

    #[test]
    fn timed_map_returns_costs() {
        let items = vec![10u64, 20, 30];
        let (out, costs) = parallel_map_timed(&items, |&x| x + 1);
        assert_eq!(out, vec![11, 21, 31]);
        assert_eq!(costs.len(), 3);
        assert!(costs.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn map_with_nontrivial_results() {
        let items: Vec<usize> = (0..200).collect();
        let out = parallel_map(&items, 8, |&x| vec![x; x % 5]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.len(), i % 5);
        }
    }
}

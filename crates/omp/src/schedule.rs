//! Loop scheduling policies and the chunk sequences they generate.
//!
//! OpenMP's `schedule` clause controls how loop iterations are parceled out
//! to threads. Chrysalis uses `schedule(dynamic)` for both GraphFromFasta
//! loops because per-contig work is wildly non-uniform (§III-B of the paper).

/// An OpenMP-style loop schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// `schedule(static[, chunk])`: chunks are assigned round-robin to
    /// threads *before* execution. `chunk = None` means one contiguous block
    /// per thread.
    Static {
        /// Chunk size; `None` means one contiguous block per thread.
        chunk: Option<usize>,
    },
    /// `schedule(dynamic, chunk)`: threads grab the next chunk when idle.
    Dynamic {
        /// Fixed chunk size each idle thread grabs.
        chunk: usize,
    },
    /// `schedule(guided, min_chunk)`: like dynamic but chunk size starts at
    /// `remaining / threads` and decays geometrically to `min_chunk`.
    Guided {
        /// Floor the geometrically decaying chunk size never drops below.
        min_chunk: usize,
    },
}

impl Schedule {
    /// The paper's loops: dynamic with a modest chunk.
    pub fn paper_default() -> Self {
        Schedule::Dynamic { chunk: 16 }
    }
}

/// A half-open range of loop iterations `[start, end)` forming one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First iteration index.
    pub start: usize,
    /// One past the last iteration index.
    pub end: usize,
}

impl Chunk {
    /// Number of iterations in the chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Generate the ordered chunk sequence a schedule produces for a loop of
/// `n` iterations run by `threads` threads.
///
/// For `Static`, consecutive chunks belong to threads `0, 1, …, T-1, 0, …`;
/// for `Dynamic`/`Guided` the sequence is the grab order and the owner is
/// decided at run time (or by the makespan replay).
pub fn chunk_sequence(n: usize, threads: usize, schedule: Schedule) -> Vec<Chunk> {
    assert!(threads > 0, "need at least one thread");
    let mut chunks = Vec::new();
    if n == 0 {
        return chunks;
    }
    match schedule {
        Schedule::Static { chunk: None } => {
            // One contiguous block per thread, sizes differing by at most 1.
            let base = n / threads;
            let extra = n % threads;
            let mut start = 0;
            for t in 0..threads {
                let len = base + usize::from(t < extra);
                if len == 0 {
                    continue;
                }
                chunks.push(Chunk {
                    start,
                    end: start + len,
                });
                start += len;
            }
        }
        Schedule::Static { chunk: Some(c) } | Schedule::Dynamic { chunk: c } => {
            let c = c.max(1);
            let mut start = 0;
            while start < n {
                let end = (start + c).min(n);
                chunks.push(Chunk { start, end });
                start = end;
            }
        }
        Schedule::Guided { min_chunk } => {
            let min_chunk = min_chunk.max(1);
            let mut start = 0;
            while start < n {
                let remaining = n - start;
                let size = (remaining.div_ceil(threads)).max(min_chunk).min(remaining);
                chunks.push(Chunk {
                    start,
                    end: start + size,
                });
                start += size;
            }
        }
    }
    chunks
}

/// The owner thread of chunk index `i` under a static schedule.
pub fn static_owner(chunk_index: usize, threads: usize) -> usize {
    chunk_index % threads
}

/// The paper's *chunked round-robin* MPI distribution (§III-B, Fig. 3):
/// chunk `i` of the outer loop belongs to rank `i mod ranks`; within a rank
/// the chunk is subdivided over OpenMP threads.
///
/// Returns, for each rank, the chunks it owns (in grab order). The final
/// chunk may be short — the paper calls out that the inner-loop end index
/// must be clamped when fewer items than a full chunk remain.
pub fn chunked_round_robin(n: usize, ranks: usize, chunk: usize) -> Vec<Vec<Chunk>> {
    assert!(ranks > 0, "need at least one rank");
    let chunk = chunk.max(1);
    let mut per_rank = vec![Vec::new(); ranks];
    let mut start = 0;
    let mut i = 0;
    while start < n {
        let end = (start + chunk).min(n);
        per_rank[i % ranks].push(Chunk { start, end });
        start = end;
        i += 1;
    }
    per_rank
}

/// A sensible chunk size for `n` items over `ranks` ranks of `threads`
/// threads: the paper sets the chunk "proportional to the number of Inchworm
/// contigs divided by the number of threads".
pub fn paper_chunk_size(n: usize, ranks: usize, threads: usize) -> usize {
    // Aim for ~8 chunks per rank so round-robin interleaving smooths skew.
    (n / (ranks * threads * 8).max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_exactly(chunks: &[Chunk], n: usize) {
        let mut covered = vec![false; n];
        for c in chunks {
            for i in c.start..c.end {
                assert!(!covered[i], "iteration {i} covered twice");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "not all iterations covered");
    }

    #[test]
    fn static_block_partition() {
        let chunks = chunk_sequence(10, 3, Schedule::Static { chunk: None });
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], Chunk { start: 0, end: 4 });
        assert_eq!(chunks[1], Chunk { start: 4, end: 7 });
        assert_eq!(chunks[2], Chunk { start: 7, end: 10 });
        covers_exactly(&chunks, 10);
    }

    #[test]
    fn static_block_more_threads_than_items() {
        let chunks = chunk_sequence(2, 8, Schedule::Static { chunk: None });
        assert_eq!(chunks.len(), 2);
        covers_exactly(&chunks, 2);
    }

    #[test]
    fn dynamic_chunks() {
        let chunks = chunk_sequence(10, 4, Schedule::Dynamic { chunk: 3 });
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[3], Chunk { start: 9, end: 10 }); // clamped tail
        covers_exactly(&chunks, 10);
    }

    #[test]
    fn dynamic_chunk_zero_is_clamped_to_one() {
        let chunks = chunk_sequence(3, 2, Schedule::Dynamic { chunk: 0 });
        assert_eq!(chunks.len(), 3);
    }

    #[test]
    fn guided_decays() {
        let chunks = chunk_sequence(100, 4, Schedule::Guided { min_chunk: 2 });
        covers_exactly(&chunks, 100);
        // First chunk is remaining/threads = 25, sizes never increase.
        assert_eq!(chunks[0].len(), 25);
        for w in chunks.windows(2) {
            assert!(w[1].len() <= w[0].len());
        }
        // Tail chunks respect min_chunk except possibly the final remainder.
        for c in &chunks[..chunks.len() - 1] {
            assert!(c.len() >= 2);
        }
    }

    #[test]
    fn empty_loop() {
        for s in [
            Schedule::Static { chunk: None },
            Schedule::Dynamic { chunk: 4 },
            Schedule::Guided { min_chunk: 1 },
        ] {
            assert!(chunk_sequence(0, 4, s).is_empty());
        }
    }

    #[test]
    fn chunked_rr_matches_fig3() {
        // Fig. 3: 4 MPI processes, chunks go 0,1,2,3,0,1,...
        let per_rank = chunked_round_robin(40, 4, 5);
        assert_eq!(per_rank.len(), 4);
        assert_eq!(per_rank[0][0], Chunk { start: 0, end: 5 });
        assert_eq!(per_rank[1][0], Chunk { start: 5, end: 10 });
        assert_eq!(per_rank[0][1], Chunk { start: 20, end: 25 });
        let all: Vec<Chunk> = {
            let mut v: Vec<Chunk> = per_rank.iter().flatten().copied().collect();
            v.sort_by_key(|c| c.start);
            v
        };
        covers_exactly(&all, 40);
    }

    #[test]
    fn chunked_rr_short_tail() {
        // 11 items, chunk 4 -> chunks [0,4),[4,8),[8,11); rank owners 0,1,2... mod 2
        let per_rank = chunked_round_robin(11, 2, 4);
        assert_eq!(
            per_rank[0],
            vec![Chunk { start: 0, end: 4 }, Chunk { start: 8, end: 11 }]
        );
        assert_eq!(per_rank[1], vec![Chunk { start: 4, end: 8 }]);
    }

    #[test]
    fn chunked_rr_some_ranks_idle() {
        let per_rank = chunked_round_robin(3, 8, 10);
        assert_eq!(per_rank[0].len(), 1);
        assert!(per_rank[1..].iter().all(Vec::is_empty));
    }

    #[test]
    fn static_owner_cycles() {
        assert_eq!(static_owner(0, 4), 0);
        assert_eq!(static_owner(5, 4), 1);
    }

    #[test]
    fn paper_chunk_size_floor() {
        assert_eq!(paper_chunk_size(0, 4, 16), 1);
        assert!(paper_chunk_size(1_000_000, 16, 16) >= 1);
    }
}

//! OpenMP-like shared-memory substrate.
//!
//! Chrysalis' compute loops are OpenMP `parallel for` loops with dynamic
//! scheduling; the paper's hybrid port keeps those loops and layers a
//! chunked-round-robin MPI distribution on top. This crate reproduces the
//! shared-memory half:
//!
//! * [`schedule`] — the scheduling policies (static, dynamic, guided) and the
//!   chunk sequences they generate;
//! * [`pool`] — real parallel execution of a work loop over OS threads with a
//!   shared dynamic queue (the execution model of `schedule(dynamic)`);
//! * [`makespan`] — a deterministic list-scheduling replay that converts
//!   measured per-item costs into per-thread busy times and a loop makespan
//!   for *any* configured thread count.
//!
//! The split between real execution and virtual-time replay is what lets the
//! benchmark harness reproduce the paper's strong-scaling curves on a single
//! core: items are executed (and timed) once, then the makespan of the
//! configured `(threads, schedule)` is replayed exactly.

#![warn(missing_docs)]

pub mod makespan;
pub mod pool;
pub mod schedule;

pub use makespan::{simulate_loop, LoopSim};
pub use pool::{parallel_map, parallel_map_timed, Pool};
pub use schedule::{chunk_sequence, Schedule};

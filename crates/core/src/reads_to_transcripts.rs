//! ReadsToTranscripts: assign each read to the component (Inchworm bundle)
//! sharing the most k-mers.
//!
//! The hybrid scheme (§III-C) avoids communication entirely: **every rank
//! streams the whole read file**, uploading `max_mem_reads`-sized chunks,
//! but only *processes* the chunks whose index is congruent to its rank —
//! "this approach does make every process read redundant data … but
//! excludes the necessity of MPI communication". Per-rank outputs are
//! concatenated by the master at the end (a cheap `cat`, <15 s in the
//! paper).

use kmertable::PackedKmerTable;
use seqio::fasta::Record;
use seqio::packed::PackedSeq;

use mpisim::comm::Comm;
use mpisim::pack::{pack_u32s, unpack_u32s};
use omp::makespan::simulate_loop;
use omp::pool::parallel_map_timed;

use crate::config::ChrysalisConfig;
use crate::timings::RttTimings;

/// Read-only state for the stage: the read set (standing in for the
/// streamed FASTA file) and the replicated k-mer→component table.
pub struct RttShared {
    /// All input reads, in file order (ASCII form: the streamed-file model
    /// walks these bytes to charge I/O).
    pub reads: Vec<Record>,
    /// The same reads 2-bit packed once at prepare time; the voting loop
    /// rolls canonical k-mers off this form.
    pub packed_reads: Vec<PackedSeq>,
    /// Canonical k-mer → component table ("assignment of k-mers to
    /// Inchworm bundles", OpenMP-only in the paper). An open-addressing
    /// packed-k-mer table: the per-read voting loop probes it once per
    /// read k-mer, making it the stage's hottest structure.
    pub kmer_to_component: PackedKmerTable,
    /// Measured cost of building the table (seconds).
    pub kmer_setup_cost: f64,
    /// Number of components.
    pub n_components: usize,
    /// Stage configuration.
    pub cfg: ChrysalisConfig,
}

impl RttShared {
    /// Build the replicated table from the clustered contigs (measured).
    /// `components[c]` lists contig indices of component `c`.
    pub fn prepare(
        reads: Vec<Record>,
        contigs: &[PackedSeq],
        components: &[Vec<usize>],
        cfg: ChrysalisConfig,
    ) -> Self {
        let packed_reads = seqio::packed::encode_all(&reads);
        Self::prepare_with_packed(reads, packed_reads, contigs, components, cfg)
    }

    /// [`Self::prepare`] with pre-encoded reads — the pipeline packs every
    /// read once at ingest and hands the same encoding to each stage.
    pub fn prepare_with_packed(
        reads: Vec<Record>,
        packed_reads: Vec<PackedSeq>,
        contigs: &[PackedSeq],
        components: &[Vec<usize>],
        cfg: ChrysalisConfig,
    ) -> Self {
        assert_eq!(
            reads.len(),
            packed_reads.len(),
            "one packed form per read, in file order"
        );
        // "the OpenMP-enabled assignment of k-mers to Inchworm bundles":
        // the table build parallelizes over components; per-batch costs are
        // measured and replayed as a makespan, like the other parallel
        // builds. The sequential merge below is a simulation artifact (a
        // sharded concurrent table has no merge phase) and is not charged.
        let batches: Vec<(usize, &[Vec<usize>])> = components
            .chunks(16)
            .enumerate()
            .map(|(i, c)| (i * 16, c))
            .collect();
        let (partials, costs) = omp::pool::parallel_map_timed(&batches, |&(base, comps)| {
            let mut map = PackedKmerTable::new();
            for (ci, members) in comps.iter().enumerate() {
                for &m in members {
                    if let Ok(iter) = contigs[m].canonical_kmers(cfg.k) {
                        for (_, km) in iter {
                            // First component to claim a k-mer keeps it
                            // (ids are dense and deterministic).
                            map.get_or_insert(km.packed(), (base + ci) as u32);
                        }
                    }
                }
            }
            map
        });
        let kmer_setup_cost = simulate_loop(&costs, cfg.threads, cfg.schedule).makespan;
        let mut map = PackedKmerTable::new();
        for p in partials {
            map.reserve(p.len());
            for (k, c) in p.iter() {
                // Smallest component id wins, preserving the sequential
                // first-claim semantics across batch boundaries.
                map.update_min(k, c);
            }
        }
        RttShared {
            reads,
            packed_reads,
            kmer_to_component: map,
            kmer_setup_cost,
            n_components: components.len(),
            cfg,
        }
    }

    /// [`Self::prepare`] from byte-record contigs, encoding each once
    /// (test/CLI convenience).
    pub fn prepare_records(
        reads: Vec<Record>,
        contigs: &[Record],
        components: &[Vec<usize>],
        cfg: ChrysalisConfig,
    ) -> Self {
        Self::prepare(reads, &seqio::packed::encode_all(contigs), components, cfg)
    }

    /// Assign one packed read: the component with the most shared k-mers,
    /// ties to the smallest component id. `None` if below `min_read_kmers`.
    ///
    /// Canonical k-mers roll off the 2-bit form in O(1) per base, and
    /// votes accumulate in a fixed inline array scanned linearly: a read's
    /// k-mers hit very few distinct components, so the scan beats hashing
    /// and the per-read heap allocation the old `Vec` tally paid. Reads
    /// touching more than `MAX_INLINE_VOTES` components (pathological)
    /// spill the excess to a heap vector, preserving exact semantics.
    pub fn assign_packed(&self, read: &PackedSeq) -> Option<u32> {
        let mut inline = [(0u32, 0u32); MAX_INLINE_VOTES];
        let mut n_inline = 0usize;
        let mut spill: Vec<(u32, u32)> = Vec::new();
        let iter = read.canonical_kmers(self.cfg.k).ok()?;
        for (_, km) in iter {
            if let Some(c) = self.kmer_to_component.get(km.packed()) {
                if let Some(v) = inline[..n_inline].iter_mut().find(|(vc, _)| *vc == c) {
                    v.1 += 1;
                } else if n_inline < MAX_INLINE_VOTES {
                    inline[n_inline] = (c, 1);
                    n_inline += 1;
                } else if let Some(v) = spill.iter_mut().find(|(vc, _)| *vc == c) {
                    v.1 += 1;
                } else {
                    spill.push((c, 1));
                }
            }
        }
        // Selection compares (count, id) totally, so tally order is
        // irrelevant and the inline/spill split cannot change the winner.
        let min = self.cfg.min_read_kmers.max(1) as u32;
        let mut best: Option<(u32, u32)> = None;
        for &(c, n) in inline[..n_inline].iter().chain(spill.iter()) {
            if n < min {
                continue;
            }
            let better = match best {
                Some((bc, bn)) => n > bn || (n == bn && c < bc),
                None => true,
            };
            if better {
                best = Some((c, n));
            }
        }
        best.map(|(c, _)| c)
    }

    /// [`Self::assign_packed`] from bytes, encoding the read first
    /// (test/CLI convenience).
    pub fn assign(&self, read: &[u8]) -> Option<u32> {
        self.assign_packed(&PackedSeq::from_bytes(read))
    }
}

/// Distinct components a read's k-mers plausibly hit; the vote tally keeps
/// this many slots on the stack before spilling.
const MAX_INLINE_VOTES: usize = 12;

/// The stage output: `(read index, component)` assignments in read order.
#[derive(Debug, Clone, PartialEq)]
pub struct RttOutput {
    /// Assigned reads (unassignable reads are omitted, as in Trinity).
    pub assignments: Vec<(u32, u32)>,
    /// This rank's phase timings (derived from the span trace).
    pub timings: RttTimings,
    /// Span trace of the stage. Populated by the shared-memory driver
    /// (virtual timeline from t = 0 on track 0); hybrid ranks record on
    /// [`Comm::obs`] instead and leave this empty — their spans travel out
    /// via `mpisim::RankOutput::trace`.
    pub trace: obs::Trace,
}

/// Simulated "upload" of one chunk: walk the bytes as a parser would.
/// Returns the byte count; the measured duration stands in for file I/O.
fn stream_chunk(reads: &[Record]) -> usize {
    let mut bytes = 0usize;
    for r in reads {
        // Touch every byte so the measured cost scales with data volume.
        bytes += r.seq.iter().map(|&b| (b & 0x0f) as usize).sum::<usize>() & 0xff;
        bytes += r.seq.len() + r.id.len();
    }
    bytes
}

/// Assign a chunk's reads (the OpenMP-parallel inner loop); returns
/// assignments plus the simulated loop makespan.
fn assign_chunk(shared: &RttShared, base: usize, chunk: &[Record]) -> (Vec<(u32, u32)>, f64) {
    let items: Vec<usize> = (0..chunk.len()).collect();
    let (results, costs) = parallel_map_timed(&items, |&i| {
        shared.assign_packed(&shared.packed_reads[base + i])
    });
    let makespan = simulate_loop(&costs, shared.cfg.threads, shared.cfg.schedule).makespan;
    let assignments = results
        .into_iter()
        .enumerate()
        .filter_map(|(i, c)| c.map(|c| ((base + i) as u32, c)))
        .collect();
    (assignments, makespan)
}

/// Shared-memory (OpenMP-only) ReadsToTranscripts: the baseline
/// ("on a single node, … using 16 threads").
pub fn rtt_shared_memory(shared: &RttShared) -> RttOutput {
    let obs = obs::Tracer::new();
    obs.name_track(0, "rtt");
    let mut t = 0.0f64;
    obs.record(
        0,
        "compute",
        "rtt.kmer_setup",
        t,
        t + shared.kmer_setup_cost,
    );
    t += shared.kmer_setup_cost;

    let mut assignments = Vec::new();
    let chunk_size = shared.cfg.max_mem_reads.max(1);
    for (ci, chunk) in shared.reads.chunks(chunk_size).enumerate() {
        let t0 = std::time::Instant::now();
        std::hint::black_box(stream_chunk(chunk));
        let io = t0.elapsed().as_secs_f64();
        obs.record_with(0, "io", "rtt.io", t, t + io, &[("chunk", ci as f64)]);
        t += io;
        let (mut a, makespan) = assign_chunk(shared, ci * chunk_size, chunk);
        assignments.append(&mut a);
        obs.record_with(
            0,
            "compute",
            "rtt.loop",
            t,
            t + makespan,
            &[("chunk", ci as f64), ("reads", chunk.len() as f64)],
        );
        t += makespan;
    }
    obs.record(0, "stage", "rtt.total", 0.0, t);
    let trace = obs.take();
    RttOutput {
        assignments,
        timings: RttTimings::from_trace(&trace, 0),
        trace,
    }
}

/// Hybrid MPI+OpenMP ReadsToTranscripts — one rank's program (§III-C).
pub fn rtt_hybrid(comm: &mut Comm, shared: &RttShared) -> RttOutput {
    let track = comm.track();
    let start = comm.clock.now();

    // Replicated k-mer→bundle table (OpenMP-only region, per rank).
    comm.charge(shared.kmer_setup_cost);
    comm.obs
        .record(track, "compute", "rtt.kmer_setup", start, comm.clock.now());

    let size = comm.size();
    let rank = comm.rank();
    let chunk_size = shared.cfg.max_mem_reads.max(1);
    let mut my_assignments: Vec<(u32, u32)> = Vec::new();

    // Hold the compute lock for the whole streaming loop: there is no
    // communication inside, and uncontended measurements keep the virtual
    // clock comparable across rank counts.
    let guard = mpisim::compute_lock();
    for (ci, chunk) in shared.reads.chunks(chunk_size).enumerate() {
        // Every rank reads (and pays for) every chunk...
        let t0 = std::time::Instant::now();
        std::hint::black_box(stream_chunk(chunk));
        let io = t0.elapsed().as_secs_f64();
        let t_before = comm.clock.now();
        comm.charge(io);
        comm.obs.record_with(
            track,
            "io",
            "rtt.io",
            t_before,
            comm.clock.now(),
            &[("chunk", ci as f64)],
        );
        // ...but only processes the chunks congruent to its rank.
        if ci % size == rank {
            let (mut a, makespan) = assign_chunk(shared, ci * chunk_size, chunk);
            let t_before = comm.clock.now();
            comm.charge(makespan);
            comm.obs.record_with(
                track,
                "compute",
                "rtt.loop",
                t_before,
                comm.clock.now(),
                &[("chunk", ci as f64), ("reads", chunk.len() as f64)],
            );
            my_assignments.append(&mut a);
        }
    }

    drop(guard);

    // Each rank writes its own output file; the master concatenates them.
    let flat: Vec<u32> = my_assignments.iter().flat_map(|&(r, c)| [r, c]).collect();
    let t_before = comm.clock.now();
    let gathered = comm.gatherv(0, &pack_u32s(&flat));
    let merged_bytes = if let Some(parts) = gathered {
        // Master: "a simple cat command".
        let merged = comm.charge_measured(|| {
            let mut all: Vec<(u32, u32)> = Vec::new();
            for p in &parts {
                let flat = unpack_u32s(p).expect("peer sent whole u32s");
                all.extend(flat.chunks_exact(2).map(|c| (c[0], c[1])));
            }
            all.sort_unstable();
            all
        });
        pack_u32s(
            &merged
                .iter()
                .flat_map(|&(r, c)| [r, c])
                .collect::<Vec<u32>>(),
        )
    } else {
        Vec::new()
    };
    // Distribute the merged table so every rank returns the same output
    // (in the paper only the master's file exists; broadcasting keeps the
    // simulation's outputs comparable without changing the timing story).
    let merged = comm.bcast(0, &merged_bytes);
    comm.obs
        .record(track, "comm", "rtt.concat", t_before, comm.clock.now());

    let flat = unpack_u32s(&merged).expect("root sent whole u32s");
    let assignments: Vec<(u32, u32)> = flat.chunks_exact(2).map(|c| (c[0], c[1])).collect();

    comm.obs
        .record(track, "stage", "rtt.total", start, comm.clock.now());
    RttOutput {
        assignments,
        timings: RttTimings::from_trace(&comm.obs.snapshot(), track),
        trace: obs::Trace::default(),
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    pub(crate) fn rec(id: &str, seq: &[u8]) -> Record {
        Record::new(id, seq.to_vec())
    }

    pub(crate) const C0: &[u8] = b"CGAGTCGGTTATCTTCGGATACTGTATAGTCC";
    pub(crate) const C1: &[u8] = b"AAAGCGGCACTTGTGAAGTGTTCCCCACGCCG";

    pub(crate) fn fixtures() -> RttShared {
        let contigs = vec![rec("c0", C0), rec("c1", C1)];
        let components = vec![vec![0], vec![1]];
        // Reads drawn from each contig, interleaved.
        let mut reads = Vec::new();
        for i in 0..8 {
            reads.push(rec(&format!("r{}a", i), &C0[i..i + 16]));
            reads.push(rec(&format!("r{}b", i), &C1[i..i + 16]));
        }
        // One junk read matching nothing.
        reads.push(rec("junk", b"TTTTTTTTTTTTTTTT"));
        let mut cfg = ChrysalisConfig::small(8);
        cfg.max_mem_reads = 3;
        RttShared::prepare_records(reads, &contigs, &components, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::{fixtures, rec, C0, C1};
    use super::*;
    use mpisim::{run_cluster, NetModel};
    use std::sync::Arc;

    #[test]
    fn assign_prefers_majority_component() {
        let shared = fixtures();
        assert_eq!(shared.assign(&C0[..16]), Some(0));
        assert_eq!(shared.assign(&C1[..16]), Some(1));
        assert_eq!(shared.assign(b"TTTTTTTTTTTTTTTT"), None);
    }

    #[test]
    fn shared_memory_assigns_all_real_reads() {
        let shared = fixtures();
        let out = rtt_shared_memory(&shared);
        assert_eq!(out.assignments.len(), 16); // junk read dropped
        for &(r, c) in &out.assignments {
            let expect = if shared.reads[r as usize].id.ends_with('a') {
                0
            } else {
                1
            };
            assert_eq!(c, expect, "read {r}");
        }
        assert!(out.timings.total > 0.0);
    }

    #[test]
    fn hybrid_matches_shared_memory() {
        let shared = Arc::new(fixtures());
        let serial = rtt_shared_memory(&shared);
        for ranks in [1usize, 2, 3, 4] {
            let sh = Arc::clone(&shared);
            let outs = run_cluster(ranks, NetModel::ideal(), move |comm| rtt_hybrid(comm, &sh));
            for o in &outs {
                assert_eq!(o.value.assignments, serial.assignments, "ranks={ranks}");
            }
        }
    }

    #[test]
    fn hybrid_io_is_redundant_but_loop_is_split() {
        let shared = Arc::new(fixtures());
        let outs = run_cluster(3, NetModel::ideal(), move |comm| rtt_hybrid(comm, &shared));
        // Every rank pays full I/O.
        for o in &outs {
            assert!(o.value.timings.io > 0.0);
        }
        // The main loop splits across ranks: each rank's loop time is
        // below the serial sum.
        let loop_sum: f64 = outs.iter().map(|o| o.value.timings.main_loop).sum();
        for o in &outs {
            assert!(o.value.timings.main_loop < loop_sum || loop_sum == 0.0);
        }
    }

    #[test]
    fn shared_memory_trace_matches_timings() {
        let shared = fixtures();
        let out = rtt_shared_memory(&shared);
        let (s, e) = out.trace.span_bounds(0, "rtt.total").unwrap();
        assert_eq!(s, 0.0);
        assert!((e - out.timings.total).abs() < 1e-12);
        assert!((out.trace.span_sum(0, "rtt.io") - out.timings.io).abs() < 1e-12);
        // One io span per chunk (17 reads, chunk size 3 -> 6 chunks).
        assert_eq!(
            out.trace
                .on_track(0)
                .filter(|sp| sp.name == "rtt.io")
                .count(),
            6
        );
        let roots = out.trace.tree(0);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "rtt.total");
    }

    #[test]
    fn hybrid_records_spans_on_comm_tracer() {
        let shared = Arc::new(fixtures());
        let outs = run_cluster(2, NetModel::idataplex(), move |comm| {
            let out = rtt_hybrid(comm, &shared);
            (out.timings, comm.rank() as u32)
        });
        for o in &outs {
            let (timings, track) = o.value;
            assert!(o.trace.span_bounds(track, "rtt.total").is_some());
            assert!((o.trace.span_sum(track, "rtt.loop") - timings.main_loop).abs() < 1e-12);
            assert!((o.trace.span_sum(track, "rtt.concat") - timings.concat).abs() < 1e-12);
        }
    }

    #[test]
    fn ties_break_to_smaller_component() {
        let contigs = vec![rec("c0", C0), rec("c1", C0)]; // identical contigs
        let components = vec![vec![0], vec![1]];
        let shared =
            RttShared::prepare_records(vec![], &contigs, &components, ChrysalisConfig::small(8));
        // All k-mers claimed by component 0 (first wins).
        assert_eq!(shared.assign(&C0[..16]), Some(0));
    }

    #[test]
    fn empty_reads() {
        let contigs = vec![rec("c0", C0)];
        let shared =
            RttShared::prepare_records(vec![], &contigs, &[vec![0]], ChrysalisConfig::small(8));
        let out = rtt_shared_memory(&shared);
        assert!(out.assignments.is_empty());
    }

    #[test]
    fn min_read_kmers_threshold() {
        let contigs = vec![rec("c0", C0)];
        let mut cfg = ChrysalisConfig::small(8);
        cfg.min_read_kmers = 100; // unreachable
        let shared = RttShared::prepare_records(vec![], &contigs, &[vec![0]], cfg);
        assert_eq!(shared.assign(&C0[..16]), None);
    }

    #[test]
    fn spilled_votes_match_reference_tally() {
        // A read touching more components than the inline tally holds: the
        // spill path must preserve exact (count, id) voting semantics.
        let mut state = 0x1234_5678u64;
        let mut base = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            b"ACGT"[(state >> 33) as usize % 4]
        };
        let contigs: Vec<Record> = (0..2 * MAX_INLINE_VOTES)
            .map(|i| {
                let seq: Vec<u8> = (0..10).map(|_| base()).collect();
                rec(&format!("c{i}"), &seq)
            })
            .collect();
        let components: Vec<Vec<usize>> = (0..contigs.len()).map(|i| vec![i]).collect();
        let mut cfg = ChrysalisConfig::small(8);
        cfg.min_read_kmers = 1;
        let shared = RttShared::prepare_records(vec![], &contigs, &components, cfg);
        // One read stitched from every contig touches them all.
        let read: Vec<u8> = contigs.iter().flat_map(|c| c.seq.clone()).collect();
        // Reference: plain HashMap tally, same threshold and tie-break.
        let mut votes: std::collections::HashMap<u32, u32> = Default::default();
        for (_, km) in seqio::kmer::CanonicalKmers::new(&read, 8).unwrap() {
            if let Some(c) = shared.kmer_to_component.get(km.packed()) {
                *votes.entry(c).or_insert(0) += 1;
            }
        }
        assert!(
            votes.len() > MAX_INLINE_VOTES,
            "fixture must overflow the inline tally ({} components)",
            votes.len()
        );
        let expect = votes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(c, _)| c);
        assert_eq!(shared.assign(&read), expect);
    }
}

/// ReadsToTranscripts with **striped I/O** — the paper's future-work
/// direction ("exploring MPI-I/O for RNA-Seq data", §VI).
///
/// Identical to [`rtt_hybrid`] except each rank reads *only* the chunks it
/// processes (an `MPI_File_read_at`-style strided access) instead of
/// streaming the whole file and discarding most of it. The redundant-I/O
/// term of §III-C disappears; everything else (assignment, gather, concat)
/// is unchanged, so outputs match `rtt_hybrid` exactly.
pub fn rtt_hybrid_striped(comm: &mut Comm, shared: &RttShared) -> RttOutput {
    let track = comm.track();
    let start = comm.clock.now();

    comm.charge(shared.kmer_setup_cost);
    comm.obs
        .record(track, "compute", "rtt.kmer_setup", start, comm.clock.now());

    let size = comm.size();
    let rank = comm.rank();
    let chunk_size = shared.cfg.max_mem_reads.max(1);
    let mut my_assignments: Vec<(u32, u32)> = Vec::new();

    let guard = mpisim::compute_lock();
    for (ci, chunk) in shared.reads.chunks(chunk_size).enumerate() {
        if ci % size != rank {
            continue; // striped access: other ranks' chunks are never read
        }
        let t0 = std::time::Instant::now();
        std::hint::black_box(stream_chunk(chunk));
        let io = t0.elapsed().as_secs_f64();
        let t_before = comm.clock.now();
        comm.charge(io);
        comm.obs.record_with(
            track,
            "io",
            "rtt.io",
            t_before,
            comm.clock.now(),
            &[("chunk", ci as f64)],
        );
        let (mut a, makespan) = assign_chunk(shared, ci * chunk_size, chunk);
        let t_before = comm.clock.now();
        comm.charge(makespan);
        comm.obs.record_with(
            track,
            "compute",
            "rtt.loop",
            t_before,
            comm.clock.now(),
            &[("chunk", ci as f64), ("reads", chunk.len() as f64)],
        );
        my_assignments.append(&mut a);
    }
    drop(guard);

    let flat: Vec<u32> = my_assignments.iter().flat_map(|&(r, c)| [r, c]).collect();
    let t_before = comm.clock.now();
    let gathered = comm.gatherv(0, &pack_u32s(&flat));
    let merged_bytes = if let Some(parts) = gathered {
        let merged = comm.charge_measured(|| {
            let mut all: Vec<(u32, u32)> = Vec::new();
            for p in &parts {
                let flat = unpack_u32s(p).expect("peer sent whole u32s");
                all.extend(flat.chunks_exact(2).map(|c| (c[0], c[1])));
            }
            all.sort_unstable();
            all
        });
        pack_u32s(
            &merged
                .iter()
                .flat_map(|&(r, c)| [r, c])
                .collect::<Vec<u32>>(),
        )
    } else {
        Vec::new()
    };
    let merged = comm.bcast(0, &merged_bytes);
    comm.obs
        .record(track, "comm", "rtt.concat", t_before, comm.clock.now());

    let flat = unpack_u32s(&merged).expect("root sent whole u32s");
    let assignments: Vec<(u32, u32)> = flat.chunks_exact(2).map(|c| (c[0], c[1])).collect();

    comm.obs
        .record(track, "stage", "rtt.total", start, comm.clock.now());
    RttOutput {
        assignments,
        timings: RttTimings::from_trace(&comm.obs.snapshot(), track),
        trace: obs::Trace::default(),
    }
}

#[cfg(test)]
mod striped_tests {
    use super::tests_support::fixtures;
    use super::*;
    use mpisim::{run_cluster, NetModel};
    use std::sync::Arc;

    #[test]
    fn striped_matches_streaming_output() {
        let shared = Arc::new(fixtures());
        let serial = rtt_shared_memory(&shared);
        for ranks in [1usize, 2, 4] {
            let sh = Arc::clone(&shared);
            let outs = run_cluster(ranks, NetModel::ideal(), move |comm| {
                rtt_hybrid_striped(comm, &sh)
            });
            for o in &outs {
                assert_eq!(o.value.assignments, serial.assignments, "ranks={ranks}");
            }
        }
    }

    #[test]
    fn striped_io_shrinks_with_ranks() {
        let shared = Arc::new(fixtures());
        let s1 = Arc::clone(&shared);
        let stream = run_cluster(4, NetModel::ideal(), move |comm| {
            rtt_hybrid(comm, &s1).timings.io
        });
        let s2 = Arc::clone(&shared);
        let striped = run_cluster(4, NetModel::ideal(), move |comm| {
            rtt_hybrid_striped(comm, &s2).timings.io
        });
        let stream_io: f64 = stream.iter().map(|o| o.value).sum();
        let striped_io: f64 = striped.iter().map(|o| o.value).sum();
        assert!(
            striped_io < stream_io,
            "striped total I/O ({striped_io}) must undercut redundant streaming ({stream_io})"
        );
    }
}

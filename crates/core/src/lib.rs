//! Chrysalis — the paper's primary contribution, reimplemented in Rust with
//! both the original shared-memory (OpenMP-style) execution and the hybrid
//! MPI+OpenMP execution of Sachdeva et al. (IPDPSW/HiCOMB 2014).
//!
//! Chrysalis sits between Inchworm and Butterfly in the Trinity pipeline:
//!
//! 1. **Bowtie** ([`bowtie_mpi`]) aligns every input read to the Inchworm
//!    contigs; the paper distributes this by splitting the contig FASTA
//!    across ranks (PyFasta) and merging per-rank SAM files.
//! 2. **GraphFromFasta** ([`graph_from_fasta`]) clusters contigs into
//!    components: loop 1 ([`weld`]) harvests read-supported 2k-length
//!    "welding" subsequences shared between contigs; loop 2 ([`pairs`])
//!    finds contig pairs sharing a weld; union-find turns pairs (plus
//!    paired-end scaffold links, [`scaffold`]) into components.
//! 3. **ReadsToTranscripts** ([`reads_to_transcripts`]) assigns every read
//!    to the component sharing the most k-mers, streaming the read file in
//!    `max_mem_reads`-sized chunks.
//!
//! Both compute loops follow the paper's hybrid scheme: a **chunked
//! round-robin** distribution of contigs over MPI ranks (Fig. 3), dynamic
//! OpenMP scheduling within a rank, and `MPI_Allgatherv` pooling of loop
//! outputs (packed strings after loop 1, packed integer arrays after
//! loop 2).
//!
//! ## Simulation notes (documented deviations)
//!
//! Ranks are in-process threads with virtual clocks (see `mpisim`). Two
//! deliberate simplifications keep a 192-rank simulation tractable on one
//! machine, both semantically equivalent to the paper's code:
//!
//! * Read-only *replicated* structures (the k-mer→contig map, the read
//!   support index, the k-mer→component map) are built once and shared by
//!   reference; every rank charges the measured build cost to its clock,
//!   exactly as if it had built its own copy concurrently.
//! * Final output generation (clustering, bundle emission, file merges)
//!   runs on the master rank with its measured cost; peers synchronize
//!   through the closing collective, so cluster elapsed time is identical
//!   to the redundant-execution layout.

pub mod bowtie_mpi;
pub mod config;
pub mod graph_from_fasta;
pub mod pairs;
pub mod reads_to_transcripts;
pub mod scaffold;
pub mod timings;
pub mod weld;

pub use config::ChrysalisConfig;
pub use graph_from_fasta::{
    gff_hybrid, gff_hybrid_dynamic, gff_shared_memory, GffOutput, GffShared,
};
pub use reads_to_transcripts::{
    rtt_hybrid, rtt_hybrid_striped, rtt_shared_memory, RttOutput, RttShared,
};
pub use timings::{GffTimings, PhaseSpread, RttTimings};

//! The distributed Bowtie step (§III-A).
//!
//! The *target* FASTA (Inchworm contigs) is split across ranks with the
//! PyFasta-equivalent splitter — a **single-threaded** step whose cost the
//! paper identifies as the dominant overhead (Fig. 10). Each rank builds an
//! FM-index over its slice, aligns **all** input reads against it, and
//! writes a SAM file; the files are merged into one at the end of the job.

use std::collections::HashMap;

use seqio::fasta::Record;
use seqio::splitter::plan_split;

use bowtie::align::{align_read, AlignConfig};
use bowtie::fmindex::FmIndex;
use bowtie::sam::SamRecord;

use mpisim::comm::Comm;
use mpisim::pack::{pack_byte_strings, unpack_byte_strings};
use omp::makespan::simulate_loop;
use omp::pool::parallel_map_timed;

use crate::config::ChrysalisConfig;

/// Per-rank phase times of the distributed Bowtie step.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BowtieTimings {
    /// PyFasta split (single-threaded, serial; every rank waits on it).
    pub split: f64,
    /// FM-index construction over this rank's slice.
    pub index: f64,
    /// Read alignment on this rank.
    pub align: f64,
    /// SAM merge at the master.
    pub merge: f64,
    /// Total stage time on this rank.
    pub total: f64,
}

/// The stage output.
#[derive(Debug, Clone, PartialEq)]
pub struct BowtieMpiOutput {
    /// Merged SAM records (sorted by read name, then contig/position, like
    /// the concatenated-and-sorted merge of per-rank files).
    pub sam: Vec<SamRecord>,
    /// This rank's timings.
    pub timings: BowtieTimings,
}

/// Run the distributed Bowtie step — one rank's program.
///
/// `contigs` and `reads` are the replicated inputs. Alignment semantics
/// note (inherited from the paper's design): `best_strata` applies *within
/// a rank's slice*; a read may report best-stratum hits from several
/// slices, exactly as with per-slice Bowtie runs.
pub fn bowtie_mpi(
    comm: &mut Comm,
    contigs: &[Record],
    reads: &[Record],
    cfg: &ChrysalisConfig,
    align_cfg: AlignConfig,
) -> BowtieMpiOutput {
    let start = comm.clock.now();
    let mut timings = BowtieTimings::default();
    let size = comm.size();

    // ---- PyFasta split: single-threaded on the master ----
    let t_before = comm.clock.now();
    let plan = if comm.is_root() {
        let plan = comm.charge_measured(|| plan_split(contigs, size).expect("size > 0"));
        // Ship each rank its piece indices (the paper writes split files).
        let encoded: Vec<Vec<u8>> = plan
            .pieces
            .iter()
            .map(|piece| {
                piece
                    .iter()
                    .flat_map(|&i| (i as u32).to_le_bytes())
                    .collect()
            })
            .collect();
        comm.bcast(0, &pack_byte_strings(&encoded));
        plan.pieces
    } else {
        let packed = comm.bcast(0, &[]);
        unpack_byte_strings(&packed)
            .expect("root sent well-formed plan")
            .into_iter()
            .map(|bytes| {
                bytes
                    .chunks_exact(4)
                    .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
                    .collect()
            })
            .collect()
    };
    timings.split = comm.clock.now() - t_before;

    // ---- Index this rank's slice ----
    let my_piece: Vec<Record> = plan[comm.rank()]
        .iter()
        .map(|&i| contigs[i].clone())
        .collect();
    let index = comm.charge_measured(|| FmIndex::build(&my_piece));
    timings.index = comm.clock.now() - t_before - timings.split;

    // ---- Align every read against the slice (multi-threaded) ----
    let guard = mpisim::compute_lock();
    let (hit_lists, costs) =
        parallel_map_timed(reads, |read| align_read(&index, &read.seq, align_cfg));
    drop(guard);
    let makespan = simulate_loop(&costs, cfg.threads, cfg.schedule).makespan;
    comm.charge(makespan);
    timings.align = makespan;

    let mut my_sam: Vec<SamRecord> = Vec::new();
    for (read, hits) in reads.iter().zip(&hit_lists) {
        for h in hits {
            my_sam.push(SamRecord::from_alignment(
                &read.id,
                index.contig_name(h.contig),
                h,
            ));
        }
    }

    // ---- Merge per-rank SAM files at the master ----
    let lines: Vec<Vec<u8>> = my_sam.iter().map(|r| r.to_line().into_bytes()).collect();
    let t_before = comm.clock.now();
    let gathered = comm.gatherv(0, &pack_byte_strings(&lines));
    let merged_bytes = if let Some(parts) = gathered {
        let merged: Vec<Vec<u8>> = comm.charge_measured(|| {
            let mut all: Vec<Vec<u8>> = parts
                .iter()
                .flat_map(|p| unpack_byte_strings(p).expect("peer sent SAM lines"))
                .collect();
            all.sort();
            all
        });
        pack_byte_strings(&merged)
    } else {
        Vec::new()
    };
    let merged = comm.bcast(0, &merged_bytes);
    timings.merge = comm.clock.now() - t_before;

    let sam: Vec<SamRecord> = unpack_byte_strings(&merged)
        .expect("root sent SAM lines")
        .into_iter()
        .filter_map(|l| SamRecord::parse_line(&String::from_utf8_lossy(&l)))
        .collect();

    timings.total = comm.clock.now() - start;
    BowtieMpiOutput { sam, timings }
}

/// Build the `contig name → dense index` map the scaffolder consumes.
pub fn contig_name_index(contigs: &[Record]) -> HashMap<String, u32> {
    contigs
        .iter()
        .enumerate()
        .map(|(i, c)| (c.id.clone(), i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{run_cluster, NetModel};
    use std::sync::Arc;

    fn rec(id: &str, seq: &[u8]) -> Record {
        Record::new(id, seq.to_vec())
    }

    fn contigs() -> Vec<Record> {
        vec![
            rec("c0", b"CGAGTCGGTTATCTTCGGATACTGTATAGTCC"),
            rec("c1", b"AAAGCGGCACTTGTGAAGTGTTCCCCACGCCG"),
            rec("c2", b"CCATACCAAGAGGTAGTAGTCTCAGAATCTTG"),
        ]
    }

    fn reads() -> Vec<Record> {
        vec![
            rec("r0/1", &contigs()[0].seq[..16]),
            rec("r1/1", &contigs()[1].seq[8..24]),
            rec("r2/1", &contigs()[2].seq[16..]),
            rec("junk/1", b"TTTTTTTTTTTTTTTT"),
        ]
    }

    fn run(ranks: usize) -> Vec<mpisim::RankOutput<BowtieMpiOutput>> {
        let contigs = Arc::new(contigs());
        let reads = Arc::new(reads());
        run_cluster(ranks, NetModel::ideal(), move |comm| {
            bowtie_mpi(
                comm,
                &contigs,
                &reads,
                &ChrysalisConfig::small(8),
                AlignConfig {
                    max_mismatches: 0,
                    ..AlignConfig::default()
                },
            )
        })
    }

    #[test]
    fn single_rank_aligns_reads() {
        let outs = run(1);
        let sam = &outs[0].value.sam;
        assert_eq!(sam.len(), 3); // junk read unaligned, others unique
        let names: Vec<&str> = sam.iter().map(|r| r.qname.as_str()).collect();
        assert!(names.contains(&"r0/1"));
    }

    #[test]
    fn split_runs_agree_with_single_rank() {
        let single = run(1);
        for ranks in [2usize, 3, 5] {
            let multi = run(ranks);
            for o in &multi {
                assert_eq!(o.value.sam, single[0].value.sam, "ranks={ranks}");
            }
        }
    }

    #[test]
    fn timings_populated() {
        let outs = run(2);
        for o in &outs {
            let t = o.value.timings;
            assert!(t.total > 0.0);
            assert!(t.align >= 0.0 && t.index >= 0.0 && t.split >= 0.0);
            assert!(t.total + 1e-9 >= t.align);
        }
    }

    #[test]
    fn more_ranks_than_contigs() {
        let outs = run(5); // only 3 contigs; two ranks idle
        assert_eq!(outs.len(), 5);
        assert_eq!(outs[0].value.sam.len(), 3);
    }

    #[test]
    fn name_index() {
        let idx = contig_name_index(&contigs());
        assert_eq!(idx["c0"], 0);
        assert_eq!(idx["c2"], 2);
    }
}

//! GraphFromFasta loop 2: finding contig pairs that share a weld.
//!
//! After loop 1's welds are pooled on every rank, the welds are expanded
//! into a k-mer index — the "setting up the k-mers before the second loop"
//! the paper lists among the non-parallel regions. Loop 2 then scans every
//! contig's k-mers against that index and records `(weld, contig)` matches:
//! a weldmer is a *mixed* window (left half from one contig, right half
//! from another), so both of its parent contigs match it through their
//! halves. Pooled matches grouped by weld yield the contig pairs that
//! union-find clusters into components. The exchange is packed integer
//! arrays — "substantially less communication compared to the first loop".

use std::collections::{HashMap, HashSet};

use seqio::kmer::CanonicalKmers;
use seqio::packed::PackedSeq;

use crate::config::ChrysalisConfig;

/// The pooled weld set expanded into a canonical-k-mer index (identical on
/// every rank: the pooled weld vector is rank-ordered deterministically).
#[derive(Debug, Clone)]
pub struct WeldKmerIndex {
    k: usize,
    n_welds: usize,
    /// canonical k-mer -> weld ids containing it.
    map: HashMap<u64, Vec<u32>>,
}

impl WeldKmerIndex {
    /// Build from the pooled weld list (deduplicating welds while
    /// preserving first-occurrence order so ids agree across ranks).
    pub fn build(pooled: &[Vec<u8>], k: usize) -> Self {
        let mut ids: HashMap<&[u8], u32> = HashMap::with_capacity(pooled.len());
        let mut map: HashMap<u64, Vec<u32>> = HashMap::new();
        for w in pooled {
            let next = ids.len() as u32;
            let id = *ids.entry(w.as_slice()).or_insert(next);
            if id != next {
                continue; // duplicate weld
            }
            if let Ok(iter) = CanonicalKmers::new(w, k) {
                for (_, km) in iter {
                    let v = map.entry(km.packed()).or_default();
                    if v.last() != Some(&id) {
                        v.push(id);
                    }
                }
            }
        }
        WeldKmerIndex {
            k,
            n_welds: ids.len(),
            map,
        }
    }

    /// Number of distinct welds.
    pub fn len(&self) -> usize {
        self.n_welds
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.n_welds == 0
    }

    /// Weld ids containing a canonical k-mer.
    fn welds_with(&self, packed: u64) -> &[u32] {
        self.map.get(&packed).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Scan one contig for weld matches (one loop-2 iteration). Returns
/// `(weld_index, contig_index)` pairs, deduplicated within the contig.
///
/// The contig arrives pre-packed; its canonical k-mers roll off the 2-bit
/// words in O(1) per base (welds themselves are short derived sequences,
/// indexed from bytes at build time).
pub fn match_contig(
    contig_idx: u32,
    contigs: &[PackedSeq],
    welds: &WeldKmerIndex,
    _cfg: &ChrysalisConfig,
) -> Vec<(u32, u32)> {
    let seq = &contigs[contig_idx as usize];
    let mut out = Vec::new();
    if welds.is_empty() {
        return out;
    }
    let Ok(iter) = seq.canonical_kmers(welds.k) else {
        return out;
    };
    let mut seen: HashSet<u32> = HashSet::new();
    for (_, km) in iter {
        for &wi in welds.welds_with(km.packed()) {
            if seen.insert(wi) {
                out.push((wi, contig_idx));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Group pooled `(weld, contig)` matches into unordered contig pairs
/// (deduplicated, `a < b`), the input to union-find clustering.
pub fn pairs_from_matches(matches: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut by_weld: HashMap<u32, Vec<u32>> = HashMap::new();
    for &(w, c) in matches {
        let v = by_weld.entry(w).or_default();
        if !v.contains(&c) {
            v.push(c);
        }
    }
    let mut pairs: HashSet<(u32, u32)> = HashSet::new();
    for (_, mut contigs) in by_weld {
        contigs.sort_unstable();
        for i in 0..contigs.len() {
            for j in i + 1..contigs.len() {
                pairs.insert((contigs[i], contigs[j]));
            }
        }
    }
    let mut v: Vec<(u32, u32)> = pairs.into_iter().collect();
    v.sort_unstable();
    v
}

/// Flatten matches for the packed-integer MPI exchange.
pub fn pack_matches(matches: &[(u32, u32)]) -> Vec<u32> {
    let mut v = Vec::with_capacity(matches.len() * 2);
    for &(w, c) in matches {
        v.push(w);
        v.push(c);
    }
    v
}

/// Inverse of [`pack_matches`]. `None` on odd-length input.
pub fn unpack_matches(flat: &[u32]) -> Option<Vec<(u32, u32)>> {
    if flat.len() % 2 != 0 {
        return None;
    }
    Some(flat.chunks_exact(2).map(|c| (c[0], c[1])).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weld::canonical_weld;
    use seqio::alphabet::revcomp;

    const K: usize = 8;
    const SEED: &[u8] = b"GGATACT";
    const A_LEFT: &[u8] = b"CGAGTCGGTTAT";
    const B_RIGHT: &[u8] = b"GTGAAGTGTTCC";

    fn contig_a() -> Vec<u8> {
        [A_LEFT, SEED, b"CTTCGGCAAGTC".as_slice()].concat()
    }

    fn contig_b() -> Vec<u8> {
        [b"AAAGCGGCACTT".as_slice(), SEED, B_RIGHT].concat()
    }

    /// The junction weldmer: A's k/2 left flank + seed + B's k/2 right flank.
    fn junction_weld() -> Vec<u8> {
        canonical_weld(&[&A_LEFT[A_LEFT.len() - K / 2..], SEED, &B_RIGHT[..K / 2]].concat())
    }

    fn fixtures() -> (Vec<PackedSeq>, WeldKmerIndex, ChrysalisConfig) {
        let contigs = seqio::packed::encode_all(&[
            contig_a(),
            contig_b(),
            b"TTTTGGGGCCCCAAAATTTTGGGGCCCC".to_vec(),
        ]);
        let welds = WeldKmerIndex::build(&[junction_weld()], K);
        (contigs, welds, ChrysalisConfig::small(K))
    }

    #[test]
    fn index_dedups_and_counts() {
        let w1 = junction_weld();
        let idx = WeldKmerIndex::build(&[w1.clone(), w1.clone()], K);
        assert_eq!(idx.len(), 1);
        assert!(!idx.is_empty());
        let empty = WeldKmerIndex::build(&[], K);
        assert!(empty.is_empty());
    }

    #[test]
    fn both_parent_contigs_match_the_weld() {
        let (contigs, welds, cfg) = fixtures();
        let m0 = match_contig(0, &contigs, &welds, &cfg);
        let m1 = match_contig(1, &contigs, &welds, &cfg);
        let m2 = match_contig(2, &contigs, &welds, &cfg);
        assert_eq!(m0, vec![(0, 0)], "contig a matches through its left half");
        assert_eq!(m1, vec![(0, 1)], "contig b matches through its right half");
        assert!(m2.is_empty(), "unrelated contig matches nothing");
    }

    #[test]
    fn revcomp_contig_still_matches() {
        let (mut contigs, welds, cfg) = fixtures();
        contigs[1] = PackedSeq::from_bytes(&revcomp(&contig_b()));
        let m1 = match_contig(1, &contigs, &welds, &cfg);
        assert_eq!(m1, vec![(0, 1)]);
    }

    #[test]
    fn pairs_from_matches_groups_by_weld() {
        let pairs = pairs_from_matches(&[(0, 0), (0, 1), (1, 5), (1, 3), (1, 7)]);
        assert_eq!(pairs, vec![(0, 1), (3, 5), (3, 7), (5, 7)]);
    }

    #[test]
    fn pairs_dedup() {
        let pairs = pairs_from_matches(&[(0, 1), (0, 2), (1, 1), (1, 2), (0, 1)]);
        assert_eq!(pairs, vec![(1, 2)]);
    }

    #[test]
    fn no_self_pairs() {
        let pairs = pairs_from_matches(&[(0, 4), (0, 4)]);
        assert!(pairs.is_empty());
    }

    #[test]
    fn end_to_end_pairing() {
        let (contigs, welds, cfg) = fixtures();
        let mut matches = Vec::new();
        for i in 0..contigs.len() as u32 {
            matches.extend(match_contig(i, &contigs, &welds, &cfg));
        }
        assert_eq!(pairs_from_matches(&matches), vec![(0, 1)]);
    }

    #[test]
    fn pack_round_trip() {
        let matches = vec![(3u32, 9u32), (1, 2)];
        let flat = pack_matches(&matches);
        assert_eq!(flat, vec![3, 9, 1, 2]);
        assert_eq!(unpack_matches(&flat).unwrap(), matches);
        assert!(unpack_matches(&[1, 2, 3]).is_none());
    }

    #[test]
    fn short_contig_no_matches() {
        let (_, welds, cfg) = fixtures();
        let short = vec![PackedSeq::from_bytes(b"ACGT")];
        assert!(match_contig(0, &short, &welds, &cfg).is_empty());
    }
}

//! GraphFromFasta drivers: shared-memory baseline and hybrid MPI+OpenMP.

use kcount::counter::KmerCounts;
use seqio::fasta::Record;
use seqio::packed::PackedSeq;

use graph::unionfind::UnionFind;
use mpisim::comm::Comm;
use mpisim::pack::{pack_byte_strings, pack_u32s, unpack_byte_strings, unpack_u32s};
use omp::makespan::simulate_loop;
use omp::pool::parallel_map_timed;
use omp::schedule::{chunked_round_robin, Schedule};

use crate::config::ChrysalisConfig;
use crate::pairs::{match_contig, pack_matches, pairs_from_matches, unpack_matches, WeldKmerIndex};
use crate::timings::GffTimings;
use crate::weld::{harvest_contig, KmerContigMap, WeldSupport};

/// Read-only state every rank needs: the contig set, the seed-occurrence
/// map and the read k-mer table (support oracle). Built once and shared;
/// `prep_cost` — the *parallel* (OpenMP-accounted) build time of the seed
/// map — is charged to each rank's clock as if it had built its own copy
/// (see crate-level notes). The read k-mer table is produced by the
/// Jellyfish stage and only *consumed* here.
pub struct GffShared {
    /// The Inchworm contigs, 2-bit packed once at stage entry — every
    /// harvest/match loop iterates the packed form directly.
    pub contigs: Vec<PackedSeq>,
    /// Canonical (k−1)-mer → occurrence map.
    pub kmap: KmerContigMap,
    /// Read k-mer counts (the weld-support oracle).
    pub counts: KmerCounts,
    /// Virtual cost of building the seed map with the configured threads.
    pub prep_cost: f64,
    /// Stage configuration.
    pub cfg: ChrysalisConfig,
}

/// Build the seed map in parallel batches, returning the map and its
/// virtual cost — the makespan of the batched build over the configured
/// threads.
///
/// The modeled system builds this table like Jellyfish: concurrent
/// insertion into a sharded (lock-striped) table, with no separate merge
/// phase. Our simulation builds per-batch partials and merges them so
/// per-batch costs can be measured cleanly; the merge is an artifact of
/// that measurement strategy (its work is the same hashing the sharded
/// build already pays per insert), so it is executed for real but not
/// charged to the virtual clock.
fn build_kmap_parallel(
    contigs: &[PackedSeq],
    k: usize,
    threads: usize,
    schedule: Schedule,
) -> (KmerContigMap, f64) {
    const BATCH: usize = 32;
    let batches: Vec<(usize, &[PackedSeq])> = contigs
        .chunks(BATCH)
        .enumerate()
        .map(|(i, c)| (i * BATCH, c))
        .collect();
    if batches.is_empty() {
        return (KmerContigMap::build(&[], k), 0.0);
    }
    let (partials, costs) = parallel_map_timed(&batches, |&(off, recs)| {
        KmerContigMap::build_with_offset(recs, k, off)
    });
    let par = simulate_loop(&costs, threads, schedule).makespan;
    let mut merged = KmerContigMap::build(&[], k);
    for p in partials {
        merged.merge(p);
    }
    (merged, par)
}

impl GffShared {
    /// Build the replicated state from pre-packed contigs. `counts` is the
    /// Jellyfish read-k-mer table at the same `k` as `cfg.k`.
    pub fn prepare(contigs: Vec<PackedSeq>, counts: KmerCounts, cfg: ChrysalisConfig) -> Self {
        assert_eq!(counts.k(), cfg.k, "read k-mer table must use the stage's k");
        let (kmap, prep_cost) = build_kmap_parallel(&contigs, cfg.k, cfg.threads, cfg.schedule);
        GffShared {
            contigs,
            kmap,
            counts,
            prep_cost,
            cfg,
        }
    }

    /// [`Self::prepare`] from byte records, encoding each contig once
    /// (test/CLI convenience).
    pub fn prepare_records(contigs: &[Record], counts: KmerCounts, cfg: ChrysalisConfig) -> Self {
        Self::prepare(seqio::packed::encode_all(contigs), counts, cfg)
    }

    fn support(&self) -> WeldSupport<'_> {
        WeldSupport::new(&self.counts, self.cfg.min_weld_support)
    }
}

/// GraphFromFasta's result: pooled welds, contig pairs and the component
/// clustering (identical on every rank).
#[derive(Debug, Clone, PartialEq)]
pub struct GffOutput {
    /// Pooled, deduplicated welds in rank order.
    pub welds: Vec<Vec<u8>>,
    /// Welded contig pairs (`a < b`, sorted).
    pub pairs: Vec<(u32, u32)>,
    /// Component id per contig.
    pub component_of: Vec<usize>,
    /// Contig indices per component.
    pub components: Vec<Vec<usize>>,
    /// This rank's phase timings (derived from the span trace).
    pub timings: GffTimings,
    /// Span trace of the stage. Populated by the shared-memory driver
    /// (virtual timeline from t = 0 on track 0, with per-thread busy/idle
    /// lanes at [`obs::THREAD_TRACK_BASE`]` + t`). Hybrid ranks leave it
    /// empty: their spans are recorded on [`Comm::obs`] and travel out via
    /// `mpisim::RankOutput::trace` instead.
    pub trace: obs::Trace,
}

/// Cluster contigs from welded pairs with union-find.
pub fn cluster(n_contigs: usize, pairs: &[(u32, u32)]) -> (Vec<usize>, Vec<Vec<usize>>) {
    let mut uf = UnionFind::new(n_contigs);
    for &(a, b) in pairs {
        uf.union(a as usize, b as usize);
    }
    uf.into_components()
}

/// The items of one rank's chunked-round-robin share, flattened.
fn rank_items(n: usize, rank: usize, size: usize, chunk: usize) -> Vec<u32> {
    let groups = chunked_round_robin(n, size, chunk);
    groups[rank]
        .iter()
        .flat_map(|c| c.start as u32..c.end as u32)
        .collect()
}

fn dedup_preserving_order(welds: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    let mut seen = std::collections::HashSet::new();
    welds
        .into_iter()
        .filter(|w| seen.insert(w.clone()))
        .collect()
}

/// Shared-memory (OpenMP-only) GraphFromFasta: the paper's baseline,
/// "run with 16 threads on one node".
///
/// Records the stage's virtual timeline (prep → loop1 → weld_index →
/// loop2 → cluster under a `"gff.total"` stage span) on track 0 of the
/// returned trace, with per-thread busy/idle lanes for both OpenMP loops.
pub fn gff_shared_memory(shared: &GffShared) -> GffOutput {
    let cfg = &shared.cfg;
    let n = shared.contigs.len();
    let items: Vec<u32> = (0..n as u32).collect();
    let support = shared.support();
    let obs = obs::Tracer::new();
    obs.name_track(0, "gff");
    for t in 0..cfg.threads as u32 {
        obs.name_track(obs::THREAD_TRACK_BASE + t, format!("thread {t}"));
    }
    let mut t = 0.0f64;

    // The seed-map build is an OpenMP-parallel region; its virtual cost is
    // part of the stage total but not of the "non-parallel" bucket.
    obs.record(0, "compute", "gff.prep", t, t + shared.prep_cost);
    t += shared.prep_cost;

    // Loop 1 (OpenMP dynamic over all contigs).
    let (weld_lists, costs) = parallel_map_timed(&items, |&i| {
        harvest_contig(i, &shared.contigs, &shared.kmap, &support, cfg)
    });
    let sim = simulate_loop(&costs, cfg.threads, cfg.schedule);
    sim.record_spans(&obs, t, obs::THREAD_TRACK_BASE, "gff.loop1");
    obs.record(0, "compute", "gff.loop1", t, t + sim.makespan);
    t += sim.makespan;
    let pooled: Vec<Vec<u8>> = weld_lists.into_iter().flatten().collect();

    // Weld k-mer index: "setting up the k-mers before the second loop"
    // (serial region, wall-measured).
    let t0 = std::time::Instant::now();
    let weld_index = WeldKmerIndex::build(&pooled, cfg.k);
    let dt = t0.elapsed().as_secs_f64();
    obs.record(0, "compute", "gff.weld_index", t, t + dt);
    t += dt;

    // Loop 2.
    let (match_lists, costs) = parallel_map_timed(&items, |&i| {
        match_contig(i, &shared.contigs, &weld_index, cfg)
    });
    let sim = simulate_loop(&costs, cfg.threads, cfg.schedule);
    sim.record_spans(&obs, t, obs::THREAD_TRACK_BASE, "gff.loop2");
    obs.record(0, "compute", "gff.loop2", t, t + sim.makespan);
    t += sim.makespan;
    let matches: Vec<(u32, u32)> = match_lists.into_iter().flatten().collect();

    // Clustering and output generation (serial region).
    let t0 = std::time::Instant::now();
    let pairs = pairs_from_matches(&matches);
    let (component_of, components) = cluster(n, &pairs);
    let dt = t0.elapsed().as_secs_f64();
    obs.record(0, "compute", "gff.cluster", t, t + dt);
    t += dt;

    obs.record(0, "stage", "gff.total", 0.0, t);
    let trace = obs.take();
    GffOutput {
        welds: dedup_preserving_order(pooled),
        pairs,
        component_of,
        components,
        timings: GffTimings::from_trace(&trace, 0),
        trace,
    }
}

/// Hybrid MPI+OpenMP GraphFromFasta — one rank's program (§III-B).
///
/// Run it under [`mpisim::run_cluster`]; every rank returns the same
/// welds/pairs/components, with its own timings.
pub fn gff_hybrid(comm: &mut Comm, shared: &GffShared) -> GffOutput {
    let cfg = &shared.cfg;
    let n = shared.contigs.len();
    let size = comm.size();
    let chunk = cfg.chunk_size(n, size);
    let my_items = rank_items(n, comm.rank(), size, chunk);
    let support = shared.support();
    let track = comm.track();
    let start = comm.clock.now();

    // Replicated seed-map build (each rank pays for its own parallel copy).
    comm.charge(shared.prep_cost);
    comm.obs
        .record(track, "compute", "gff.prep", start, comm.clock.now());

    // ---- Loop 1: weld harvest over this rank's chunks ----
    // The compute lock keeps per-item cost measurements uncontended across
    // concurrent rank threads (see mpisim::compute_lock).
    let guard = mpisim::compute_lock();
    let (weld_lists, costs) = parallel_map_timed(&my_items, |&i| {
        harvest_contig(i, &shared.contigs, &shared.kmap, &support, cfg)
    });
    drop(guard);
    let sim = simulate_loop(&costs, cfg.threads, cfg.schedule);
    let t_before = comm.clock.now();
    comm.charge(sim.makespan);
    comm.obs.record_with(
        track,
        "compute",
        "gff.loop1",
        t_before,
        comm.clock.now(),
        &[("items", my_items.len() as f64)],
    );

    // Pack the weld strings into a single sequence and pool on every rank.
    let my_welds: Vec<Vec<u8>> = weld_lists.into_iter().flatten().collect();
    let packed = pack_byte_strings(&my_welds);
    let t_before = comm.clock.now();
    let parts = comm.allgatherv(&packed);
    comm.obs
        .record(track, "comm", "gff.comm1", t_before, comm.clock.now());
    let pooled: Vec<Vec<u8>> = parts
        .iter()
        .flat_map(|p| unpack_byte_strings(p).expect("peer sent well-formed weld pack"))
        .collect();

    // Weld k-mer index: a non-parallel region on every rank.
    let weld_index =
        comm.charge_measured_named("gff.weld_index", || WeldKmerIndex::build(&pooled, cfg.k));

    // ---- Loop 2: weld matching over the same distribution ----
    let guard = mpisim::compute_lock();
    let (match_lists, costs) = parallel_map_timed(&my_items, |&i| {
        match_contig(i, &shared.contigs, &weld_index, cfg)
    });
    drop(guard);
    let sim = simulate_loop(&costs, cfg.threads, cfg.schedule);
    let t_before = comm.clock.now();
    comm.charge(sim.makespan);
    comm.obs
        .record(track, "compute", "gff.loop2", t_before, comm.clock.now());

    // Pool the pairing indices as packed integers.
    let my_matches: Vec<(u32, u32)> = match_lists.into_iter().flatten().collect();
    let flat = pack_matches(&my_matches);
    let t_before = comm.clock.now();
    let parts = comm.allgatherv(&pack_u32s(&flat));
    comm.obs
        .record(track, "comm", "gff.comm2", t_before, comm.clock.now());
    let matches: Vec<(u32, u32)> = parts
        .iter()
        .flat_map(|p| {
            unpack_matches(&unpack_u32s(p).expect("peer sent whole u32s"))
                .expect("peer sent (weld, contig) pairs")
        })
        .collect();

    // Clustering + output generation: non-parallel, on every rank (the
    // pooled matches are identical everywhere).
    let (pairs, component_of, components) = comm.charge_measured_named("gff.cluster", || {
        let pairs = pairs_from_matches(&matches);
        let (component_of, components) = cluster(n, &pairs);
        (pairs, component_of, components)
    });
    comm.barrier();

    // Everything that is not the parallel prep, a hybrid loop or an
    // exchange counts as "non-parallel" — the paper's definition (weld
    // k-mer setup + final output generation + closing sync). The residual
    // is computed from the named spans by `GffTimings::from_trace`.
    comm.obs
        .record(track, "stage", "gff.total", start, comm.clock.now());
    let timings = GffTimings::from_trace(&comm.obs.snapshot(), track);

    GffOutput {
        welds: dedup_preserving_order(pooled),
        pairs,
        component_of,
        components,
        timings,
        trace: obs::Trace::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcount::counter::{count_kmers, CounterConfig};
    use mpisim::{run_cluster, NetModel};
    use std::sync::Arc;

    fn rec(id: &str, seq: &[u8]) -> Record {
        Record::new(id, seq.to_vec())
    }

    const K: usize = 8;
    const SEED: &[u8] = b"GGATACT";
    const A_LEFT: &[u8] = b"CGAGTCGGTTAT";
    const B_RIGHT: &[u8] = b"GTGAAGTGTTCC";

    /// Contigs a and b meet at a read-supported junction; c is isolated.
    fn fixtures() -> GffShared {
        let a = [A_LEFT, SEED, b"CTTCGGCAAGTC".as_slice()].concat();
        let b = [b"AAAGCGGCACTT".as_slice(), SEED, B_RIGHT].concat();
        let c = b"TGTTCGCGTGGTGCTGAGACAAAGCACGCCAT".to_vec();
        let contigs = vec![rec("a", &a), rec("b", &b), rec("c", &c)];
        // Reads: the contigs themselves plus the junction window, so every
        // weldmer k-mer is covered.
        let junction = [&A_LEFT[A_LEFT.len() - K / 2..], SEED, &B_RIGHT[..K / 2]].concat();
        let reads = vec![a.clone(), b.clone(), c.clone(), junction];
        let counts = count_kmers(&reads, CounterConfig::new(K));
        GffShared::prepare_records(&contigs, counts, ChrysalisConfig::small(K))
    }

    #[test]
    fn shared_memory_welds_related_contigs() {
        let out = gff_shared_memory(&fixtures());
        assert!(!out.welds.is_empty());
        assert!(out.pairs.contains(&(0, 1)), "pairs: {:?}", out.pairs);
        assert_eq!(out.component_of[0], out.component_of[1]);
        assert_ne!(out.component_of[0], out.component_of[2]);
        assert!(out.timings.total > 0.0);
    }

    #[test]
    fn hybrid_matches_shared_memory_output() {
        let shared = Arc::new(fixtures());
        let serial = gff_shared_memory(&shared);
        for ranks in [1usize, 2, 3, 5] {
            let sh = Arc::clone(&shared);
            let outs = run_cluster(ranks, NetModel::ideal(), move |comm| gff_hybrid(comm, &sh));
            for o in &outs {
                assert_eq!(o.value.pairs, serial.pairs, "ranks={ranks}");
                assert_eq!(o.value.component_of, serial.component_of);
                let mut a = o.value.welds.clone();
                let mut b = serial.welds.clone();
                a.sort();
                b.sort();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn hybrid_ranks_agree_with_each_other() {
        let shared = Arc::new(fixtures());
        let outs = run_cluster(4, NetModel::ideal(), move |comm| gff_hybrid(comm, &shared));
        for o in &outs[1..] {
            assert_eq!(o.value.pairs, outs[0].value.pairs);
            assert_eq!(o.value.component_of, outs[0].value.component_of);
        }
    }

    #[test]
    fn hybrid_timings_are_consistent() {
        let shared = Arc::new(fixtures());
        let prep = shared.prep_cost;
        let outs = run_cluster(2, NetModel::idataplex(), move |comm| {
            gff_hybrid(comm, &shared)
        });
        for o in &outs {
            let t = o.value.timings;
            assert!(t.total > 0.0);
            assert!(t.loop1 >= 0.0 && t.loop2 >= 0.0 && t.serial >= 0.0);
            let parts = prep + t.loop1 + t.comm1 + t.loop2 + t.comm2 + t.serial;
            assert!(
                (parts - t.total).abs() <= 1e-6 + 0.05 * t.total,
                "phases {parts} ≉ total {}",
                t.total
            );
        }
    }

    #[test]
    fn shared_memory_trace_has_stage_timeline() {
        let out = gff_shared_memory(&fixtures());
        // Track 0 carries the phase timeline under one "gff.total" root.
        let (s, e) = out.trace.span_bounds(0, "gff.total").unwrap();
        assert_eq!(s, 0.0);
        assert!((e - out.timings.total).abs() < 1e-12);
        assert!(out.trace.span_sum(0, "gff.loop1") > 0.0);
        let roots = out.trace.tree(0);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "gff.total");
        assert!(roots[0].children.iter().any(|c| c.name == "gff.loop1"));
        // OpenMP lanes: thread 0's busy span sits on its own track.
        assert!(out.trace.span_sum(obs::THREAD_TRACK_BASE, "gff.loop1.busy") > 0.0);
    }

    #[test]
    fn hybrid_records_spans_on_comm_tracer() {
        let shared = Arc::new(fixtures());
        let outs = run_cluster(2, NetModel::idataplex(), move |comm| {
            let out = gff_hybrid(comm, &shared);
            (out.timings, comm.rank() as u32)
        });
        for o in &outs {
            let (timings, track) = o.value;
            // The rank's spans travelled out through RankOutput::trace.
            assert!(o.trace.span_bounds(track, "gff.total").is_some());
            assert!((o.trace.span_sum(track, "gff.comm1") - timings.comm1).abs() < 1e-12);
            // The comm1 wrapper nests the allgatherv it timed.
            let rendered = o.trace.render_tree(track);
            assert!(
                rendered.contains("gff.comm1\n    mpi.allgatherv")
                    || rendered.contains("gff.comm1\n  mpi.allgatherv"),
                "tree:\n{rendered}"
            );
        }
    }

    #[test]
    fn cluster_unrelated_contigs_stay_apart() {
        let (comp_of, comps) = cluster(4, &[]);
        assert_eq!(comp_of, vec![0, 1, 2, 3]);
        assert_eq!(comps.len(), 4);
    }

    #[test]
    fn cluster_chains_merge() {
        let (comp_of, comps) = cluster(4, &[(0, 1), (1, 2)]);
        assert_eq!(comp_of[0], comp_of[2]);
        assert_ne!(comp_of[0], comp_of[3]);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn rank_items_cover_all() {
        let n = 100;
        let mut all: Vec<u32> = (0..4).flat_map(|r| rank_items(n, r, 4, 7)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_kmap_build_matches_serial() {
        let shared = fixtures();
        let serial = KmerContigMap::build(&shared.contigs, K);
        assert_eq!(shared.kmap.len(), serial.len());
        // Spot-check the junction seed's occurrence list.
        let seed = seqio::kmer::Kmer::from_bases(SEED).unwrap().canonical();
        assert_eq!(shared.kmap.occurrences(seed), serial.occurrences(seed));
    }

    #[test]
    fn empty_contig_set() {
        let counts = count_kmers::<Vec<u8>>(&[], CounterConfig::new(K));
        let shared = GffShared::prepare(vec![], counts, ChrysalisConfig::small(K));
        let out = gff_shared_memory(&shared);
        assert!(out.welds.is_empty());
        assert!(out.pairs.is_empty());
        assert!(out.components.is_empty());
    }
}

// ---------------------------------------------------------------------------
// Dynamic partitioning — the paper's stated future work ("in the future, we
// might experiment with a dynamic partitioning strategy to reduce this load
// imbalance", §V-A).
// ---------------------------------------------------------------------------

/// Deal latency of the master work-queue: one request + one response per
/// chunk (2 point-to-point latencies under the α model).
fn deal_cost(net: &mpisim::NetModel) -> f64 {
    2.0 * net.p2p(16)
}

/// Greedy replay of master-dealt dynamic chunk distribution: chunk `i` goes
/// to the rank that becomes idle first (ties to the lowest rank), paying
/// `deal` seconds of master-queue latency per chunk. Returns per-rank busy
/// times and the chunk→rank assignment.
pub fn dynamic_deal(chunk_costs: &[f64], ranks: usize, deal: f64) -> (Vec<f64>, Vec<usize>) {
    let mut busy = vec![0.0f64; ranks.max(1)];
    let mut owner = Vec::with_capacity(chunk_costs.len());
    for &c in chunk_costs {
        let mut best = 0;
        for r in 1..busy.len() {
            if busy[r] < busy[best] {
                best = r;
            }
        }
        busy[best] += c + deal;
        owner.push(best);
    }
    (busy, owner)
}

/// Hybrid GraphFromFasta with **dynamic rank-level partitioning**: instead
/// of the static chunked round-robin, a master work-queue deals the next
/// chunk to whichever rank finishes first.
///
/// Simulation note: the modeled system computes each chunk on the rank the
/// queue deals it to. To replay the dealing protocol deterministically the
/// simulation executes and measures every chunk once on the master and
/// ships results over the uncharged [`Comm::transport_bcast`]; each rank
/// then charges the busy time the dealing replay assigns it (including the
/// per-chunk queue latency) and contributes *its* chunks' welds to the
/// same `MPI_Allgatherv` pooling as the static driver. Outputs are
/// identical to [`gff_hybrid`]; only the load balance differs.
pub fn gff_hybrid_dynamic(comm: &mut Comm, shared: &GffShared) -> GffOutput {
    use mpisim::pack::{pack_u64s, unpack_u64s};

    let cfg = &shared.cfg;
    let n = shared.contigs.len();
    let size = comm.size();
    let chunk = cfg.chunk_size(n, size);
    let support = shared.support();
    let track = comm.track();
    let start = comm.clock.now();
    let deal = deal_cost(&comm.net);

    comm.charge(shared.prep_cost);
    comm.obs
        .record(track, "compute", "gff.prep", start, comm.clock.now());

    // ---- Loop 1 under dynamic dealing ----
    let chunks = omp::schedule::chunk_sequence(n, size, Schedule::Dynamic { chunk });
    let payload = if comm.is_root() {
        let guard = mpisim::compute_lock();
        let items: Vec<u32> = (0..n as u32).collect();
        let (weld_lists, costs) = parallel_map_timed(&items, |&i| {
            harvest_contig(i, &shared.contigs, &shared.kmap, &support, cfg)
        });
        drop(guard);
        // Per-chunk inner-OpenMP makespans + per-chunk weld payloads.
        let mut chunk_costs = Vec::with_capacity(chunks.len());
        let mut chunk_welds: Vec<Vec<u8>> = Vec::with_capacity(chunks.len());
        for c in &chunks {
            chunk_costs
                .push(simulate_loop(&costs[c.start..c.end], cfg.threads, cfg.schedule).makespan);
            let welds: Vec<Vec<u8>> = weld_lists[c.start..c.end]
                .iter()
                .flatten()
                .cloned()
                .collect();
            chunk_welds.push(pack_byte_strings(&welds));
        }
        let mut parts = vec![pack_u64s(
            &chunk_costs
                .iter()
                .map(|c| c.to_bits())
                .collect::<Vec<u64>>(),
        )];
        parts.extend(chunk_welds);
        pack_byte_strings(&parts)
    } else {
        Vec::new()
    };
    let payload = comm.transport_bcast(0, &payload);
    let mut parts = unpack_byte_strings(&payload).expect("root sent chunk payloads");
    let chunk_welds: Vec<Vec<u8>> = parts.split_off(1);
    let chunk_costs: Vec<f64> = unpack_u64s(&parts[0])
        .expect("whole u64s")
        .into_iter()
        .map(f64::from_bits)
        .collect();

    let (busy, owner) = dynamic_deal(&chunk_costs, size, deal);
    let t_before = comm.clock.now();
    comm.charge(busy[comm.rank()]);
    comm.obs
        .record(track, "compute", "gff.loop1", t_before, comm.clock.now());

    // Pool: each rank contributes the welds of the chunks dealt to it.
    let my_welds: Vec<Vec<u8>> = owner
        .iter()
        .enumerate()
        .filter(|&(_, &o)| o == comm.rank())
        .flat_map(|(i, _)| unpack_byte_strings(&chunk_welds[i]).expect("weld pack"))
        .collect();
    let t_before = comm.clock.now();
    let pooled_parts = comm.allgatherv(&pack_byte_strings(&my_welds));
    comm.obs
        .record(track, "comm", "gff.comm1", t_before, comm.clock.now());
    let pooled: Vec<Vec<u8>> = pooled_parts
        .iter()
        .flat_map(|p| unpack_byte_strings(p).expect("peer sent welds"))
        .collect();

    let weld_index =
        comm.charge_measured_named("gff.weld_index", || WeldKmerIndex::build(&pooled, cfg.k));

    // ---- Loop 2 under dynamic dealing ----
    let payload = if comm.is_root() {
        let guard = mpisim::compute_lock();
        let items: Vec<u32> = (0..n as u32).collect();
        let (match_lists, costs) = parallel_map_timed(&items, |&i| {
            match_contig(i, &shared.contigs, &weld_index, cfg)
        });
        drop(guard);
        let mut chunk_costs = Vec::with_capacity(chunks.len());
        let mut chunk_matches: Vec<Vec<u8>> = Vec::with_capacity(chunks.len());
        for c in &chunks {
            chunk_costs
                .push(simulate_loop(&costs[c.start..c.end], cfg.threads, cfg.schedule).makespan);
            let m: Vec<(u32, u32)> = match_lists[c.start..c.end]
                .iter()
                .flatten()
                .copied()
                .collect();
            chunk_matches.push(pack_u32s(&pack_matches(&m)));
        }
        let mut parts = vec![pack_u64s(
            &chunk_costs
                .iter()
                .map(|c| c.to_bits())
                .collect::<Vec<u64>>(),
        )];
        parts.extend(chunk_matches);
        pack_byte_strings(&parts)
    } else {
        Vec::new()
    };
    let payload = comm.transport_bcast(0, &payload);
    let mut parts = unpack_byte_strings(&payload).expect("root sent chunk payloads");
    let chunk_matches: Vec<Vec<u8>> = parts.split_off(1);
    let chunk_costs: Vec<f64> = unpack_u64s(&parts[0])
        .expect("whole u64s")
        .into_iter()
        .map(f64::from_bits)
        .collect();

    let (busy, owner) = dynamic_deal(&chunk_costs, size, deal);
    let t_before = comm.clock.now();
    comm.charge(busy[comm.rank()]);
    comm.obs
        .record(track, "compute", "gff.loop2", t_before, comm.clock.now());

    let my_matches: Vec<u32> = owner
        .iter()
        .enumerate()
        .filter(|&(_, &o)| o == comm.rank())
        .flat_map(|(i, _)| unpack_u32s(&chunk_matches[i]).expect("whole u32s"))
        .collect();
    let t_before = comm.clock.now();
    let pooled_parts = comm.allgatherv(&pack_u32s(&my_matches));
    comm.obs
        .record(track, "comm", "gff.comm2", t_before, comm.clock.now());
    let matches: Vec<(u32, u32)> = pooled_parts
        .iter()
        .flat_map(|p| unpack_matches(&unpack_u32s(p).expect("whole u32s")).expect("pairs"))
        .collect();

    let (pairs, component_of, components) = comm.charge_measured_named("gff.cluster", || {
        let pairs = pairs_from_matches(&matches);
        let (component_of, components) = cluster(n, &pairs);
        (pairs, component_of, components)
    });
    comm.barrier();

    comm.obs
        .record(track, "stage", "gff.total", start, comm.clock.now());
    let timings = GffTimings::from_trace(&comm.obs.snapshot(), track);

    GffOutput {
        welds: dedup_preserving_order(pooled),
        pairs,
        component_of,
        components,
        timings,
        trace: obs::Trace::default(),
    }
}

#[cfg(test)]
mod dynamic_tests {
    use super::*;
    use kcount::counter::{count_kmers, CounterConfig};
    use mpisim::{run_cluster, NetModel};
    use std::sync::Arc;

    const K: usize = 8;
    const SEED: &[u8] = b"GGATACT";
    const A_LEFT: &[u8] = b"CGAGTCGGTTAT";
    const B_RIGHT: &[u8] = b"GTGAAGTGTTCC";

    fn fixtures() -> GffShared {
        let a = [A_LEFT, SEED, b"CTTCGGCAAGTC".as_slice()].concat();
        let b = [b"AAAGCGGCACTT".as_slice(), SEED, B_RIGHT].concat();
        let c = b"TGTTCGCGTGGTGCTGAGACAAAGCACGCCAT".to_vec();
        let contigs = vec![
            Record::new("a", a.clone()),
            Record::new("b", b.clone()),
            Record::new("c", c.clone()),
        ];
        let junction = [&A_LEFT[A_LEFT.len() - K / 2..], SEED, &B_RIGHT[..K / 2]].concat();
        let reads = vec![a, b, c, junction];
        let counts = count_kmers(&reads, CounterConfig::new(K));
        GffShared::prepare_records(&contigs, counts, ChrysalisConfig::small(K))
    }

    #[test]
    fn dynamic_matches_static_output() {
        let shared = Arc::new(fixtures());
        let serial = gff_shared_memory(&shared);
        for ranks in [1usize, 2, 4] {
            let sh = Arc::clone(&shared);
            let outs = run_cluster(ranks, NetModel::ideal(), move |comm| {
                gff_hybrid_dynamic(comm, &sh)
            });
            for o in &outs {
                assert_eq!(o.value.pairs, serial.pairs, "ranks={ranks}");
                assert_eq!(o.value.component_of, serial.component_of);
            }
        }
    }

    #[test]
    fn dynamic_deal_balances_skew() {
        // Front-loaded skewed chunk costs: dynamic dealing must beat
        // round-robin's worst rank.
        let costs: Vec<f64> = (0..64)
            .map(|i| 1.0 + 49.0 * (-(i as f64) / 8.0).exp())
            .collect();
        let ranks = 4;
        let (busy, owner) = dynamic_deal(&costs, ranks, 0.0);
        assert_eq!(owner.len(), costs.len());
        let dyn_max = busy.iter().cloned().fold(0.0, f64::max);
        // Static round-robin dealing of the same chunks.
        let mut rr = vec![0.0f64; ranks];
        for (i, &c) in costs.iter().enumerate() {
            rr[i % ranks] += c;
        }
        let rr_max = rr.iter().cloned().fold(0.0, f64::max);
        assert!(
            dyn_max <= rr_max + 1e-9,
            "dynamic ({dyn_max}) must not lose to round-robin ({rr_max})"
        );
        // Work conserved.
        let total: f64 = costs.iter().sum();
        assert!((busy.iter().sum::<f64>() - total).abs() < 1e-9);
    }

    #[test]
    fn deal_latency_is_charged() {
        let costs = vec![1.0; 8];
        let (free, _) = dynamic_deal(&costs, 2, 0.0);
        let (paid, _) = dynamic_deal(&costs, 2, 0.5);
        assert!(paid.iter().sum::<f64>() > free.iter().sum::<f64>());
    }
}

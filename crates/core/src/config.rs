//! Chrysalis configuration.

use omp::schedule::Schedule;

/// Parameters shared by the Chrysalis stages.
#[derive(Debug, Clone, Copy)]
pub struct ChrysalisConfig {
    /// Seed k-mer size. Trinity uses 25 at production scale; tests use
    /// smaller k to keep fixtures small. Welds are `2k` long (seed plus
    /// `k/2` flanks on each side), so `k` must be even and `2k ≤ 64`... in
    /// practice we only need the *seed* to fit a packed word (`k ≤ 32`).
    pub k: usize,
    /// Minimum number of distinct supporting reads for a weld to count
    /// ("welding pairs of contigs together if read support exists").
    pub min_weld_support: u32,
    /// OpenMP threads per rank (the paper always runs 16).
    pub threads: usize,
    /// Inner-loop OpenMP schedule ("the OpenMP scheduling policy is
    /// dynamic").
    pub schedule: Schedule,
    /// Chunk size of the chunked-round-robin MPI distribution; `None`
    /// derives it from the problem size like the original code ("the
    /// chunksize … is proportional to the number of Inchworm contigs
    /// divided by the number of threads").
    pub chunk: Option<usize>,
    /// ReadsToTranscripts: reads uploaded into memory at a time
    /// (`--max_mem_reads`).
    pub max_mem_reads: usize,
    /// Minimum shared k-mers for a read to be assigned to a component.
    pub min_read_kmers: usize,
}

impl Default for ChrysalisConfig {
    fn default() -> Self {
        ChrysalisConfig {
            k: 24,
            min_weld_support: 2,
            threads: 16,
            schedule: Schedule::Dynamic { chunk: 1 },
            chunk: None,
            max_mem_reads: 1000,
            min_read_kmers: 1,
        }
    }
}

impl ChrysalisConfig {
    /// A small-k configuration for tests and examples.
    pub fn small(k: usize) -> Self {
        ChrysalisConfig {
            k,
            min_weld_support: 1,
            threads: 4,
            max_mem_reads: 100,
            ..Default::default()
        }
    }

    /// Weld length: seed k-mer plus `k/2` flanking bases on each side.
    pub fn weld_len(&self) -> usize {
        2 * self.k
    }

    /// Flank length on each side of the seed.
    pub fn flank(&self) -> usize {
        self.k / 2
    }

    /// Resolve the round-robin chunk size for `n` contigs over `ranks`.
    pub fn chunk_size(&self, n: usize, ranks: usize) -> usize {
        self.chunk
            .unwrap_or_else(|| omp::schedule::paper_chunk_size(n, ranks, self.threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ChrysalisConfig::default();
        assert_eq!(c.threads, 16);
        assert_eq!(c.weld_len(), 48);
        assert_eq!(c.flank(), 12);
        assert!(matches!(c.schedule, Schedule::Dynamic { .. }));
    }

    #[test]
    fn chunk_size_fallback() {
        let c = ChrysalisConfig::default();
        assert!(c.chunk_size(100_000, 16) >= 1);
        let fixed = ChrysalisConfig {
            chunk: Some(7),
            ..Default::default()
        };
        assert_eq!(fixed.chunk_size(100_000, 16), 7);
    }

    #[test]
    fn small_config() {
        let c = ChrysalisConfig::small(8);
        assert_eq!(c.k, 8);
        assert_eq!(c.weld_len(), 16);
    }
}

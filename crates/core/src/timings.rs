//! Timing records for the Chrysalis stages — the quantities Figs. 7–10 plot.

/// Per-rank GraphFromFasta phase times (virtual seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GffTimings {
    /// Loop 1 (weld harvest) compute time on this rank.
    pub loop1: f64,
    /// Loop 1 allgatherv (string pooling) time.
    pub comm1: f64,
    /// Loop 2 (pair matching) compute time on this rank.
    pub loop2: f64,
    /// Loop 2 allgatherv (integer pooling) time.
    pub comm2: f64,
    /// Non-parallel regions (weld-set setup, clustering, output).
    pub serial: f64,
    /// Total GraphFromFasta time on this rank.
    pub total: f64,
}

/// Per-rank ReadsToTranscripts phase times (virtual seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RttTimings {
    /// Building the k-mer→component table (OpenMP, not yet hybrid — the
    /// paper singles this out as the dominant residual).
    pub kmer_setup: f64,
    /// The MPI-distributed main loop (read assignment) on this rank.
    pub main_loop: f64,
    /// Redundant streaming I/O (every rank reads the whole file).
    pub io: f64,
    /// Concatenating per-rank output files (master only; ~constant).
    pub concat: f64,
    /// Total ReadsToTranscripts time on this rank.
    pub total: f64,
}

/// Min/max/mean of one phase across ranks — the load-imbalance bars of
/// Figs. 7 and 9.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseSpread {
    /// Fastest rank's time.
    pub min: f64,
    /// Slowest rank's time (the representative time, per §V-A).
    pub max: f64,
    /// Mean across ranks.
    pub mean: f64,
}

impl PhaseSpread {
    /// Compute the spread of one extracted phase over per-rank records.
    pub fn over<T>(records: &[T], phase: impl Fn(&T) -> f64) -> PhaseSpread {
        if records.is_empty() {
            return PhaseSpread::default();
        }
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        for r in records {
            let v = phase(r);
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        PhaseSpread {
            min,
            max,
            mean: sum / records.len() as f64,
        }
    }

    /// Max/min ratio (the paper quotes "the highest time of a process more
    /// than three times the process with the lowest time" at 192 nodes).
    pub fn imbalance(&self) -> f64 {
        if self.min == 0.0 {
            1.0
        } else {
            self.max / self.min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_over_records() {
        let times = [1.0f64, 3.0, 2.0];
        let s = PhaseSpread::over(&times, |&t| t);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.imbalance() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_spread() {
        let s = PhaseSpread::over::<f64>(&[], |&t| t);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.imbalance(), 1.0);
    }
}

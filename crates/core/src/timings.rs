//! Timing records for the Chrysalis stages — the quantities Figs. 7–10 plot.
//!
//! Since the `obs` layer landed, these are *views* over an [`obs::Trace`]:
//! the stage drivers record named spans (`"gff.loop1"`, `"rtt.io"`, …) and
//! the [`GffTimings::from_trace`] / [`RttTimings::from_trace`] constructors
//! fold them back into the flat per-rank records the figure drivers plot.
//! [`PhaseSpread`] itself now lives in `obs` and is re-exported here.

/// Min/max/mean of one phase across ranks (re-exported from [`obs`]).
pub use obs::PhaseSpread;

/// Per-rank GraphFromFasta phase times (virtual seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GffTimings {
    /// Loop 1 (weld harvest) compute time on this rank.
    pub loop1: f64,
    /// Loop 1 allgatherv (string pooling) time.
    pub comm1: f64,
    /// Loop 2 (pair matching) compute time on this rank.
    pub loop2: f64,
    /// Loop 2 allgatherv (integer pooling) time.
    pub comm2: f64,
    /// Non-parallel regions (weld-set setup, clustering, output).
    pub serial: f64,
    /// Total GraphFromFasta time on this rank.
    pub total: f64,
}

impl GffTimings {
    /// Fold one rank's `gff.*` spans back into the flat record.
    ///
    /// `loop1/comm1/loop2/comm2` are the summed durations of the spans of
    /// the same name on `track`; `total` is the extent of the `"gff.total"`
    /// stage span; `serial` is the residual — total minus the four phases
    /// and the `"gff.prep"` span — clamped at zero.
    pub fn from_trace(trace: &obs::Trace, track: u32) -> GffTimings {
        let loop1 = trace.span_sum(track, "gff.loop1");
        let comm1 = trace.span_sum(track, "gff.comm1");
        let loop2 = trace.span_sum(track, "gff.loop2");
        let comm2 = trace.span_sum(track, "gff.comm2");
        let prep = trace.span_sum(track, "gff.prep");
        let total = trace
            .span_bounds(track, "gff.total")
            .map_or(0.0, |(s, e)| e - s);
        GffTimings {
            loop1,
            comm1,
            loop2,
            comm2,
            serial: (total - prep - loop1 - comm1 - loop2 - comm2).max(0.0),
            total,
        }
    }
}

/// Per-rank ReadsToTranscripts phase times (virtual seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RttTimings {
    /// Building the k-mer→component table (OpenMP, not yet hybrid — the
    /// paper singles this out as the dominant residual).
    pub kmer_setup: f64,
    /// The MPI-distributed main loop (read assignment) on this rank.
    pub main_loop: f64,
    /// Redundant streaming I/O (every rank reads the whole file).
    pub io: f64,
    /// Concatenating per-rank output files (master only; ~constant).
    pub concat: f64,
    /// Total ReadsToTranscripts time on this rank.
    pub total: f64,
}

impl RttTimings {
    /// Fold one rank's `rtt.*` spans back into the flat record:
    /// `kmer_setup`/`io`/`concat` sum the spans of the same name,
    /// `main_loop` sums `"rtt.loop"`, and `total` is the extent of the
    /// `"rtt.total"` stage span.
    pub fn from_trace(trace: &obs::Trace, track: u32) -> RttTimings {
        RttTimings {
            kmer_setup: trace.span_sum(track, "rtt.kmer_setup"),
            main_loop: trace.span_sum(track, "rtt.loop"),
            io: trace.span_sum(track, "rtt.io"),
            concat: trace.span_sum(track, "rtt.concat"),
            total: trace
                .span_bounds(track, "rtt.total")
                .map_or(0.0, |(s, e)| e - s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_over_records() {
        let times = [1.0f64, 3.0, 2.0];
        let s = PhaseSpread::over(&times, |&t| t);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.imbalance() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_spread() {
        let s = PhaseSpread::over::<f64>(&[], |&t| t);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.imbalance(), 1.0);
    }

    #[test]
    fn gff_from_trace_sums_phases_and_residual() {
        let tr = obs::Tracer::new();
        tr.record(2, "stage", "gff.total", 0.0, 10.0);
        tr.record(2, "compute", "gff.prep", 0.0, 1.0);
        tr.record(2, "compute", "gff.loop1", 1.0, 4.0);
        tr.record(2, "comm", "gff.comm1", 4.0, 5.0);
        tr.record(2, "compute", "gff.loop2", 5.0, 7.0);
        tr.record(2, "comm", "gff.comm2", 7.0, 7.5);
        let t = GffTimings::from_trace(&tr.take(), 2);
        assert_eq!(t.loop1, 3.0);
        assert_eq!(t.comm1, 1.0);
        assert_eq!(t.loop2, 2.0);
        assert_eq!(t.comm2, 0.5);
        assert_eq!(t.total, 10.0);
        assert!((t.serial - 2.5).abs() < 1e-12);
    }

    #[test]
    fn rtt_from_trace_sums_repeated_spans() {
        let tr = obs::Tracer::new();
        tr.record(0, "stage", "rtt.total", 0.0, 8.0);
        tr.record(0, "compute", "rtt.kmer_setup", 0.0, 2.0);
        // Chunked streaming: io/loop spans repeat per chunk and must sum.
        tr.record(0, "io", "rtt.io", 2.0, 2.5);
        tr.record(0, "compute", "rtt.loop", 2.5, 4.0);
        tr.record(0, "io", "rtt.io", 4.0, 4.5);
        tr.record(0, "compute", "rtt.loop", 4.5, 6.0);
        tr.record(0, "comm", "rtt.concat", 6.0, 8.0);
        let t = RttTimings::from_trace(&tr.take(), 0);
        assert_eq!(t.kmer_setup, 2.0);
        assert_eq!(t.io, 1.0);
        assert_eq!(t.main_loop, 3.0);
        assert_eq!(t.concat, 2.0);
        assert_eq!(t.total, 8.0);
    }

    #[test]
    fn missing_spans_give_zeroed_timings() {
        let empty = obs::Trace::default();
        assert_eq!(GffTimings::from_trace(&empty, 0), GffTimings::default());
        assert_eq!(RttTimings::from_trace(&empty, 0), RttTimings::default());
    }
}

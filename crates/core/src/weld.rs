//! GraphFromFasta loop 1: harvesting "welding" subsequences.
//!
//! Inchworm contigs are k-mer-disjoint by construction (the greedy
//! assembler consumes each canonical k-mer once), so related contigs meet
//! only at de Bruijn *branch points*, where they share a (k−1)-mer. Loop 1
//! seeds on those shared (k−1)-mers: for every occurrence pair
//! `(contig A, pos) / (contig B, pos)` of a shared seed it builds the
//! **weldmer** — `k/2` bases of A-side left flank, the seed, and `k/2`
//! bases of B-side right flank (the paper's "seed k-mer and left- and
//! right-flanking k/2-mers", total ≈ 2k) — and keeps it if *read support
//! exists*: every k-mer of the mixed window must occur in the read k-mer
//! table with sufficient count, i.e. real reads span the junction.

use kcount::counter::KmerCounts;
use kmertable::{PackedKmerTable, PackedWeldSet};
use seqio::alphabet::{base_to_code, code_to_base, complement_base, complement_code, revcomp};
use seqio::kmer::{CanonicalKmers, Kmer, RollState};
use seqio::packed::PackedSeq;

use crate::config::ChrysalisConfig;

/// Canonical form of a weld window: the lexicographically smaller of the
/// window and its reverse complement, so both strands harvest identically.
///
/// The comparison walks the window against its reverse complement in place;
/// only the winning orientation is materialized, so deciding that a window
/// is already canonical costs no intermediate allocation.
pub fn canonical_weld(window: &[u8]) -> Vec<u8> {
    if revcomp_is_smaller(window) {
        revcomp(window)
    } else {
        window.to_vec()
    }
}

/// True when `revcomp(window)` sorts strictly before `window`, computed
/// byte-by-byte without building the reverse complement.
#[inline]
fn revcomp_is_smaller(window: &[u8]) -> bool {
    let n = window.len();
    for i in 0..n {
        let rc = complement_base(window[n - 1 - i]);
        match rc.cmp(&window[i]) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    false
}

/// Pack a ≤63-base window into its canonical 2-bit `u128` form (the smaller
/// of forward and reverse-complement packings; MSB-first packing makes
/// integer order equal lexicographic order, matching [`canonical_weld`]).
/// `None` if the window contains a non-ACGT base.
///
/// This is the per-window reference; the harvest hot path builds the same
/// value incrementally via [`WeldWindow`], reusing the left-flank + seed
/// prefix across candidate pairs instead of re-packing from scratch.
#[inline]
pub fn pack_window_canonical(window: &[u8]) -> Option<u128> {
    debug_assert!(window.len() <= 63, "weld windows fit 126 bits");
    let mut fwd = 0u128;
    let mut rc = 0u128;
    for (i, &b) in window.iter().enumerate() {
        let code = base_to_code(b)? as u128;
        fwd = (fwd << 2) | code;
        // The complement of base i lands at mirrored position n-1-i, whose
        // MSB-first shift is 2*i.
        rc |= ((!code) & 3) << (2 * i);
    }
    Some(fwd.min(rc))
}

/// A weld window under incremental construction: both the forward packing
/// and the reverse-complement packing grow by O(1) per appended code, so a
/// shared prefix (left flank + seed) is built once per seed occurrence and
/// copied per candidate pair — appending a base never reshuffles what is
/// already packed (`fwd` shifts up; the new complement lands above `rc`'s
/// existing bits).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WeldWindow {
    fwd: u128,
    rc: u128,
    len: u32,
}

impl WeldWindow {
    /// An empty window.
    pub fn new() -> Self {
        WeldWindow::default()
    }

    /// Append one 2-bit code (must be `< 4`; capacity 63 bases).
    #[inline(always)]
    pub fn push(&mut self, code: u8) {
        debug_assert!(code < 4);
        debug_assert!(self.len < 63, "weld windows fit 126 bits");
        self.fwd = (self.fwd << 2) | code as u128;
        self.rc |= (complement_code(code) as u128) << (2 * self.len);
        self.len += 1;
    }

    /// Window length in bases.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no codes have been appended.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The 2-bit code at position `j` of the forward window.
    #[inline(always)]
    pub fn code_at(&self, j: usize) -> u8 {
        debug_assert!(j < self.len as usize);
        ((self.fwd >> (2 * (self.len as usize - 1 - j))) & 3) as u8
    }

    /// Canonical packed form: identical to
    /// [`pack_window_canonical`] of the decoded window.
    #[inline(always)]
    pub fn canonical_packed(&self) -> u128 {
        self.fwd.min(self.rc)
    }

    /// Decode the canonical orientation to ASCII — byte-identical to
    /// [`canonical_weld`] of the decoded forward window (MSB-first packing
    /// makes the `u128` comparison a lexicographic one).
    pub fn decode_canonical(&self) -> Vec<u8> {
        let p = self.canonical_packed();
        let n = self.len as usize;
        (0..n)
            .map(|j| code_to_base(((p >> (2 * (n - 1 - j))) & 3) as u8))
            .collect()
    }
}

/// One occurrence of a seed within a contig.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedOcc {
    /// Contig index.
    pub contig: u32,
    /// 0-based offset of the (k−1)-mer within the contig (forward strand).
    pub pos: u32,
    /// True if the canonical form equals the forward window at `pos`.
    pub forward: bool,
}

/// Global map from canonical (k−1)-mer to its occurrences across contigs.
/// Replicated read-only on every rank in the paper's code; built once and
/// shared here (see the crate-level simulation notes). The build cost is
/// accounted as an OpenMP-parallel region (sharded hashing, like the k-mer
/// counter), matching the paper's attribution of "non-parallel regions" to
/// the weld-set setup and final output only.
/// Occurrence lists live in a contiguous pool; the open-addressing
/// [`PackedKmerTable`] maps a packed canonical seed to its pool slot, so the
/// hot probe (one per contig window per candidate pair) never hashes with
/// SipHash or chases `HashMap` buckets.
#[derive(Debug, Clone)]
pub struct KmerContigMap {
    seed_len: usize,
    index: PackedKmerTable,
    pool: Vec<Vec<SeedOcc>>,
}

impl KmerContigMap {
    /// Build over a contig set with seeds of length `k - 1`.
    pub fn build(contigs: &[PackedSeq], k: usize) -> Self {
        Self::build_with_offset(contigs, k, 0)
    }

    /// Build over a slice of the contig set whose first record has global
    /// index `offset` (the building block of the parallel build).
    ///
    /// Contigs arrive pre-packed; the oriented rolling iterator hands back
    /// `(pos, canonical, forward)` in one O(1)-per-base pass, so the build
    /// never re-encodes ASCII or re-packs windows.
    pub fn build_with_offset(contigs: &[PackedSeq], k: usize, offset: usize) -> Self {
        assert!(k >= 4, "seed construction needs k >= 4");
        let seed_len = k - 1;
        let mut index = PackedKmerTable::new();
        let mut pool: Vec<Vec<SeedOcc>> = Vec::new();
        for (i, c) in contigs.iter().enumerate() {
            let Ok(iter) = c.oriented_kmers(seed_len) else {
                continue;
            };
            for (pos, canon, forward) in iter {
                let next = pool.len() as u32;
                let slot = index.get_or_insert(canon.packed(), next);
                if slot == next {
                    pool.push(Vec::new());
                }
                pool[slot as usize].push(SeedOcc {
                    contig: (offset + i) as u32,
                    pos: pos as u32,
                    forward,
                });
            }
        }
        KmerContigMap {
            seed_len,
            index,
            pool,
        }
    }

    /// Merge another partial map into this one (occurrence lists keep
    /// ascending contig order when partials are merged in batch order).
    pub fn merge(&mut self, other: KmerContigMap) {
        debug_assert_eq!(self.seed_len, other.seed_len);
        if self.index.is_empty() {
            *self = other;
            return;
        }
        let KmerContigMap {
            index, mut pool, ..
        } = other;
        for (key, idx) in index.iter() {
            let mut occs = std::mem::take(&mut pool[idx as usize]);
            let next = self.pool.len() as u32;
            let slot = self.index.get_or_insert(key, next);
            if slot == next {
                self.pool.push(occs);
            } else {
                self.pool[slot as usize].append(&mut occs);
            }
        }
    }

    /// Seed length (k − 1).
    pub fn seed_len(&self) -> usize {
        self.seed_len
    }

    /// Occurrences of a canonical seed (empty slice if none).
    #[inline]
    pub fn occurrences(&self, canon: Kmer) -> &[SeedOcc] {
        self.index
            .get(canon.packed())
            .map(|i| self.pool[i as usize].as_slice())
            .unwrap_or(&[])
    }

    /// Number of distinct seeds.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no seeds were indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Record the seed index's table health (entries, capacity, load
    /// factor, probe-length histogram — see
    /// [`PackedKmerTable::record_metrics`]) plus a `{prefix}.occurrences`
    /// gauge (total seed occurrences across contigs — a snapshot of the
    /// built index, so re-recording overwrites rather than double-counts)
    /// into `registry`.
    pub fn record_metrics(&self, registry: &obs::MetricsRegistry, prefix: &str) {
        self.index.record_metrics(registry, prefix);
        registry
            .gauge(format!("{prefix}.occurrences"))
            .set(self.pool.iter().map(Vec::len).sum::<usize>() as f64);
    }
}

/// Read-support oracle over the Jellyfish k-mer table: a weld is supported
/// when every k-mer of the window occurs in the reads with count ≥ `min`
/// — i.e. reads actually span the junction the weld proposes.
#[derive(Debug, Clone, Copy)]
pub struct WeldSupport<'a> {
    counts: &'a KmerCounts,
    k: usize,
    min: u32,
}

impl<'a> WeldSupport<'a> {
    /// Wrap a (canonical) read k-mer table.
    pub fn new(counts: &'a KmerCounts, min: u32) -> Self {
        WeldSupport {
            k: counts.k(),
            counts,
            min: min.max(1),
        }
    }

    /// True if every k-mer of `window` reaches the support threshold.
    pub fn supports(&self, window: &[u8]) -> bool {
        if window.len() < self.k {
            return false;
        }
        let Ok(iter) = CanonicalKmers::new(window, self.k) else {
            return false;
        };
        let mut any = false;
        for (_, km) in iter {
            if self.counts.get(km) < self.min {
                return false;
            }
            any = true;
        }
        any
    }

    /// [`Self::supports`] over a packed window: rolls canonical k-mers
    /// straight off the 2-bit codes and probes the table by packed value —
    /// no ASCII round-trip, no per-window repacking.
    pub fn supports_packed(&self, w: &WeldWindow) -> bool {
        let n = w.len();
        if n < self.k {
            return false;
        }
        let Ok(mut state) = RollState::new(self.k) else {
            return false;
        };
        let mut any = false;
        for j in 0..n {
            if let Some(rolled) = state.push(w.code_at(j)) {
                if self.counts.get_packed(rolled.canonical_packed()) < self.min {
                    return false;
                }
                any = true;
            }
        }
        any
    }
}

/// Flanks around one seed occurrence, oriented so the seed reads in its
/// canonical direction. Flanks are at most `k/2 <= 16` 2-bit codes, so they
/// live in fixed arrays — extracting them never touches the heap.
///
/// A flank overlapping an N-run carries its codes anyway (gap positions
/// read as code 0) with the matching validity flag cleared; the caller
/// skips any window whose flanks are not both valid, reproducing the byte
/// path where `pack_window_canonical` rejected windows containing N
/// *per window*, not per occurrence.
#[derive(Debug, Clone, Copy)]
struct CodeFlanks {
    left: [u8; MAX_FLANK],
    right: [u8; MAX_FLANK],
    n: usize,
    left_valid: bool,
    right_valid: bool,
}

/// Upper bound on the flank length (`k/2` with `k <= 32`).
const MAX_FLANK: usize = 16;

impl CodeFlanks {
    fn left(&self) -> &[u8] {
        &self.left[..self.n]
    }

    fn right(&self) -> &[u8] {
        &self.right[..self.n]
    }
}

/// Orient the region around one seed occurrence so the seed reads in its
/// canonical direction. `None` when the window would leave the contig.
fn oriented_code_flanks(
    seq: &PackedSeq,
    occ: SeedOcc,
    seed_len: usize,
    flank: usize,
) -> Option<CodeFlanks> {
    assert!(flank <= MAX_FLANK, "flank k/2 fits in {MAX_FLANK} bases");
    let pos = occ.pos as usize;
    if pos < flank || pos + seed_len + flank > seq.len() {
        return None;
    }
    let lstart = pos - flank; // forward-strand left region [lstart, pos)
    let rstart = pos + seed_len; // forward-strand right region [rstart, rstart+flank)
    let left_region_valid = seq.range_valid(lstart, pos);
    let right_region_valid = seq.range_valid(rstart, rstart + flank);
    let mut f = CodeFlanks {
        left: [0; MAX_FLANK],
        right: [0; MAX_FLANK],
        n: flank,
        left_valid: left_region_valid,
        right_valid: right_region_valid,
    };
    if occ.forward {
        for i in 0..flank {
            f.left[i] = seq.code_at(lstart + i);
            f.right[i] = seq.code_at(rstart + i);
        }
    } else {
        // Reverse-complement orientation: flanks swap sides, each read
        // backwards and complemented — so the validity flags swap too.
        for i in 0..flank {
            f.left[i] = complement_code(seq.code_at(rstart + flank - 1 - i));
            f.right[i] = complement_code(seq.code_at(lstart + flank - 1 - i));
        }
        f.left_valid = right_region_valid;
        f.right_valid = left_region_valid;
    }
    Some(f)
}

/// Cap on seed occurrences considered per candidate list: highly repetitive
/// seeds (low-complexity sequence) would otherwise explode quadratically —
/// the original GraphFromFasta applies the same kind of cap.
const MAX_OCCS_PER_SEED: usize = 16;

/// Harvest weld candidates from one contig (one loop-1 iteration).
///
/// For every seed the contig shares with another contig, build the mixed
/// weldmer (this contig's left flank + seed + other contig's right flank,
/// in the seed's canonical orientation) and keep it when the reads support
/// it. Returns canonical weld sequences, deduplicated within the contig.
///
/// The candidate loop never leaves 2-bit space until a weld is *kept*:
/// flanks are extracted as code arrays, windows grow through the rolling
/// [`WeldWindow`] packer (the left-flank + seed prefix is built once per
/// seed occurrence and copied per pair), dedup goes through a packed
/// `u128` set, support rolls canonical k-mers off the packed window, and
/// only surviving welds are decoded to ASCII.
pub fn harvest_contig(
    contig_idx: u32,
    contigs: &[PackedSeq],
    kmap: &KmerContigMap,
    support: &WeldSupport<'_>,
    cfg: &ChrysalisConfig,
) -> Vec<Vec<u8>> {
    let seq = &contigs[contig_idx as usize];
    let seed_len = kmap.seed_len();
    let flank = cfg.flank();
    let mut out = Vec::new();
    let mut seen = PackedWeldSet::new();
    let mut seed_codes = [0u8; 32];

    let Ok(iter) = seq.oriented_kmers(seed_len) else {
        return out;
    };
    for (pos, canon, forward) in iter {
        let occs = kmap.occurrences(canon);
        if occs.len() < 2 || occs.len() > MAX_OCCS_PER_SEED {
            continue;
        }
        // Our own occurrence at this exact position.
        let me = SeedOcc {
            contig: contig_idx,
            pos: pos as u32,
            forward,
        };
        let Some(mine) = oriented_code_flanks(seq, me, seed_len, flank) else {
            continue;
        };
        for (j, c) in seed_codes[..seed_len].iter_mut().enumerate() {
            *c = canon.code_at(j);
        }
        // Window 1's prefix (my left flank + seed) is shared across every
        // candidate pair at this seed — build it once.
        let mut w1_prefix = WeldWindow::new();
        for &c in mine.left() {
            w1_prefix.push(c);
        }
        for &c in &seed_codes[..seed_len] {
            w1_prefix.push(c);
        }
        for &other in occs {
            if other.contig == contig_idx {
                continue;
            }
            let other_seq = &contigs[other.contig as usize];
            let Some(theirs) = oriented_code_flanks(other_seq, other, seed_len, flank) else {
                continue;
            };
            // Two mixed weldmers per pair: A-left + seed + B-right and
            // B-left + seed + A-right; each only when its flanks are
            // N-free (per-window, matching the byte path's packing check).
            if mine.left_valid && theirs.right_valid {
                let mut w = w1_prefix;
                for &c in theirs.right() {
                    w.push(c);
                }
                keep_if_supported(&w, &mut seen, support, &mut out);
            }
            if theirs.left_valid && mine.right_valid {
                let mut w = WeldWindow::new();
                for &c in theirs.left() {
                    w.push(c);
                }
                for &c in &seed_codes[..seed_len] {
                    w.push(c);
                }
                for &c in mine.right() {
                    w.push(c);
                }
                keep_if_supported(&w, &mut seen, support, &mut out);
            }
        }
    }
    out
}

/// Dedup + support gate for one assembled window; pushes the decoded
/// canonical weld on success.
#[inline]
fn keep_if_supported(
    w: &WeldWindow,
    seen: &mut PackedWeldSet,
    support: &WeldSupport<'_>,
    out: &mut Vec<Vec<u8>>,
) {
    let packed = w.canonical_packed();
    if seen.contains(packed) || !support.supports_packed(w) {
        return;
    }
    seen.insert(packed);
    out.push(w.decode_canonical());
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcount::counter::{count_kmers, CounterConfig};
    use std::collections::HashSet;

    fn packed<S: AsRef<[u8]>>(seqs: &[S]) -> Vec<PackedSeq> {
        seqio::packed::encode_all(seqs)
    }

    const K: usize = 8;

    /// A junction fixture: contigs A and B share the (k-1)-mer `SEED`
    /// embedded in otherwise distinct sequence; a junction read spans
    /// A-left + seed + B-right.
    const SEED: &[u8] = b"GGATACT"; // 7 = k-1
    const A_LEFT: &[u8] = b"CGAGTCGGTTAT";
    const A_RIGHT: &[u8] = b"CTTCGGCAAGTC";
    const B_LEFT: &[u8] = b"AAAGCGGCACTT";
    const B_RIGHT: &[u8] = b"GTGAAGTGTTCC";

    fn contig_a() -> Vec<u8> {
        [A_LEFT, SEED, A_RIGHT].concat()
    }

    fn contig_b() -> Vec<u8> {
        [B_LEFT, SEED, B_RIGHT].concat()
    }

    /// The junction weldmer loop 1 should harvest (A-left flank + seed +
    /// B-right flank with flank = k/2 = 4).
    fn junction_window() -> Vec<u8> {
        let flank = K / 2;
        [&A_LEFT[A_LEFT.len() - flank..], SEED, &B_RIGHT[..flank]].concat()
    }

    /// Borrowed windows: callers pass slices, no per-call cloning.
    fn support_counts(reads: &[&[u8]]) -> KmerCounts {
        count_kmers(reads, CounterConfig::new(K))
    }

    fn cfg() -> ChrysalisConfig {
        ChrysalisConfig::small(K)
    }

    #[test]
    fn kmap_indexes_shared_seed() {
        let contigs = packed(&[contig_a(), contig_b()]);
        let kmap = KmerContigMap::build(&contigs, K);
        assert_eq!(kmap.seed_len(), K - 1);
        let seed = Kmer::from_bases(SEED).unwrap().canonical();
        let occs = kmap.occurrences(seed);
        assert_eq!(occs.len(), 2);
        assert_ne!(occs[0].contig, occs[1].contig);
    }

    #[test]
    fn kmap_metrics_count_occurrences() {
        let contigs = packed(&[contig_a(), contig_b()]);
        let kmap = KmerContigMap::build(&contigs, K);
        let reg = obs::MetricsRegistry::new();
        kmap.record_metrics(&reg, "gff.kmap");
        // Snapshot gauges: recording twice must not double anything.
        kmap.record_metrics(&reg, "gff.kmap");
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("gff.kmap.entries"), Some(kmap.len() as f64));
        // Both contigs contribute every window; the shared seed occurs twice.
        let windows: usize = contigs.iter().map(|c| c.len() - (K - 1) + 1).sum();
        assert_eq!(snap.gauge("gff.kmap.occurrences"), Some(windows as f64));
    }

    #[test]
    fn weld_window_matches_pack_reference() {
        // The incremental packer must agree with the per-window reference
        // on canonical value and decoded bytes, including prefix reuse.
        let w = junction_window();
        for end in K..=w.len() {
            let window = &w[..end];
            let mut ww = WeldWindow::new();
            for &b in window {
                ww.push(base_to_code(b).unwrap());
            }
            assert_eq!(ww.len(), window.len());
            assert_eq!(
                Some(ww.canonical_packed()),
                pack_window_canonical(window),
                "window {:?}",
                String::from_utf8_lossy(window)
            );
            assert_eq!(ww.decode_canonical(), canonical_weld(window));
        }
    }

    #[test]
    fn supports_packed_matches_byte_supports() {
        let window = junction_window();
        let counts = support_counts(&[&window]);
        for min in [1, 2] {
            let sup = WeldSupport::new(&counts, min);
            let mut ww = WeldWindow::new();
            for &b in &window {
                ww.push(base_to_code(b).unwrap());
            }
            assert_eq!(sup.supports_packed(&ww), sup.supports(&window));
            // Shorter than k: both reject.
            let mut short = WeldWindow::new();
            for &b in &window[..K - 1] {
                short.push(base_to_code(b).unwrap());
            }
            assert!(!sup.supports_packed(&short));
        }
    }

    #[test]
    fn support_requires_all_kmers() {
        let window = junction_window();
        let counts = support_counts(&[&window]);
        let sup = WeldSupport::new(&counts, 1);
        assert!(sup.supports(&window));
        assert!(sup.supports(&revcomp(&window)), "strand-agnostic");
        assert!(!sup.supports(b"TTTTTTTTTTTTTTTT"));
        assert!(!sup.supports(b"ACG"), "shorter than k");
    }

    #[test]
    fn support_threshold() {
        let window = junction_window();
        let counts = support_counts(&[&window]);
        assert!(WeldSupport::new(&counts, 1).supports(&window));
        assert!(!WeldSupport::new(&counts, 2).supports(&window));
        let counts2 = support_counts(&[&window, &window]);
        assert!(WeldSupport::new(&counts2, 2).supports(&window));
    }

    #[test]
    fn harvest_finds_supported_junction() {
        let contigs = packed(&[contig_a(), contig_b()]);
        let kmap = KmerContigMap::build(&contigs, K);
        let w = junction_window();
        let counts = support_counts(&[&w]);
        let sup = WeldSupport::new(&counts, 1);
        let welds = harvest_contig(0, &contigs, &kmap, &sup, &cfg());
        assert!(
            welds.contains(&canonical_weld(&junction_window())),
            "junction weld harvested: {:?}",
            welds
                .iter()
                .map(|w| String::from_utf8_lossy(w).to_string())
                .collect::<Vec<_>>()
        );
        // Contig B harvests the same weld from its side.
        let welds_b = harvest_contig(1, &contigs, &kmap, &sup, &cfg());
        assert!(welds_b.contains(&canonical_weld(&junction_window())));
    }

    #[test]
    fn harvest_empty_without_read_support() {
        let contigs = packed(&[contig_a(), contig_b()]);
        let kmap = KmerContigMap::build(&contigs, K);
        let empty = support_counts(&[]);
        let sup = WeldSupport::new(&empty, 1);
        assert!(harvest_contig(0, &contigs, &kmap, &sup, &cfg()).is_empty());
    }

    #[test]
    fn harvest_empty_without_shared_seed() {
        let a: &[u8] = b"CGAGTCGGTTATCTTCGGCAAGTCAGGT";
        let b: &[u8] = b"AAAGCGGCACTTGTGAAGTGTTCCCCAC";
        let contigs = packed(&[a, b]);
        let kmap = KmerContigMap::build(&contigs, K);
        let counts = support_counts(&[a]);
        let sup = WeldSupport::new(&counts, 1);
        assert!(harvest_contig(0, &contigs, &kmap, &sup, &cfg()).is_empty());
    }

    #[test]
    fn revcomp_contig_harvests_same_weld() {
        // Contig B given as its reverse complement: canonical seed
        // orientation makes the harvested weld identical.
        let contigs_fwd = packed(&[contig_a(), contig_b()]);
        let contigs_rc = packed(&[contig_a(), revcomp(&contig_b())]);
        let w = junction_window();
        let counts = support_counts(&[&w]);
        let sup = WeldSupport::new(&counts, 1);
        let w_fwd: HashSet<Vec<u8>> = harvest_contig(
            0,
            &contigs_fwd,
            &KmerContigMap::build(&contigs_fwd, K),
            &sup,
            &cfg(),
        )
        .into_iter()
        .collect();
        let w_rc: HashSet<Vec<u8>> = harvest_contig(
            0,
            &contigs_rc,
            &KmerContigMap::build(&contigs_rc, K),
            &sup,
            &cfg(),
        )
        .into_iter()
        .collect();
        assert!(!w_fwd.is_empty());
        assert_eq!(w_fwd, w_rc);
    }

    #[test]
    fn repetitive_seed_capped() {
        // A seed occurring in > MAX_OCCS_PER_SEED contigs is skipped: no
        // harvested weld may contain it. (Flanks are pseudo-random, so
        // *other* accidental low-occurrence seeds may still weld — that is
        // fine and ignored here.)
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            b"ACGT"[(state >> 33) as usize % 4]
        };
        let mut seqs: Vec<Vec<u8>> = Vec::new();
        for _ in 0..(MAX_OCCS_PER_SEED + 4) {
            let mut s: Vec<u8> = (0..12).map(|_| next()).collect();
            s.extend_from_slice(SEED);
            s.extend((0..12).map(|_| next()));
            seqs.push(s);
        }
        let contigs = packed(&seqs);
        let kmap = KmerContigMap::build(&contigs, K);
        let seed = Kmer::from_bases(SEED).unwrap().canonical();
        assert!(kmap.occurrences(seed).len() > MAX_OCCS_PER_SEED);
        let counts = support_counts(&seqs.iter().map(|s| s.as_slice()).collect::<Vec<_>>());
        let sup = WeldSupport::new(&counts, 1);
        for i in 0..contigs.len() as u32 {
            for weld in harvest_contig(i, &contigs, &kmap, &sup, &cfg()) {
                // The weld's central region is its seed; the capped seed
                // must never be the one a weld was built on. (SEED may
                // still appear off-centre inside welds seeded on adjacent
                // uncapped seeds — legitimate.)
                let flank = cfg().flank();
                let centre = &weld[flank..flank + SEED.len()];
                let rc = revcomp(&weld);
                let centre_rc = &rc[flank..flank + SEED.len()];
                assert!(
                    centre != SEED && centre_rc != SEED,
                    "capped seed used as a weld seed"
                );
            }
        }
    }

    #[test]
    fn short_contig_harvests_nothing() {
        let contigs = packed(&[b"ACGTACG".as_slice(), b"ACGTACG".as_slice()]);
        let kmap = KmerContigMap::build(&contigs, K);
        let counts = support_counts(&[b"ACGTACG".as_slice()]);
        let sup = WeldSupport::new(&counts, 1);
        assert!(harvest_contig(0, &contigs, &kmap, &sup, &cfg()).is_empty());
    }

    #[test]
    fn n_in_one_flank_skips_only_that_window() {
        // An N inside contig A's left flank kills the A-left+seed+B-right
        // window but must NOT kill B-left+seed+A-right — the byte path
        // rejected N windows one at a time (pack_window_canonical -> None),
        // not per seed occurrence.
        let flank = cfg().flank();
        let a_left_n: &[u8] = b"CGAGTCGGTNAT"; // N lands inside the flank
        assert!(a_left_n[a_left_n.len() - flank..].contains(&b'N'));
        let a = [a_left_n, SEED, A_RIGHT].concat();
        let b = contig_b();
        let contigs = packed(&[a.clone(), b.clone()]);
        let kmap = KmerContigMap::build(&contigs, K);

        let w2 = [&B_LEFT[B_LEFT.len() - flank..], SEED, &A_RIGHT[..flank]].concat();
        let w1_clean = junction_window(); // what window 1 would be without N
        let counts = support_counts(&[&w2, &w1_clean]);
        let sup = WeldSupport::new(&counts, 1);
        let welds = harvest_contig(0, &contigs, &kmap, &sup, &cfg());
        assert!(
            welds.contains(&canonical_weld(&w2)),
            "clean window still harvested"
        );
        assert!(
            !welds.contains(&canonical_weld(&w1_clean)),
            "N-flank window must not appear"
        );
    }

    #[test]
    fn canonical_weld_is_strand_stable() {
        let w = junction_window();
        assert_eq!(canonical_weld(&w), canonical_weld(&revcomp(&w)));
    }
}

//! Paired-end scaffolding links from the Bowtie alignment.
//!
//! "the subsequent step searches pairs of Inchworm contigs of which both
//! ends are to be combined for the construction of scaffold, provided that
//! some of input reads are aligned onto single end of each contigs. This
//! output is later combined with 'welding' pairs of Inchworm contigs from
//! GraphFromFasta for full construction of Inchworm bundles." (§III-A)

use std::collections::{HashMap, HashSet};

use bowtie::sam::SamRecord;

/// Scaffolding parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScaffoldConfig {
    /// A mate must align within this many bases of a contig end to count
    /// as an "end" alignment.
    pub end_window: usize,
    /// Minimum distinct read pairs linking two contigs.
    pub min_pairs: u32,
}

impl Default for ScaffoldConfig {
    fn default() -> Self {
        ScaffoldConfig {
            end_window: 300,
            min_pairs: 2,
        }
    }
}

/// Strip the mate suffix (`/1`, `/2`, `/s`) from a read name.
fn pair_key(qname: &str) -> &str {
    qname
        .strip_suffix("/1")
        .or_else(|| qname.strip_suffix("/2"))
        .or_else(|| qname.strip_suffix("/s"))
        .unwrap_or(qname)
}

/// Derive scaffold pairs from merged SAM records.
///
/// `contig_index` maps contig names to dense indices; `contig_lens` gives
/// each contig's length (for the end-window test). Returns `(a, b)` pairs
/// with `a < b`, sorted.
pub fn scaffold_pairs(
    sam: &[SamRecord],
    contig_index: &HashMap<String, u32>,
    contig_lens: &[usize],
    cfg: ScaffoldConfig,
) -> Vec<(u32, u32)> {
    // read-pair key -> set of (contig, near_end) placements.
    let mut placements: HashMap<&str, Vec<(u32, bool)>> = HashMap::new();
    for rec in sam {
        if rec.is_unmapped() {
            continue;
        }
        let Some(&contig) = contig_index.get(&rec.rname) else {
            continue;
        };
        let len = contig_lens[contig as usize];
        let pos = (rec.pos.max(1) - 1) as usize; // SAM POS is 1-based
        let read_span = rec
            .cigar
            .strip_suffix('M')
            .and_then(|n| n.parse::<usize>().ok())
            .unwrap_or(0);
        let near_start = pos < cfg.end_window;
        let near_end = pos + read_span + cfg.end_window >= len;
        let near = near_start || near_end;
        placements
            .entry(pair_key(&rec.qname))
            .or_default()
            .push((contig, near));
    }

    // Count read pairs whose mates land near the ends of two different contigs.
    let mut link_counts: HashMap<(u32, u32), u32> = HashMap::new();
    for (_key, places) in placements {
        let ends: HashSet<u32> = places
            .iter()
            .filter(|(_, near)| *near)
            .map(|(c, _)| *c)
            .collect();
        let ends: Vec<u32> = {
            let mut v: Vec<u32> = ends.into_iter().collect();
            v.sort_unstable();
            v
        };
        for i in 0..ends.len() {
            for j in i + 1..ends.len() {
                *link_counts.entry((ends[i], ends[j])).or_insert(0) += 1;
            }
        }
    }

    let mut pairs: Vec<(u32, u32)> = link_counts
        .into_iter()
        .filter(|&(_, n)| n >= cfg.min_pairs)
        .map(|(p, _)| p)
        .collect();
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sam(qname: &str, rname: &str, pos: u64, span: usize) -> SamRecord {
        SamRecord {
            qname: qname.into(),
            flag: 0,
            rname: rname.into(),
            pos,
            mapq: 255,
            cigar: format!("{span}M"),
            nm: 0,
        }
    }

    fn index() -> (HashMap<String, u32>, Vec<usize>) {
        let mut m = HashMap::new();
        m.insert("cA".to_string(), 0);
        m.insert("cB".to_string(), 1);
        (m, vec![1000, 1000])
    }

    fn cfg() -> ScaffoldConfig {
        ScaffoldConfig {
            end_window: 100,
            min_pairs: 2,
        }
    }

    #[test]
    fn links_contigs_with_enough_pairs() {
        let (idx, lens) = index();
        let mut records = Vec::new();
        // Two read pairs spanning cA's tail and cB's head.
        for p in 0..2 {
            records.push(sam(&format!("p{p}/1"), "cA", 950, 36));
            records.push(sam(&format!("p{p}/2"), "cB", 10, 36));
        }
        let pairs = scaffold_pairs(&records, &idx, &lens, cfg());
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn below_min_pairs_no_link() {
        let (idx, lens) = index();
        let records = vec![sam("p0/1", "cA", 950, 36), sam("p0/2", "cB", 10, 36)];
        assert!(scaffold_pairs(&records, &idx, &lens, cfg()).is_empty());
    }

    #[test]
    fn mid_contig_alignments_do_not_link() {
        let (idx, lens) = index();
        let mut records = Vec::new();
        for p in 0..3 {
            records.push(sam(&format!("p{p}/1"), "cA", 500, 36)); // middle
            records.push(sam(&format!("p{p}/2"), "cB", 10, 36));
        }
        assert!(scaffold_pairs(&records, &idx, &lens, cfg()).is_empty());
    }

    #[test]
    fn same_contig_pairs_do_not_link() {
        let (idx, lens) = index();
        let mut records = Vec::new();
        for p in 0..3 {
            records.push(sam(&format!("p{p}/1"), "cA", 10, 36));
            records.push(sam(&format!("p{p}/2"), "cA", 950, 36));
        }
        assert!(scaffold_pairs(&records, &idx, &lens, cfg()).is_empty());
    }

    #[test]
    fn unmapped_and_unknown_contigs_ignored() {
        let (idx, lens) = index();
        let mut records = vec![SamRecord::unmapped("p0/1"), sam("p0/2", "cZ", 10, 36)];
        for p in 1..3 {
            records.push(sam(&format!("p{p}/1"), "cA", 960, 36));
            records.push(sam(&format!("p{p}/2"), "cB", 5, 36));
        }
        let pairs = scaffold_pairs(&records, &idx, &lens, cfg());
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn pair_key_strips_suffixes() {
        assert_eq!(pair_key("r1/1"), "r1");
        assert_eq!(pair_key("r1/2"), "r1");
        assert_eq!(pair_key("r1/s"), "r1");
        assert_eq!(pair_key("r1"), "r1");
    }
}

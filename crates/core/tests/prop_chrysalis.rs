//! Property-based tests for the Chrysalis core: partition-invariance of
//! the hybrid drivers over randomized workloads.

use std::sync::Arc;

use chrysalis::config::ChrysalisConfig;
use chrysalis::graph_from_fasta::{cluster, gff_hybrid, gff_shared_memory, GffShared};
use chrysalis::pairs::pairs_from_matches;
use chrysalis::reads_to_transcripts::{rtt_hybrid, rtt_shared_memory, RttShared};
use kcount::counter::{count_kmers, CounterConfig};
use mpisim::{run_cluster, NetModel};
use proptest::prelude::*;
use seqio::fasta::Record;

fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')],
        len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any random contig/read set and any rank count, the hybrid
    /// GraphFromFasta produces exactly the serial pairs and components.
    #[test]
    fn gff_is_partition_invariant(
        seqs in proptest::collection::vec(dna(20..60), 2..8),
        ranks in 1usize..6,
        chunk in 1usize..4,
    ) {
        let contigs = seqio::packed::encode_all(&seqs);
        // Reads = windows of the contigs, so welds can find support.
        let reads: Vec<Vec<u8>> = seqs
            .iter()
            .flat_map(|s| s.windows(16.min(s.len())).step_by(4).map(|w| w.to_vec()))
            .collect();
        let counts = count_kmers(&reads, CounterConfig::new(8));
        let mut cfg = ChrysalisConfig::small(8);
        cfg.chunk = Some(chunk);
        let shared = Arc::new(GffShared::prepare(contigs, counts, cfg));
        let serial = gff_shared_memory(&shared);
        let sh = Arc::clone(&shared);
        let outs = run_cluster(ranks, NetModel::ideal(), move |comm| gff_hybrid(comm, &sh));
        for o in &outs {
            prop_assert_eq!(&o.value.pairs, &serial.pairs);
            prop_assert_eq!(&o.value.component_of, &serial.component_of);
        }
    }

    /// For any read set and rank count, hybrid ReadsToTranscripts matches
    /// the serial assignment exactly.
    #[test]
    fn rtt_is_partition_invariant(
        contig_seqs in proptest::collection::vec(dna(30..60), 1..4),
        read_windows in proptest::collection::vec((0usize..3, 0usize..20), 4..24),
        ranks in 1usize..6,
        chunk_size in 1usize..7,
    ) {
        let contigs = seqio::packed::encode_all(&contig_seqs);
        let reads: Vec<Record> = read_windows
            .iter()
            .enumerate()
            .filter_map(|(i, &(c, off))| {
                let src = &contig_seqs[c % contig_seqs.len()];
                let off = off % src.len().saturating_sub(12).max(1);
                let end = (off + 12).min(src.len());
                (end > off).then(|| Record::new(format!("r{i}"), src[off..end].to_vec()))
            })
            .collect();
        let components: Vec<Vec<usize>> = (0..contigs.len()).map(|i| vec![i]).collect();
        let mut cfg = ChrysalisConfig::small(8);
        cfg.max_mem_reads = chunk_size;
        let shared = Arc::new(RttShared::prepare(reads, &contigs, &components, cfg));
        let serial = rtt_shared_memory(&shared);
        let sh = Arc::clone(&shared);
        let outs = run_cluster(ranks, NetModel::ideal(), move |comm| rtt_hybrid(comm, &sh));
        for o in &outs {
            prop_assert_eq!(&o.value.assignments, &serial.assignments);
        }
    }

    /// Clustering invariants: components partition the contig set and
    /// every pair's endpoints land in the same component.
    #[test]
    fn clustering_is_a_partition(
        n in 1usize..40,
        raw_pairs in proptest::collection::vec((0u32..40, 0u32..40), 0..60),
    ) {
        let pairs: Vec<(u32, u32)> = raw_pairs
            .into_iter()
            .filter(|&(a, b)| (a as usize) < n && (b as usize) < n && a != b)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        let (comp_of, comps) = cluster(n, &pairs);
        prop_assert_eq!(comp_of.len(), n);
        prop_assert_eq!(comps.iter().map(Vec::len).sum::<usize>(), n);
        for &(a, b) in &pairs {
            prop_assert_eq!(comp_of[a as usize], comp_of[b as usize]);
        }
        // Dense ids.
        for (c, members) in comps.iter().enumerate() {
            for &m in members {
                prop_assert_eq!(comp_of[m], c);
            }
        }
    }

    /// pairs_from_matches never invents contigs and never emits self-pairs.
    #[test]
    fn pairs_well_formed(matches in proptest::collection::vec((0u32..10, 0u32..20), 0..60)) {
        let pairs = pairs_from_matches(&matches);
        let contigs: std::collections::HashSet<u32> =
            matches.iter().map(|&(_, c)| c).collect();
        for &(a, b) in &pairs {
            prop_assert!(a < b);
            prop_assert!(contigs.contains(&a) && contigs.contains(&b));
        }
        // Sorted and deduplicated.
        for w in pairs.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }
}

//! Synthetic RNA-seq data generation.
//!
//! The paper benchmarks on proprietary or since-moved datasets (a 130 M-read
//! sugarbeet RNA-seq set from Rothamsted Research, a whitefly set, and the
//! Trinity reference sets for *Schizosaccharomyces* and *Drosophila*). None
//! are available here, so this crate generates synthetic equivalents that
//! control exactly the properties the evaluation depends on:
//!
//! * genes with **alternative splicing** (shared exons between isoforms →
//!   contigs that share welding subsequences, the thing GraphFromFasta
//!   clusters on);
//! * **log-normal expression** (the "very large dynamic range" of §I);
//! * **heavy-tailed transcript lengths** (the load imbalance the paper
//!   blames for GraphFromFasta's rank-time spread at 192 nodes);
//! * **paired-end reads with substitution errors** at configurable depth;
//! * a ground-truth **reference transcript set** for the Fig. 5/6 counting.
//!
//! Everything is seeded and deterministic.

pub mod datasets;
pub mod expression;
pub mod reads;
pub mod transcriptome;

pub use datasets::{Dataset, DatasetPreset};
pub use expression::ExpressionModel;
pub use reads::{ReadSimConfig, SimulatedReads};
pub use transcriptome::{Gene, Isoform, RefSeq, Transcriptome, TranscriptomeConfig};

//! Paired-end read simulation with substitution errors.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use seqio::alphabet::revcomp;
use seqio::fasta::Record;

use crate::expression::ExpressionModel;
use crate::transcriptome::RefSeq;

/// Read-simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct ReadSimConfig {
    /// Total read *pairs* to draw (plus single-end reads for transcripts
    /// shorter than the insert, mirroring the sugarbeet set's mix of
    /// single-end and paired reads).
    pub pairs: usize,
    /// Read length.
    pub read_len: usize,
    /// Mean fragment (insert) length.
    pub insert_mean: f64,
    /// Fragment length standard deviation.
    pub insert_sd: f64,
    /// Per-base substitution error probability.
    pub error_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReadSimConfig {
    fn default() -> Self {
        ReadSimConfig {
            pairs: 2000,
            read_len: 50,
            insert_mean: 180.0,
            insert_sd: 20.0,
            error_rate: 0.005,
            seed: 7,
        }
    }
}

/// The simulated read set.
#[derive(Debug, Clone)]
pub struct SimulatedReads {
    /// Left mates (`/1`), plus single-end reads from short transcripts.
    pub left: Vec<Record>,
    /// Right mates (`/2`), reverse-complemented as sequencers deliver them.
    pub right: Vec<Record>,
}

impl SimulatedReads {
    /// All reads as one flat list (what Jellyfish/Inchworm consume).
    pub fn all(&self) -> Vec<Record> {
        let mut v = self.left.clone();
        v.extend(self.right.iter().cloned());
        v
    }

    /// Total read count.
    pub fn len(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// True if no reads were produced.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

fn randn(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

fn apply_errors(seq: &mut [u8], rate: f64, rng: &mut StdRng) {
    if rate <= 0.0 {
        return;
    }
    for b in seq.iter_mut() {
        if rng.random::<f64>() < rate {
            let cur = *b;
            loop {
                let nb = BASES[rng.random_range(0..4usize)];
                if nb != cur {
                    *b = nb;
                    break;
                }
            }
        }
    }
}

/// Simulate reads over `reference` with expression levels from `expr`.
///
/// Read ids encode the truth (`<isoform>:<pair#>/<mate>`), which the
/// integration tests use to check read-to-component assignment.
pub fn simulate_reads(
    reference: &[RefSeq],
    expr: &ExpressionModel,
    cfg: ReadSimConfig,
) -> SimulatedReads {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let abundances = expr.sample_abundances(reference.len());
    let counts = expr.read_counts(&abundances, cfg.pairs);

    let mut left = Vec::new();
    let mut right = Vec::new();
    for (t, &n) in counts.iter().enumerate() {
        let seq = &reference[t].seq;
        if seq.len() < cfg.read_len {
            continue; // too short to sequence at all
        }
        for p in 0..n {
            let insert = (cfg.insert_mean + cfg.insert_sd * randn(&mut rng))
                .round()
                .clamp(cfg.read_len as f64, 10_000.0) as usize;
            if seq.len() < insert || insert < 2 * cfg.read_len {
                // Transcript shorter than the fragment: emit a single-end
                // read (the sugarbeet set mixes single-end and paired).
                let start = rng.random_range(0..=seq.len() - cfg.read_len);
                let mut r = seq[start..start + cfg.read_len].to_vec();
                apply_errors(&mut r, cfg.error_rate, &mut rng);
                left.push(Record::new(format!("{}:{}/s", reference[t].isoform, p), r));
                continue;
            }
            let start = rng.random_range(0..=seq.len() - insert);
            let mut l = seq[start..start + cfg.read_len].to_vec();
            let mut r = revcomp(&seq[start + insert - cfg.read_len..start + insert]);
            apply_errors(&mut l, cfg.error_rate, &mut rng);
            apply_errors(&mut r, cfg.error_rate, &mut rng);
            left.push(Record::new(format!("{}:{}/1", reference[t].isoform, p), l));
            right.push(Record::new(format!("{}:{}/2", reference[t].isoform, p), r));
        }
    }
    SimulatedReads { left, right }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transcriptome::{Transcriptome, TranscriptomeConfig};

    fn reference() -> Vec<RefSeq> {
        Transcriptome::generate(TranscriptomeConfig {
            genes: 10,
            exon_len: (200, 400),
            ..Default::default()
        })
        .reference()
    }

    fn cfg() -> ReadSimConfig {
        ReadSimConfig {
            pairs: 500,
            ..Default::default()
        }
    }

    #[test]
    fn produces_reads_of_right_length() {
        let reads = simulate_reads(&reference(), &ExpressionModel::default(), cfg());
        assert!(!reads.is_empty());
        for r in reads.all() {
            assert_eq!(r.seq.len(), 50);
        }
    }

    #[test]
    fn deterministic() {
        let a = simulate_reads(&reference(), &ExpressionModel::default(), cfg());
        let b = simulate_reads(&reference(), &ExpressionModel::default(), cfg());
        assert_eq!(a.left, b.left);
        assert_eq!(a.right, b.right);
    }

    #[test]
    fn error_free_reads_are_substrings() {
        let reference = reference();
        let reads = simulate_reads(
            &reference,
            &ExpressionModel::default(),
            ReadSimConfig {
                error_rate: 0.0,
                pairs: 200,
                ..cfg()
            },
        );
        for r in &reads.left {
            let iso = r.id.split(':').next().unwrap();
            let src = reference.iter().find(|t| t.isoform == iso).unwrap();
            let found = src.seq.windows(r.seq.len()).any(|w| w == r.seq.as_slice());
            assert!(found, "left read {} not a substring", r.id);
        }
        for r in &reads.right {
            let iso = r.id.split(':').next().unwrap();
            let src = reference.iter().find(|t| t.isoform == iso).unwrap();
            let rc = revcomp(&r.seq);
            let found = src.seq.windows(rc.len()).any(|w| w == rc.as_slice());
            assert!(found, "right read {} not an rc-substring", r.id);
        }
    }

    #[test]
    fn errors_change_some_bases() {
        let clean = simulate_reads(
            &reference(),
            &ExpressionModel::default(),
            ReadSimConfig {
                error_rate: 0.0,
                ..cfg()
            },
        );
        let noisy = simulate_reads(
            &reference(),
            &ExpressionModel::default(),
            ReadSimConfig {
                error_rate: 0.05,
                ..cfg()
            },
        );
        let diff: usize = clean
            .left
            .iter()
            .zip(&noisy.left)
            .map(|(a, b)| a.seq.iter().zip(&b.seq).filter(|(x, y)| x != y).count())
            .sum();
        assert!(diff > 0, "5% error rate must flip some bases");
    }

    #[test]
    fn pair_counts_respected() {
        let reads = simulate_reads(&reference(), &ExpressionModel::default(), cfg());
        // pairs + single-end fallbacks: left >= right, total pairs == cfg.
        assert!(reads.left.len() >= reads.right.len());
        assert_eq!(reads.left.len(), 500);
    }

    #[test]
    fn ids_encode_truth() {
        let reads = simulate_reads(&reference(), &ExpressionModel::default(), cfg());
        for r in &reads.left {
            assert!(r.id.contains(':') && (r.id.ends_with("/1") || r.id.ends_with("/s")));
        }
        for r in &reads.right {
            assert!(r.id.ends_with("/2"));
        }
    }

    #[test]
    fn empty_reference_is_empty() {
        let reads = simulate_reads(&[], &ExpressionModel::default(), cfg());
        assert!(reads.is_empty());
    }
}

//! Expression-level model: log-normal abundance across isoforms.
//!
//! "the population of mRNA depends on the expression levels of genes in the
//! chosen sample, and there can be a very large dynamic range" (§I). A
//! log-normal with σ ≈ 1.5 spans 3–4 orders of magnitude, matching typical
//! RNA-seq TPM distributions.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Log-normal expression model.
#[derive(Debug, Clone, Copy)]
pub struct ExpressionModel {
    /// Mean of the underlying normal (log scale).
    pub mu: f64,
    /// Standard deviation of the underlying normal (log scale).
    pub sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExpressionModel {
    fn default() -> Self {
        ExpressionModel {
            mu: 0.0,
            sigma: 1.5,
            seed: 99,
        }
    }
}

/// One standard-normal sample via Box–Muller (rand ships no distributions;
/// pulling in `rand_distr` for one gaussian is not worth the dependency).
fn randn(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

impl ExpressionModel {
    /// Sample relative abundances for `n` isoforms; the result sums to 1.
    pub fn sample_abundances(&self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let raw: Vec<f64> = (0..n)
            .map(|_| (self.mu + self.sigma * randn(&mut rng)).exp())
            .collect();
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|x| x / total).collect()
    }

    /// Turn abundances into integer read counts totalling exactly
    /// `total_reads` (largest-remainder apportionment, deterministic).
    pub fn read_counts(&self, abundances: &[f64], total_reads: usize) -> Vec<usize> {
        if abundances.is_empty() {
            return Vec::new();
        }
        let mut counts: Vec<usize> = abundances
            .iter()
            .map(|a| (a * total_reads as f64).floor() as usize)
            .collect();
        let assigned: usize = counts.iter().sum();
        let mut remainders: Vec<(usize, f64)> = abundances
            .iter()
            .enumerate()
            .map(|(i, a)| (i, a * total_reads as f64 - counts[i] as f64))
            .collect();
        remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        for &(i, _) in remainders.iter().take(total_reads - assigned) {
            counts[i] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abundances_sum_to_one() {
        let m = ExpressionModel::default();
        let a = m.sample_abundances(100);
        assert_eq!(a.len(), 100);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(a.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn wide_dynamic_range() {
        let m = ExpressionModel::default();
        let a = m.sample_abundances(500);
        let max = a.iter().cloned().fold(0.0, f64::max);
        let min = a.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min > 100.0,
            "log-normal sigma=1.5 must span orders of magnitude (got {})",
            max / min
        );
    }

    #[test]
    fn deterministic() {
        let m = ExpressionModel::default();
        assert_eq!(m.sample_abundances(10), m.sample_abundances(10));
        let other = ExpressionModel {
            seed: 1,
            ..ExpressionModel::default()
        };
        assert_ne!(m.sample_abundances(10), other.sample_abundances(10));
    }

    #[test]
    fn read_counts_total_exactly() {
        let m = ExpressionModel::default();
        let a = m.sample_abundances(37);
        for total in [0usize, 1, 100, 12345] {
            let counts = m.read_counts(&a, total);
            assert_eq!(counts.iter().sum::<usize>(), total);
        }
    }

    #[test]
    fn read_counts_follow_abundance() {
        let m = ExpressionModel::default();
        let counts = m.read_counts(&[0.7, 0.2, 0.1], 1000);
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
        assert_eq!(counts[0], 700);
    }

    #[test]
    fn empty_inputs() {
        let m = ExpressionModel::default();
        assert!(m.sample_abundances(0).is_empty());
        assert!(m.read_counts(&[], 100).is_empty());
    }
}

//! Synthetic transcriptome: genes, exons and alternatively spliced isoforms.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// One isoform of a gene: a subset of its exons, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Isoform {
    /// Isoform id, unique within the transcriptome (e.g. `g12.i1`).
    pub id: String,
    /// Indices of the gene's exons included by this isoform.
    pub exons: Vec<usize>,
}

/// One gene: a set of exon sequences and the isoforms spliced from them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gene {
    /// Gene id (e.g. `g12`).
    pub id: String,
    /// Exon sequences.
    pub exons: Vec<Vec<u8>>,
    /// Isoforms; the first always includes every exon (the "canonical"
    /// transcript), later ones skip internal exons.
    pub isoforms: Vec<Isoform>,
}

impl Gene {
    /// Spell the transcript sequence of isoform `i`.
    pub fn transcript(&self, i: usize) -> Vec<u8> {
        let iso = &self.isoforms[i];
        let total: usize = iso.exons.iter().map(|&e| self.exons[e].len()).sum();
        let mut seq = Vec::with_capacity(total);
        for &e in &iso.exons {
            seq.extend_from_slice(&self.exons[e]);
        }
        seq
    }
}

/// A flattened reference transcript (the ground truth for Figs. 5–6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefSeq {
    /// Owning gene id.
    pub gene: String,
    /// Isoform id.
    pub isoform: String,
    /// Transcript sequence.
    pub seq: Vec<u8>,
}

/// Parameters of the transcriptome generator.
#[derive(Debug, Clone, Copy)]
pub struct TranscriptomeConfig {
    /// Number of genes.
    pub genes: usize,
    /// Exons per gene: uniform in `[min, max]`.
    pub exons_per_gene: (usize, usize),
    /// Exon length: log-uniform-ish in `[min, max]` (heavy tail comes from
    /// the max being much larger than the median).
    pub exon_len: (usize, usize),
    /// Isoforms per gene: uniform in `[min, max]` (min ≥ 1).
    pub isoforms_per_gene: (usize, usize),
    /// Fraction of genes generated as *paralogs*: diverged copies of an
    /// earlier gene. Paralog families share long exact stretches, which is
    /// what makes contigs share seeds and GraphFromFasta expensive — real
    /// transcriptomes are full of them.
    pub paralog_fraction: f64,
    /// Per-base substitution rate applied to paralog copies.
    pub paralog_divergence: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TranscriptomeConfig {
    fn default() -> Self {
        TranscriptomeConfig {
            genes: 50,
            exons_per_gene: (2, 6),
            exon_len: (100, 400),
            isoforms_per_gene: (1, 3),
            paralog_fraction: 0.0,
            paralog_divergence: 0.03,
            seed: 42,
        }
    }
}

/// The generated transcriptome.
#[derive(Debug, Clone)]
pub struct Transcriptome {
    /// All genes.
    pub genes: Vec<Gene>,
}

impl Transcriptome {
    /// Generate per `cfg` (deterministic in the seed).
    pub fn generate(cfg: TranscriptomeConfig) -> Self {
        assert!(cfg.exons_per_gene.0 >= 1 && cfg.exons_per_gene.0 <= cfg.exons_per_gene.1);
        assert!(cfg.exon_len.0 >= 1 && cfg.exon_len.0 <= cfg.exon_len.1);
        assert!(cfg.isoforms_per_gene.0 >= 1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut genes: Vec<Gene> = Vec::with_capacity(cfg.genes);
        for g in 0..cfg.genes {
            // Paralogs: copy an earlier gene's exons with substitutions.
            if !genes.is_empty() && rng.random::<f64>() < cfg.paralog_fraction {
                let src = rng.random_range(0..genes.len());
                let exons: Vec<Vec<u8>> = genes[src]
                    .exons
                    .iter()
                    .map(|e| mutate(&mut rng, e, cfg.paralog_divergence))
                    .collect();
                let n_exons = exons.len();
                let isoforms = vec![Isoform {
                    id: format!("g{g}.i0"),
                    exons: (0..n_exons).collect(),
                }];
                genes.push(Gene {
                    id: format!("g{g}"),
                    exons,
                    isoforms,
                });
                continue;
            }
            let n_exons = rng.random_range(cfg.exons_per_gene.0..=cfg.exons_per_gene.1);
            // Log-uniform exon lengths give the heavy-tailed transcript
            // length distribution the paper's load-imbalance discussion
            // depends on.
            let exons: Vec<Vec<u8>> = (0..n_exons)
                .map(|_| {
                    let lo = (cfg.exon_len.0 as f64).ln();
                    let hi = (cfg.exon_len.1 as f64).ln();
                    let len = (lo + (hi - lo) * rng.random::<f64>()).exp().round() as usize;
                    random_dna(&mut rng, len.clamp(cfg.exon_len.0, cfg.exon_len.1))
                })
                .collect();

            let max_iso = cfg.isoforms_per_gene.1.min(1 + n_exons.saturating_sub(2));
            let n_iso = if max_iso <= cfg.isoforms_per_gene.0 {
                cfg.isoforms_per_gene.0
            } else {
                rng.random_range(cfg.isoforms_per_gene.0..=max_iso)
            };
            let mut isoforms = vec![Isoform {
                id: format!("g{g}.i0"),
                exons: (0..n_exons).collect(),
            }];
            // Alternative isoforms skip one distinct internal exon each.
            let mut skippable: Vec<usize> = (1..n_exons.saturating_sub(1)).collect();
            for i in 1..n_iso {
                if skippable.is_empty() {
                    break;
                }
                let pick = rng.random_range(0..skippable.len());
                let skip = skippable.swap_remove(pick);
                isoforms.push(Isoform {
                    id: format!("g{g}.i{i}"),
                    exons: (0..n_exons).filter(|&e| e != skip).collect(),
                });
            }
            genes.push(Gene {
                id: format!("g{g}"),
                exons,
                isoforms,
            });
        }
        Transcriptome { genes }
    }

    /// Total number of isoforms.
    pub fn isoform_count(&self) -> usize {
        self.genes.iter().map(|g| g.isoforms.len()).sum()
    }

    /// Flatten into reference transcripts.
    pub fn reference(&self) -> Vec<RefSeq> {
        let mut out = Vec::with_capacity(self.isoform_count());
        for g in &self.genes {
            for (i, iso) in g.isoforms.iter().enumerate() {
                out.push(RefSeq {
                    gene: g.id.clone(),
                    isoform: iso.id.clone(),
                    seq: g.transcript(i),
                });
            }
        }
        out
    }
}

/// Uniform random DNA of length `len`.
pub fn random_dna(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| BASES[rng.random_range(0..4usize)])
        .collect()
}

/// Copy `seq` with substitutions at `rate` per base.
pub fn mutate(rng: &mut StdRng, seq: &[u8], rate: f64) -> Vec<u8> {
    seq.iter()
        .map(|&b| {
            if rng.random::<f64>() < rate {
                loop {
                    let nb = BASES[rng.random_range(0..4usize)];
                    if nb != b {
                        break nb;
                    }
                }
            } else {
                b
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = Transcriptome::generate(TranscriptomeConfig::default());
        let b = Transcriptome::generate(TranscriptomeConfig::default());
        assert_eq!(a.genes, b.genes);
        let c = Transcriptome::generate(TranscriptomeConfig {
            seed: 7,
            ..Default::default()
        });
        assert_ne!(a.genes, c.genes);
    }

    #[test]
    fn respects_gene_count() {
        let t = Transcriptome::generate(TranscriptomeConfig {
            genes: 13,
            ..Default::default()
        });
        assert_eq!(t.genes.len(), 13);
        assert!(t.isoform_count() >= 13);
    }

    #[test]
    fn canonical_isoform_has_all_exons() {
        let t = Transcriptome::generate(TranscriptomeConfig::default());
        for g in &t.genes {
            assert_eq!(g.isoforms[0].exons.len(), g.exons.len());
            let full: usize = g.exons.iter().map(Vec::len).sum();
            assert_eq!(g.transcript(0).len(), full);
        }
    }

    #[test]
    fn alternative_isoforms_skip_internal_exons() {
        let t = Transcriptome::generate(TranscriptomeConfig {
            genes: 40,
            exons_per_gene: (4, 6),
            isoforms_per_gene: (2, 3),
            ..Default::default()
        });
        let mut saw_alternative = false;
        for g in &t.genes {
            for iso in &g.isoforms[1..] {
                saw_alternative = true;
                // Skips exactly one exon, never the first or last.
                assert_eq!(iso.exons.len(), g.exons.len() - 1);
                assert!(iso.exons.contains(&0));
                assert!(iso.exons.contains(&(g.exons.len() - 1)));
                // Exons stay ordered.
                assert!(iso.exons.windows(2).all(|w| w[0] < w[1]));
            }
        }
        assert!(saw_alternative);
    }

    #[test]
    fn exon_lengths_in_bounds() {
        let cfg = TranscriptomeConfig {
            exon_len: (50, 200),
            ..Default::default()
        };
        let t = Transcriptome::generate(cfg);
        for g in &t.genes {
            for e in &g.exons {
                assert!((50..=200).contains(&e.len()));
            }
        }
    }

    #[test]
    fn reference_matches_transcripts() {
        let t = Transcriptome::generate(TranscriptomeConfig::default());
        let refs = t.reference();
        assert_eq!(refs.len(), t.isoform_count());
        assert_eq!(refs[0].seq, t.genes[0].transcript(0));
        // Isoform ids are unique.
        let ids: std::collections::HashSet<&str> =
            refs.iter().map(|r| r.isoform.as_str()).collect();
        assert_eq!(ids.len(), refs.len());
    }

    #[test]
    fn random_dna_is_dna() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = random_dna(&mut rng, 500);
        assert_eq!(s.len(), 500);
        assert!(s.iter().all(|b| BASES.contains(b)));
    }
}

#[cfg(test)]
mod paralog_tests {
    use super::*;

    fn cfg(frac: f64) -> TranscriptomeConfig {
        TranscriptomeConfig {
            genes: 40,
            paralog_fraction: frac,
            paralog_divergence: 0.03,
            ..Default::default()
        }
    }

    #[test]
    fn zero_fraction_means_no_paralogs() {
        let a = Transcriptome::generate(cfg(0.0));
        let b = Transcriptome::generate(TranscriptomeConfig {
            genes: 40,
            ..Default::default()
        });
        assert_eq!(a.genes, b.genes);
    }

    #[test]
    fn paralogs_share_long_exact_stretches() {
        let t = Transcriptome::generate(cfg(0.5));
        // Find at least one pair of genes sharing a 40-base exact window.
        let mut found = false;
        'outer: for i in 0..t.genes.len() {
            for j in i + 1..t.genes.len() {
                let a = t.genes[i].transcript(0);
                let b = t.genes[j].transcript(0);
                if a.len() < 40 || b.len() < 40 {
                    continue;
                }
                let windows: std::collections::HashSet<&[u8]> = a.windows(40).step_by(7).collect();
                if b.windows(40).any(|w| windows.contains(w)) {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "50% paralog fraction must create shared stretches");
    }

    #[test]
    fn paralogs_are_not_identical() {
        let t = Transcriptome::generate(cfg(1.0));
        // Every gene after the first is a paralog of an earlier one, but
        // divergence must have changed it.
        let firsts: Vec<Vec<u8>> = t.genes.iter().map(|g| g.transcript(0)).collect();
        for (i, a) in firsts.iter().enumerate() {
            for b in firsts.iter().skip(i + 1) {
                assert_ne!(a, b, "paralogs must diverge");
            }
        }
    }

    #[test]
    fn mutate_respects_rate() {
        let mut rng = StdRng::seed_from_u64(8);
        let seq = random_dna(&mut rng, 10_000);
        let zero = mutate(&mut rng, &seq, 0.0);
        assert_eq!(zero, seq);
        let heavy = mutate(&mut rng, &seq, 0.5);
        let diff = seq.iter().zip(&heavy).filter(|(a, b)| a != b).count();
        assert!(
            (3000..7000).contains(&diff),
            "≈50% substitutions, got {diff}"
        );
    }
}

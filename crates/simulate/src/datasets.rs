//! Dataset presets standing in for the paper's inputs.
//!
//! Sizes are scaled to a single-core host; each preset keeps the property
//! that made the paper pick that dataset (scale, skew, or an annotated
//! reference set). EXPERIMENTS.md records the scale factors.

use seqio::fasta::Record;

use crate::expression::ExpressionModel;
use crate::reads::{simulate_reads, ReadSimConfig, SimulatedReads};
use crate::transcriptome::{RefSeq, Transcriptome, TranscriptomeConfig};

/// Which paper dataset a preset stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetPreset {
    /// Tiny smoke-test set (not in the paper; for unit/integration tests).
    Tiny,
    /// The 130 M-read sugarbeet benchmark set: the *scaling* workload.
    /// Heavy length skew, deep coverage.
    SugarbeetLike,
    /// The ~420 k-read whitefly set used for the Fig. 4 validation.
    WhiteflyLike,
    /// The 15.35 M-read "Schizophrenia" [sic — Schizosaccharomyces] set
    /// with a reference transcript set (Figs. 5–6).
    SchizoLike,
    /// The 50 M-read Drosophila set with a reference set (Figs. 5–6).
    DrosophilaLike,
}

/// A fully materialized synthetic dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which preset produced it.
    pub preset: DatasetPreset,
    /// The simulated reads.
    pub reads: SimulatedReads,
    /// Ground-truth reference transcripts.
    pub reference: Vec<RefSeq>,
}

impl Dataset {
    /// Generate a preset with the given seed (seeds vary per repeated run
    /// in the Fig. 4 experiment).
    pub fn generate(preset: DatasetPreset, seed: u64) -> Dataset {
        let (tcfg, rcfg) = preset.configs(seed);
        let transcriptome = Transcriptome::generate(tcfg);
        let reference = transcriptome.reference();
        let expr = ExpressionModel {
            seed: seed ^ 0xE0E0_E0E0,
            ..ExpressionModel::default()
        };
        let reads = simulate_reads(&reference, &expr, rcfg);
        Dataset {
            preset,
            reads,
            reference,
        }
    }

    /// All reads as FASTA records.
    pub fn all_reads(&self) -> Vec<Record> {
        self.reads.all()
    }
}

impl DatasetPreset {
    /// The generator configurations of this preset.
    pub fn configs(self, seed: u64) -> (TranscriptomeConfig, ReadSimConfig) {
        match self {
            DatasetPreset::Tiny => (
                TranscriptomeConfig {
                    genes: 8,
                    exons_per_gene: (2, 4),
                    exon_len: (80, 200),
                    isoforms_per_gene: (1, 2),
                    paralog_fraction: 0.0,
                    paralog_divergence: 0.03,
                    seed,
                },
                ReadSimConfig {
                    pairs: 800,
                    read_len: 36,
                    insert_mean: 120.0,
                    insert_sd: 15.0,
                    error_rate: 0.002,
                    seed: seed ^ 0xBEEF,
                },
            ),
            DatasetPreset::SugarbeetLike => (
                TranscriptomeConfig {
                    genes: 400,
                    paralog_fraction: 0.3,
                    paralog_divergence: 0.02,
                    exons_per_gene: (2, 8),
                    // Wide log-uniform range: "very wide variation in the
                    // lengths of reconstructed transcripts" (§V-A) — the
                    // source of the loop-2 load imbalance.
                    exon_len: (80, 1200),
                    isoforms_per_gene: (1, 4),
                    seed,
                },
                ReadSimConfig {
                    pairs: 30_000,
                    read_len: 50,
                    insert_mean: 220.0,
                    insert_sd: 30.0,
                    error_rate: 0.005,
                    seed: seed ^ 0xBEEF,
                },
            ),
            DatasetPreset::WhiteflyLike => (
                TranscriptomeConfig {
                    genes: 60,
                    paralog_fraction: 0.2,
                    paralog_divergence: 0.03,
                    exons_per_gene: (2, 5),
                    exon_len: (100, 600),
                    isoforms_per_gene: (1, 3),
                    seed,
                },
                ReadSimConfig {
                    pairs: 6_000,
                    read_len: 45,
                    insert_mean: 180.0,
                    insert_sd: 25.0,
                    error_rate: 0.004,
                    seed: seed ^ 0xBEEF,
                },
            ),
            DatasetPreset::SchizoLike => (
                TranscriptomeConfig {
                    genes: 90,
                    paralog_fraction: 0.15,
                    paralog_divergence: 0.03,
                    exons_per_gene: (1, 4),
                    exon_len: (150, 900),
                    isoforms_per_gene: (1, 2),
                    seed,
                },
                ReadSimConfig {
                    pairs: 9_000,
                    read_len: 50,
                    insert_mean: 200.0,
                    insert_sd: 25.0,
                    error_rate: 0.004,
                    seed: seed ^ 0xBEEF,
                },
            ),
            DatasetPreset::DrosophilaLike => (
                TranscriptomeConfig {
                    genes: 130,
                    paralog_fraction: 0.25,
                    paralog_divergence: 0.03,
                    exons_per_gene: (2, 7),
                    exon_len: (100, 1200),
                    isoforms_per_gene: (1, 4),
                    seed,
                },
                ReadSimConfig {
                    pairs: 14_000,
                    read_len: 50,
                    insert_mean: 210.0,
                    insert_sd: 28.0,
                    error_rate: 0.004,
                    seed: seed ^ 0xBEEF,
                },
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_generates_quickly_and_deterministically() {
        let a = Dataset::generate(DatasetPreset::Tiny, 1);
        let b = Dataset::generate(DatasetPreset::Tiny, 1);
        assert!(!a.reads.is_empty());
        assert_eq!(a.reads.left, b.reads.left);
        assert_eq!(a.reference.len(), b.reference.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::generate(DatasetPreset::Tiny, 1);
        let b = Dataset::generate(DatasetPreset::Tiny, 2);
        assert_ne!(a.reads.left, b.reads.left);
    }

    #[test]
    fn presets_scale_relative_to_each_other() {
        let whitefly = Dataset::generate(DatasetPreset::WhiteflyLike, 3);
        let tiny = Dataset::generate(DatasetPreset::Tiny, 3);
        assert!(whitefly.reads.len() > tiny.reads.len());
        assert!(whitefly.reference.len() > tiny.reference.len());
    }

    #[test]
    fn sugarbeet_has_length_skew() {
        let d = Dataset::generate(DatasetPreset::SugarbeetLike, 5);
        let lens: Vec<usize> = d.reference.iter().map(|r| r.seq.len()).collect();
        let max = *lens.iter().max().unwrap();
        let min = *lens.iter().min().unwrap();
        assert!(
            max as f64 / min as f64 > 8.0,
            "scaling workload needs heavy length skew (max {max} min {min})"
        );
    }

    #[test]
    fn all_reads_concatenates() {
        let d = Dataset::generate(DatasetPreset::Tiny, 1);
        assert_eq!(d.all_reads().len(), d.reads.len());
    }
}

//! Head-to-head: the pre-rolling inner loops (ASCII windows with an O(k)
//! reverse-complement per position) vs the rolling canonical streams over
//! 2-bit packed sequences, on the three hot-path shapes the rewrite
//! touched — k-mer counting, ReadsToTranscripts assignment and the weld
//! support scan.
//!
//! Run with `cargo bench --bench hotloops`; a custom `main` writes the
//! measured before/after pairs to `BENCH_hotloops.json` at the workspace
//! root so the speedup table in README.md stays reproducible. Under
//! `cargo test` the harness runs in smoke mode (each closure once,
//! unmeasured) and the JSON is left untouched. `HOTLOOPS_SAMPLES` overrides
//! the per-benchmark sample count (CI's bench-smoke job sets a small one).

use criterion::{black_box, Criterion};

use chrysalis::config::ChrysalisConfig;
use chrysalis::weld::{WeldSupport, WeldWindow};
use kcount::counter::KmerCounts;
use kmertable::PackedKmerTable;
use seqio::alphabet::base_to_code;
use seqio::fasta::Record;
use seqio::packed::PackedSeq;
use simulate::datasets::{Dataset, DatasetPreset};

const K: usize = 24;

/// The pre-rolling discipline, reimplemented locally so the comparison
/// survives the rewrite: roll the forward word one base at a time, but
/// rebuild the reverse complement from scratch for every window — the O(k)
/// per-position cost `Kmer::canonical()` used to pay.
fn naive_stream(seq: &[u8], k: usize, mut emit: impl FnMut(u64)) {
    let mask = if k == 32 {
        u64::MAX
    } else {
        (1u64 << (2 * k)) - 1
    };
    let mut fwd = 0u64;
    let mut filled = 0usize;
    for &b in seq {
        match base_to_code(b) {
            Some(c) => {
                fwd = ((fwd << 2) | c as u64) & mask;
                filled += 1;
            }
            None => {
                filled = 0;
                fwd = 0;
            }
        }
        if filled >= k {
            let mut rc = 0u64;
            for i in 0..k {
                rc = (rc << 2) | (3 - ((fwd >> (2 * i)) & 3));
            }
            emit(fwd.min(rc));
        }
    }
}

/// Naive per-read component vote: ASCII scan, O(k) canonical per window,
/// heap-allocated tally — the shape `RttShared::assign` had before the
/// rolling/packed rewrite.
fn naive_assign(table: &PackedKmerTable, min: u32, k: usize, read: &[u8]) -> Option<u32> {
    let mut votes: Vec<(u32, u32)> = Vec::new();
    naive_stream(read, k, |p| {
        if let Some(c) = table.get(p) {
            match votes.iter_mut().find(|(vc, _)| *vc == c) {
                Some(v) => v.1 += 1,
                None => votes.push((c, 1)),
            }
        }
    });
    let mut best: Option<(u32, u32)> = None;
    for &(c, n) in &votes {
        if n < min {
            continue;
        }
        let better = match best {
            Some((bc, bn)) => n > bn || (n == bn && c < bc),
            None => true,
        };
        if better {
            best = Some((c, n));
        }
    }
    best.map(|(c, _)| c)
}

/// Naive weld support probe: ASCII window, O(k) canonical per k-window.
fn naive_supports(counts: &KmerCounts, min: u32, k: usize, w: &[u8]) -> bool {
    if w.len() < k {
        return false;
    }
    let mut any = true;
    let mut seen = false;
    naive_stream(w, k, |p| {
        seen = true;
        if counts.get_packed(p) < min {
            any = false;
        }
    });
    seen && any
}

struct Fixtures {
    reads: Vec<Record>,
    packed_reads: Vec<PackedSeq>,
    counts: KmerCounts,
    rtt: std::sync::Arc<chrysalis::reads_to_transcripts::RttShared>,
    byte_windows: Vec<Vec<u8>>,
    weld_windows: Vec<WeldWindow>,
    cfg: ChrysalisConfig,
}

fn fixtures() -> Fixtures {
    let reads = Dataset::generate(DatasetPreset::Tiny, 7).all_reads();
    let packed_reads = seqio::packed::encode_all(&reads);
    let cfg = ChrysalisConfig::small(16);

    let counts = kcount::counter::count_kmers(&reads, kcount::counter::CounterConfig::new(cfg.k));
    let dict = inchworm::dictionary::Dictionary::from_counts(counts.clone(), 1);
    let contigs: Vec<Record> = inchworm::assemble::assemble(
        &dict,
        inchworm::assemble::InchwormConfig {
            min_seed_count: 1,
            min_extend_count: 1,
            min_contig_len: 32,
            jitter_seed: None,
        },
    )
    .iter()
    .map(|c| c.to_record())
    .collect();
    let packed_contigs = seqio::packed::encode_all(&contigs);
    let gff = chrysalis::graph_from_fasta::gff_shared_memory(
        &chrysalis::graph_from_fasta::GffShared::prepare(
            packed_contigs.clone(),
            counts.clone(),
            cfg,
        ),
    );
    let rtt = std::sync::Arc::new(chrysalis::reads_to_transcripts::RttShared::prepare(
        reads.clone(),
        &packed_contigs,
        &gff.components,
        cfg,
    ));

    // Weld-shaped windows (2k long, k/2 stride) over the contigs, carried
    // both as ASCII bytes (naive side) and incremental WeldWindows
    // (rolling side) — the support-scan comparison isolates the probe loop.
    let mut byte_windows = Vec::new();
    let mut weld_windows = Vec::new();
    for (c, p) in contigs.iter().zip(&packed_contigs) {
        let w = 2 * cfg.k;
        let mut start = 0;
        while start + w <= c.seq.len() {
            if p.range_valid(start, start + w) {
                byte_windows.push(c.seq[start..start + w].to_vec());
                let mut ww = WeldWindow::new();
                for j in start..start + w {
                    ww.push(p.code_at(j));
                }
                weld_windows.push(ww);
            }
            start += cfg.k / 2;
        }
    }

    Fixtures {
        reads,
        packed_reads,
        counts,
        rtt,
        byte_windows,
        weld_windows,
        cfg,
    }
}

fn count_naive(reads: &[Record], k: usize) -> PackedKmerTable {
    let mut t = PackedKmerTable::new();
    for r in reads {
        naive_stream(&r.seq, k, |p| t.add(p, 1));
    }
    t
}

fn count_rolling(reads: &[PackedSeq], k: usize) -> PackedKmerTable {
    let mut t = PackedKmerTable::new();
    for p in reads {
        if let Ok(iter) = p.canonical_kmers(k) {
            for (_, km) in iter {
                t.add(km.packed(), 1);
            }
        }
    }
    t
}

fn bench(c: &mut Criterion) {
    let f = fixtures();
    let samples: usize = std::env::var("HOTLOOPS_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15);

    // Equivalence first: both sides of each workload must agree, or the
    // timing comparison is meaningless.
    let tn = count_naive(&f.reads, K);
    let tr = count_rolling(&f.packed_reads, K);
    assert_eq!(tn.len(), tr.len());
    assert_eq!(
        tn.iter().map(|(_, v)| v as u64).sum::<u64>(),
        tr.iter().map(|(_, v)| v as u64).sum::<u64>()
    );
    let min = f.rtt.cfg.min_read_kmers.max(1) as u32;
    for (r, p) in f.reads.iter().zip(&f.packed_reads) {
        assert_eq!(
            naive_assign(&f.rtt.kmer_to_component, min, f.cfg.k, &r.seq),
            f.rtt.assign_packed(p)
        );
    }
    let support = WeldSupport::new(&f.counts, f.cfg.min_weld_support);
    for (b, w) in f.byte_windows.iter().zip(&f.weld_windows) {
        assert_eq!(
            naive_supports(&f.counts, f.cfg.min_weld_support.max(1), f.cfg.k, b),
            support.supports_packed(w)
        );
    }

    let mut g = c.benchmark_group("kmer_count");
    g.sample_size(samples);
    g.bench_function("naive", |b| b.iter(|| black_box(count_naive(&f.reads, K))));
    g.bench_function("rolling", |b| {
        b.iter(|| black_box(count_rolling(&f.packed_reads, K)))
    });
    g.finish();

    let mut g = c.benchmark_group("rtt_assign");
    g.sample_size(samples);
    g.bench_function("naive", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for r in &f.reads {
                if naive_assign(&f.rtt.kmer_to_component, min, f.cfg.k, &r.seq).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("rolling", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for p in &f.packed_reads {
                if f.rtt.assign_packed(p).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();

    let mut g = c.benchmark_group("weld_scan");
    g.sample_size(samples);
    g.bench_function("naive", |b| {
        b.iter(|| {
            let mut ok = 0u64;
            for w in &f.byte_windows {
                if naive_supports(&f.counts, f.cfg.min_weld_support.max(1), f.cfg.k, w) {
                    ok += 1;
                }
            }
            black_box(ok)
        })
    });
    g.bench_function("rolling", |b| {
        b.iter(|| {
            let mut ok = 0u64;
            for w in &f.weld_windows {
                if support.supports_packed(w) {
                    ok += 1;
                }
            }
            black_box(ok)
        })
    });
    g.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench(&mut criterion);

    // Persist before/after pairs. Under `cargo test` the harness runs in
    // smoke mode and every report is 0.0 s — skip writing in that case so a
    // test run never clobbers real measurements.
    let reports = criterion.reports();
    if reports.iter().any(|r| r.seconds == 0.0) {
        return;
    }
    let second_of = |id: &str| {
        reports
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.seconds)
            .unwrap_or(f64::NAN)
    };
    let workloads: Vec<bench::benchjson::Workload> = ["kmer_count", "rtt_assign", "weld_scan"]
        .iter()
        .map(|group| bench::benchjson::Workload {
            name: group.to_string(),
            baseline_ns: second_of(&format!("{group}/naive")) * 1e9,
            candidate_ns: second_of(&format!("{group}/rolling")) * 1e9,
        })
        .collect();
    bench::benchjson::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotloops.json"),
        "hotloops",
        K,
        &workloads,
    );
}

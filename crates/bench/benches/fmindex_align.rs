//! Microbench: FM-index construction and -v-mode alignment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bowtie::align::{align_read, AlignConfig};
use bowtie::fmindex::FmIndex;
use seqio::fasta::Record;
use simulate::transcriptome::{Transcriptome, TranscriptomeConfig};

fn bench(c: &mut Criterion) {
    let t = Transcriptome::generate(TranscriptomeConfig {
        genes: 20,
        exon_len: (200, 800),
        ..Default::default()
    });
    let contigs: Vec<Record> = t
        .reference()
        .into_iter()
        .map(|r| Record::new(r.isoform, r.seq))
        .collect();
    // Reads: slices of the contigs.
    let reads: Vec<Vec<u8>> = contigs
        .iter()
        .flat_map(|c| c.seq.windows(50).step_by(97).map(|w| w.to_vec()))
        .take(400)
        .collect();

    let mut g = c.benchmark_group("fmindex");
    g.sample_size(15);
    g.bench_function("build", |b| b.iter(|| black_box(FmIndex::build(&contigs))));

    let index = FmIndex::build(&contigs);
    for v in [0u8, 1, 2] {
        g.bench_with_input(BenchmarkId::new("align_400_reads_v", v), &v, |b, &v| {
            let cfg = AlignConfig {
                max_mismatches: v,
                ..AlignConfig::default()
            };
            b.iter(|| {
                for r in &reads {
                    black_box(align_read(&index, r, cfg));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

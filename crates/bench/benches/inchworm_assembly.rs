//! Microbench: Inchworm dictionary construction and greedy assembly.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use inchworm::assemble::{assemble, InchwormConfig};
use inchworm::dictionary::Dictionary;
use kcount::counter::{count_kmers, CounterConfig};
use simulate::datasets::{Dataset, DatasetPreset};

fn bench(c: &mut Criterion) {
    let reads: Vec<Vec<u8>> = Dataset::generate(DatasetPreset::Tiny, 2)
        .all_reads()
        .into_iter()
        .map(|r| r.seq)
        .collect();
    let counts = count_kmers(&reads, CounterConfig::new(16));

    let mut g = c.benchmark_group("inchworm");
    g.sample_size(20);
    g.bench_function("dictionary_build", |b| {
        b.iter(|| black_box(Dictionary::from_counts(counts.clone(), 1)))
    });
    let dict = Dictionary::from_counts(counts, 1);
    let cfg = InchwormConfig {
        min_seed_count: 1,
        min_extend_count: 1,
        min_contig_len: 32,
        jitter_seed: None,
    };
    g.bench_function("greedy_assembly", |b| {
        b.iter(|| black_box(assemble(&dict, cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

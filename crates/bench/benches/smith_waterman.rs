//! Microbench: Smith-Waterman and Needleman-Wunsch on transcript-scale pairs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use align::global::needleman_wunsch;
use align::sw::{smith_waterman, ScoringScheme};
use simulate::transcriptome::{Transcriptome, TranscriptomeConfig};

fn bench(c: &mut Criterion) {
    let t = Transcriptome::generate(TranscriptomeConfig {
        genes: 2,
        exons_per_gene: (2, 2),
        exon_len: (400, 600),
        isoforms_per_gene: (1, 1),
        paralog_fraction: 0.0,
        paralog_divergence: 0.03,
        seed: 5,
    });
    let refs = t.reference();
    let a = &refs[0].seq;
    let b2 = &refs[1].seq;

    let mut g = c.benchmark_group("alignment");
    g.sample_size(20);
    for (label, q, t) in [("related", a, a), ("unrelated", a, b2)] {
        g.bench_with_input(
            BenchmarkId::new("smith_waterman", label),
            &(q, t),
            |bench, (q, t)| {
                bench.iter(|| black_box(smith_waterman(q, t, ScoringScheme::default())))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("needleman_wunsch", label),
            &(q, t),
            |bench, (q, t)| {
                bench.iter(|| black_box(needleman_wunsch(q, t, ScoringScheme::default())))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

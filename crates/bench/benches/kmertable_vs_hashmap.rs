//! Head-to-head: std `HashMap` (SipHash) vs the packed open-addressing
//! `kmertable::PackedKmerTable` on the two Chrysalis hot-path shapes it
//! replaced — k-mer counting (build-heavy: one `add` per window) and
//! ReadsToTranscripts assignment (probe-heavy: one `get` per read window).
//!
//! Run with `cargo bench --bench kmertable_vs_hashmap`; a custom `main`
//! writes the measured before/after pairs to `BENCH_kmertable.json` at the
//! workspace root so the speedup claim in DESIGN.md stays reproducible.

use criterion::{black_box, Criterion};
use std::collections::HashMap;

use kmertable::PackedKmerTable;
use seqio::kmer::KmerIter;
use simulate::datasets::{Dataset, DatasetPreset};

const K: usize = 24;

/// Packed canonical k-mers of every read window, in read order — the key
/// stream both table implementations consume. Extracting it once keeps
/// window decoding and canonicalization (identical work in either
/// implementation) out of the measured region, so the comparison isolates
/// the data structure that this PR swapped.
fn packed_stream() -> Vec<u64> {
    let mut keys = Vec::new();
    for r in Dataset::generate(DatasetPreset::Tiny, 7).all_reads() {
        let Ok(iter) = KmerIter::new(&r.seq, K) else {
            continue;
        };
        for (_, km) in iter {
            keys.push(km.canonical().packed());
        }
    }
    keys
}

fn count_hashmap(keys: &[u64]) -> HashMap<u64, u32> {
    let mut m: HashMap<u64, u32> = HashMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}

fn count_kmertable(keys: &[u64]) -> PackedKmerTable {
    let mut t = PackedKmerTable::new();
    for &k in keys {
        t.add(k, 1);
    }
    t
}

/// Probe-side workload: the per-window map lookup of
/// `ReadsToTranscripts::assign`'s voting loop.
fn assign_hashmap(keys: &[u64], map: &HashMap<u64, u32>) -> u64 {
    let mut hits = 0u64;
    for k in keys {
        if let Some(&c) = map.get(k) {
            hits += c as u64;
        }
    }
    hits
}

fn assign_kmertable(keys: &[u64], map: &PackedKmerTable) -> u64 {
    let mut hits = 0u64;
    for &k in keys {
        if let Some(c) = map.get(k) {
            hits += c as u64;
        }
    }
    hits
}

fn bench(c: &mut Criterion) {
    let keys = packed_stream();

    // Same totals from both structures, or the comparison is meaningless.
    let hm = count_hashmap(&keys);
    let kt = count_kmertable(&keys);
    assert_eq!(hm.len(), kt.len());
    assert_eq!(
        hm.values().map(|&v| v as u64).sum::<u64>(),
        kt.iter().map(|(_, v)| v as u64).sum::<u64>()
    );
    assert_eq!(assign_hashmap(&keys, &hm), assign_kmertable(&keys, &kt));

    let mut g = c.benchmark_group("kmer_count");
    g.sample_size(20);
    g.bench_function("hashmap", |b| b.iter(|| black_box(count_hashmap(&keys))));
    g.bench_function("kmertable", |b| {
        b.iter(|| black_box(count_kmertable(&keys)))
    });
    g.finish();

    let mut g = c.benchmark_group("rtt_assign");
    g.sample_size(20);
    g.bench_function("hashmap", |b| {
        b.iter(|| black_box(assign_hashmap(&keys, &hm)))
    });
    g.bench_function("kmertable", |b| {
        b.iter(|| black_box(assign_kmertable(&keys, &kt)))
    });
    g.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench(&mut criterion);

    // Persist before/after pairs. Under `cargo test` the harness runs in
    // smoke mode and every report is 0.0 s — skip writing in that case so a
    // test run never clobbers real measurements.
    let reports = criterion.reports();
    if reports.iter().any(|r| r.seconds == 0.0) {
        return;
    }
    let second_of = |id: &str| {
        reports
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.seconds)
            .unwrap_or(f64::NAN)
    };
    let workloads: Vec<bench::benchjson::Workload> = ["kmer_count", "rtt_assign"]
        .iter()
        .map(|group| bench::benchjson::Workload {
            name: group.to_string(),
            baseline_ns: second_of(&format!("{group}/hashmap")) * 1e9,
            candidate_ns: second_of(&format!("{group}/kmertable")) * 1e9,
        })
        .collect();
    bench::benchjson::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kmertable.json"),
        "kmertable",
        K,
        &workloads,
    );
}

//! Figure-harness smoke bench: runs each figure experiment once at small
//! scale under Criterion so `cargo bench` exercises every regenerator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_smoke");
    g.sample_size(10);

    g.bench_function("fig02_baseline", |b| {
        b.iter(|| black_box(bench::fig02_baseline::run(1, 0.05)))
    });
    g.bench_function("fig03_chunked_rr", |b| {
        b.iter(|| black_box(bench::fig03_chunked_rr::render(40, 4, 2, 5)))
    });
    g.bench_function("fig07_gff_scaling", |b| {
        let shared = bench::fig07_gff_scaling::prepare(1, 0.05);
        b.iter(|| {
            black_box(bench::fig07_gff_scaling::run(
                std::sync::Arc::clone(&shared),
                &[4, 16],
            ))
        })
    });
    g.bench_function("fig09_rtt_scaling", |b| {
        let shared = bench::fig09_rtt_scaling::prepare(1, 0.05);
        b.iter(|| {
            black_box(bench::fig09_rtt_scaling::run(
                std::sync::Arc::clone(&shared),
                &[2, 8],
            ))
        })
    });
    g.bench_function("fig10_bowtie_scaling", |b| {
        let (contigs, reads) = bench::fig10_bowtie_scaling::prepare(1, 0.05);
        b.iter(|| {
            black_box(bench::fig10_bowtie_scaling::run(
                std::sync::Arc::clone(&contigs),
                std::sync::Arc::clone(&reads),
                &[1, 8],
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

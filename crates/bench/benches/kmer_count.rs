//! Microbench: Jellyfish-substrate k-mer counting (canonical vs plain).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kcount::counter::{count_kmers, CounterConfig};
use simulate::datasets::{Dataset, DatasetPreset};

fn reads() -> Vec<Vec<u8>> {
    Dataset::generate(DatasetPreset::Tiny, 1)
        .all_reads()
        .into_iter()
        .map(|r| r.seq)
        .collect()
}

fn bench(c: &mut Criterion) {
    let reads = reads();
    let mut g = c.benchmark_group("kmer_count");
    g.sample_size(20);
    for &k in &[16usize, 24] {
        for (label, canonical) in [("canonical", true), ("plain", false)] {
            g.bench_with_input(BenchmarkId::new(label, k), &k, |b, &k| {
                b.iter(|| {
                    black_box(count_kmers(
                        &reads,
                        CounterConfig {
                            k,
                            canonical,
                            threads: 1,
                            shards: 16,
                        },
                    ))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

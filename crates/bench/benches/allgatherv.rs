//! Microbench: the MPI substrate's collectives (the loop-1 string pooling
//! vs loop-2 integer pooling volume difference).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mpisim::pack::{pack_byte_strings, pack_u32s};
use mpisim::{run_cluster, NetModel};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpisim");
    g.sample_size(10);
    for &ranks in &[2usize, 8, 32] {
        g.bench_with_input(
            BenchmarkId::new("allgatherv_strings", ranks),
            &ranks,
            |b, &ranks| {
                b.iter(|| {
                    black_box(run_cluster(ranks, NetModel::idataplex(), |comm| {
                        let welds: Vec<Vec<u8>> =
                            (0..64).map(|i| vec![b'A' + (i % 4) as u8; 48]).collect();
                        let packed = pack_byte_strings(&welds);
                        comm.allgatherv(&packed).len()
                    }))
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("allgatherv_u32s", ranks),
            &ranks,
            |b, &ranks| {
                b.iter(|| {
                    black_box(run_cluster(ranks, NetModel::idataplex(), |comm| {
                        let pairs: Vec<u32> = (0..128).collect();
                        comm.allgatherv(&pack_u32s(&pairs)).len()
                    }))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

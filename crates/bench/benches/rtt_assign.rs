//! Microbench + ablation: ReadsToTranscripts assignment and the paper's
//! two I/O strategies (§III-C): master-distributes vs every-rank-reads.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use chrysalis::config::ChrysalisConfig;
use chrysalis::graph_from_fasta::{gff_shared_memory, GffShared};
use chrysalis::reads_to_transcripts::{rtt_hybrid, rtt_hybrid_striped, RttShared};
use mpisim::pack::pack_byte_strings;
use mpisim::{run_cluster, NetModel};
use seqio::fasta::Record;
use simulate::datasets::{Dataset, DatasetPreset};

fn shared() -> Arc<RttShared> {
    let ds = Dataset::generate(DatasetPreset::Tiny, 4);
    let reads = ds.all_reads();
    let cfg = ChrysalisConfig::small(16);
    let counts = kcount::counter::count_kmers(&reads, kcount::counter::CounterConfig::new(16));
    let dict = inchworm::dictionary::Dictionary::from_counts(counts.clone(), 1);
    let contigs: Vec<Record> = inchworm::assemble::assemble(
        &dict,
        inchworm::assemble::InchwormConfig {
            min_seed_count: 1,
            min_extend_count: 1,
            min_contig_len: 32,
            jitter_seed: None,
        },
    )
    .iter()
    .map(|c| c.to_record())
    .collect();
    let packed_contigs = seqio::packed::encode_all(&contigs);
    let gff = gff_shared_memory(&GffShared::prepare(packed_contigs.clone(), counts, cfg));
    Arc::new(RttShared::prepare(
        reads,
        &packed_contigs,
        &gff.components,
        cfg,
    ))
}

fn bench(c: &mut Criterion) {
    let sh = shared();
    let mut g = c.benchmark_group("rtt");
    g.sample_size(10);

    g.bench_function("assign_all_reads", |b| {
        b.iter(|| {
            for r in &sh.reads {
                black_box(sh.assign(&r.seq));
            }
        })
    });

    // Ablation: the paper's chosen strategy (every rank reads, no comm)...
    let s1 = Arc::clone(&sh);
    g.bench_function("io_every_rank_reads", |b| {
        b.iter(|| {
            let s = Arc::clone(&s1);
            black_box(run_cluster(4, NetModel::idataplex(), move |comm| {
                rtt_hybrid(comm, &s).timings.total
            }))
        })
    });

    // ...vs the abandoned master-distributes strategy: rank 0 ships each
    // chunk to its worker (heavy communication, the bottleneck §III-C
    // describes).
    let s2 = Arc::clone(&sh);
    g.bench_function("io_master_distributes", |b| {
        b.iter(|| {
            let s = Arc::clone(&s2);
            black_box(run_cluster(4, NetModel::idataplex(), move |comm| {
                let chunk = s.cfg.max_mem_reads.max(1);
                let size = comm.size();
                let mut assigned = 0usize;
                let chunks: Vec<&[Record]> = s.reads.chunks(chunk).collect();
                for (ci, ch) in chunks.iter().enumerate() {
                    let dest = ci % size;
                    if comm.rank() == 0 {
                        let payload = pack_byte_strings(
                            &ch.iter().map(|r| r.seq.clone()).collect::<Vec<_>>(),
                        );
                        if dest == 0 {
                            assigned += ch.iter().filter_map(|r| s.assign(&r.seq)).count();
                        } else {
                            comm.send(dest, ci as u32, payload);
                        }
                    } else if dest == comm.rank() {
                        let payload = comm.recv(0, ci as u32);
                        black_box(&payload);
                        assigned += ch.iter().filter_map(|r| s.assign(&r.seq)).count();
                    }
                }
                comm.barrier();
                (assigned, comm.clock.now())
            }))
        })
    });
    // ...vs the future-work MPI-I/O strided access: each rank reads only
    // its own chunks.
    let s3 = Arc::clone(&sh);
    g.bench_function("io_striped_mpiio", |b| {
        b.iter(|| {
            let s = Arc::clone(&s3);
            black_box(run_cluster(4, NetModel::idataplex(), move |comm| {
                rtt_hybrid_striped(comm, &s).timings.total
            }))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

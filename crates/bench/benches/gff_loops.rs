//! Microbench + ablation: GraphFromFasta loops under different schedules.
//!
//! Backs the DESIGN.md ablation: pre-allocated blocks vs chunked
//! round-robin vs pure dynamic, replayed over measured loop-1 costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chrysalis::config::ChrysalisConfig;
use chrysalis::weld::{harvest_contig, KmerContigMap, WeldSupport};
use omp::makespan::simulate_loop;
use omp::schedule::Schedule;
use seqio::fasta::Record;
use simulate::datasets::{Dataset, DatasetPreset};

fn fixtures() -> (Vec<Record>, kcount::counter::KmerCounts, ChrysalisConfig) {
    let ds = Dataset::generate(DatasetPreset::Tiny, 3);
    let reads = ds.all_reads();
    let cfg = ChrysalisConfig::small(16);
    let counts = kcount::counter::count_kmers(&reads, kcount::counter::CounterConfig::new(16));
    let dict = inchworm::dictionary::Dictionary::from_counts(counts.clone(), 1);
    let contigs: Vec<Record> = inchworm::assemble::assemble(
        &dict,
        inchworm::assemble::InchwormConfig {
            min_seed_count: 1,
            min_extend_count: 1,
            min_contig_len: 32,
            jitter_seed: None,
        },
    )
    .iter()
    .map(|c| c.to_record())
    .collect();
    (contigs, counts, cfg)
}

fn bench(c: &mut Criterion) {
    let (contigs, counts, cfg) = fixtures();
    let contigs = seqio::packed::encode_all(&contigs);
    let kmap = KmerContigMap::build(&contigs, cfg.k);
    let support = WeldSupport::new(&counts, cfg.min_weld_support);

    let mut g = c.benchmark_group("gff");
    g.sample_size(15);
    g.bench_function("loop1_harvest", |b| {
        b.iter(|| {
            for i in 0..contigs.len() as u32 {
                black_box(harvest_contig(i, &contigs, &kmap, &support, &cfg));
            }
        })
    });

    // Schedule ablation on the makespan replay (synthetic skewed costs).
    let costs: Vec<f64> = (0..512)
        .map(|i| 1.0 + 49.0 * (-(i as f64) / 64.0).exp())
        .collect();
    for (label, schedule) in [
        ("static_block", Schedule::Static { chunk: None }),
        ("static_chunk8", Schedule::Static { chunk: Some(8) }),
        ("dynamic1", Schedule::Dynamic { chunk: 1 }),
        ("guided", Schedule::Guided { min_chunk: 2 }),
    ] {
        g.bench_with_input(
            BenchmarkId::new("makespan_replay", label),
            &schedule,
            |b, &s| b.iter(|| black_box(simulate_loop(&costs, 16, s))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

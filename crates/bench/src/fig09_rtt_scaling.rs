//! Fig. 9 — hybrid ReadsToTranscripts scaling on the sugarbeet-like
//! workload: the MPI main loop (min/max across ranks), concat overhead and
//! stage total for 1 → 32 nodes.
//!
//! Paper: near-linear loop scaling (3 123 s at 4 nodes → 373 s at 32,
//! 8.37×), overall 19.75× at 32 nodes vs the 20 190 s single-node run;
//! the k-mer→bundle assignment (OpenMP-only) dominates the residual; the
//! concat stays below 15 s; imbalance is low (373 vs 310 s).

use std::sync::Arc;

use chrysalis::graph_from_fasta::gff_shared_memory;
use chrysalis::reads_to_transcripts::{rtt_hybrid, rtt_shared_memory, RttShared};
use chrysalis::timings::{PhaseSpread, RttTimings};
use mpisim::{run_cluster, NetModel};
use simulate::datasets::DatasetPreset;

use crate::workloads::{assemble_contigs, bench_pipeline_config, scaled};

/// One rank-count's measurements.
#[derive(Debug, Clone, Copy)]
pub struct RttRow {
    /// Number of ranks.
    pub ranks: usize,
    /// MPI main-loop spread.
    pub main_loop: PhaseSpread,
    /// Redundant-I/O time (max rank).
    pub io: f64,
    /// Concat time (max rank; only the master does work).
    pub concat: f64,
    /// k-mer setup time (replicated).
    pub kmer_setup: f64,
    /// Stage total (slowest rank).
    pub total: f64,
}

/// The experiment output.
#[derive(Debug, Clone)]
pub struct Fig09Data {
    /// Single-node baseline total.
    pub baseline_total: f64,
    /// Baseline main-loop time.
    pub baseline_loop: f64,
    /// Rows per rank count.
    pub rows: Vec<RttRow>,
    /// Read count of the workload.
    pub reads: usize,
}

/// Prepare the shared ReadsToTranscripts state.
pub fn prepare(seed: u64, scale: f64) -> Arc<RttShared> {
    let w = scaled(DatasetPreset::SugarbeetLike, seed, scale);
    let cfg = bench_pipeline_config();
    let (contigs, counts) = assemble_contigs(&w.reads, &cfg);
    let packed_contigs = seqio::packed::encode_all(&contigs);
    let gff = gff_shared_memory(&chrysalis::graph_from_fasta::GffShared::prepare(
        packed_contigs.clone(),
        counts,
        cfg.chrysalis,
    ));
    Arc::new(RttShared::prepare(
        w.reads,
        &packed_contigs,
        &gff.components,
        cfg.chrysalis,
    ))
}

/// Run the scaling sweep.
pub fn run(shared: Arc<RttShared>, rank_counts: &[usize]) -> Fig09Data {
    let baseline = rtt_shared_memory(&shared).timings;
    let mut rows = Vec::with_capacity(rank_counts.len());
    for &ranks in rank_counts {
        let sh = Arc::clone(&shared);
        let outs = run_cluster(ranks, NetModel::idataplex(), move |comm| {
            rtt_hybrid(comm, &sh).timings
        });
        let timings: Vec<RttTimings> = outs.iter().map(|o| o.value).collect();
        rows.push(RttRow {
            ranks,
            main_loop: PhaseSpread::over(&timings, |t| t.main_loop),
            io: PhaseSpread::over(&timings, |t| t.io).max,
            concat: PhaseSpread::over(&timings, |t| t.concat).max,
            kmer_setup: PhaseSpread::over(&timings, |t| t.kmer_setup).max,
            total: PhaseSpread::over(&timings, |t| t.total).max,
        });
    }
    Fig09Data {
        baseline_total: baseline.total,
        baseline_loop: baseline.main_loop,
        rows,
        reads: shared.reads.len(),
    }
}

/// Render the figure's series.
pub fn render(data: &Fig09Data) -> String {
    let mut out = format!(
        "Fig. 9 — hybrid ReadsToTranscripts scaling (sugarbeet-like, {} reads)\n\
         baseline (1 node x 16 threads): total {:.3}s  main loop {:.3}s\n\n\
         {:>6} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        data.reads,
        data.baseline_total,
        data.baseline_loop,
        "nodes",
        "loop min",
        "loop max",
        "io",
        "setup",
        "concat",
        "total",
        "speedup"
    );
    for r in &data.rows {
        out.push_str(&format!(
            "{:>6} {:>10.3} {:>10.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>8.2}x\n",
            r.ranks,
            r.main_loop.min,
            r.main_loop.max,
            r.io,
            r.kmer_setup,
            r.concat,
            r.total,
            data.baseline_total / r.total.max(f64::MIN_POSITIVE),
        ));
    }
    out.push_str(
        "\n(paper: loop 8.37x from 4->32 nodes, overall 19.75x at 32 nodes, \
         concat <15s, low imbalance)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_scales_nearly_linearly() {
        let shared = prepare(2, 0.12);
        let data = run(shared, &[2, 8]);
        // Work conservation: mean per-rank loop time scales ~1/ranks. The
        // paper's near-linear loop scaling (8.37x from 4->32 nodes) is
        // measured on multi-hour loops; at this test's millisecond scale
        // fixed per-rank costs (k-mer table probe warmup, chunk dispatch)
        // are a visible fraction, so only a loose improvement band is
        // asserted — the exact ratio belongs to the rendered figure, not
        // a pass/fail gate on a loaded single-core CI machine.
        let m2 = data.rows[0].main_loop.mean;
        let m8 = data.rows[1].main_loop.mean;
        let speedup = m2 / m8.max(f64::MIN_POSITIVE);
        assert!(
            speedup > 1.2 && speedup < 8.0,
            "4x more ranks should cut the mean loop time, got {speedup:.2} ({m2} -> {m8})"
        );
        assert!(render(&data).contains("speedup"));
    }

    #[test]
    fn io_is_redundant_and_constant() {
        let shared = prepare(2, 0.1);
        let data = run(shared, &[1, 4]);
        // Every rank streams the whole file, so I/O does not shrink with
        // rank count (the paper's §III-C redundancy argument). If I/O
        // partitioned perfectly it would drop to 1/4 here; assert it stays
        // well above that. The band is loose because both sides are
        // millisecond-scale wall-clock measurements and the suite runs
        // many test threads on a small CI machine — the shape (not ~1/4)
        // is the paper-derived claim, the exact ratio is not.
        assert!(
            data.rows[1].io > 0.1 * data.rows[0].io,
            "io {} vs {}",
            data.rows[1].io,
            data.rows[0].io
        );
    }
}

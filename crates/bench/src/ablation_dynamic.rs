//! Ablation — dynamic rank-level partitioning (the paper's future work).
//!
//! §V-A: "Currently, we have a static partitioning strategy amongst the
//! nodes; in the future, we might experiment with a dynamic partitioning
//! strategy to reduce this load imbalance." This experiment implements
//! that follow-up: the same GraphFromFasta run under (a) the paper's
//! static chunked round-robin and (b) a master-dealt dynamic work queue,
//! comparing per-rank loop-time spread.

use std::sync::Arc;

use chrysalis::graph_from_fasta::{gff_hybrid, gff_hybrid_dynamic, GffShared};
use chrysalis::timings::{GffTimings, PhaseSpread};
use mpisim::{run_cluster, NetModel};

/// One strategy's outcome at one rank count.
#[derive(Debug, Clone, Copy)]
pub struct StrategyRow {
    /// Number of ranks.
    pub ranks: usize,
    /// Loop 1 spread (static chunked round-robin).
    pub static_loop1: PhaseSpread,
    /// Loop 1 spread (dynamic dealing).
    pub dynamic_loop1: PhaseSpread,
    /// Stage totals.
    pub static_total: f64,
    /// Dynamic stage total.
    pub dynamic_total: f64,
}

/// Run both strategies over `rank_counts` on a prepared workload.
pub fn run(shared: Arc<GffShared>, rank_counts: &[usize]) -> Vec<StrategyRow> {
    let mut rows = Vec::with_capacity(rank_counts.len());
    for &ranks in rank_counts {
        let sh = Arc::clone(&shared);
        let stat = run_cluster(ranks, NetModel::idataplex(), move |comm| {
            gff_hybrid(comm, &sh).timings
        });
        let sh = Arc::clone(&shared);
        let dynm = run_cluster(ranks, NetModel::idataplex(), move |comm| {
            gff_hybrid_dynamic(comm, &sh).timings
        });
        let st: Vec<GffTimings> = stat.iter().map(|o| o.value).collect();
        let dt: Vec<GffTimings> = dynm.iter().map(|o| o.value).collect();
        rows.push(StrategyRow {
            ranks,
            static_loop1: PhaseSpread::over(&st, |t| t.loop1),
            dynamic_loop1: PhaseSpread::over(&dt, |t| t.loop1),
            static_total: PhaseSpread::over(&st, |t| t.total).max,
            dynamic_total: PhaseSpread::over(&dt, |t| t.total).max,
        });
    }
    rows
}

/// Render the comparison table.
pub fn render(rows: &[StrategyRow]) -> String {
    let mut out = String::from(
        "Ablation — static chunked round-robin vs dynamic dealing (GFF loop 1)\n\n\
         nodes  static max/min  dynamic max/min  static total  dynamic total\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>5} {:>10.2}x {:>14.2}x {:>13.4} {:>14.4}\n",
            r.ranks,
            r.static_loop1.imbalance(),
            r.dynamic_loop1.imbalance(),
            r.static_total,
            r.dynamic_total
        ));
    }
    out.push_str(
        "\n(the paper's future-work hypothesis: dynamic partitioning reduces \
         the rank-time spread that static chunking shows at scale)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig07_gff_scaling::prepare;

    #[test]
    fn dynamic_never_slower_on_loop_makespan() {
        let shared = prepare(2, 0.1);
        let rows = run(shared, &[8]);
        let r = &rows[0];
        // Static and dynamic measure the same items in *separate* passes,
        // so this run-level check is a sanity band only; the deterministic
        // superiority proof is `graph_from_fasta::dynamic_tests::
        // dynamic_deal_balances_skew`, which replays both policies over
        // identical costs.
        assert!(
            r.dynamic_loop1.max <= r.static_loop1.max * 2.0 + 1e-3,
            "dynamic {} wildly above static {}",
            r.dynamic_loop1.max,
            r.static_loop1.max
        );
        assert!(render(&rows).contains("Ablation"));
    }
}

//! The shared `BENCH_*.json` writer — one schema for every microbenchmark.
//!
//! Both benches (`hotloops`, `kmertable_vs_hashmap`) historically wrote
//! divergent ad-hoc JSON (`naive_s`/`rolling_s` vs `hashmap_s`/
//! `kmertable_s`), so nothing downstream could parse the perf trajectory
//! uniformly. Every artifact now goes through [`render`]:
//!
//! ```json
//! {
//!   "schema": "trinity-bench/v1",
//!   "bench": "hotloops",
//!   "k": 24,
//!   "cores": 8,
//!   "workloads": [
//!     {"name": "kmer_count", "baseline_ns": 1.2e7,
//!      "candidate_ns": 5.9e6, "speedup": 2.034}
//!   ]
//! }
//! ```
//!
//! `baseline_ns` is the old implementation, `candidate_ns` the one the
//! repo ships; `trinity diff` accepts these files directly (the
//! `candidate_ns` series) so the CI perf-gate can watch microbenchmarks
//! with the same tolerance machinery as pipeline traces.

/// Schema tag of every bench artifact.
pub const BENCH_SCHEMA: &str = "trinity-bench/v1";

/// One measured workload: before/after times in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Workload name (`"kmer_count"`, `"rtt_assign"`, ...).
    pub name: String,
    /// Old-implementation time, nanoseconds.
    pub baseline_ns: f64,
    /// Shipped-implementation time, nanoseconds.
    pub candidate_ns: f64,
}

impl Workload {
    /// `baseline_ns / candidate_ns` (0 when the candidate time is 0).
    pub fn speedup(&self) -> f64 {
        if self.candidate_ns > 0.0 {
            self.baseline_ns / self.candidate_ns
        } else {
            0.0
        }
    }
}

/// Render a `trinity-bench/v1` document. `k` is the k-mer size the bench
/// ran at; `cores` should come from [`detected_cores`] so artifacts record
/// the hardware they were measured on.
pub fn render(bench: &str, k: usize, cores: usize, workloads: &[Workload]) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let num = |v: f64| if v.is_finite() { v } else { 0.0 };
    let mut out = format!(
        "{{\n  \"schema\": \"{BENCH_SCHEMA}\",\n  \"bench\": \"{}\",\n  \
         \"k\": {k},\n  \"cores\": {cores},\n  \"workloads\": [\n",
        esc(bench)
    );
    for (i, w) in workloads.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_ns\": {:.6e}, \
             \"candidate_ns\": {:.6e}, \"speedup\": {:.3}}}{}\n",
            esc(&w.name),
            num(w.baseline_ns),
            num(w.candidate_ns),
            num(w.speedup()),
            if i + 1 == workloads.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The core count to stamp into artifacts.
pub fn detected_cores() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Render and write a bench artifact; prints the path on success.
pub fn write(path: &str, bench: &str, k: usize, workloads: &[Workload]) {
    let text = render(bench, k, detected_cores(), workloads);
    std::fs::write(path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Workload> {
        vec![
            Workload {
                name: "kmer_count".into(),
                baseline_ns: 2.0e7,
                candidate_ns: 1.0e7,
            },
            Workload {
                name: "rtt_assign".into(),
                baseline_ns: 3.5e6,
                candidate_ns: 1.0e6,
            },
        ]
    }

    #[test]
    fn schema_fields_round_trip_through_obs_parser() {
        let text = render("hotloops", 24, 8, &sample());
        let v = obs::jsonio::parse(&text).expect("valid json");
        assert_eq!(v.str("schema"), Some(BENCH_SCHEMA));
        assert_eq!(v.str("bench"), Some("hotloops"));
        assert_eq!(v.num("k"), Some(24.0));
        assert_eq!(v.num("cores"), Some(8.0));
        let ws = v.get("workloads").unwrap().as_arr().unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].str("name"), Some("kmer_count"));
        assert_eq!(ws[0].num("baseline_ns"), Some(2.0e7));
        assert_eq!(ws[0].num("speedup"), Some(2.0));
    }

    #[test]
    fn degenerate_values_stay_strict_json() {
        let ws = vec![Workload {
            name: "zero\"quote".into(),
            baseline_ns: f64::NAN,
            candidate_ns: 0.0,
        }];
        let text = render("weird", 16, 1, &ws);
        assert!(obs::jsonio::parse(&text).is_some(), "{text}");
    }
}

//! Fig. 10 — distributed Bowtie scaling on the sugarbeet-like workload:
//! PyFasta split time, alignment time and stage total per node count.
//!
//! Paper: ~3× total speedup at 128 nodes vs the >8 h single-node run,
//! with the single-threaded PyFasta split "taking more runtime than the
//! subsequent Bowtie step" at scale — the overhead the figure exposes.

use std::sync::Arc;

use bowtie::align::AlignConfig;
use chrysalis::bowtie_mpi::{bowtie_mpi, BowtieTimings};
use chrysalis::timings::PhaseSpread;
use mpisim::{run_cluster, NetModel};
use seqio::fasta::Record;
use simulate::datasets::DatasetPreset;

use crate::workloads::{assemble_contigs, bench_pipeline_config, scaled};

/// One rank-count's measurements.
#[derive(Debug, Clone, Copy)]
pub struct BowtieRow {
    /// Number of ranks.
    pub ranks: usize,
    /// PyFasta split time (serial, on the master).
    pub split: f64,
    /// Alignment time (max across ranks).
    pub align: f64,
    /// Index build time (max across ranks).
    pub index: f64,
    /// Merge time.
    pub merge: f64,
    /// Stage total (slowest rank).
    pub total: f64,
}

/// The experiment output.
#[derive(Debug, Clone)]
pub struct Fig10Data {
    /// Rows per rank count (first row doubles as the single-node baseline
    /// when `rank_counts` starts at 1).
    pub rows: Vec<BowtieRow>,
    /// Contig / read counts of the workload.
    pub contigs: usize,
    /// Number of reads aligned per rank.
    pub reads: usize,
}

/// Prepare contigs and reads for the sweep.
pub fn prepare(seed: u64, scale: f64) -> (Arc<Vec<Record>>, Arc<Vec<Record>>) {
    let w = scaled(DatasetPreset::SugarbeetLike, seed, scale);
    let cfg = bench_pipeline_config();
    let (contigs, _counts) = assemble_contigs(&w.reads, &cfg);
    (Arc::new(contigs), Arc::new(w.reads))
}

/// Run the scaling sweep.
pub fn run(contigs: Arc<Vec<Record>>, reads: Arc<Vec<Record>>, rank_counts: &[usize]) -> Fig10Data {
    let cfg = bench_pipeline_config();
    let align_cfg = AlignConfig {
        max_mismatches: 1,
        ..AlignConfig::default()
    };
    let mut rows = Vec::with_capacity(rank_counts.len());
    for &ranks in rank_counts {
        let (c, r) = (Arc::clone(&contigs), Arc::clone(&reads));
        let ch = cfg.chrysalis;
        let outs = run_cluster(ranks, NetModel::idataplex(), move |comm| {
            bowtie_mpi(comm, &c, &r, &ch, align_cfg).timings
        });
        let t: Vec<BowtieTimings> = outs.iter().map(|o| o.value).collect();
        rows.push(BowtieRow {
            ranks,
            split: PhaseSpread::over(&t, |x| x.split).max,
            align: PhaseSpread::over(&t, |x| x.align).max,
            index: PhaseSpread::over(&t, |x| x.index).max,
            merge: PhaseSpread::over(&t, |x| x.merge).max,
            total: PhaseSpread::over(&t, |x| x.total).max,
        });
    }
    Fig10Data {
        rows,
        contigs: contigs.len(),
        reads: reads.len(),
    }
}

/// Render the figure's series.
pub fn render(data: &Fig10Data) -> String {
    let mut out = format!(
        "Fig. 10 — distributed Bowtie scaling ({} contigs, {} reads)\n\n\
         {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}\n",
        data.contigs, data.reads, "nodes", "split", "index", "align", "merge", "total", "speedup"
    );
    let base = data.rows.first().map(|r| r.total).unwrap_or(0.0);
    for r in &data.rows {
        out.push_str(&format!(
            "{:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>8.2}x\n",
            r.ranks,
            r.split,
            r.index,
            r.align,
            r.merge,
            r.total,
            base / r.total.max(f64::MIN_POSITIVE)
        ));
    }
    out.push_str(
        "\n(paper: ~3x at 128 nodes; the single-threaded PyFasta split \
         dominates at scale)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_constant_while_align_shrinks() {
        let (contigs, reads) = prepare(2, 0.08);
        let data = run(contigs, reads, &[1, 8]);
        let (r1, r8) = (&data.rows[0], &data.rows[1]);
        // The split is serial: it does not shrink with ranks.
        assert!(
            r8.split > 0.3 * r1.split,
            "split {} vs {}",
            r8.split,
            r1.split
        );
        // Index build shrinks with the slice (each rank indexes 1/8th).
        assert!(r8.index < r1.index, "index {} vs {}", r8.index, r1.index);
        assert!(render(&data).contains("split"));
    }

    #[test]
    fn total_speedup_is_modest() {
        let (contigs, reads) = prepare(2, 0.08);
        let data = run(contigs, reads, &[1, 8]);
        let speedup = data.rows[0].total / data.rows[1].total.max(f64::MIN_POSITIVE);
        // The paper saw only ~3x at 128 nodes: alignment work is
        // replicated per rank, so speedup must be well below linear.
        assert!(
            speedup < 6.0,
            "8 ranks must give sublinear speedup, got {speedup:.2}"
        );
    }
}

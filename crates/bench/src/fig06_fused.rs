//! Fig. 6 — "fused" transcripts: single reconstructions spanning multiple
//! full-length reference genes (likely false positives from overlapping
//! UTRs), counted for both pipeline versions on both reference datasets.

use align::validate::{count_fusions, FullLengthCriteria, FusionCounts};
use mpisim::NetModel;
use simulate::datasets::DatasetPreset;
use trinity::pipeline::{run_pipeline, PipelineMode};

use crate::fig05_full_length::to_ref_transcripts;
use crate::workloads::{bench_pipeline_config, scaled};

/// Fusion counts for one dataset, both versions.
#[derive(Debug, Clone, Copy)]
pub struct Fig06Row {
    /// Dataset label.
    pub dataset: &'static str,
    /// Original (serial) pipeline fusions.
    pub original: FusionCounts,
    /// Hybrid pipeline fusions.
    pub parallel: FusionCounts,
}

/// Run one dataset through both versions and count fusions.
pub fn run_dataset(preset: DatasetPreset, label: &'static str, seed: u64, scale: f64) -> Fig06Row {
    let w = scaled(preset, seed, scale);
    let refs = to_ref_transcripts(&w.reference);
    let criteria = FullLengthCriteria::default();

    let mut serial_cfg = bench_pipeline_config();
    serial_cfg.mode = PipelineMode::Serial;
    let original_out = run_pipeline(&w.reads, &serial_cfg);

    let mut hybrid_cfg = bench_pipeline_config();
    hybrid_cfg.mode = PipelineMode::Hybrid {
        ranks: 4,
        net: NetModel::idataplex(),
    };
    let parallel_out = run_pipeline(&w.reads, &hybrid_cfg);

    Fig06Row {
        dataset: label,
        original: count_fusions(&original_out.transcripts, &refs, criteria),
        parallel: count_fusions(&parallel_out.transcripts, &refs, criteria),
    }
}

/// Run both datasets.
pub fn run(seed: u64, scale: f64) -> Vec<Fig06Row> {
    vec![
        run_dataset(DatasetPreset::SchizoLike, "schizo-like", seed, scale),
        run_dataset(
            DatasetPreset::DrosophilaLike,
            "drosophila-like",
            seed + 1,
            scale,
        ),
    ]
}

/// Render the counts table.
pub fn render(rows: &[Fig06Row]) -> String {
    let mut out = String::from(
        "Fig. 6 — fused transcripts (multi-gene full-length reconstructions)\n\n\
         dataset           original (transcripts/genes)   parallel (transcripts/genes)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>14}/{:<14} {:>14}/{:<14}\n",
            r.dataset,
            r.original.fused_transcripts,
            r.original.genes_involved,
            r.parallel.fused_transcripts,
            r.parallel.genes_involved
        ));
    }
    out.push_str("\n(paper: small counts, no significant difference between versions)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_counts_are_comparable_between_versions() {
        let row = run_dataset(DatasetPreset::SchizoLike, "schizo-like", 3, 0.15);
        // Fusions are rare; the invariant is that versions agree closely.
        let diff = (row.original.fused_transcripts as i64 - row.parallel.fused_transcripts as i64)
            .unsigned_abs() as usize;
        assert!(
            diff <= 2 + row.original.fused_transcripts / 2,
            "original {:?} vs parallel {:?}",
            row.original,
            row.parallel
        );
        assert!(render(&[row]).contains("fused"));
    }
}

//! Fig. 2 — collectl trace of the *original* (single-node, 16-thread)
//! Trinity run on the sugarbeet-like workload: RAM vs runtime per stage.
//!
//! Paper: total ≈ 60 h, Chrysalis > 50 h of it, with the early stages
//! (Jellyfish/Inchworm) dominating memory. We reproduce the *shape*:
//! Chrysalis (Bowtie + GraphFromFasta + ReadsToTranscripts) dominates
//! runtime; Jellyfish/Inchworm dominate modelled RAM.

use obs::Trace;
use simulate::datasets::DatasetPreset;
use trinity::pipeline::{run_pipeline, PipelineMode};
use trinity::report::{render_bars, render_trace};

use crate::workloads::{bench_pipeline_config, scaled};

/// Run the baseline pipeline and return its trace.
pub fn run(seed: u64, scale: f64) -> Trace {
    let w = scaled(DatasetPreset::SugarbeetLike, seed, scale);
    let mut cfg = bench_pipeline_config();
    cfg.mode = PipelineMode::Serial;
    run_pipeline(&w.reads, &cfg).trace
}

/// Total time in the Chrysalis stages (Bowtie + GraphFromFasta +
/// QuantifyGraph + ReadsToTranscripts) of a pipeline trace.
pub fn chrysalis_time(trace: &Trace) -> f64 {
    trace
        .with_cat("stage")
        .into_iter()
        .filter(|s| {
            s.track == 0
                && [
                    "Bowtie",
                    "GraphFromFasta",
                    "QuantifyGraph",
                    "ReadsToTranscripts",
                ]
                .contains(&s.name.as_str())
        })
        .map(|s| s.end - s.start)
        .sum()
}

/// Render the figure as text (stage table + duration bars).
pub fn render(trace: &Trace) -> String {
    let mut out =
        String::from("Fig. 2 — original Trinity, 1 node x 16 threads (sugarbeet-like)\n\n");
    out.push_str(&render_trace(trace));
    out.push('\n');
    out.push_str(&render_bars(trace, 50));
    out.push_str(&format!(
        "\nChrysalis share of runtime: {:.1}% (paper: >83%, '50 of ~60 hours')\n",
        100.0 * chrysalis_time(trace) / trace.total_time().max(f64::MIN_POSITIVE)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrysalis_dominates_at_small_scale() {
        let trace = run(1, 0.1);
        let stages = trace
            .with_cat("stage")
            .into_iter()
            .filter(|s| s.track == 0)
            .count();
        assert_eq!(stages, 7);
        let text = render(&trace);
        assert!(text.contains("Chrysalis share"));
        let chrysalis = chrysalis_time(&trace);
        // The paper's ">83%" Chrysalis share holds for the real C++ Trinity
        // at sugarbeet scale. At this test's tiny scale the per-stage
        // constants shift (and the packed-k-mer-table work in this repo
        // deliberately shrinks the Chrysalis stages), so the assertion
        // checks the paper-derived *shape* — Chrysalis is a major runtime
        // component — not the full-scale ratio, which only the rendered
        // figure reports.
        assert!(
            chrysalis > 0.15 * trace.total_time(),
            "Chrysalis must be a major cost: {chrysalis} of {}",
            trace.total_time()
        );
    }
}

//! Fig. 4 — all-to-all Smith–Waterman validation on the whitefly-like set.
//!
//! "all reconstructed transcripts from the hybrid parallelized Trinity were
//! aligned to those from the original Trinity … In addition … we also
//! aligned transcripts from the different runs of the original Trinity, in
//! order to understand the expected level of variation." Categories:
//! (a) identical full-length, (b) <100 % full-length, (c) partial, with
//! (d) the identity distribution of (c). The claim reproduced here: the
//! "Parallel" and "Original" distributions overlap — parallelization adds
//! no more variation than Trinity's own run-to-run stochasticity.

use align::validate::{all_to_all_categories, CategoryCounts, FullLengthCriteria};
use mpisim::NetModel;
use seqio::fasta::Record;
use simulate::datasets::DatasetPreset;
use trinity::pipeline::{run_pipeline, PipelineMode};

use crate::workloads::{bench_pipeline_config, scaled};

/// One comparison's aggregated category counts.
#[derive(Debug, Clone, Default)]
pub struct Fig04Row {
    /// "Parallel": hybrid run vs original run.
    pub parallel: CategoryCounts,
    /// "Original": original run vs an independent original run.
    pub original: CategoryCounts,
}

fn run_once(reads: &[Record], jitter: u64, hybrid: bool) -> Vec<Record> {
    let mut cfg = bench_pipeline_config();
    cfg.inchworm.jitter_seed = Some(jitter);
    cfg.mode = if hybrid {
        PipelineMode::Hybrid {
            ranks: 4,
            net: NetModel::idataplex(),
        }
    } else {
        PipelineMode::Serial
    };
    run_pipeline(reads, &cfg).transcripts
}

/// Run `repeats` paired comparisons (paper: 10).
pub fn run(seed: u64, scale: f64, repeats: usize) -> Fig04Row {
    let w = scaled(DatasetPreset::WhiteflyLike, seed, scale);
    let criteria = FullLengthCriteria::default();
    let mut row = Fig04Row::default();
    for i in 0..repeats.max(1) {
        let original_a = run_once(&w.reads, 1000 + i as u64, false);
        let original_b = run_once(&w.reads, 2000 + i as u64, false);
        let parallel = run_once(&w.reads, 3000 + i as u64, true);
        merge(
            &mut row.parallel,
            all_to_all_categories(&parallel, &original_a, criteria),
        );
        merge(
            &mut row.original,
            all_to_all_categories(&original_b, &original_a, criteria),
        );
    }
    row
}

fn merge(acc: &mut CategoryCounts, c: CategoryCounts) {
    acc.identical_full += c.identical_full;
    acc.full += c.full;
    acc.partial += c.partial;
    acc.unaligned += c.unaligned;
    acc.partial_identities.extend(c.partial_identities);
}

fn pct(n: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * n as f64 / total as f64
    }
}

fn identity_histogram(ids: &[f64]) -> [usize; 5] {
    // Bins: <80, 80-90, 90-95, 95-99, 99-100 (%)
    let mut h = [0usize; 5];
    for &x in ids {
        let p = x * 100.0;
        let b = if p < 80.0 {
            0
        } else if p < 90.0 {
            1
        } else if p < 95.0 {
            2
        } else if p < 99.0 {
            3
        } else {
            4
        };
        h[b] += 1;
    }
    h
}

/// Render the four panels as text.
pub fn render(row: &Fig04Row) -> String {
    let mut out = String::from(
        "Fig. 4 — SW all-to-all categories (whitefly-like)\n\n\
         panel                          Parallel     Original\n",
    );
    let p = &row.parallel;
    let o = &row.original;
    let (tp, to) = (p.total(), o.total());
    out.push_str(&format!(
        "(a) identical, full length  {:>9.1}%   {:>9.1}%\n",
        pct(p.identical_full, tp),
        pct(o.identical_full, to)
    ));
    out.push_str(&format!(
        "(b) <100%, full length      {:>9.1}%   {:>9.1}%\n",
        pct(p.full, tp),
        pct(o.full, to)
    ));
    out.push_str(&format!(
        "(c) partial length          {:>9.1}%   {:>9.1}%\n",
        pct(p.partial, tp),
        pct(o.partial, to)
    ));
    out.push_str(&format!(
        "    unaligned               {:>9.1}%   {:>9.1}%\n",
        pct(p.unaligned, tp),
        pct(o.unaligned, to)
    ));
    out.push_str(
        "(d) identity of partial alignments (bins: <80, 80-90, 90-95, 95-99, 99-100 %):\n",
    );
    out.push_str(&format!(
        "    Parallel {:?}\n    Original {:?}\n",
        identity_histogram(&p.partial_identities),
        identity_histogram(&o.partial_identities)
    ));
    // The paper's two-sample t-test conclusion, as a simple overlap check
    // on category (a) shares.
    let delta = (pct(p.identical_full, tp) - pct(o.identical_full, to)).abs();
    out.push_str(&format!(
        "\n|Parallel - Original| in category (a): {delta:.1} points \
         (paper: no significant difference)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_variation_overlaps_original() {
        let row = run(5, 0.25, 1);
        assert!(row.parallel.total() > 0);
        assert!(row.original.total() > 0);
        // Most transcripts should land in (a)+(b) for both comparisons.
        let share =
            |c: &CategoryCounts| (c.identical_full + c.full) as f64 / c.total().max(1) as f64;
        assert!(share(&row.parallel) > 0.5, "parallel {:?}", row.parallel);
        assert!(share(&row.original) > 0.5, "original {:?}", row.original);
        let text = render(&row);
        assert!(text.contains("identical, full length"));
    }
}

//! Fig. 11 — collectl trace of the *parallel* Trinity run (16 nodes × 16
//! threads) on the sugarbeet-like workload, for comparison with Fig. 2.
//!
//! Paper: "substantially lower time taken in Chrysalis workflow"; the
//! running instances of Jellyfish/Inchworm are unchanged (they were not
//! parallelized).

use mpisim::NetModel;
use obs::Trace;
use simulate::datasets::DatasetPreset;
use trinity::pipeline::{run_pipeline, PipelineMode};
use trinity::report::{render_bars, render_trace};

use crate::fig02_baseline::chrysalis_time;
use crate::workloads::{bench_pipeline_config, scaled};

/// Run the hybrid pipeline at `ranks` nodes and return its trace.
pub fn run(seed: u64, scale: f64, ranks: usize) -> Trace {
    let w = scaled(DatasetPreset::SugarbeetLike, seed, scale);
    let mut cfg = bench_pipeline_config();
    cfg.mode = PipelineMode::Hybrid {
        ranks,
        net: NetModel::idataplex(),
    };
    run_pipeline(&w.reads, &cfg).trace
}

/// Render the trace plus the Fig. 2 comparison.
pub fn render(parallel: &Trace, baseline: &Trace) -> String {
    let mut out =
        String::from("Fig. 11 — parallel Trinity, 16 nodes x 16 threads (sugarbeet-like)\n\n");
    out.push_str(&render_trace(parallel));
    out.push('\n');
    out.push_str(&render_bars(parallel, 50));
    let (cb, cp) = (chrysalis_time(baseline), chrysalis_time(parallel));
    out.push_str(&format!(
        "\nChrysalis time: baseline {:.3}s -> parallel {:.3}s ({:.1}x; paper: >50h -> <5h, >10x)\n",
        cb,
        cp,
        cb / cp.max(f64::MIN_POSITIVE)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig02_baseline;

    #[test]
    fn parallel_chrysalis_is_much_faster() {
        let baseline = fig02_baseline::run(1, 0.08);
        let parallel = run(1, 0.08, 16);
        let (cb, cp) = (chrysalis_time(&baseline), chrysalis_time(&parallel));
        // At simulation scale the non-parallel floor is proportionally
        // larger than the paper's, so the gain is smaller than >10x — but
        // the hybrid Chrysalis must still be clearly faster.
        assert!(
            cp < 0.9 * cb,
            "hybrid Chrysalis ({cp:.3}s) must beat the baseline ({cb:.3}s)"
        );
        assert!(render(&parallel, &baseline).contains("Chrysalis time"));
        // Hybrid runs splice per-rank sub-traces: rank 0's Chrysalis
        // timeline should appear above RANK_TRACK_BASE.
        assert!(
            parallel
                .span_bounds(trinity::pipeline::RANK_TRACK_BASE, "gff.total")
                .is_some(),
            "per-rank gff.total span spliced into the pipeline trace"
        );
    }
}

//! Experiment harness: one module per figure of the paper's evaluation,
//! plus the §V headline-number table.
//!
//! Each module exposes a `run(...)` returning plain data and a `render(...)`
//! producing the text series the corresponding `src/bin/figNN_*.rs` binary
//! prints. EXPERIMENTS.md records paper-vs-measured for every figure.
//!
//! Scale: all experiments run on the synthetic presets of the `simulate`
//! crate (see DESIGN.md's substitution table). `Scale` shrinks or grows a
//! preset so the figure binaries can be run quickly (`--scale 0.2`) or at
//! full preset size (default).

pub mod ablation_dynamic;
pub mod benchjson;
pub mod fig02_baseline;
pub mod fig03_chunked_rr;
pub mod fig04_validation;
pub mod fig05_full_length;
pub mod fig06_fused;
pub mod fig07_gff_scaling;
pub mod fig08_gff_breakdown;
pub mod fig09_rtt_scaling;
pub mod fig10_bowtie_scaling;
pub mod fig11_parallel_trace;
pub mod headline;
pub mod workloads;

/// Parse a `--scale X` / `--seed N` style argument list (every figure
/// binary shares this tiny CLI).
#[derive(Debug, Clone)]
pub struct Cli {
    /// Workload scale multiplier (1.0 = the preset as configured).
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Where `--trace-out` asks trace artifacts to go (a directory);
    /// `None` means the default `target/figs`.
    pub trace_out: Option<std::path::PathBuf>,
    /// Where `--flame-out` asks flamegraph artifacts (collapsed-stack
    /// `.txt` + `.svg`) to go; `None` means the default `target/figs`.
    pub flame_out: Option<std::path::PathBuf>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: 1.0,
            seed: 42,
            trace_out: None,
            flame_out: None,
        }
    }
}

/// Write a trace as a Chrome `trace_event` artifact next to the figure's
/// text output: `<dir>/<name>` (dir from `--trace-out`, default
/// `target/figs`). Open in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn write_chrome_trace(cli: &Cli, name: &str, trace: &obs::Trace) {
    let dir = cli
        .trace_out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("target/figs"));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, obs::export::chrome_trace(trace)) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Write a trace's flamegraph artifacts — `<stem>.txt` (collapsed stacks,
/// merged across lanes, for speedscope / inferno) and `<stem>.svg` (the
/// self-contained renderer) — into the `--flame-out` directory (default
/// `target/figs`).
pub fn write_flame(cli: &Cli, stem: &str, trace: &obs::Trace) {
    let dir = cli
        .flame_out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("target/figs"));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let folds = obs::flame::collapsed_merged(trace);
    for (name, content) in [
        (format!("{stem}.txt"), obs::flame::to_text(&folds)),
        (format!("{stem}.svg"), obs::flame::svg(&folds, stem)),
    ] {
        let path = dir.join(name);
        match std::fs::write(&path, content) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

/// Analyze a trace and write the `analysis.json` artifact next to the
/// figure's trace output (same directory rules as [`write_chrome_trace`]).
/// `baseline_total` (a serial run's total, seconds) adds the
/// scaling-efficiency section. The artifact feeds `trinity diff` and the
/// CI perf-gate.
pub fn write_analysis(cli: &Cli, name: &str, trace: &obs::Trace, baseline_total: Option<f64>) {
    let dir = cli
        .trace_out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("target/figs"));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let analysis = obs::analyze_vs(trace, baseline_total);
    let path = dir.join(name);
    match std::fs::write(&path, obs::analyze::analysis_json(&analysis)) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

impl Cli {
    /// Parse from `std::env::args`-style strings; unknown flags are ignored.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Cli {
        let mut cli = Cli::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        cli.scale = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        cli.seed = v;
                    }
                }
                "--trace-out" => {
                    if let Some(v) = it.next() {
                        cli.trace_out = Some(std::path::PathBuf::from(v));
                    }
                }
                "--flame-out" => {
                    if let Some(v) = it.next() {
                        cli.flame_out = Some(std::path::PathBuf::from(v));
                    }
                }
                _ => {}
            }
        }
        cli
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_parses_flags() {
        let cli = Cli::parse(["--scale".into(), "0.5".into(), "--seed".into(), "7".into()]);
        assert_eq!(cli.scale, 0.5);
        assert_eq!(cli.seed, 7);
    }

    #[test]
    fn cli_ignores_unknown() {
        let cli = Cli::parse(["--whatever".into(), "x".into()]);
        assert_eq!(cli.scale, 1.0);
    }

    #[test]
    fn cli_tolerates_missing_value() {
        let cli = Cli::parse(["--scale".into()]);
        assert_eq!(cli.scale, 1.0);
    }
}

//! Fig. 8 — GraphFromFasta time breakdown, normalized to 100 %: loop 1,
//! loop 2 and non-parallel regions per rank count.
//!
//! Paper: the loops are 92.4 % of the stage at 16 nodes, falling to
//! 57.4 % at 192 nodes as the non-parallel regions' share grows (63.3 %
//! at 128 before the loop-2 imbalance shifts shares again at 192).

use crate::fig07_gff_scaling::Fig07Data;

/// Normalized shares for one rank count.
#[derive(Debug, Clone, Copy)]
pub struct BreakdownRow {
    /// Number of ranks.
    pub ranks: usize,
    /// Loop 1 share (max-rank time), percent.
    pub loop1_pct: f64,
    /// Loop 2 share, percent.
    pub loop2_pct: f64,
    /// Non-parallel share, percent.
    pub serial_pct: f64,
}

/// Derive the breakdown from the Fig. 7 runs (same data, different view —
/// exactly like the paper).
pub fn breakdown(data: &Fig07Data) -> Vec<BreakdownRow> {
    data.rows
        .iter()
        .map(|r| {
            let total = r.total.max(f64::MIN_POSITIVE);
            BreakdownRow {
                ranks: r.ranks,
                loop1_pct: 100.0 * r.loop1.max / total,
                loop2_pct: 100.0 * r.loop2.max / total,
                serial_pct: (100.0 - 100.0 * r.loop1.max / total - 100.0 * r.loop2.max / total)
                    .max(0.0),
            }
        })
        .collect()
}

/// Render stacked-percentage rows.
pub fn render(rows: &[BreakdownRow]) -> String {
    let mut out = String::from(
        "Fig. 8 — GraphFromFasta breakdown, normalized to 100%\n\n\
         nodes    loop1%    loop2%   other%\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>5} {:>9.1} {:>9.1} {:>8.1}\n",
            r.ranks, r.loop1_pct, r.loop2_pct, r.serial_pct
        ));
    }
    out.push_str(
        "\n(paper: loops 92.4% at 16 nodes -> 57.4% at 192 nodes; \
         non-parallel share grows with nodes)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig07_gff_scaling::{prepare, run};

    #[test]
    fn serial_share_grows_with_ranks() {
        let shared = prepare(2, 0.12);
        let data = run(shared, &[4, 48]);
        let rows = breakdown(&data);
        assert_eq!(rows.len(), 2);
        // Mean-based shares are noise-robust (the max is granularity-bound
        // at this workload size): the loops' share of the stage falls with
        // ranks, i.e. the non-parallel share grows — Fig. 8's trend.
        let loop_share = |r: &crate::fig07_gff_scaling::ScalingRow| {
            (r.loop1.mean + r.loop2.mean) / r.total.max(f64::MIN_POSITIVE)
        };
        assert!(
            loop_share(&data.rows[1]) < loop_share(&data.rows[0]),
            "loop share must fall: {} -> {}",
            loop_share(&data.rows[0]),
            loop_share(&data.rows[1])
        );
        for r in &rows {
            let sum = r.loop1_pct + r.loop2_pct + r.serial_pct;
            assert!((sum - 100.0).abs() < 1.0, "shares sum to 100: {sum}");
        }
        assert!(render(&rows).contains("normalized"));
    }
}

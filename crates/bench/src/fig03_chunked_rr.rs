//! Fig. 3 — the chunked round-robin distribution strategy.
//!
//! The paper's figure is a schematic (4 MPI processes × 2 OpenMP threads).
//! We regenerate it as an explicit assignment matrix and additionally run
//! the ablation the text reports: pre-allocated contiguous blocks "did not
//! give a good speedup", chunked round-robin did.

use omp::makespan::simulate_grouped;
use omp::schedule::{chunked_round_robin, Chunk, Schedule};

/// The assignment of chunks to ranks, as printed.
pub fn assignment(n: usize, ranks: usize, chunk: usize) -> Vec<Vec<Chunk>> {
    chunked_round_robin(n, ranks, chunk)
}

/// Contiguous pre-allocated blocks (the strategy the paper abandoned).
pub fn block_assignment(n: usize, ranks: usize) -> Vec<Vec<Chunk>> {
    let base = n / ranks;
    let extra = n % ranks;
    let mut out = Vec::with_capacity(ranks);
    let mut start = 0;
    for r in 0..ranks {
        let len = base + usize::from(r < extra);
        out.push(vec![Chunk {
            start,
            end: start + len,
        }]);
        start += len;
    }
    out
}

/// Makespan of a grouped assignment over skewed costs (max over ranks).
pub fn strategy_makespan(costs: &[f64], groups: &[Vec<Chunk>], threads: usize) -> f64 {
    simulate_grouped(costs, groups, threads, Schedule::Dynamic { chunk: 1 })
        .iter()
        .map(|s| s.makespan)
        .fold(0.0, f64::max)
}

/// Front-loaded skewed costs (long contigs cluster at the front after
/// Inchworm's abundance sort — the worst case for block allocation).
pub fn skewed_costs(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 1.0 + 99.0 * (-(i as f64) / (n as f64 / 8.0)).exp())
        .collect()
}

/// Render the Fig. 3 matrix plus the ablation table.
pub fn render(n: usize, ranks: usize, threads: usize, chunk: usize) -> String {
    let mut out = format!(
        "Fig. 3 — chunked round-robin: {n} contigs, {ranks} ranks x {threads} threads, chunk {chunk}\n\n"
    );
    for (r, chunks) in assignment(n, ranks, chunk).iter().enumerate() {
        let cells: Vec<String> = chunks
            .iter()
            .map(|c| format!("[{:>3}..{:>3})", c.start, c.end))
            .collect();
        out.push_str(&format!("rank {r}: {}\n", cells.join(" ")));
    }

    let costs = skewed_costs(n);
    let rr = strategy_makespan(&costs, &assignment(n, ranks, chunk), threads);
    let block = strategy_makespan(&costs, &block_assignment(n, ranks), threads);
    out.push_str(&format!(
        "\nablation on front-loaded skew (§III-B: pre-allocation 'did not give a good speedup'):\n\
           pre-allocated blocks  makespan {block:10.2}\n\
           chunked round-robin   makespan {rr:10.2}  ({:.2}x better)\n",
        block / rr
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_beats_blocks_on_skew() {
        let n = 256;
        let costs = skewed_costs(n);
        let rr = strategy_makespan(&costs, &assignment(n, 4, 8), 2);
        let block = strategy_makespan(&costs, &block_assignment(n, 4), 2);
        assert!(
            rr < block,
            "chunked RR ({rr}) must beat pre-allocated blocks ({block})"
        );
    }

    #[test]
    fn block_assignment_covers_everything() {
        let groups = block_assignment(10, 3);
        let total: usize = groups.iter().flatten().map(|c| c.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn render_mentions_every_rank() {
        let text = render(40, 4, 2, 5);
        for r in 0..4 {
            assert!(text.contains(&format!("rank {r}:")));
        }
        assert!(text.contains("better"));
    }
}

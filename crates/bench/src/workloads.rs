//! Shared workload construction for the figure experiments.

use seqio::fasta::Record;
use simulate::datasets::{Dataset, DatasetPreset};
use simulate::expression::ExpressionModel;
use simulate::reads::simulate_reads;
use simulate::transcriptome::{RefSeq, Transcriptome};
use trinity::pipeline::PipelineConfig;

/// A materialized benchmark workload.
pub struct Workload {
    /// All reads.
    pub reads: Vec<Record>,
    /// Ground-truth reference.
    pub reference: Vec<RefSeq>,
}

/// Generate a preset scaled by `scale` (scales the gene count and read
/// count together, preserving coverage).
pub fn scaled(preset: DatasetPreset, seed: u64, scale: f64) -> Workload {
    let (mut tcfg, mut rcfg) = preset.configs(seed);
    if (scale - 1.0).abs() > f64::EPSILON {
        tcfg.genes = ((tcfg.genes as f64 * scale).round() as usize).max(2);
        rcfg.pairs = ((rcfg.pairs as f64 * scale).round() as usize).max(50);
    }
    let transcriptome = Transcriptome::generate(tcfg);
    let reference = transcriptome.reference();
    let expr = ExpressionModel {
        seed: seed ^ 0xE0E0_E0E0,
        ..ExpressionModel::default()
    };
    let reads = simulate_reads(&reference, &expr, rcfg).all();
    Workload { reads, reference }
}

/// Generate a preset at its configured size.
pub fn full(preset: DatasetPreset, seed: u64) -> Workload {
    let ds = Dataset::generate(preset, seed);
    Workload {
        reads: ds.all_reads(),
        reference: ds.reference,
    }
}

/// The pipeline configuration used by the figure experiments: k = 16
/// (paper-shaped but sized for synthetic exon lengths) with the paper's
/// 16 threads per rank.
pub fn bench_pipeline_config() -> PipelineConfig {
    let mut cfg = PipelineConfig::small(16);
    cfg.chrysalis.threads = 16;
    cfg.chrysalis.min_weld_support = 1;
    cfg
}

/// Run Jellyfish + Inchworm over a read set, producing the contig FASTA
/// and the read k-mer table the Chrysalis experiments consume.
pub fn assemble_contigs(
    reads: &[Record],
    cfg: &PipelineConfig,
) -> (Vec<Record>, kcount::counter::KmerCounts) {
    let counts =
        kcount::counter::count_kmers(reads, kcount::counter::CounterConfig::new(cfg.chrysalis.k));
    let dict =
        inchworm::dictionary::Dictionary::from_counts(counts.clone(), cfg.min_kmer_count.max(1));
    let contigs = inchworm::assemble::assemble(&dict, cfg.inchworm)
        .iter()
        .map(|c| c.to_record())
        .collect();
    (contigs, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_down_is_smaller() {
        let big = scaled(DatasetPreset::Tiny, 1, 1.0);
        let small = scaled(DatasetPreset::Tiny, 1, 0.3);
        assert!(small.reads.len() < big.reads.len());
        assert!(small.reference.len() <= big.reference.len());
    }

    #[test]
    fn full_matches_dataset() {
        let w = full(DatasetPreset::Tiny, 1);
        let d = Dataset::generate(DatasetPreset::Tiny, 1);
        assert_eq!(w.reads.len(), d.all_reads().len());
    }

    #[test]
    fn config_uses_sixteen_threads() {
        assert_eq!(bench_pipeline_config().chrysalis.threads, 16);
    }
}

//! Fig. 5 — full-length reconstructed genes/isoforms against the
//! reference sets ("Schizophrenia" \[sic\] and Drosophila), for both
//! versions of Trinity.
//!
//! The claim: the hybrid version reconstructs as many reference
//! genes/isoforms in full length as the original.

use align::validate::{count_full_length, FullLengthCounts, FullLengthCriteria, RefTranscript};
use mpisim::NetModel;
use simulate::datasets::DatasetPreset;
use simulate::transcriptome::RefSeq;
use trinity::pipeline::{run_pipeline, PipelineMode};

use crate::workloads::{bench_pipeline_config, scaled};

/// Counts for one dataset, both pipeline versions.
#[derive(Debug, Clone, Copy)]
pub struct Fig05Row {
    /// Dataset label.
    pub dataset: &'static str,
    /// Reference genes / isoforms available.
    pub ref_genes: usize,
    /// Reference isoform count.
    pub ref_isoforms: usize,
    /// Original (serial) pipeline counts.
    pub original: FullLengthCounts,
    /// Hybrid pipeline counts.
    pub parallel: FullLengthCounts,
}

/// Convert simulator ground truth into the validator's reference type.
pub fn to_ref_transcripts(reference: &[RefSeq]) -> Vec<RefTranscript> {
    reference
        .iter()
        .map(|r| RefTranscript {
            gene: r.gene.clone(),
            isoform: r.isoform.clone(),
            seq: r.seq.clone(),
        })
        .collect()
}

/// Run one dataset through both versions and count full-length matches.
pub fn run_dataset(preset: DatasetPreset, label: &'static str, seed: u64, scale: f64) -> Fig05Row {
    let w = scaled(preset, seed, scale);
    let refs = to_ref_transcripts(&w.reference);
    let genes: std::collections::HashSet<&str> = refs.iter().map(|r| r.gene.as_str()).collect();
    let criteria = FullLengthCriteria::default();

    let mut serial_cfg = bench_pipeline_config();
    serial_cfg.mode = PipelineMode::Serial;
    let original_out = run_pipeline(&w.reads, &serial_cfg);

    let mut hybrid_cfg = bench_pipeline_config();
    hybrid_cfg.mode = PipelineMode::Hybrid {
        ranks: 4,
        net: NetModel::idataplex(),
    };
    let parallel_out = run_pipeline(&w.reads, &hybrid_cfg);

    Fig05Row {
        dataset: label,
        ref_genes: genes.len(),
        ref_isoforms: refs.len(),
        original: count_full_length(&original_out.transcripts, &refs, criteria),
        parallel: count_full_length(&parallel_out.transcripts, &refs, criteria),
    }
}

/// Run both datasets.
pub fn run(seed: u64, scale: f64) -> Vec<Fig05Row> {
    vec![
        run_dataset(DatasetPreset::SchizoLike, "schizo-like", seed, scale),
        run_dataset(
            DatasetPreset::DrosophilaLike,
            "drosophila-like",
            seed + 1,
            scale,
        ),
    ]
}

/// Render the counts table.
pub fn render(rows: &[Fig05Row]) -> String {
    let mut out = String::from(
        "Fig. 5 — full-length reconstruction vs reference\n\n\
         dataset           refs (genes/iso)   original (genes/iso)   parallel (genes/iso)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>8}/{:<8} {:>10}/{:<10} {:>10}/{:<10}\n",
            r.dataset,
            r.ref_genes,
            r.ref_isoforms,
            r.original.genes,
            r.original.isoforms,
            r.parallel.genes,
            r.parallel.isoforms
        ));
    }
    out.push_str("\n(paper: no significant difference between versions)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_versions_reconstruct_comparably() {
        let row = run_dataset(DatasetPreset::SchizoLike, "schizo-like", 3, 0.2);
        assert!(row.ref_isoforms > 0);
        assert!(row.original.isoforms > 0, "original reconstructs something");
        assert!(row.parallel.isoforms > 0, "parallel reconstructs something");
        // Versions within 25% of each other (paper: statistically equal).
        let (a, b) = (row.original.isoforms as f64, row.parallel.isoforms as f64);
        assert!(
            (a - b).abs() / a.max(b) < 0.25,
            "original {a} vs parallel {b}"
        );
        let text = render(&[row]);
        assert!(text.contains("schizo-like"));
    }
}

//! Regenerates the headline summary of §V: per-stage baseline vs hybrid.

fn main() {
    let cli = bench::Cli::parse(std::env::args().skip(1));
    let rows = bench::headline::run(cli.seed, cli.scale, 192, 32, 128);
    print!("{}", bench::headline::render(&rows));
}

//! Regenerates Fig. 6: fused (multi-gene) transcript counts.

fn main() {
    let cli = bench::Cli::parse(std::env::args().skip(1));
    let rows = bench::fig06_fused::run(cli.seed, cli.scale);
    print!("{}", bench::fig06_fused::render(&rows));
}

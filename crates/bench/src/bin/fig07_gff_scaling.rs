//! Regenerates Fig. 7: hybrid GraphFromFasta strong scaling, 16-192 nodes.

fn main() {
    let cli = bench::Cli::parse(std::env::args().skip(1));
    let shared = bench::fig07_gff_scaling::prepare(cli.seed, cli.scale);
    let data = bench::fig07_gff_scaling::run(shared, &[16, 32, 64, 128, 192]);
    print!("{}", bench::fig07_gff_scaling::render(&data));
}

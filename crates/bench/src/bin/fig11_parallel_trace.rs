//! Regenerates Fig. 11: collectl trace of the parallel Trinity run
//! (16 nodes x 16 threads), alongside the Fig. 2 baseline for comparison.
//!
//! Besides the text figure on stdout, writes both runs' span timelines as
//! Chrome `trace_event` files (`fig11_trace.json`, `fig11_baseline_trace.json`)
//! for `chrome://tracing` / Perfetto, the critical-path/imbalance analyses
//! (`fig11_analysis.json` with scaling efficiency vs the serial baseline,
//! `fig11_baseline_analysis.json`; both feed `trinity diff`), plus
//! flamegraph artifacts (`fig11_flame.txt`/`.svg`,
//! `fig11_baseline_flame.txt`/`.svg`; `--flame-out DIR` redirects them).

fn main() {
    let cli = bench::Cli::parse(std::env::args().skip(1));
    let baseline = bench::fig02_baseline::run(cli.seed, cli.scale);
    let parallel = bench::fig11_parallel_trace::run(cli.seed, cli.scale, 16);
    print!(
        "{}",
        bench::fig11_parallel_trace::render(&parallel, &baseline)
    );
    bench::write_chrome_trace(&cli, "fig11_baseline_trace.json", &baseline);
    bench::write_chrome_trace(&cli, "fig11_trace.json", &parallel);
    bench::write_analysis(&cli, "fig11_baseline_analysis.json", &baseline, None);
    bench::write_analysis(
        &cli,
        "fig11_analysis.json",
        &parallel,
        Some(baseline.total_time()),
    );
    bench::write_flame(&cli, "fig11_baseline_flame", &baseline);
    bench::write_flame(&cli, "fig11_flame", &parallel);
}

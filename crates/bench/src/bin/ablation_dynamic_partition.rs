//! Regenerates the future-work ablation: static chunked round-robin vs
//! dynamic master-dealt partitioning of GraphFromFasta.

fn main() {
    let cli = bench::Cli::parse(std::env::args().skip(1));
    let shared = bench::fig07_gff_scaling::prepare(cli.seed, cli.scale);
    let rows = bench::ablation_dynamic::run(shared, &[8, 32, 96]);
    print!("{}", bench::ablation_dynamic::render(&rows));
}

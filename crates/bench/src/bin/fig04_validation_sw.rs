//! Regenerates Fig. 4: Smith-Waterman all-to-all validation categories.

fn main() {
    let cli = bench::Cli::parse(std::env::args().skip(1));
    let repeats = if cli.scale >= 1.0 { 10 } else { 3 };
    let row = bench::fig04_validation::run(cli.seed, cli.scale, repeats);
    print!("{}", bench::fig04_validation::render(&row));
}

//! Regenerates Fig. 5: full-length genes/isoforms vs the reference sets.

fn main() {
    let cli = bench::Cli::parse(std::env::args().skip(1));
    let rows = bench::fig05_full_length::run(cli.seed, cli.scale);
    print!("{}", bench::fig05_full_length::render(&rows));
}

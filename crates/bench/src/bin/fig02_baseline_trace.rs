//! Regenerates Fig. 2: collectl trace of the original single-node Trinity.
//!
//! Usage: `cargo run --release -p bench --bin fig02_baseline_trace [--scale X] [--seed N]`

fn main() {
    let cli = bench::Cli::parse(std::env::args().skip(1));
    let trace = bench::fig02_baseline::run(cli.seed, cli.scale);
    print!("{}", bench::fig02_baseline::render(&trace));
}

//! Regenerates Fig. 2: collectl trace of the original single-node Trinity.
//!
//! Usage: `cargo run --release -p bench --bin fig02_baseline_trace
//! [--scale X] [--seed N] [--trace-out DIR] [--flame-out DIR]`
//!
//! Besides the text figure on stdout, writes the run's span timeline as a
//! Chrome `trace_event` file (`fig02_trace.json`) for `chrome://tracing` /
//! Perfetto, the critical-path/imbalance analysis (`fig02_analysis.json`,
//! feeds `trinity diff`), plus flamegraph artifacts (`fig02_flame.txt`
//! collapsed stacks, `fig02_flame.svg`).

fn main() {
    let cli = bench::Cli::parse(std::env::args().skip(1));
    let trace = bench::fig02_baseline::run(cli.seed, cli.scale);
    print!("{}", bench::fig02_baseline::render(&trace));
    bench::write_chrome_trace(&cli, "fig02_trace.json", &trace);
    bench::write_analysis(&cli, "fig02_analysis.json", &trace, None);
    bench::write_flame(&cli, "fig02_flame", &trace);
}

//! Regenerates Fig. 10: distributed Bowtie scaling with PyFasta split cost.

fn main() {
    let cli = bench::Cli::parse(std::env::args().skip(1));
    let (contigs, reads) = bench::fig10_bowtie_scaling::prepare(cli.seed, cli.scale);
    let data = bench::fig10_bowtie_scaling::run(contigs, reads, &[1, 16, 32, 64, 128]);
    print!("{}", bench::fig10_bowtie_scaling::render(&data));
}

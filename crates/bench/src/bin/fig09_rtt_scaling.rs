//! Regenerates Fig. 9: hybrid ReadsToTranscripts scaling, 1-32 nodes.

fn main() {
    let cli = bench::Cli::parse(std::env::args().skip(1));
    let shared = bench::fig09_rtt_scaling::prepare(cli.seed, cli.scale);
    let data = bench::fig09_rtt_scaling::run(shared, &[1, 4, 8, 16, 32]);
    print!("{}", bench::fig09_rtt_scaling::render(&data));
}

//! Regenerates Fig. 3: the chunked round-robin distribution, plus the
//! pre-allocation-vs-round-robin ablation.

fn main() {
    print!("{}", bench::fig03_chunked_rr::render(40, 4, 2, 5));
}

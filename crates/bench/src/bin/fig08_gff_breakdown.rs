//! Regenerates Fig. 8: GraphFromFasta normalized time breakdown.

fn main() {
    let cli = bench::Cli::parse(std::env::args().skip(1));
    let shared = bench::fig07_gff_scaling::prepare(cli.seed, cli.scale);
    let data = bench::fig07_gff_scaling::run(shared, &[16, 32, 64, 128, 192]);
    let rows = bench::fig08_gff_breakdown::breakdown(&data);
    print!("{}", bench::fig08_gff_breakdown::render(&rows));
}

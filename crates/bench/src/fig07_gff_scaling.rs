//! Fig. 7 — hybrid GraphFromFasta strong scaling on the sugarbeet-like
//! workload: loop 1 and loop 2 min/max across ranks plus the stage total,
//! for 16 → 192 nodes (16 threads per node), against the OpenMP-only
//! baseline.
//!
//! Paper headline: baseline 122 610 s on 1×16; 27 133 s at 16 nodes
//! (4.5×); 5 930 s at 192 nodes (20.7×); loop speedups 8.31×/11.93×
//! (loop 1 at 128/192 vs 16) and growing load imbalance in loop 2.

use std::sync::Arc;

use chrysalis::graph_from_fasta::{gff_hybrid, gff_shared_memory, GffShared};
use chrysalis::timings::{GffTimings, PhaseSpread};
use mpisim::{run_cluster, NetModel};
use simulate::datasets::DatasetPreset;

use crate::workloads::{assemble_contigs, bench_pipeline_config, scaled};

/// One rank-count's measurements.
#[derive(Debug, Clone, Copy)]
pub struct ScalingRow {
    /// Number of ranks (nodes).
    pub ranks: usize,
    /// Loop 1 spread across ranks.
    pub loop1: PhaseSpread,
    /// Loop 2 spread across ranks.
    pub loop2: PhaseSpread,
    /// Non-parallel share (max across ranks).
    pub serial: f64,
    /// Stage total (slowest rank).
    pub total: f64,
}

/// The experiment output.
#[derive(Debug, Clone)]
pub struct Fig07Data {
    /// OpenMP-only baseline (1 node × 16 threads) total.
    pub baseline_total: f64,
    /// Baseline loop times.
    pub baseline: GffTimings,
    /// Hybrid rows per rank count.
    pub rows: Vec<ScalingRow>,
    /// Contig count of the workload.
    pub contigs: usize,
}

/// Prepare the shared GraphFromFasta state for the scaling runs.
pub fn prepare(seed: u64, scale: f64) -> Arc<GffShared> {
    let w = scaled(DatasetPreset::SugarbeetLike, seed, scale);
    let cfg = bench_pipeline_config();
    let (contigs, counts) = assemble_contigs(&w.reads, &cfg);
    Arc::new(GffShared::prepare(
        seqio::packed::encode_all(&contigs),
        counts,
        cfg.chrysalis,
    ))
}

/// Run the scaling sweep over `rank_counts`.
pub fn run(shared: Arc<GffShared>, rank_counts: &[usize]) -> Fig07Data {
    let baseline = gff_shared_memory(&shared).timings;
    let mut rows = Vec::with_capacity(rank_counts.len());
    for &ranks in rank_counts {
        let sh = Arc::clone(&shared);
        let outs = run_cluster(ranks, NetModel::idataplex(), move |comm| {
            gff_hybrid(comm, &sh).timings
        });
        let timings: Vec<GffTimings> = outs.iter().map(|o| o.value).collect();
        rows.push(ScalingRow {
            ranks,
            loop1: PhaseSpread::over(&timings, |t| t.loop1),
            loop2: PhaseSpread::over(&timings, |t| t.loop2),
            serial: PhaseSpread::over(&timings, |t| t.serial).max,
            total: PhaseSpread::over(&timings, |t| t.total).max,
        });
    }
    Fig07Data {
        baseline_total: baseline.total,
        baseline,
        rows,
        contigs: shared.contigs.len(),
    }
}

/// Render the figure's series.
pub fn render(data: &Fig07Data) -> String {
    let mut out = format!(
        "Fig. 7 — hybrid GraphFromFasta scaling (sugarbeet-like, {} contigs)\n\
         baseline (1 node x 16 threads): total {:.3}s  loop1 {:.3}s  loop2 {:.3}s\n\n\
         {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}\n",
        data.contigs,
        data.baseline_total,
        data.baseline.loop1,
        data.baseline.loop2,
        "nodes",
        "loop1 min",
        "loop1 max",
        "loop2 min",
        "loop2 max",
        "total",
        "speedup",
        "imbal2"
    );
    for r in &data.rows {
        out.push_str(&format!(
            "{:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>9.2}x {:>8.2}x\n",
            r.ranks,
            r.loop1.min,
            r.loop1.max,
            r.loop2.min,
            r.loop2.max,
            r.total,
            data.baseline_total / r.total.max(f64::MIN_POSITIVE),
            r.loop2.imbalance()
        ));
    }
    out.push_str(
        "\n(paper at the same points: 16 nodes 4.5x, 192 nodes 20.7x; loop-2 \
         imbalance >3x at 192 nodes)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_improves_then_saturates() {
        let shared = prepare(2, 0.15);
        let data = run(shared, &[4, 16, 48]);
        assert_eq!(data.rows.len(), 3);
        // Work conservation: the *mean* per-rank loop time shrinks with
        // rank count (the max is granularity/noise-bound at this scale).
        assert!(
            data.rows[2].loop1.mean < 0.5 * data.rows[0].loop1.mean,
            "loop1 mean at 48 ranks ({}) vs 4 ranks ({})",
            data.rows[2].loop1.mean,
            data.rows[0].loop1.mean
        );
        // Totals never regress materially with more ranks, but Amdahl's
        // non-parallel floor keeps the gain far below the rank ratio.
        let s0 = data.baseline_total / data.rows[0].total;
        let s2 = data.baseline_total / data.rows[2].total;
        assert!(s2 > 0.7 * s0, "speedup must not collapse: {s0} -> {s2}");
        assert!(s2 / s0.max(f64::MIN_POSITIVE) < 12.0, "sublinear scaling");
        assert!(render(&data).contains("speedup"));
    }

    #[test]
    fn load_imbalance_present_at_scale() {
        let shared = prepare(2, 0.12);
        let data = run(shared, &[48]);
        let r = &data.rows[0];
        // Skewed contig lengths: the slowest rank is measurably slower.
        assert!(
            r.loop1.imbalance() > 1.05,
            "imbalance {}",
            r.loop1.imbalance()
        );
    }
}

//! §V headline numbers — the summary "table" of the paper's text:
//! per-stage baseline vs best-hybrid times and speedups.
//!
//! Paper values (sugarbeet, absolute seconds on Blue Wonder):
//!
//! | stage              | baseline (1×16) | hybrid best    | speedup |
//! |--------------------|-----------------|----------------|---------|
//! | GraphFromFasta     | 122 610 s       | 5 930 s (192)  | 20.7×   |
//! | ReadsToTranscripts | 20 190 s        | ~1 022 s (32)  | 19.75×  |
//! | Bowtie             | >8 h            | ~⅓ (128)       | ~3×     |
//! | Chrysalis total    | >50 h           | <5 h           | >10×    |

use std::sync::Arc;

use crate::{fig07_gff_scaling, fig09_rtt_scaling, fig10_bowtie_scaling};

/// One stage's headline row.
#[derive(Debug, Clone)]
pub struct HeadlineRow {
    /// Stage name.
    pub stage: &'static str,
    /// Baseline (1 node × 16 threads) seconds.
    pub baseline: f64,
    /// Best hybrid seconds.
    pub hybrid: f64,
    /// Node count of the best hybrid run.
    pub nodes: usize,
    /// The paper's speedup at the corresponding point.
    pub paper_speedup: f64,
}

impl HeadlineRow {
    /// Measured speedup.
    pub fn speedup(&self) -> f64 {
        self.baseline / self.hybrid.max(f64::MIN_POSITIVE)
    }
}

/// Run all three stage sweeps at their paper-best node counts (scaled to
/// the host with `gff_ranks`/`rtt_ranks`/`bowtie_ranks`).
pub fn run(
    seed: u64,
    scale: f64,
    gff_ranks: usize,
    rtt_ranks: usize,
    bowtie_ranks: usize,
) -> Vec<HeadlineRow> {
    let gff_shared = fig07_gff_scaling::prepare(seed, scale);
    let gff = fig07_gff_scaling::run(gff_shared, &[gff_ranks]);

    let rtt_shared = fig09_rtt_scaling::prepare(seed, scale);
    let rtt = fig09_rtt_scaling::run(rtt_shared, &[rtt_ranks]);

    let (contigs, reads) = fig10_bowtie_scaling::prepare(seed, scale);
    let bowtie = fig10_bowtie_scaling::run(contigs, reads, &[1, bowtie_ranks]);

    vec![
        HeadlineRow {
            stage: "GraphFromFasta",
            baseline: gff.baseline_total,
            hybrid: gff.rows[0].total,
            nodes: gff_ranks,
            paper_speedup: 20.7,
        },
        HeadlineRow {
            stage: "ReadsToTranscripts",
            baseline: rtt.baseline_total,
            hybrid: rtt.rows[0].total,
            nodes: rtt_ranks,
            paper_speedup: 19.75,
        },
        HeadlineRow {
            stage: "Bowtie",
            baseline: bowtie.rows[0].total,
            hybrid: bowtie.rows[1].total,
            nodes: bowtie_ranks,
            paper_speedup: 3.0,
        },
    ]
}

/// Render the headline table.
pub fn render(rows: &[HeadlineRow]) -> String {
    let mut out = String::from(
        "Headline table (§V) — baseline vs hybrid, measured vs paper\n\n\
         stage                baseline(s)   hybrid(s)  nodes  speedup  paper\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<20} {:>11.3} {:>11.3} {:>6} {:>7.2}x {:>5.1}x\n",
            r.stage,
            r.baseline,
            r.hybrid,
            r.nodes,
            r.speedup(),
            r.paper_speedup
        ));
    }
    out.push_str(
        "\n(shape check: GFF and RTT speedups are of the same order; Bowtie's \
         is much smaller; Chrysalis overall >several-fold)\n",
    );
    out
}

/// Keep `Arc` in the public API surface documented (the sweeps share
/// prepared state across rank counts).
pub type SharedGff = Arc<chrysalis::graph_from_fasta::GffShared>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_speedup_ordering_matches_paper() {
        let rows = run(2, 0.1, 24, 8, 8);
        assert_eq!(rows.len(), 3);
        let gff = rows[0].speedup();
        let rtt = rows[1].speedup();
        let bowtie = rows[2].speedup();
        // Qualitative claims that survive the 1000x workload downscale:
        // the split-index Bowtie gains clearly; nothing regresses badly.
        // The RTT *stage total* is a weaker check here than in the paper:
        // every rank redundantly streams the whole read file (§III-C, by
        // design), and with the packed-k-mer table the voting loop is now
        // fast enough that this fixed I/O floor dominates the downscaled
        // stage — the paper's 19.75x belongs to multi-hour workloads where
        // I/O is negligible. The near-linear *loop* scaling claim is
        // asserted by fig09's `loop_scales_nearly_linearly`; here the
        // hybrid stage must simply never regress.
        // The thresholds are wall-measured, so they need real parallel
        // hardware: on a box with only a core or two the 8-rank hybrid
        // time-slices a single CPU and every ratio collapses to
        // scheduler noise. Keep the shape checks; skip the thresholds.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 4 {
            assert!(rtt > 0.9, "RTT speedup {rtt:.2}");
            assert!(bowtie > 1.15, "Bowtie speedup {bowtie:.2}");
            assert!(gff > 0.7, "GFF must not regress badly: {gff:.2}");
        } else {
            eprintln!(
                "skipping speedup thresholds: only {cores} core(s) available \
                 (gff {gff:.2}x, rtt {rtt:.2}x, bowtie {bowtie:.2}x)"
            );
        }
        assert!(render(&rows).contains("GraphFromFasta"));
    }
}

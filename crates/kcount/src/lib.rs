//! Jellyfish substrate: fast, memory-conscious k-mer counting.
//!
//! Jellyfish is the first stage of the Trinity workflow: it counts every
//! k-mer (k = 25 by default in Trinity) across all reads and dumps the
//! counts to (very large) text files that Inchworm then ingests. This crate
//! reproduces that role:
//!
//! * [`counter`] — sharded parallel counting over a read set;
//! * [`dump`] — the text dump/load format (k-mer, count per line) standing
//!   in for `jellyfish count | jellyfish dump`;
//! * [`filter`] — minimum-abundance filtering of likely error k-mers plus
//!   the abundance histogram used in reports;
//! * [`dsk`] — DSK-style disk-partitioned counting with bounded memory
//!   (the low-memory alternative the paper cites and targets as future
//!   work).

pub mod counter;
pub mod dsk;
pub mod dump;
pub mod filter;

pub use counter::{count_kmers, CounterConfig, KmerCounts};
pub use dsk::{count_kmers_dsk, DskConfig, DskOutcome};
pub use dump::{dump_counts, load_counts};
pub use filter::{abundance_histogram, filter_min_count};

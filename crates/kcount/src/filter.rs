//! Error-k-mer filtering and abundance histograms.
//!
//! Inchworm "constructs a k-mer dictionary from all sequence reads removing
//! likely error-containing k-mers"; in practice that is a minimum-abundance
//! cutoff applied to the Jellyfish output.

use crate::counter::KmerCounts;

/// Remove k-mers below `min_count`; returns the number removed.
pub fn filter_min_count(counts: &mut KmerCounts, min_count: u32) -> usize {
    counts.retain_min(min_count)
}

/// Histogram of abundances: `hist[c]` = number of distinct k-mers with
/// count `c`, for `c` in `1..=max_bin` (counts above `max_bin` land in the
/// last bin). Index 0 is always 0.
pub fn abundance_histogram(counts: &KmerCounts, max_bin: usize) -> Vec<u64> {
    let max_bin = max_bin.max(1);
    let mut hist = vec![0u64; max_bin + 1];
    for (_, c) in counts.iter() {
        let bin = (c as usize).min(max_bin);
        hist[bin] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{count_kmers, CounterConfig};
    use seqio::kmer::Kmer;

    fn sample() -> KmerCounts {
        // AAAA x3 (from AAAAAA) plus singletons.
        count_kmers(
            &[b"AAAAAA".as_slice(), b"CCGTT".as_slice()],
            CounterConfig {
                canonical: false,
                ..CounterConfig::new(4)
            },
        )
    }

    #[test]
    fn filter_removes_singletons() {
        let mut counts = sample();
        let removed = filter_min_count(&mut counts, 2);
        assert_eq!(removed, 2); // CCGT, CGTT
        assert_eq!(counts.get(Kmer::from_bases(b"AAAA").unwrap()), 3);
        assert_eq!(counts.len(), 1);
    }

    #[test]
    fn filter_with_min_one_is_noop() {
        let mut counts = sample();
        assert_eq!(filter_min_count(&mut counts, 1), 0);
    }

    #[test]
    fn histogram_bins() {
        let counts = sample();
        let hist = abundance_histogram(&counts, 5);
        assert_eq!(hist[0], 0);
        assert_eq!(hist[1], 2); // two singleton 4-mers
        assert_eq!(hist[3], 1); // AAAA
    }

    #[test]
    fn histogram_clamps_to_last_bin() {
        let counts = sample();
        let hist = abundance_histogram(&counts, 2);
        assert_eq!(hist[2], 1); // AAAA's count 3 clamped into bin 2
        assert_eq!(hist.len(), 3);
    }
}

//! Text dump/load of k-mer counts.
//!
//! Stands in for `jellyfish dump -c`: one `KMER COUNT` pair per line. The
//! paper notes this intermediate is voluminous (>100 GB for the 15 GB
//! sugarbeet input) — the disk round-trip is part of the pipeline's
//! behaviour, so we keep it as a real file format rather than an in-memory
//! shortcut.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use seqio::error::{Error, Result};
use seqio::kmer::Kmer;

use crate::counter::KmerCounts;

/// Write counts as `KMER COUNT` lines (unspecified order).
pub fn write_counts<W: Write>(writer: W, counts: &KmerCounts) -> Result<()> {
    let mut w = BufWriter::new(writer);
    for (km, c) in counts.iter() {
        writeln!(w, "{km} {c}")?;
    }
    w.flush()?;
    Ok(())
}

/// Dump counts to a file path.
pub fn dump_counts(path: impl AsRef<Path>, counts: &KmerCounts) -> Result<()> {
    write_counts(std::fs::File::create(path)?, counts)
}

/// Parse a dump produced by [`write_counts`]. `k` must match the dump's
/// word size (validated against the first line).
pub fn read_counts<R: Read>(reader: R, k: usize) -> Result<KmerCounts> {
    let mut counts = KmerCounts::empty(k);
    let mut r = BufReader::new(reader);
    let mut line = String::new();
    let mut line_no = 0usize;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (kmer_s, count_s) = trimmed
            .split_once(' ')
            .ok_or_else(|| Error::Format(format!("dump line {line_no}: expected 'KMER COUNT'")))?;
        if kmer_s.len() != k {
            return Err(Error::Format(format!(
                "dump line {line_no}: k-mer length {} != expected k={k}",
                kmer_s.len()
            )));
        }
        let km = Kmer::from_bases(kmer_s.as_bytes())?;
        let c: u32 = count_s
            .parse()
            .map_err(|_| Error::Format(format!("dump line {line_no}: bad count {count_s:?}")))?;
        counts.add(km, c);
    }
    Ok(counts)
}

/// Load counts from a file path.
pub fn load_counts(path: impl AsRef<Path>, k: usize) -> Result<KmerCounts> {
    read_counts(std::fs::File::open(path)?, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{count_kmers, CounterConfig};

    #[test]
    fn round_trip_in_memory() {
        let counts = count_kmers(&[b"ACGTACGTGGCC".as_slice()], CounterConfig::new(5));
        let mut buf = Vec::new();
        write_counts(&mut buf, &counts).unwrap();
        let back = read_counts(&buf[..], 5).unwrap();
        assert_eq!(back.len(), counts.len());
        for (km, c) in counts.iter() {
            assert_eq!(back.get(km), c);
        }
    }

    #[test]
    fn round_trip_via_file() {
        let counts = count_kmers(&[b"GATTACAGATTACA".as_slice()], CounterConfig::new(4));
        let path = std::env::temp_dir().join("kcount_dump_test.txt");
        dump_counts(&path, &counts).unwrap();
        let back = load_counts(&path, 4).unwrap();
        assert_eq!(back.total(), counts.total());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_k() {
        assert!(read_counts(&b"ACGT 3\n"[..], 5).is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_counts(&b"ACGT\n"[..], 4).is_err());
        assert!(read_counts(&b"ACGT x\n"[..], 4).is_err());
        assert!(read_counts(&b"ACGX 1\n"[..], 4).is_err());
    }

    #[test]
    fn tolerates_blank_lines() {
        let counts = read_counts(&b"\nACGT 2\n\n"[..], 4).unwrap();
        assert_eq!(counts.get(Kmer::from_bases(b"ACGT").unwrap()), 2);
    }

    #[test]
    fn empty_dump_loads_empty() {
        let counts = read_counts(&b""[..], 4).unwrap();
        assert!(counts.is_empty());
    }
}

//! DSK-style disk-partitioned k-mer counting.
//!
//! The paper (§II-A) points at DSK \[20\] — "k-mer counting with very low
//! memory usage" — as the alternative to Jellyfish's large in-memory
//! table, and lists memory-footprint reduction as future work (§VI). This
//! module implements the DSK idea: k-mers are hashed into `P` partition
//! files on disk in a streaming pass, then each partition is counted
//! independently, so peak memory is bounded by the largest partition
//! (≈ `1/P` of the spectrum) instead of the whole table.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use seqio::error::{Error, Result};
use seqio::packed::PackedSeq;

use crate::counter::{CounterConfig, KmerCounts};

/// Configuration of a disk-partitioned counting pass.
#[derive(Debug, Clone)]
pub struct DskConfig {
    /// Base counting parameters (k, canonical).
    pub counter: CounterConfig,
    /// Number of disk partitions.
    pub partitions: usize,
    /// Directory for the temporary partition files.
    pub work_dir: PathBuf,
}

impl DskConfig {
    /// Defaults: 16 partitions in the system temp directory.
    pub fn new(k: usize) -> Self {
        DskConfig {
            counter: CounterConfig::new(k),
            partitions: 16,
            work_dir: std::env::temp_dir(),
        }
    }
}

/// Outcome of a DSK pass: the (complete) counts plus the observed peak
/// partition size, the quantity that bounds memory.
#[derive(Debug)]
pub struct DskOutcome {
    /// The merged counts — identical to an in-memory pass.
    pub counts: KmerCounts,
    /// Distinct k-mers in the largest partition (the memory bound).
    pub max_partition_distinct: usize,
    /// Total k-mer instances written to disk (the I/O volume).
    pub spilled_kmers: u64,
}

#[inline]
fn partition_of(packed: u64, partitions: usize) -> usize {
    ((packed.wrapping_mul(0xD6E8_FEB8_6659_FD93)) >> 33) as usize % partitions
}

/// Count k-mers with bounded memory via disk partitioning.
///
/// Pass 1 streams every read and appends each (canonical) packed k-mer to
/// its partition file; pass 2 loads one partition at a time, counts it,
/// and folds it into the result. The fold makes the *returned* table
/// full-size (convenient for comparison); a production caller would
/// consume partitions one at a time and never hold the union — the
/// `max_partition_distinct` field reports the memory bound that caller
/// would see.
pub fn count_kmers_dsk<S: AsRef<[u8]>>(reads: &[S], cfg: &DskConfig) -> Result<DskOutcome> {
    let partitions = cfg.partitions.max(1);
    let k = cfg.counter.k;
    std::fs::create_dir_all(&cfg.work_dir)?;
    let unique = std::process::id() as u64 ^ (reads.len() as u64) << 20;
    let paths: Vec<PathBuf> = (0..partitions)
        .map(|p| cfg.work_dir.join(format!("dsk_{unique:x}_{p}.part")))
        .collect();

    // Pass 1: spill packed k-mers to their partitions.
    let mut spilled = 0u64;
    {
        let mut writers: Vec<BufWriter<File>> = paths
            .iter()
            .map(|p| Ok(BufWriter::new(File::create(p)?)))
            .collect::<Result<_>>()?;
        for read in reads {
            // Encode once, then roll: the spill pass touches each base a
            // single time even in canonical mode.
            let packed = PackedSeq::from_bytes(read.as_ref());
            if cfg.counter.canonical {
                spill(
                    packed.canonical_kmers(k)?,
                    &mut writers,
                    partitions,
                    &mut spilled,
                )?;
            } else {
                spill(packed.kmers(k)?, &mut writers, partitions, &mut spilled)?;
            }
        }
        for w in &mut writers {
            w.flush()?;
        }
    }

    // Pass 2: count one partition at a time.
    let mut merged = KmerCounts::empty(k);
    let mut max_partition_distinct = 0usize;
    for path in &paths {
        let part = count_partition(path, k)?;
        max_partition_distinct = max_partition_distinct.max(part.len());
        for (km, c) in part.iter() {
            merged.add(km, c);
        }
        std::fs::remove_file(path).ok();
    }
    Ok(DskOutcome {
        counts: merged,
        max_partition_distinct,
        spilled_kmers: spilled,
    })
}

fn spill<I: Iterator<Item = (usize, seqio::kmer::Kmer)>>(
    iter: I,
    writers: &mut [BufWriter<File>],
    partitions: usize,
    spilled: &mut u64,
) -> Result<()> {
    for (_, km) in iter {
        let packed = km.packed();
        writers[partition_of(packed, partitions)].write_all(&packed.to_le_bytes())?;
        *spilled += 1;
    }
    Ok(())
}

fn count_partition(path: &Path, k: usize) -> Result<KmerCounts> {
    let mut counts = KmerCounts::empty(k);
    let mut r = BufReader::new(File::open(path)?);
    let mut buf = [0u8; 8];
    loop {
        match r.read_exact(&mut buf) {
            Ok(()) => {
                let packed = u64::from_le_bytes(buf);
                let km = seqio::kmer::Kmer::from_packed(packed, k)
                    .map_err(|_| Error::Format("corrupt partition file".into()))?;
                counts.add(km, 1);
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::count_kmers;

    fn reads() -> Vec<Vec<u8>> {
        (0..40)
            .map(|i| {
                let mut s = b"ACGTACGTGGCCATATTGCAGGCT".to_vec();
                let n = s.len();
                s.rotate_left(i % n);
                s
            })
            .collect()
    }

    fn cfg(k: usize, partitions: usize) -> DskConfig {
        DskConfig {
            counter: CounterConfig::new(k),
            partitions,
            work_dir: std::env::temp_dir().join("dsk_test"),
        }
    }

    #[test]
    fn matches_in_memory_counting() {
        let reads = reads();
        let reference = count_kmers(&reads, CounterConfig::new(8));
        let dsk = count_kmers_dsk(&reads, &cfg(8, 8)).unwrap();
        assert_eq!(dsk.counts.len(), reference.len());
        for (km, c) in reference.iter() {
            assert_eq!(dsk.counts.get(km), c, "k-mer {km}");
        }
        assert_eq!(dsk.counts.total(), reference.total());
    }

    #[test]
    fn partitions_bound_memory() {
        let reads = reads();
        let one = count_kmers_dsk(&reads, &cfg(8, 1)).unwrap();
        let sixteen = count_kmers_dsk(&reads, &cfg(8, 16)).unwrap();
        assert_eq!(one.max_partition_distinct, one.counts.len());
        assert!(
            sixteen.max_partition_distinct < one.max_partition_distinct,
            "16 partitions must shrink the peak: {} vs {}",
            sixteen.max_partition_distinct,
            one.max_partition_distinct
        );
        // A fair hash keeps the largest partition within a few x of ideal.
        let ideal = one.counts.len().div_ceil(16);
        assert!(sixteen.max_partition_distinct <= ideal * 4);
    }

    #[test]
    fn spill_volume_equals_total_instances() {
        let reads = reads();
        let dsk = count_kmers_dsk(&reads, &cfg(8, 4)).unwrap();
        assert_eq!(dsk.spilled_kmers, dsk.counts.total());
    }

    #[test]
    fn empty_input() {
        let reads: Vec<Vec<u8>> = vec![];
        let dsk = count_kmers_dsk(&reads, &cfg(8, 4)).unwrap();
        assert!(dsk.counts.is_empty());
        assert_eq!(dsk.max_partition_distinct, 0);
    }

    #[test]
    fn non_canonical_mode() {
        let reads = reads();
        let mut c = cfg(6, 4);
        c.counter.canonical = false;
        let reference = count_kmers(
            &reads,
            CounterConfig {
                canonical: false,
                ..CounterConfig::new(6)
            },
        );
        let dsk = count_kmers_dsk(&reads, &c).unwrap();
        assert_eq!(dsk.counts.len(), reference.len());
    }
}

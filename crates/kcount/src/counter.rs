//! Sharded parallel k-mer counting.
//!
//! Jellyfish's core trick is a hash table specialised for packed k-mers;
//! we reproduce the behaviour with [`kmertable`]'s open-addressing tables:
//! a sharded concurrent table (one lock per shard, keys spread by the high
//! bits of a multiplicative hash) counted over reads in parallel, merged
//! into an owned, queryable [`PackedKmerTable`]. Compared to the original
//! std-HashMap implementation this removes SipHash and per-entry boxing
//! from the hottest loop of the whole pipeline.

use kmertable::{PackedKmerTable, ShardedKmerTable};
use seqio::kmer::Kmer;
use seqio::packed::PackedSeq;

/// Configuration for a counting pass.
#[derive(Debug, Clone, Copy)]
pub struct CounterConfig {
    /// Word size (1..=32). Trinity uses 25.
    pub k: usize,
    /// Count canonical k-mers (min of forward/revcomp)? Trinity's
    /// double-stranded mode. Defaults to true.
    pub canonical: bool,
    /// Worker threads for the counting pass.
    pub threads: usize,
    /// Number of shards (power of two recommended).
    pub shards: usize,
}

impl CounterConfig {
    /// Sensible defaults for word size `k`.
    pub fn new(k: usize) -> Self {
        CounterConfig {
            k,
            canonical: true,
            threads: 1,
            shards: 64,
        }
    }
}

/// An owned k-mer count table over an open-addressing packed-k-mer table.
#[derive(Debug, Clone)]
pub struct KmerCounts {
    k: usize,
    counts: PackedKmerTable,
}

impl KmerCounts {
    /// An empty table for word size `k`.
    pub fn empty(k: usize) -> Self {
        KmerCounts {
            k,
            counts: PackedKmerTable::new(),
        }
    }

    pub(crate) fn from_table(k: usize, counts: PackedKmerTable) -> Self {
        KmerCounts { k, counts }
    }

    /// Word size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct k-mers.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if no k-mers were counted.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Count of a k-mer (0 if absent). The query is *not* canonicalized;
    /// canonicalize first if the table was built canonically.
    pub fn get(&self, km: Kmer) -> u32 {
        debug_assert_eq!(km.k(), self.k);
        self.counts.get(km.packed()).unwrap_or(0)
    }

    /// Count of a packed k-mer word (0 if absent) — hot-path form for
    /// rolling iterators that never materialize a [`Kmer`]. The query is
    /// *not* canonicalized.
    #[inline]
    pub fn get_packed(&self, packed: u64) -> u32 {
        self.counts.get(packed).unwrap_or(0)
    }

    /// Total k-mer instances counted (sum of counts).
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|(_, c)| c as u64).sum()
    }

    /// Iterate `(kmer, count)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Kmer, u32)> + '_ {
        let k = self.k;
        self.counts
            .iter()
            .map(move |(p, c)| (Kmer::from_packed(p, k).expect("stored kmer valid"), c))
    }

    /// Iterate `(packed kmer, count)` without decoding (hot-path form).
    pub fn iter_packed(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.counts.iter()
    }

    /// Drain into a vector sorted by decreasing count (ties: k-mer order) —
    /// the order Inchworm consumes the dictionary in. The comparator is a
    /// total order ((count, kmer) pairs are distinct per entry), so the
    /// unstable sort is deterministic and allocation-free.
    pub fn into_sorted_by_abundance(self) -> Vec<(Kmer, u32)> {
        let k = self.k;
        let mut v: Vec<(Kmer, u32)> = self
            .counts
            .iter()
            .map(|(p, c)| (Kmer::from_packed(p, k).expect("stored kmer valid"), c))
            .collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Remove k-mers with count below `min`, returning how many were removed.
    pub fn retain_min(&mut self, min: u32) -> usize {
        let before = self.counts.len();
        self.counts.retain(|_, c| c >= min);
        before - self.counts.len()
    }

    /// Insert or add a count directly (used by the dump loader).
    pub fn add(&mut self, km: Kmer, count: u32) {
        debug_assert_eq!(km.k(), self.k);
        self.counts.add(km.packed(), count);
    }

    /// Record the underlying table's health (entries, capacity, load
    /// factor, probe-length histogram) plus `{prefix}.total_count` into
    /// `registry`. See [`PackedKmerTable::record_metrics`]. Everything but
    /// the probe-length histogram is a snapshot gauge — `total_count`
    /// describes the table's current state, so re-recording (per-batch
    /// health checks) overwrites instead of double-counting.
    pub fn record_metrics(&self, registry: &obs::MetricsRegistry, prefix: &str) {
        self.counts.record_metrics(registry, prefix);
        registry
            .gauge(format!("{prefix}.total_count"))
            .set(self.total() as f64);
    }
}

/// Count all k-mers of pre-encoded reads per `cfg` — the pipeline's hot
/// path. Runs the counting loop over the configured worker threads; each
/// worker stages counts in a thread-local [`PackedKmerTable`] and flushes
/// into the sharded table, which groups the flush per shard so every lock
/// is taken once per read. Canonical windows are rolled incrementally
/// (O(1)/base), never reconstructed per window.
pub fn count_kmers_packed(reads: &[PackedSeq], cfg: CounterConfig) -> KmerCounts {
    let shared = ShardedKmerTable::new(cfg.shards.max(1));

    omp::parallel_map(reads, cfg.threads, |read| {
        // Small thread-local staging buffer cuts lock traffic.
        let mut local = PackedKmerTable::new();
        if cfg.canonical {
            let iter = match read.canonical_kmers(cfg.k) {
                Ok(it) => it,
                Err(_) => return,
            };
            for (_, km) in iter {
                local.add(km.packed(), 1);
            }
        } else {
            let iter = match read.kmers(cfg.k) {
                Ok(it) => it,
                Err(_) => return,
            };
            for (_, km) in iter {
                local.add(km.packed(), 1);
            }
        }
        shared.absorb(&local);
    });

    KmerCounts::from_table(cfg.k, shared.into_merged())
}

/// Count all k-mers of byte-sequence `reads` per `cfg`.
///
/// Convenience wrapper over [`count_kmers_packed`]: each read is encoded to
/// a [`PackedSeq`] once inside the worker, then counted via the rolling
/// iterators. Callers with reads already encoded (the pipeline) should pass
/// them to [`count_kmers_packed`] directly.
pub fn count_kmers<S: AsRef<[u8]> + Sync>(reads: &[S], cfg: CounterConfig) -> KmerCounts {
    let shared = ShardedKmerTable::new(cfg.shards.max(1));

    omp::parallel_map(reads, cfg.threads, |read| {
        let packed = PackedSeq::from_bytes(read.as_ref());
        let mut local = PackedKmerTable::new();
        if cfg.canonical {
            let iter = match packed.canonical_kmers(cfg.k) {
                Ok(it) => it,
                Err(_) => return,
            };
            for (_, km) in iter {
                local.add(km.packed(), 1);
            }
        } else {
            let iter = match packed.kmers(cfg.k) {
                Ok(it) => it,
                Err(_) => return,
            };
            for (_, km) in iter {
                local.add(km.packed(), 1);
            }
        }
        shared.absorb(&local);
    });

    KmerCounts::from_table(cfg.k, shared.into_merged())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(k: usize, canonical: bool) -> CounterConfig {
        CounterConfig {
            k,
            canonical,
            threads: 2,
            shards: 8,
        }
    }

    #[test]
    fn counts_simple_sequence() {
        let counts = count_kmers(&[b"ACGTACGT".as_slice()], cfg(4, false));
        // Windows: ACGT CGTA GTAC TACG ACGT -> ACGT twice.
        assert_eq!(counts.get(Kmer::from_bases(b"ACGT").unwrap()), 2);
        assert_eq!(counts.get(Kmer::from_bases(b"CGTA").unwrap()), 1);
        assert_eq!(counts.get(Kmer::from_bases(b"AAAA").unwrap()), 0);
        assert_eq!(counts.total(), 5);
        assert_eq!(counts.len(), 4);
    }

    #[test]
    fn canonical_merges_strands() {
        // AAAA (revcomp TTTT): counting TTTT canonically increments AAAA.
        let counts = count_kmers(&[b"TTTT".as_slice(), b"AAAA".as_slice()], cfg(4, true));
        assert_eq!(counts.get(Kmer::from_bases(b"AAAA").unwrap()), 2);
        assert_eq!(counts.len(), 1);
    }

    #[test]
    fn multiple_reads_accumulate() {
        let reads = vec![b"ACGT".to_vec(); 10];
        let counts = count_kmers(&reads, cfg(4, false));
        assert_eq!(counts.get(Kmer::from_bases(b"ACGT").unwrap()), 10);
    }

    #[test]
    fn n_bases_skipped() {
        let counts = count_kmers(&[b"ACGNNACG".as_slice()], cfg(3, false));
        assert_eq!(counts.get(Kmer::from_bases(b"ACG").unwrap()), 2);
        assert_eq!(counts.len(), 1);
    }

    #[test]
    fn parallel_matches_serial() {
        let reads: Vec<Vec<u8>> = (0..200)
            .map(|i| {
                let mut s = b"ACGTACGTGGCCATAT".to_vec();
                let n = s.len();
                s.rotate_left(i % n);
                s
            })
            .collect();
        let serial = count_kmers(
            &reads,
            CounterConfig {
                threads: 1,
                ..cfg(6, true)
            },
        );
        let parallel = count_kmers(
            &reads,
            CounterConfig {
                threads: 8,
                ..cfg(6, true)
            },
        );
        assert_eq!(serial.len(), parallel.len());
        for (km, c) in serial.iter() {
            assert_eq!(parallel.get(km), c);
        }
    }

    #[test]
    fn sorted_by_abundance() {
        let counts = count_kmers(&[b"AAAAACGT".as_slice()], cfg(4, false));
        let sorted = counts.into_sorted_by_abundance();
        for w in sorted.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(sorted[0].0.bases(), b"AAAA");
    }

    #[test]
    fn packed_counting_matches_byte_counting() {
        let reads: Vec<Vec<u8>> = vec![
            b"ACGTACGTGGCCATAT".to_vec(),
            b"TTTTNNACGTACGT".to_vec(),
            b"acgtACGTnACGT".to_vec(),
            Vec::new(),
        ];
        for canonical in [true, false] {
            let from_bytes = count_kmers(&reads, cfg(5, canonical));
            let packed: Vec<PackedSeq> = reads.iter().map(|r| PackedSeq::from_bytes(r)).collect();
            let from_packed = count_kmers_packed(&packed, cfg(5, canonical));
            assert_eq!(from_bytes.len(), from_packed.len());
            for (km, c) in from_bytes.iter() {
                assert_eq!(from_packed.get(km), c, "canonical={canonical} {km:?}");
            }
        }
    }

    #[test]
    fn get_packed_matches_get() {
        let counts = count_kmers(&[b"ACGTACGT".as_slice()], cfg(4, true));
        for (km, c) in counts.iter() {
            assert_eq!(counts.get_packed(km.packed()), c);
        }
        assert_eq!(counts.get_packed(u64::MAX), 0);
    }

    #[test]
    fn sorted_by_abundance_order_is_pinned() {
        // AAAA x3, then singletons; ties break by ascending k-mer order.
        let counts = count_kmers(&[b"AAAAAACGT".as_slice()], cfg(4, false));
        let sorted = counts.into_sorted_by_abundance();
        let rendered: Vec<(Vec<u8>, u32)> = sorted.iter().map(|(km, c)| (km.bases(), *c)).collect();
        assert_eq!(
            rendered,
            vec![
                (b"AAAA".to_vec(), 3),
                (b"AAAC".to_vec(), 1),
                (b"AACG".to_vec(), 1),
                (b"ACGT".to_vec(), 1),
            ]
        );
    }

    #[test]
    fn retain_min_filters() {
        let mut counts = count_kmers(&[b"AAAAAACGT".as_slice()], cfg(4, false));
        let distinct_before = counts.len();
        let removed = counts.retain_min(2);
        assert!(removed > 0);
        assert_eq!(counts.len(), distinct_before - removed);
        assert!(counts.iter().all(|(_, c)| c >= 2));
    }

    #[test]
    fn empty_input() {
        let reads: Vec<Vec<u8>> = vec![];
        let counts = count_kmers(&reads, cfg(5, true));
        assert!(counts.is_empty());
        assert_eq!(counts.total(), 0);
    }

    #[test]
    fn metrics_reflect_counts() {
        let counts = count_kmers(&[b"ACGTACGT".as_slice()], cfg(4, false));
        let reg = obs::MetricsRegistry::new();
        counts.record_metrics(&reg, "jellyfish");
        // Per-batch re-recording must overwrite, not double-count.
        counts.record_metrics(&reg, "jellyfish");
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("jellyfish.entries"), Some(4.0));
        assert_eq!(snap.gauge("jellyfish.total_count"), Some(5.0));
        assert!(snap.gauge("jellyfish.load_factor").unwrap() > 0.0);
    }

    #[test]
    fn add_accumulates() {
        let mut counts = KmerCounts::empty(4);
        let km = Kmer::from_bases(b"ACGT").unwrap();
        counts.add(km, 3);
        counts.add(km, 2);
        assert_eq!(counts.get(km), 5);
    }
}

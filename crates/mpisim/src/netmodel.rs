//! α–β (latency–bandwidth) network cost model.
//!
//! Every communication primitive charges `α · hops + β · bytes` virtual
//! seconds. Collectives over `P` ranks pay `⌈log₂ P⌉` latency hops, matching
//! the tree/recursive-doubling algorithms of real MPI implementations
//! (OpenMPI 1.6 in the paper). The default parameters approximate the QDR
//! InfiniBand fabric of the "Blue Wonder" iDataPlex the paper used.

/// Latency–bandwidth model for the simulated interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// Per-hop latency in seconds.
    pub alpha: f64,
    /// Seconds per byte (inverse bandwidth).
    pub beta: f64,
}

impl NetModel {
    /// A free, instantaneous network (useful for semantics-only tests).
    pub fn ideal() -> Self {
        NetModel {
            alpha: 0.0,
            beta: 0.0,
        }
    }

    /// QDR InfiniBand-like fabric: ~1.5 µs latency, ~3.2 GB/s effective
    /// point-to-point bandwidth — the class of interconnect on the paper's
    /// iDataPlex cluster.
    pub fn idataplex() -> Self {
        NetModel {
            alpha: 1.5e-6,
            beta: 1.0 / 3.2e9,
        }
    }

    /// Gigabit-Ethernet-like fabric (slower; used in ablation benches).
    pub fn gigabit() -> Self {
        NetModel {
            alpha: 50e-6,
            beta: 1.0 / 110e6,
        }
    }

    /// Cost of one point-to-point message of `bytes`.
    pub fn p2p(&self, bytes: usize) -> f64 {
        self.alpha + self.beta * bytes as f64
    }

    /// Latency hops of a `P`-rank collective: `⌈log₂ P⌉` (0 for P ≤ 1).
    pub fn hops(ranks: usize) -> u32 {
        if ranks <= 1 {
            0
        } else {
            usize::BITS - (ranks - 1).leading_zeros()
        }
    }

    /// Cost of a barrier over `ranks` ranks.
    pub fn barrier(&self, ranks: usize) -> f64 {
        self.alpha * Self::hops(ranks) as f64
    }

    /// Cost of an allgatherv where `total_bytes` is the sum of all ranks'
    /// contributions: every rank ends up receiving `total_bytes` (its own
    /// contribution is free, a second-order term we fold into β).
    pub fn allgatherv(&self, ranks: usize, total_bytes: usize) -> f64 {
        self.alpha * Self::hops(ranks) as f64 + self.beta * total_bytes as f64
    }

    /// Cost of a gatherv/scatterv/broadcast moving `total_bytes` through a
    /// `⌈log₂ P⌉`-deep tree.
    pub fn tree_move(&self, ranks: usize, total_bytes: usize) -> f64 {
        self.alpha * Self::hops(ranks) as f64 + self.beta * total_bytes as f64
    }

    /// Detection timeout for a lost message: retransmission timers sit far
    /// above the per-hop latency (we use 1000·α), floored at 1 ms so that
    /// even an idealized zero-latency network pays a real price for a drop
    /// — lost messages are never free.
    pub fn rto(&self) -> f64 {
        (self.alpha * 1000.0).max(1e-3)
    }

    /// Virtual-time cost of the `attempt`-th (1-based) retransmission of a
    /// `bytes`-sized message: the detection timeout with exponential
    /// backoff (doubling per attempt, capped at 2¹⁶× to stay finite) plus
    /// the wire cost of resending the payload.
    pub fn retry_cost(&self, attempt: u32, bytes: usize) -> f64 {
        let backoff = (1u64 << attempt.saturating_sub(1).min(16)) as f64;
        self.rto() * backoff + self.p2p(bytes)
    }
}

impl Default for NetModel {
    fn default() -> Self {
        NetModel::idataplex()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_log2_ceil() {
        assert_eq!(NetModel::hops(0), 0);
        assert_eq!(NetModel::hops(1), 0);
        assert_eq!(NetModel::hops(2), 1);
        assert_eq!(NetModel::hops(3), 2);
        assert_eq!(NetModel::hops(4), 2);
        assert_eq!(NetModel::hops(5), 3);
        assert_eq!(NetModel::hops(192), 8);
        assert_eq!(NetModel::hops(256), 8);
        assert_eq!(NetModel::hops(257), 9);
    }

    #[test]
    fn ideal_is_free() {
        let m = NetModel::ideal();
        assert_eq!(m.p2p(1 << 20), 0.0);
        assert_eq!(m.allgatherv(64, 1 << 30), 0.0);
        assert_eq!(m.barrier(64), 0.0);
    }

    #[test]
    fn p2p_scales_with_bytes() {
        let m = NetModel::idataplex();
        assert!(m.p2p(2_000_000) > m.p2p(1_000_000));
        assert!(m.p2p(0) == m.alpha);
    }

    #[test]
    fn collective_scales_with_ranks_and_bytes() {
        let m = NetModel::idataplex();
        assert!(m.allgatherv(128, 1000) > m.allgatherv(2, 1000));
        assert!(m.allgatherv(8, 1 << 20) > m.allgatherv(8, 1 << 10));
    }

    #[test]
    fn gigabit_slower_than_ib() {
        let g = NetModel::gigabit();
        let ib = NetModel::idataplex();
        assert!(g.p2p(1 << 20) > ib.p2p(1 << 20));
    }
}

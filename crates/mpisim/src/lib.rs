//! In-process MPI substrate.
//!
//! The paper's hybrid Chrysalis runs one MPI process per node with OpenMP
//! threads inside; it uses point-to-point sends, `MPI_Barrier` and
//! `MPI_Allgatherv` (strings after GraphFromFasta loop 1, packed integer
//! arrays after loop 2). Rust MPI bindings are immature and the benchmark
//! host is a single core, so this crate *simulates* a cluster in-process:
//!
//! * every rank is an OS thread executing the real algorithm on its real
//!   partition of the data — results are genuinely computed with the
//!   configured rank count;
//! * communication goes through shared-memory mailboxes and collective
//!   slots with the same semantics as the MPI calls the paper uses;
//! * *time* is virtual: each rank owns a [`clock::VClock`] that the compute
//!   loops charge with measured or replayed durations, and every
//!   communication primitive synchronizes clocks under an α–β network cost
//!   model ([`netmodel::NetModel`]).
//!
//! This is the standard trace-driven way to study distributed schedules and
//! is what makes the paper's strong-scaling figures reproducible here: the
//! curve shapes come from real per-item costs, real partitionings and a
//! principled communication model, not from wall-clock measurements of an
//! oversubscribed laptop.

#![warn(missing_docs)]

pub mod barrier;
pub mod clock;
pub mod cluster;
pub mod comm;
pub mod fault;
pub mod netmodel;
pub mod pack;
pub mod stats;

pub use clock::VClock;
pub use cluster::{
    crashed_ranks, merge_traces, run_cluster, run_cluster_faulty, unwrap_clean, RankOutput,
    RankState,
};
pub use comm::Comm;
pub use fault::FaultPlan;
pub use netmodel::NetModel;
pub use stats::CommStats;

/// Serializes *measured* compute sections across simulated ranks.
///
/// Rank threads share the host's cores; if two ranks measure wall-clock
/// costs concurrently, scheduler contention inflates both measurements and
/// the virtual timings stop being comparable across rank counts. Holding
/// this lock around a measured section gives every rank an uncontended
/// measurement. Ranks only interact at collectives, so serializing compute
/// cannot change any output — it only cleans the clock.
///
/// **Never hold the guard across a communication call**: a rank blocked in
/// a collective while holding the lock would deadlock its peers.
pub fn compute_lock() -> parking_lot::MutexGuard<'static, ()> {
    static COMPUTE_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
    COMPUTE_LOCK.lock()
}

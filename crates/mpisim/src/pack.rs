//! Payload packing helpers.
//!
//! §III-B of the paper: after loop 1 "the vector of the subsequences are
//! packed into a single sequence for MPI communication", and after loop 2
//! "the integer values for pairing indices are packed into single integer
//! array". These helpers are that packing layer: length-prefixed byte
//! strings and little-endian integer arrays.

use bytes::{Buf, BufMut};

/// Pack a slice of byte strings into one length-prefixed buffer.
pub fn pack_byte_strings<S: AsRef<[u8]>>(items: &[S]) -> Vec<u8> {
    let total: usize = items.iter().map(|s| s.as_ref().len() + 4).sum();
    let mut buf = Vec::with_capacity(total + 4);
    buf.put_u32_le(items.len() as u32);
    for s in items {
        let s = s.as_ref();
        buf.put_u32_le(s.len() as u32);
        buf.put_slice(s);
    }
    buf
}

/// Unpack a buffer produced by [`pack_byte_strings`].
///
/// Returns `None` on any framing violation (truncation, overrun).
pub fn unpack_byte_strings(mut buf: &[u8]) -> Option<Vec<Vec<u8>>> {
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 4 {
            return None;
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return None;
        }
        out.push(buf[..len].to_vec());
        buf.advance(len);
    }
    if buf.has_remaining() {
        return None; // trailing garbage
    }
    Some(out)
}

/// Pack a `u32` slice little-endian (the loop-2 pairing-index exchange).
pub fn pack_u32s(items: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(items.len() * 4);
    for &x in items {
        buf.put_u32_le(x);
    }
    buf
}

/// Unpack a buffer produced by [`pack_u32s`]. `None` if not a multiple of 4.
pub fn unpack_u32s(mut buf: &[u8]) -> Option<Vec<u32>> {
    if buf.len() % 4 != 0 {
        return None;
    }
    let mut out = Vec::with_capacity(buf.len() / 4);
    while buf.has_remaining() {
        out.push(buf.get_u32_le());
    }
    Some(out)
}

/// Pack a `u64` slice little-endian.
pub fn pack_u64s(items: &[u64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(items.len() * 8);
    for &x in items {
        buf.put_u64_le(x);
    }
    buf
}

/// Unpack a buffer produced by [`pack_u64s`]. `None` if not a multiple of 8.
pub fn unpack_u64s(mut buf: &[u8]) -> Option<Vec<u64>> {
    if buf.len() % 8 != 0 {
        return None;
    }
    let mut out = Vec::with_capacity(buf.len() / 8);
    while buf.has_remaining() {
        out.push(buf.get_u64_le());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_strings_round_trip() {
        let items: Vec<&[u8]> = vec![b"hello", b"", b"ACGT", b"\x00\xff"];
        let buf = pack_byte_strings(&items);
        let back = unpack_byte_strings(&buf).unwrap();
        assert_eq!(back, items.iter().map(|s| s.to_vec()).collect::<Vec<_>>());
    }

    #[test]
    fn empty_list_round_trip() {
        let items: Vec<Vec<u8>> = vec![];
        let buf = pack_byte_strings(&items);
        assert_eq!(unpack_byte_strings(&buf).unwrap(), items);
    }

    #[test]
    fn rejects_truncation() {
        let buf = pack_byte_strings(&[b"hello".as_slice()]);
        assert!(unpack_byte_strings(&buf[..buf.len() - 1]).is_none());
        assert!(unpack_byte_strings(&buf[..3]).is_none());
        assert!(unpack_byte_strings(&[]).is_none());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut buf = pack_byte_strings(&[b"x".as_slice()]);
        buf.push(0);
        assert!(unpack_byte_strings(&buf).is_none());
    }

    #[test]
    fn u32_round_trip() {
        let items = vec![0u32, 1, u32::MAX, 42];
        assert_eq!(unpack_u32s(&pack_u32s(&items)).unwrap(), items);
        assert!(unpack_u32s(&[1, 2, 3]).is_none());
        assert_eq!(unpack_u32s(&[]).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn u64_round_trip() {
        let items = vec![0u64, u64::MAX, 7];
        assert_eq!(unpack_u64s(&pack_u64s(&items)).unwrap(), items);
        assert!(unpack_u64s(&[0; 7]).is_none());
    }
}

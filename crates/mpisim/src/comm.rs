//! The per-rank communicator: point-to-point messages and collectives with
//! MPI semantics, plus virtual-clock synchronization.

use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::clock::VClock;
use crate::netmodel::NetModel;
use crate::stats::CommStats;

/// A point-to-point message in flight.
#[derive(Debug)]
pub(crate) struct Message {
    pub from: usize,
    pub tag: u32,
    pub send_time: f64,
    pub payload: Vec<u8>,
}

/// State shared by every rank of a cluster.
pub(crate) struct Shared {
    pub size: usize,
    pub barrier: std::sync::Barrier,
    /// One payload slot per rank, used by collectives.
    pub slots: Vec<Mutex<Vec<u8>>>,
    /// Virtual entry time of each rank into the current collective.
    pub times: Vec<Mutex<f64>>,
    /// Mailbox senders, indexed by destination rank.
    pub mail: Vec<Sender<Message>>,
}

/// A rank's handle to the simulated communicator — the analogue of
/// `MPI_COMM_WORLD` plus the rank's virtual clock and counters.
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
    inbox: Receiver<Message>,
    /// Out-of-order messages awaiting a matching `recv`.
    pending: Vec<Message>,
    /// This rank's virtual clock.
    pub clock: VClock,
    /// The interconnect model used for cost accounting.
    pub net: NetModel,
    /// Communication counters.
    pub stats: CommStats,
    /// Span recorder: every collective logs a `cat:"comm"` span on track
    /// `rank` in virtual time, and [`Comm::charge_measured_named`] logs
    /// `cat:"compute"` spans. Drained into
    /// [`crate::cluster::RankOutput::trace`] when the rank finishes.
    pub obs: obs::Tracer,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        shared: Arc<Shared>,
        inbox: Receiver<Message>,
        net: NetModel,
    ) -> Self {
        let tracer = obs::Tracer::new();
        tracer.name_track(rank as u32, format!("rank {rank}"));
        Comm {
            rank,
            shared,
            inbox,
            pending: Vec::new(),
            clock: VClock::new(),
            net,
            stats: CommStats::default(),
            obs: tracer,
        }
    }

    /// This rank's obs track id (`rank` as `u32`).
    #[inline]
    pub fn track(&self) -> u32 {
        self.rank as u32
    }

    /// This rank's id, `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// True on rank 0 (the paper's "master node").
    #[inline]
    pub fn is_root(&self) -> bool {
        self.rank == 0
    }

    /// Charge virtual compute seconds to this rank.
    #[inline]
    pub fn charge(&mut self, seconds: f64) {
        self.clock.charge(seconds);
    }

    /// Run `f`, measure its wall-clock duration, charge it to the clock and
    /// return the result. For serial regions that are measured directly.
    ///
    /// Takes the global [`crate::compute_lock`] so concurrent ranks do not
    /// contend during the measurement; `f` must therefore never perform
    /// communication (it would deadlock peers waiting for the lock).
    pub fn charge_measured<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let guard = crate::compute_lock();
        let t0 = std::time::Instant::now();
        let out = f();
        self.clock.charge(t0.elapsed().as_secs_f64());
        drop(guard);
        out
    }

    /// [`Comm::charge_measured`] plus a named `cat:"compute"` span on this
    /// rank's track covering the charged virtual-time interval.
    pub fn charge_measured_named<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = self.clock.now();
        let out = self.charge_measured(f);
        self.obs
            .record(self.track(), "compute", name, start, self.clock.now());
        out
    }

    // ---- point-to-point -------------------------------------------------

    /// Non-blocking-ish send (buffered, like `MPI_Send` with small messages).
    pub fn send(&mut self, to: usize, tag: u32, payload: Vec<u8>) {
        assert!(to < self.size(), "send to rank {to} out of range");
        let bytes = payload.len();
        let msg = Message {
            from: self.rank,
            tag,
            send_time: self.clock.now(),
            payload,
        };
        self.shared.mail[to]
            .send(msg)
            .expect("destination rank hung up");
        self.stats.p2p_sends += 1;
        self.stats.bytes_sent += bytes as u64;
    }

    /// Blocking receive matching `(from, tag)`. Advances the clock to
    /// `max(own time, send time + α + β·bytes)`.
    pub fn recv(&mut self, from: usize, tag: u32) -> Vec<u8> {
        // Check messages that arrived earlier but didn't match then.
        if let Some(i) = self
            .pending
            .iter()
            .position(|m| m.from == from && m.tag == tag)
        {
            let msg = self.pending.remove(i);
            return self.complete_recv(msg);
        }
        loop {
            let msg = self.inbox.recv().expect("all senders hung up");
            if msg.from == from && msg.tag == tag {
                return self.complete_recv(msg);
            }
            self.pending.push(msg);
        }
    }

    fn complete_recv(&mut self, msg: Message) -> Vec<u8> {
        let cost = self.net.p2p(msg.payload.len());
        self.clock.advance_to(msg.send_time + cost);
        self.stats.p2p_recvs += 1;
        self.stats.bytes_received += msg.payload.len() as u64;
        msg.payload
    }

    // ---- collectives ----------------------------------------------------

    /// Synchronize all ranks (`MPI_Barrier`): clocks advance to the latest
    /// entry time plus the barrier's latency cost.
    pub fn barrier(&mut self) {
        let start = self.clock.now();
        let entry_max = self.exchange_times();
        self.clock
            .advance_to(entry_max + self.net.barrier(self.size()));
        self.stats.collectives += 1;
        self.obs
            .record(self.track(), "comm", "mpi.barrier", start, self.clock.now());
    }

    /// `MPI_Allgatherv` over raw bytes: every rank contributes a buffer and
    /// receives every rank's buffer, indexed by rank.
    pub fn allgatherv(&mut self, data: &[u8]) -> Vec<Vec<u8>> {
        let start = self.clock.now();
        *self.shared.slots[self.rank].lock() = data.to_vec();
        *self.shared.times[self.rank].lock() = self.clock.now();
        self.shared.barrier.wait();
        let parts: Vec<Vec<u8>> = (0..self.size())
            .map(|r| self.shared.slots[r].lock().clone())
            .collect();
        let entry_max = self.read_entry_max();
        self.shared.barrier.wait(); // everyone done reading before reuse
        let total: usize = parts.iter().map(Vec::len).sum();
        self.clock
            .advance_to(entry_max + self.net.allgatherv(self.size(), total));
        self.stats.collectives += 1;
        self.stats.bytes_sent += data.len() as u64;
        self.stats.bytes_received += (total - data.len()) as u64;
        self.obs.record_with(
            self.track(),
            "comm",
            "mpi.allgatherv",
            start,
            self.clock.now(),
            &[
                ("bytes_sent", data.len() as f64),
                ("bytes_total", total as f64),
            ],
        );
        parts
    }

    /// `MPI_Bcast` from `root`: returns the root's buffer on every rank.
    pub fn bcast(&mut self, root: usize, data: &[u8]) -> Vec<u8> {
        assert!(root < self.size());
        let start = self.clock.now();
        if self.rank == root {
            *self.shared.slots[root].lock() = data.to_vec();
        }
        *self.shared.times[self.rank].lock() = self.clock.now();
        self.shared.barrier.wait();
        let out = self.shared.slots[root].lock().clone();
        let entry_max = self.read_entry_max();
        self.shared.barrier.wait();
        self.clock
            .advance_to(entry_max + self.net.tree_move(self.size(), out.len()));
        self.stats.collectives += 1;
        if self.rank == root {
            self.stats.bytes_sent += out.len() as u64;
        } else {
            self.stats.bytes_received += out.len() as u64;
        }
        self.obs.record_with(
            self.track(),
            "comm",
            "mpi.bcast",
            start,
            self.clock.now(),
            &[("bytes", out.len() as f64)],
        );
        out
    }

    /// `MPI_Gatherv` to `root`: root receives every rank's buffer (indexed
    /// by rank); other ranks receive `None`.
    pub fn gatherv(&mut self, root: usize, data: &[u8]) -> Option<Vec<Vec<u8>>> {
        assert!(root < self.size());
        let start = self.clock.now();
        *self.shared.slots[self.rank].lock() = data.to_vec();
        *self.shared.times[self.rank].lock() = self.clock.now();
        self.shared.barrier.wait();
        let out = if self.rank == root {
            Some(
                (0..self.size())
                    .map(|r| self.shared.slots[r].lock().clone())
                    .collect::<Vec<_>>(),
            )
        } else {
            None
        };
        let entry_max = self.read_entry_max();
        self.shared.barrier.wait();
        let total: usize = out
            .as_ref()
            .map(|parts| parts.iter().map(Vec::len).sum())
            .unwrap_or(data.len());
        self.clock
            .advance_to(entry_max + self.net.tree_move(self.size(), total));
        self.stats.collectives += 1;
        self.stats.bytes_sent += data.len() as u64;
        if let Some(parts) = &out {
            let others: usize = parts.iter().map(Vec::len).sum::<usize>() - data.len();
            self.stats.bytes_received += others as u64;
        }
        self.obs.record_with(
            self.track(),
            "comm",
            "mpi.gatherv",
            start,
            self.clock.now(),
            &[("bytes_sent", data.len() as f64)],
        );
        out
    }

    /// `MPI_Allreduce(SUM)` over a `u64`.
    pub fn allreduce_sum_u64(&mut self, value: u64) -> u64 {
        let parts = self.allgatherv(&value.to_le_bytes());
        parts
            .iter()
            .map(|p| u64::from_le_bytes(p.as_slice().try_into().expect("8-byte payload")))
            .sum()
    }

    /// `MPI_Allreduce(MAX)` over an `f64`.
    pub fn allreduce_max_f64(&mut self, value: f64) -> f64 {
        let parts = self.allgatherv(&value.to_le_bytes());
        parts
            .iter()
            .map(|p| f64::from_le_bytes(p.as_slice().try_into().expect("8-byte payload")))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Gather every rank's virtual clock on all ranks (used by reports to
    /// show min/max rank times, i.e. the paper's load-imbalance bars).
    pub fn gather_clocks(&mut self) -> Vec<f64> {
        let now = self.clock.now();
        let parts = self.allgatherv(&now.to_le_bytes());
        parts
            .iter()
            .map(|p| f64::from_le_bytes(p.as_slice().try_into().expect("8-byte payload")))
            .collect()
    }

    /// Simulation-internal broadcast: moves bytes from `root` to every rank
    /// **without charging the network model** (no α–β cost, no byte
    /// counters; clocks only synchronize to the entry max, like a barrier
    /// with zero latency).
    ///
    /// Use this when the *modeled* system computes data locally on every
    /// rank but the *simulation* materializes it once and ships it — e.g.
    /// the dynamic-partitioning driver, where the master executes and
    /// measures all chunks so the dealing protocol can be replayed
    /// deterministically. Never use it for data the modeled system would
    /// actually move over the network.
    pub fn transport_bcast(&mut self, root: usize, data: &[u8]) -> Vec<u8> {
        assert!(root < self.size());
        if self.rank == root {
            *self.shared.slots[root].lock() = data.to_vec();
        }
        *self.shared.times[self.rank].lock() = self.clock.now();
        self.shared.barrier.wait();
        let out = self.shared.slots[root].lock().clone();
        let entry_max = self.read_entry_max();
        self.shared.barrier.wait();
        self.clock.advance_to(entry_max);
        out
    }

    // ---- internals ------------------------------------------------------

    /// Write our entry time, wait, read the max, wait again.
    fn exchange_times(&mut self) -> f64 {
        *self.shared.times[self.rank].lock() = self.clock.now();
        self.shared.barrier.wait();
        let max = self.read_entry_max();
        self.shared.barrier.wait();
        max
    }

    fn read_entry_max(&self) -> f64 {
        (0..self.size())
            .map(|r| *self.shared.times[r].lock())
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

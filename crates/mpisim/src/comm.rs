//! The per-rank communicator: point-to-point messages and collectives with
//! MPI semantics, plus virtual-clock synchronization and deterministic
//! fault injection.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::barrier::SimBarrier;
use crate::clock::VClock;
use crate::fault::{FaultState, PeerAborted, RankCrash};
use crate::netmodel::NetModel;
use crate::stats::CommStats;

/// A point-to-point message in flight.
#[derive(Debug)]
pub(crate) struct Message {
    pub from: usize,
    pub tag: u32,
    pub send_time: f64,
    pub payload: Vec<u8>,
}

/// Partial state a rank salvages while unwinding from a crash or a peer
/// abort, so even failed ranks report clock/stats/trace.
#[derive(Debug)]
pub(crate) struct FailReport {
    pub time: f64,
    pub stats: CommStats,
    pub trace: obs::Trace,
}

/// State shared by every rank of a cluster.
pub(crate) struct Shared {
    pub size: usize,
    /// Abortable collective barrier; its abort flag doubles as the
    /// cluster-wide "a rank has crashed" signal.
    pub barrier: SimBarrier,
    /// One payload slot per rank, used by collectives.
    pub slots: Vec<Mutex<Vec<u8>>>,
    /// Virtual entry time of each rank into the current collective.
    pub times: Vec<Mutex<f64>>,
    /// Mailbox senders, indexed by destination rank.
    pub mail: Vec<Sender<Message>>,
    /// Where an unwinding rank deposits its partial state (indexed by rank).
    pub fail_reports: Vec<Mutex<Option<FailReport>>>,
}

/// A rank's handle to the simulated communicator — the analogue of
/// `MPI_COMM_WORLD` plus the rank's virtual clock and counters.
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
    inbox: Receiver<Message>,
    /// Out-of-order messages awaiting a matching `recv`.
    pending: Vec<Message>,
    /// Deterministic fault schedule, if this run injects faults.
    fault: Option<FaultState>,
    /// This rank's virtual clock.
    pub clock: VClock,
    /// The interconnect model used for cost accounting.
    pub net: NetModel,
    /// Communication counters.
    pub stats: CommStats,
    /// Span recorder: every collective logs a `cat:"comm"` span on track
    /// `rank` in virtual time, [`Comm::charge_measured_named`] logs
    /// `cat:"compute"` spans, and injected faults log `cat:"fault"` spans
    /// (`mpi.delay`, `mpi.retry`, `fault.crash`). Drained into
    /// [`crate::cluster::RankOutput::trace`] when the rank finishes.
    pub obs: obs::Tracer,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        shared: Arc<Shared>,
        inbox: Receiver<Message>,
        net: NetModel,
        fault: Option<FaultState>,
    ) -> Self {
        let tracer = obs::Tracer::new();
        tracer.name_track(rank as u32, format!("rank {rank}"));
        Comm {
            rank,
            shared,
            inbox,
            pending: Vec::new(),
            fault,
            clock: VClock::new(),
            net,
            stats: CommStats::default(),
            obs: tracer,
        }
    }

    /// This rank's obs track id (`rank` as `u32`).
    #[inline]
    pub fn track(&self) -> u32 {
        self.rank as u32
    }

    /// This rank's id, `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// True on rank 0 (the paper's "master node").
    #[inline]
    pub fn is_root(&self) -> bool {
        self.rank == 0
    }

    /// Charge virtual compute seconds to this rank.
    #[inline]
    pub fn charge(&mut self, seconds: f64) {
        self.clock.charge(seconds);
    }

    /// Run `f`, measure its wall-clock duration, charge it to the clock and
    /// return the result. For serial regions that are measured directly.
    ///
    /// Takes the global [`crate::compute_lock`] so concurrent ranks do not
    /// contend during the measurement; `f` must therefore never perform
    /// communication (it would deadlock peers waiting for the lock).
    pub fn charge_measured<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let guard = crate::compute_lock();
        let t0 = std::time::Instant::now();
        let out = f();
        self.clock.charge(t0.elapsed().as_secs_f64());
        drop(guard);
        out
    }

    /// [`Comm::charge_measured`] plus a named `cat:"compute"` span on this
    /// rank's track covering the charged virtual-time interval.
    pub fn charge_measured_named<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = self.clock.now();
        let out = self.charge_measured(f);
        self.obs
            .record(self.track(), "compute", name, start, self.clock.now());
        out
    }

    // ---- fault machinery ------------------------------------------------

    /// Consult the fault plan at one communication operation: crash if this
    /// is the rank's scheduled (unfired) crash point, otherwise charge the
    /// plan's injected delay and drop-retries to the virtual clock and
    /// record them as `cat:"fault"` spans. `bytes` sizes the retransmission
    /// cost of a dropped message.
    fn fault_point(&mut self, bytes: usize) {
        if self.fault.is_none() {
            return;
        }
        let crash_op = {
            let fault = self.fault.as_ref().expect("checked above");
            if fault.crashes_now() {
                fault.claim_crash()
            } else {
                None
            }
        };
        if let Some(op) = crash_op {
            let now = self.clock.now();
            self.obs.record_with(
                self.rank as u32,
                "fault",
                "fault.crash",
                now,
                now,
                &[("op", op as f64)],
            );
            self.shared.barrier.abort();
            self.deposit_fail_report();
            std::panic::panic_any(RankCrash {
                rank: self.rank,
                op,
            });
        }
        let decision = self.fault.as_mut().expect("checked above").next_op();
        if decision.delay > 0.0 {
            let t0 = self.clock.now();
            self.clock.charge(decision.delay);
            self.stats.delays += 1;
            self.obs.record_with(
                self.rank as u32,
                "fault",
                "mpi.delay",
                t0,
                self.clock.now(),
                &[("op", decision.op as f64)],
            );
        }
        for attempt in 1..=decision.retries {
            let t0 = self.clock.now();
            self.clock.charge(self.net.retry_cost(attempt, bytes));
            self.stats.retries += 1;
            self.obs.record_with(
                self.rank as u32,
                "fault",
                "mpi.retry",
                t0,
                self.clock.now(),
                &[
                    ("op", decision.op as f64),
                    ("attempt", attempt as f64),
                    ("bytes", bytes as f64),
                ],
            );
        }
    }

    /// Salvage clock/stats/trace for the cluster driver, then unwind
    /// because a peer crashed.
    fn abort_unwind(&mut self) -> ! {
        self.deposit_fail_report();
        std::panic::panic_any(PeerAborted);
    }

    fn deposit_fail_report(&mut self) {
        *self.shared.fail_reports[self.rank].lock() = Some(FailReport {
            time: self.clock.now(),
            stats: self.stats,
            trace: self.obs.take(),
        });
    }

    /// Enter the collective barrier; unwind (instead of deadlocking) if the
    /// cluster aborted because a rank crashed.
    fn sync(&mut self) {
        if self.shared.barrier.wait().is_err() {
            self.abort_unwind();
        }
    }

    // ---- point-to-point -------------------------------------------------

    /// Non-blocking-ish send (buffered, like `MPI_Send` with small messages).
    pub fn send(&mut self, to: usize, tag: u32, payload: Vec<u8>) {
        assert!(to < self.size(), "send to rank {to} out of range");
        self.fault_point(payload.len());
        let bytes = payload.len();
        let msg = Message {
            from: self.rank,
            tag,
            send_time: self.clock.now(),
            payload,
        };
        if self.shared.mail[to].send(msg).is_err() {
            // The destination's inbox is gone: either the cluster is
            // aborting (unwind with it) or a rank vanished outside any
            // fault plan (a genuine bug).
            if self.shared.barrier.is_aborted() {
                self.abort_unwind();
            }
            panic!("destination rank hung up");
        }
        self.stats.p2p_sends += 1;
        self.stats.bytes_sent += bytes as u64;
    }

    /// Blocking receive matching `(from, tag)`. Advances the clock to
    /// `max(own time, send time + α + β·bytes)`.
    pub fn recv(&mut self, from: usize, tag: u32) -> Vec<u8> {
        // Check messages that arrived earlier but didn't match then.
        if let Some(i) = self
            .pending
            .iter()
            .position(|m| m.from == from && m.tag == tag)
        {
            let msg = self.pending.remove(i);
            return self.complete_recv(msg);
        }
        loop {
            match self.inbox.recv_timeout(Duration::from_millis(5)) {
                Ok(msg) => {
                    if msg.from == from && msg.tag == tag {
                        return self.complete_recv(msg);
                    }
                    self.pending.push(msg);
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    // Waiting on a sender that may have crashed: bail out
                    // once the cluster aborts instead of blocking forever.
                    if self.shared.barrier.is_aborted() {
                        self.abort_unwind();
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    if self.shared.barrier.is_aborted() {
                        self.abort_unwind();
                    }
                    panic!("all senders hung up");
                }
            }
        }
    }

    fn complete_recv(&mut self, msg: Message) -> Vec<u8> {
        self.fault_point(msg.payload.len());
        let cost = self.net.p2p(msg.payload.len());
        self.clock.advance_to(msg.send_time + cost);
        self.stats.p2p_recvs += 1;
        self.stats.bytes_received += msg.payload.len() as u64;
        msg.payload
    }

    // ---- collectives ----------------------------------------------------

    /// Synchronize all ranks (`MPI_Barrier`): clocks advance to the latest
    /// entry time plus the barrier's latency cost.
    pub fn barrier(&mut self) {
        let start = self.clock.now();
        self.fault_point(0);
        let entry_max = self.exchange_times();
        self.clock
            .advance_to(entry_max + self.net.barrier(self.size()));
        self.stats.collectives += 1;
        self.obs
            .record(self.track(), "comm", "mpi.barrier", start, self.clock.now());
    }

    /// `MPI_Allgatherv` over raw bytes: every rank contributes a buffer and
    /// receives every rank's buffer, indexed by rank. An idle rank
    /// contributes an *empty* buffer, never an absent one: the result on
    /// every rank always has exactly `size` positional entries, which is
    /// what lets crash-replay pool partial work by rank index.
    pub fn allgatherv(&mut self, data: &[u8]) -> Vec<Vec<u8>> {
        let start = self.clock.now();
        self.fault_point(data.len());
        *self.shared.slots[self.rank].lock() = data.to_vec();
        *self.shared.times[self.rank].lock() = self.clock.now();
        self.sync();
        let parts: Vec<Vec<u8>> = (0..self.size())
            .map(|r| self.shared.slots[r].lock().clone())
            .collect();
        let entry_max = self.read_entry_max();
        self.sync(); // everyone done reading before reuse
        let total: usize = parts.iter().map(Vec::len).sum();
        self.clock
            .advance_to(entry_max + self.net.allgatherv(self.size(), total));
        self.stats.collectives += 1;
        self.stats.bytes_sent += data.len() as u64;
        self.stats.bytes_received += (total - data.len()) as u64;
        self.obs.record_with(
            self.track(),
            "comm",
            "mpi.allgatherv",
            start,
            self.clock.now(),
            &[
                ("bytes_sent", data.len() as f64),
                ("bytes_total", total as f64),
            ],
        );
        parts
    }

    /// `MPI_Bcast` from `root`: returns the root's buffer on every rank.
    pub fn bcast(&mut self, root: usize, data: &[u8]) -> Vec<u8> {
        assert!(root < self.size());
        let start = self.clock.now();
        self.fault_point(data.len());
        if self.rank == root {
            *self.shared.slots[root].lock() = data.to_vec();
        }
        *self.shared.times[self.rank].lock() = self.clock.now();
        self.sync();
        let out = self.shared.slots[root].lock().clone();
        let entry_max = self.read_entry_max();
        self.sync();
        self.clock
            .advance_to(entry_max + self.net.tree_move(self.size(), out.len()));
        self.stats.collectives += 1;
        if self.rank == root {
            self.stats.bytes_sent += out.len() as u64;
        } else {
            self.stats.bytes_received += out.len() as u64;
        }
        self.obs.record_with(
            self.track(),
            "comm",
            "mpi.bcast",
            start,
            self.clock.now(),
            &[("bytes", out.len() as f64)],
        );
        out
    }

    /// `MPI_Gatherv` to `root`: root receives every rank's buffer (indexed
    /// by rank); other ranks receive `None`.
    pub fn gatherv(&mut self, root: usize, data: &[u8]) -> Option<Vec<Vec<u8>>> {
        assert!(root < self.size());
        let start = self.clock.now();
        self.fault_point(data.len());
        *self.shared.slots[self.rank].lock() = data.to_vec();
        *self.shared.times[self.rank].lock() = self.clock.now();
        self.sync();
        let out = if self.rank == root {
            Some(
                (0..self.size())
                    .map(|r| self.shared.slots[r].lock().clone())
                    .collect::<Vec<_>>(),
            )
        } else {
            None
        };
        let entry_max = self.read_entry_max();
        self.sync();
        let total: usize = out
            .as_ref()
            .map(|parts| parts.iter().map(Vec::len).sum())
            .unwrap_or(data.len());
        self.clock
            .advance_to(entry_max + self.net.tree_move(self.size(), total));
        self.stats.collectives += 1;
        self.stats.bytes_sent += data.len() as u64;
        if let Some(parts) = &out {
            let others: usize = parts.iter().map(Vec::len).sum::<usize>() - data.len();
            self.stats.bytes_received += others as u64;
        }
        self.obs.record_with(
            self.track(),
            "comm",
            "mpi.gatherv",
            start,
            self.clock.now(),
            &[("bytes_sent", data.len() as f64)],
        );
        out
    }

    /// `MPI_Allreduce(SUM)` over a `u64`.
    pub fn allreduce_sum_u64(&mut self, value: u64) -> u64 {
        let parts = self.allgatherv(&value.to_le_bytes());
        parts
            .iter()
            .map(|p| u64::from_le_bytes(p.as_slice().try_into().expect("8-byte payload")))
            .sum()
    }

    /// `MPI_Allreduce(MAX)` over an `f64`.
    pub fn allreduce_max_f64(&mut self, value: f64) -> f64 {
        let parts = self.allgatherv(&value.to_le_bytes());
        parts
            .iter()
            .map(|p| f64::from_le_bytes(p.as_slice().try_into().expect("8-byte payload")))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Gather every rank's virtual clock on all ranks (used by reports to
    /// show min/max rank times, i.e. the paper's load-imbalance bars).
    pub fn gather_clocks(&mut self) -> Vec<f64> {
        let now = self.clock.now();
        let parts = self.allgatherv(&now.to_le_bytes());
        parts
            .iter()
            .map(|p| f64::from_le_bytes(p.as_slice().try_into().expect("8-byte payload")))
            .collect()
    }

    /// Simulation-internal broadcast: moves bytes from `root` to every rank
    /// **without charging the network model** (no α–β cost, no byte
    /// counters; clocks only synchronize to the entry max, like a barrier
    /// with zero latency).
    ///
    /// Use this when the *modeled* system computes data locally on every
    /// rank but the *simulation* materializes it once and ships it — e.g.
    /// the dynamic-partitioning driver, where the master executes and
    /// measures all chunks so the dealing protocol can be replayed
    /// deterministically. Never use it for data the modeled system would
    /// actually move over the network. Being outside the modeled network,
    /// it is also exempt from fault injection (it still unwinds cleanly if
    /// a peer crashed).
    pub fn transport_bcast(&mut self, root: usize, data: &[u8]) -> Vec<u8> {
        assert!(root < self.size());
        if self.rank == root {
            *self.shared.slots[root].lock() = data.to_vec();
        }
        *self.shared.times[self.rank].lock() = self.clock.now();
        self.sync();
        let out = self.shared.slots[root].lock().clone();
        let entry_max = self.read_entry_max();
        self.sync();
        self.clock.advance_to(entry_max);
        out
    }

    // ---- internals ------------------------------------------------------

    /// Write our entry time, wait, read the max, wait again.
    fn exchange_times(&mut self) -> f64 {
        *self.shared.times[self.rank].lock() = self.clock.now();
        self.sync();
        let max = self.read_entry_max();
        self.sync();
        max
    }

    fn read_entry_max(&self) -> f64 {
        (0..self.size())
            .map(|r| *self.shared.times[r].lock())
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

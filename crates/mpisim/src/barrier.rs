//! An abortable, reusable (sense-reversing) thread barrier.
//!
//! `std::sync::Barrier` blocks forever if a participant never arrives —
//! exactly what happens when a simulated rank crashes while its peers sit
//! in a collective. [`SimBarrier`] adds an [`SimBarrier::abort`] switch:
//! aborting wakes every current waiter and makes every future `wait`
//! return [`Aborted`] immediately, so surviving ranks can unwind instead
//! of deadlocking.

use std::sync::{Condvar, Mutex};

/// Error returned by [`SimBarrier::wait`] once the barrier is aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aborted;

#[derive(Debug)]
struct State {
    /// Waiters in the current generation.
    count: usize,
    /// Incremented each time a generation completes; waiters key on it.
    generation: u64,
    aborted: bool,
}

/// A reusable barrier for `n` threads that can be aborted.
#[derive(Debug)]
pub struct SimBarrier {
    n: usize,
    state: Mutex<State>,
    cvar: Condvar,
}

impl SimBarrier {
    /// A barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        SimBarrier {
            n,
            state: Mutex::new(State {
                count: 0,
                generation: 0,
                aborted: false,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Block until all `n` participants have called `wait` (then all are
    /// released together), or until the barrier is aborted.
    pub fn wait(&self) -> Result<(), Aborted> {
        let mut st = self.state.lock().expect("barrier lock");
        if st.aborted {
            return Err(Aborted);
        }
        st.count += 1;
        if st.count == self.n {
            st.count = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cvar.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        while st.generation == gen && !st.aborted {
            st = self.cvar.wait(st).expect("barrier lock");
        }
        if st.aborted {
            Err(Aborted)
        } else {
            Ok(())
        }
    }

    /// Abort: wake all waiters with [`Aborted`] and make every future
    /// `wait` fail fast. Irreversible for the barrier's lifetime.
    pub fn abort(&self) {
        let mut st = self.state.lock().expect("barrier lock");
        st.aborted = true;
        self.cvar.notify_all();
    }

    /// True once [`SimBarrier::abort`] has been called. Doubles as the
    /// cluster-wide "a rank has crashed" flag.
    pub fn is_aborted(&self) -> bool {
        self.state.lock().expect("barrier lock").aborted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn releases_all_waiters_together() {
        let b = SimBarrier::new(4);
        let passed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        b.wait().unwrap();
                        passed.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(passed.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn abort_wakes_blocked_waiters() {
        let b = SimBarrier::new(3);
        std::thread::scope(|s| {
            let h1 = s.spawn(|| b.wait());
            let h2 = s.spawn(|| b.wait());
            // Give both a chance to block, then abort instead of arriving.
            std::thread::sleep(std::time::Duration::from_millis(20));
            b.abort();
            assert_eq!(h1.join().unwrap(), Err(Aborted));
            assert_eq!(h2.join().unwrap(), Err(Aborted));
        });
        assert!(b.is_aborted());
    }

    #[test]
    fn aborted_barrier_fails_fast() {
        let b = SimBarrier::new(2);
        b.abort();
        assert_eq!(b.wait(), Err(Aborted));
        assert_eq!(b.wait(), Err(Aborted), "abort is sticky");
    }

    #[test]
    fn single_participant_never_blocks() {
        let b = SimBarrier::new(1);
        for _ in 0..10 {
            b.wait().unwrap();
        }
    }
}

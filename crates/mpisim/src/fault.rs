//! Deterministic fault injection for the simulated cluster.
//!
//! Real runs of the paper's pipeline occupy up to 192 nodes for hours;
//! at that scale dropped messages, slow links and outright node failures
//! are routine, and extreme-scale assemblers treat them as first-class
//! inputs. A [`FaultPlan`] makes those perturbations *reproducible*: it is
//! seeded, every rank derives an independent RNG stream from
//! `(seed, rank)`, and faults are decided per **operation index** — the
//! count of communication calls the rank has issued — which is a
//! deterministic function of the rank program alone. The same plan against
//! the same program therefore injects byte-for-byte the same faults on
//! every run, regardless of thread scheduling.
//!
//! Three fault kinds are modeled:
//!
//! * **delays** — extra virtual seconds charged to the rank's clock before
//!   the operation (a congested link, a slow NIC). Recorded as `mpi.delay`
//!   spans, `cat:"fault"`.
//! * **drops with retry** — the message is lost and retransmitted: each
//!   failed attempt charges a detection timeout plus exponential backoff
//!   ([`crate::NetModel::retry_cost`]) to the virtual clock, bounded by
//!   [`FaultPlan::max_retries`]. Recorded as `mpi.retry` spans and counted
//!   in [`crate::CommStats::retries`]. Because the payload is eventually
//!   delivered unchanged, drops perturb *time only* — the golden invariant
//!   the chaos tests pin.
//! * **crashes** — at a chosen `(rank, op)` the rank dies. The cluster
//!   aborts (peers blocked in collectives unwind instead of deadlocking)
//!   and the crash is reported in the rank's
//!   [`crate::cluster::RankOutput`]. Crash points fire **once** per plan
//!   instance, so re-running the same plan replays the rank deterministically
//!   to completion — the substrate of stage-level checkpoint/resume.
//!
//! # Examples
//!
//! ```
//! use mpisim::fault::FaultPlan;
//! use mpisim::{run_cluster_faulty, NetModel};
//! use std::sync::Arc;
//!
//! // Drops and delays never change what a collective returns.
//! let plan = Arc::new(FaultPlan::new(7).with_drops(0.5, 3).with_delays(0.5, 1e-3));
//! let outs = run_cluster_faulty(4, NetModel::ideal(), Arc::clone(&plan), |comm| {
//!     comm.allgatherv(&[comm.rank() as u8])
//! });
//! for o in &outs {
//!     let parts = o.value.as_ref().expect("no crashes in this plan");
//!     assert_eq!(parts.len(), 4);
//! }
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A rank crash scheduled at a communication-operation index.
#[derive(Debug)]
pub struct CrashPoint {
    /// Rank that dies.
    pub rank: usize,
    /// Zero-based index of the communication operation at which it dies
    /// (the op is never started).
    pub op: u64,
    fired: AtomicBool,
}

impl CrashPoint {
    /// A crash of `rank` at its `op`-th communication call.
    pub fn new(rank: usize, op: u64) -> Self {
        CrashPoint {
            rank,
            op,
            fired: AtomicBool::new(false),
        }
    }

    /// True once the crash has been injected (crash points are one-shot).
    pub fn has_fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }
}

/// A seeded, deterministic fault-injection schedule for one cluster run
/// (or a sequence of replays — crash points persist their fired state
/// across runs sharing the same plan instance).
#[derive(Debug)]
pub struct FaultPlan {
    /// Base seed; rank `r` draws from a stream derived from `(seed, r)`.
    pub seed: u64,
    /// Per-operation probability of an injected delay.
    pub delay_prob: f64,
    /// Maximum injected delay in virtual seconds (uniform in `(0, max]`).
    pub max_delay: f64,
    /// Per-attempt probability that the operation's message is dropped.
    pub drop_prob: f64,
    /// Upper bound on retransmissions per operation: however unlucky the
    /// stream, the payload is delivered after at most this many retries —
    /// the "eventually delivers" guarantee the chaos invariant relies on.
    pub max_retries: u32,
    crashes: Vec<CrashPoint>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_prob: 0.0,
            max_delay: 0.0,
            drop_prob: 0.0,
            max_retries: 0,
            crashes: Vec::new(),
        }
    }

    /// A plan that injects nothing (alias for [`FaultPlan::new`]).
    pub fn none() -> Self {
        FaultPlan::new(0)
    }

    /// Enable message drops: each communication operation independently
    /// loses its payload with probability `prob` per attempt, retried at
    /// most `max_retries` times before succeeding unconditionally.
    pub fn with_drops(mut self, prob: f64, max_retries: u32) -> Self {
        self.drop_prob = prob.clamp(0.0, 1.0);
        self.max_retries = max_retries;
        self
    }

    /// Enable delays: each operation is preceded by an extra virtual-time
    /// charge uniform in `(0, max_delay]` with probability `prob`.
    pub fn with_delays(mut self, prob: f64, max_delay: f64) -> Self {
        self.delay_prob = prob.clamp(0.0, 1.0);
        self.max_delay = max_delay.max(0.0);
        self
    }

    /// Schedule a one-shot crash of `rank` at its `op`-th communication
    /// operation.
    pub fn with_crash(mut self, rank: usize, op: u64) -> Self {
        self.crashes.push(CrashPoint::new(rank, op));
        self
    }

    /// The scheduled crash points.
    pub fn crashes(&self) -> &[CrashPoint] {
        &self.crashes
    }

    /// True if any fault kind can fire.
    pub fn is_active(&self) -> bool {
        self.delay_prob > 0.0 || self.drop_prob > 0.0 || !self.crashes.is_empty()
    }

    /// Atomically claim the crash scheduled for `(rank, op)`, if any.
    /// Returns true exactly once per matching crash point.
    pub(crate) fn claim_crash(&self, rank: usize, op: u64) -> bool {
        self.crashes.iter().any(|c| {
            c.rank == rank
                && c.op == op
                && c.fired
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
        })
    }

    /// The per-rank decision stream: independent of every other rank's,
    /// deterministic in `(seed, rank)`.
    pub(crate) fn stream(&self, rank: usize) -> StdRng {
        // Decorrelate per-rank streams with a golden-ratio hash of the rank.
        StdRng::seed_from_u64(self.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// What the plan decided for one communication operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OpFaults {
    /// Operation index this decision applies to.
    pub op: u64,
    /// Injected delay in virtual seconds (0 = none).
    pub delay: f64,
    /// Number of failed delivery attempts before the one that succeeds.
    pub retries: u32,
}

/// A rank's live view of the plan: its RNG stream plus its operation
/// counter. Owned by the rank's `Comm`.
#[derive(Debug)]
pub(crate) struct FaultState {
    pub plan: std::sync::Arc<FaultPlan>,
    rng: StdRng,
    rank: usize,
    next_op: u64,
}

impl FaultState {
    pub fn new(plan: std::sync::Arc<FaultPlan>, rank: usize) -> Self {
        let rng = plan.stream(rank);
        FaultState {
            plan,
            rng,
            rank,
            next_op: 0,
        }
    }

    /// True if this operation is the rank's scheduled (unfired) crash.
    /// Does not consume RNG draws and does not advance the op counter.
    pub fn crashes_now(&self) -> bool {
        self.plan
            .crashes
            .iter()
            .any(|c| c.rank == self.rank && c.op == self.next_op && !c.has_fired())
    }

    /// Claim the crash at the current op (one-shot across the plan).
    pub fn claim_crash(&self) -> Option<u64> {
        if self.plan.claim_crash(self.rank, self.next_op) {
            Some(self.next_op)
        } else {
            None
        }
    }

    /// Decide this operation's delay and retry count, advancing the op
    /// counter and the RNG stream. The draw sequence per op is fixed
    /// (delay decision, optional magnitude, then one drop decision per
    /// attempt until delivery or the retry bound), so the stream stays
    /// aligned with the op sequence whatever the probabilities are.
    pub fn next_op(&mut self) -> OpFaults {
        let op = self.next_op;
        self.next_op += 1;
        let mut delay = 0.0;
        if self.plan.delay_prob > 0.0 && self.rng.random::<f64>() < self.plan.delay_prob {
            delay = self.rng.random_range(0.0..=1.0) * self.plan.max_delay;
        }
        let mut retries = 0u32;
        if self.plan.drop_prob > 0.0 {
            while retries < self.plan.max_retries && self.rng.random::<f64>() < self.plan.drop_prob
            {
                retries += 1;
            }
        }
        OpFaults { op, delay, retries }
    }
}

/// Panic payload of a rank killed by its fault plan. Caught by
/// [`crate::run_cluster_faulty`] and reported as
/// [`crate::cluster::RankState::Crashed`].
#[derive(Debug, Clone, Copy)]
pub struct RankCrash {
    /// The rank that died.
    pub rank: usize,
    /// The operation index at which it died.
    pub op: u64,
}

/// Panic payload of a rank that unwound because a peer crashed (it would
/// otherwise block forever in a collective). Reported as
/// [`crate::cluster::RankState::Aborted`].
#[derive(Debug, Clone, Copy)]
pub struct PeerAborted;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_rank_decorrelated() {
        let plan = FaultPlan::new(42).with_drops(0.5, 4).with_delays(0.5, 1.0);
        let plan = std::sync::Arc::new(plan);
        let mut a = FaultState::new(std::sync::Arc::clone(&plan), 0);
        let mut b = FaultState::new(std::sync::Arc::clone(&plan), 0);
        let mut c = FaultState::new(std::sync::Arc::clone(&plan), 1);
        let da: Vec<OpFaults> = (0..64).map(|_| a.next_op()).collect();
        let db: Vec<OpFaults> = (0..64).map(|_| b.next_op()).collect();
        let dc: Vec<OpFaults> = (0..64).map(|_| c.next_op()).collect();
        assert_eq!(da, db, "same (seed, rank) => same decisions");
        assert_ne!(da, dc, "different ranks draw independent streams");
    }

    #[test]
    fn retries_are_bounded() {
        let plan = std::sync::Arc::new(FaultPlan::new(1).with_drops(1.0, 3));
        let mut st = FaultState::new(std::sync::Arc::clone(&plan), 0);
        for _ in 0..32 {
            let d = st.next_op();
            assert_eq!(d.retries, 3, "prob 1.0 always hits the retry bound");
        }
    }

    #[test]
    fn no_faults_means_no_decisions() {
        let plan = std::sync::Arc::new(FaultPlan::new(9));
        let mut st = FaultState::new(plan, 2);
        for op in 0..8 {
            let d = st.next_op();
            assert_eq!((d.op, d.delay, d.retries), (op, 0.0, 0));
        }
    }

    #[test]
    fn crash_points_fire_once() {
        let plan = FaultPlan::new(5).with_crash(1, 3);
        assert!(!plan.claim_crash(1, 2));
        assert!(!plan.claim_crash(0, 3));
        assert!(plan.claim_crash(1, 3));
        assert!(!plan.claim_crash(1, 3), "one-shot");
        assert!(plan.crashes()[0].has_fired());
    }

    #[test]
    fn delay_magnitude_within_bounds() {
        let plan = std::sync::Arc::new(FaultPlan::new(3).with_delays(1.0, 0.25));
        let mut st = FaultState::new(plan, 0);
        for _ in 0..256 {
            let d = st.next_op();
            assert!(d.delay >= 0.0 && d.delay <= 0.25);
        }
    }
}

//! Cluster driver: spawn `P` ranks as threads and run a rank program,
//! optionally under a deterministic fault plan.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::barrier::SimBarrier;
use crate::comm::{Comm, Message, Shared};
use crate::fault::{FaultPlan, FaultState, PeerAborted, RankCrash};
use crate::netmodel::NetModel;
use crate::stats::CommStats;

/// How a rank's execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankState {
    /// The rank program ran to completion.
    Completed,
    /// The rank was killed by its fault plan at communication operation
    /// `op` (see [`crate::fault::FaultPlan::with_crash`]).
    Crashed {
        /// Operation index at which the rank died.
        op: u64,
    },
    /// The rank unwound mid-run because a peer crashed (it would otherwise
    /// have blocked forever in a collective).
    Aborted,
}

impl RankState {
    /// True for [`RankState::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, RankState::Completed)
    }
}

/// What one rank produced: its return value, final virtual clock and
/// communication counters. [`run_cluster`] guarantees
/// [`RankState::Completed`]; [`run_cluster_faulty`] may report crashed or
/// aborted ranks, whose `value` is `None` but whose partial clock, stats
/// and trace (including the `fault.crash` marker span) are still salvaged.
#[derive(Debug, Clone)]
pub struct RankOutput<T> {
    /// The rank id.
    pub rank: usize,
    /// The rank program's return value.
    pub value: T,
    /// Final virtual time of the rank, seconds.
    pub time: f64,
    /// Communication counters.
    pub stats: CommStats,
    /// Spans recorded by the rank (collectives, named measured sections,
    /// injected faults), on track `rank`, in virtual time.
    pub trace: obs::Trace,
    /// How the rank ended.
    pub state: RankState,
}

/// Install (once, process-wide) a panic hook that silences the panics used
/// as unwind vehicles for simulated faults — a [`RankCrash`] is an injected,
/// *expected* event reported via [`RankState`], not a bug worth a backtrace.
/// All other panics go to the previous hook untouched.
fn install_quiet_fault_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.is::<RankCrash>() || p.is::<PeerAborted>() {
                return;
            }
            prev(info);
        }));
    });
}

fn run_cluster_inner<T, F>(
    ranks: usize,
    net: NetModel,
    plan: Option<Arc<FaultPlan>>,
    f: F,
) -> Vec<RankOutput<Option<T>>>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    assert!(ranks > 0, "need at least one rank");
    if plan.is_some() {
        install_quiet_fault_hook();
    }
    let mut senders = Vec::with_capacity(ranks);
    let mut receivers = Vec::with_capacity(ranks);
    for _ in 0..ranks {
        let (tx, rx) = crossbeam::channel::unbounded::<Message>();
        senders.push(tx);
        receivers.push(rx);
    }
    let shared = Arc::new(Shared {
        size: ranks,
        barrier: SimBarrier::new(ranks),
        slots: (0..ranks).map(|_| Mutex::new(Vec::new())).collect(),
        times: (0..ranks).map(|_| Mutex::new(0.0)).collect(),
        mail: senders,
        fail_reports: (0..ranks).map(|_| Mutex::new(None)).collect(),
    });

    let outputs: Vec<Mutex<Option<RankOutput<Option<T>>>>> =
        (0..ranks).map(|_| Mutex::new(None)).collect();
    let genuine_panic = std::sync::atomic::AtomicBool::new(false);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranks);
        for (rank, inbox) in receivers.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let plan = plan.clone();
            let f = &f;
            let out_slot = &outputs[rank];
            let genuine_panic = &genuine_panic;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(4 << 20)
                    .spawn_scoped(scope, move || {
                        let fault = plan
                            .filter(|p| p.is_active())
                            .map(|p| FaultState::new(p, rank));
                        let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            let mut comm = Comm::new(rank, Arc::clone(&shared), inbox, net, fault);
                            let value = f(&mut comm);
                            RankOutput {
                                rank,
                                value: Some(value),
                                time: comm.clock.now(),
                                trace: comm.obs.take(),
                                stats: comm.stats,
                                state: RankState::Completed,
                            }
                        }));
                        let output = match run {
                            Ok(out) => out,
                            Err(payload) => {
                                let state = if let Some(c) = payload.downcast_ref::<RankCrash>() {
                                    RankState::Crashed { op: c.op }
                                } else if payload.is::<PeerAborted>() {
                                    RankState::Aborted
                                } else {
                                    // A real bug in the rank program: make
                                    // sure peers blocked in collectives
                                    // unwind, then re-raise after joins.
                                    genuine_panic.store(true, std::sync::atomic::Ordering::SeqCst);
                                    shared.barrier.abort();
                                    RankState::Aborted
                                };
                                let report = shared.fail_reports[rank].lock().take();
                                let (time, stats, trace) = report
                                    .map(|r| (r.time, r.stats, r.trace))
                                    .unwrap_or_default();
                                RankOutput {
                                    rank,
                                    value: None,
                                    time,
                                    stats,
                                    trace,
                                    state,
                                }
                            }
                        };
                        *out_slot.lock() = Some(output);
                    })
                    .expect("failed to spawn rank thread"),
            );
        }
        for h in handles {
            let _ = h.join();
        }
    });

    if genuine_panic.load(std::sync::atomic::Ordering::SeqCst) {
        // Preserve the historical contract: a panicking rank program
        // aborts the whole cluster run loudly.
        panic!("a simulated rank panicked; aborting cluster run");
    }

    outputs
        .into_iter()
        .map(|slot| slot.into_inner().expect("rank produced output"))
        .collect()
}

/// Run `f` on `ranks` simulated MPI ranks and collect every rank's output,
/// ordered by rank.
///
/// Each rank executes on its own OS thread with a private [`Comm`]. The
/// closure receives the communicator and returns the rank's result. Panics
/// in any rank abort the whole cluster (a panicking rank would deadlock
/// peers blocked in collectives, so we propagate instead). No faults are
/// injected; see [`run_cluster_faulty`] for that.
pub fn run_cluster<T, F>(ranks: usize, net: NetModel, f: F) -> Vec<RankOutput<T>>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    run_cluster_inner(ranks, net, None, f)
        .into_iter()
        .map(|o| RankOutput {
            rank: o.rank,
            value: o.value.expect("fault-free cluster rank completed"),
            time: o.time,
            stats: o.stats,
            trace: o.trace,
            state: o.state,
        })
        .collect()
}

/// Run `f` on `ranks` simulated MPI ranks under a deterministic
/// [`FaultPlan`]. Delays and dropped-message retries are charged to the
/// virtual clocks (and recorded as `cat:"fault"` spans) without changing
/// any payload; a scheduled crash kills its rank at the chosen operation
/// and unwinds the surviving ranks.
///
/// Crashed ranks report `value: None` with
/// [`RankState::Crashed`]; survivors that had to unwind report
/// [`RankState::Aborted`]. Because crash points are one-shot on the shared
/// plan instance and every rank's fault stream restarts identically,
/// re-invoking with the *same* `plan` deterministically re-executes the
/// crashed rank to completion — the replay primitive stage-level
/// checkpoint/resume builds on.
pub fn run_cluster_faulty<T, F>(
    ranks: usize,
    net: NetModel,
    plan: Arc<FaultPlan>,
    f: F,
) -> Vec<RankOutput<Option<T>>>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    run_cluster_inner(ranks, net, Some(plan), f)
}

/// Ranks that were killed by the fault plan in a [`run_cluster_faulty`]
/// result.
pub fn crashed_ranks<T>(outputs: &[RankOutput<Option<T>>]) -> Vec<usize> {
    outputs
        .iter()
        .filter(|o| matches!(o.state, RankState::Crashed { .. }))
        .map(|o| o.rank)
        .collect()
}

/// Unwrap a [`run_cluster_faulty`] result in which every rank completed;
/// `None` if any rank crashed or aborted.
pub fn unwrap_clean<T>(outputs: Vec<RankOutput<Option<T>>>) -> Option<Vec<RankOutput<T>>> {
    outputs
        .into_iter()
        .map(|o| {
            o.value.map(|value| RankOutput {
                rank: o.rank,
                value,
                time: o.time,
                stats: o.stats,
                trace: o.trace,
                state: o.state,
            })
        })
        .collect()
}

/// Convenience: the maximum virtual time across ranks — the cluster's
/// elapsed time for the run (what the paper plots).
pub fn cluster_time<T>(outputs: &[RankOutput<T>]) -> f64 {
    outputs.iter().map(|o| o.time).fold(0.0, f64::max)
}

/// Merge every rank's recorded spans into one [`obs::Trace`] (per-rank
/// tracks already equal rank ids, so no shifting is needed).
pub fn merge_traces<T>(outputs: &[RankOutput<T>]) -> obs::Trace {
    let mut merged = obs::Trace::default();
    for o in outputs {
        merged.merge_shifted(o.trace.clone(), 0.0, 0);
    }
    merged
}

/// Convenience: (min, max) rank times — the paper's load-imbalance bars.
pub fn rank_time_spread<T>(outputs: &[RankOutput<T>]) -> (f64, f64) {
    let min = outputs.iter().map(|o| o.time).fold(f64::INFINITY, f64::min);
    let max = cluster_time(outputs);
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = run_cluster(1, NetModel::ideal(), |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier();
            comm.rank() + 100
        });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 100);
        assert!(out[0].state.is_completed());
    }

    #[test]
    fn ranks_see_distinct_ids() {
        let out = run_cluster(8, NetModel::ideal(), |comm| comm.rank());
        let ids: Vec<usize> = out.iter().map(|o| o.value).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn allgatherv_collects_everything() {
        let out = run_cluster(4, NetModel::ideal(), |comm| {
            let mine = vec![comm.rank() as u8; comm.rank() + 1];
            comm.allgatherv(&mine)
        });
        for o in &out {
            assert_eq!(o.value.len(), 4);
            for (r, part) in o.value.iter().enumerate() {
                assert_eq!(part, &vec![r as u8; r + 1]);
            }
        }
    }

    #[test]
    fn repeated_collectives_are_safe() {
        let out = run_cluster(3, NetModel::ideal(), |comm| {
            let mut acc = 0u64;
            for round in 0..10u64 {
                acc += comm.allreduce_sum_u64(round + comm.rank() as u64);
            }
            acc
        });
        // Each round: sum over ranks of (round + rank) = 3*round + 3.
        let expect: u64 = (0..10).map(|r| 3 * r + 3).sum();
        for o in &out {
            assert_eq!(o.value, expect);
        }
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let out = run_cluster(4, NetModel::ideal(), |comm| {
            let data = if comm.rank() == 2 {
                b"seed".to_vec()
            } else {
                vec![]
            };
            comm.bcast(2, &data)
        });
        for o in &out {
            assert_eq!(o.value, b"seed");
        }
    }

    #[test]
    fn gatherv_only_root_gets_data() {
        let out = run_cluster(4, NetModel::ideal(), |comm| {
            let mine = vec![comm.rank() as u8];
            comm.gatherv(0, &mine)
        });
        assert!(out[0].value.is_some());
        assert_eq!(out[0].value.as_ref().unwrap().len(), 4);
        for o in &out[1..] {
            assert!(o.value.is_none());
        }
    }

    #[test]
    fn p2p_ring() {
        let out = run_cluster(5, NetModel::ideal(), |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, vec![comm.rank() as u8]);
            let got = comm.recv(prev, 7);
            got[0] as usize
        });
        for o in &out {
            assert_eq!(o.value, (o.rank + 4) % 5);
        }
    }

    #[test]
    fn p2p_tag_matching_out_of_order() {
        let out = run_cluster(2, NetModel::ideal(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![b'a']);
                comm.send(1, 2, vec![b'b']);
                0
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let b = comm.recv(0, 2);
                let a = comm.recv(0, 1);
                assert_eq!((a[0], b[0]), (b'a', b'b'));
                1
            }
        });
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn virtual_time_synchronizes_at_barrier() {
        let out = run_cluster(4, NetModel::ideal(), |comm| {
            comm.charge(comm.rank() as f64); // rank r works r seconds
            comm.barrier();
            comm.clock.now()
        });
        for o in &out {
            assert!(
                (o.value - 3.0).abs() < 1e-12,
                "all ranks leave at max entry time"
            );
        }
    }

    #[test]
    fn allgatherv_costs_scale_with_bytes() {
        let big = run_cluster(4, NetModel::idataplex(), |comm| {
            let data = vec![0u8; 1 << 20];
            comm.allgatherv(&data);
            comm.clock.now()
        });
        let small = run_cluster(4, NetModel::idataplex(), |comm| {
            let data = vec![0u8; 16];
            comm.allgatherv(&data);
            comm.clock.now()
        });
        assert!(big[0].value > small[0].value);
    }

    #[test]
    fn stats_are_counted() {
        let out = run_cluster(2, NetModel::ideal(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1, 2, 3]);
            } else {
                comm.recv(0, 0);
            }
            comm.barrier();
            comm.allgatherv(&[9]);
        });
        assert_eq!(out[0].stats.p2p_sends, 1);
        assert_eq!(out[1].stats.p2p_recvs, 1);
        assert_eq!(out[1].stats.bytes_received, 3 + 1);
        assert!(out[0].stats.collectives >= 2);
    }

    #[test]
    fn spread_helpers() {
        let out = run_cluster(3, NetModel::ideal(), |comm| {
            comm.charge((comm.rank() + 1) as f64);
            comm.rank()
        });
        let (min, max) = rank_time_spread(&out);
        assert!((min - 1.0).abs() < 1e-12);
        assert!((max - 3.0).abs() < 1e-12);
        assert!((cluster_time(&out) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn collectives_record_spans() {
        let out = run_cluster(2, NetModel::idataplex(), |comm| {
            comm.charge(1.0);
            comm.allgatherv(&[0u8; 256]);
            comm.barrier();
            comm.charge_measured_named("work", || std::hint::black_box(7));
        });
        let trace = merge_traces(&out);
        for rank in 0..2u32 {
            let names: Vec<&str> = trace.on_track(rank).map(|s| s.name.as_str()).collect();
            assert_eq!(names, vec!["mpi.allgatherv", "mpi.barrier", "work"]);
        }
        let ag = trace.with_cat("comm")[0];
        assert_eq!(ag.arg("bytes_sent"), Some(256.0));
        assert!(ag.start >= 1.0 && ag.end > ag.start);
        assert_eq!(
            trace.track_names.get(&1).map(String::as_str),
            Some("rank 1")
        );
    }

    #[test]
    fn many_ranks_smoke() {
        let out = run_cluster(64, NetModel::idataplex(), |comm| {
            let total = comm.allreduce_sum_u64(1);
            comm.barrier();
            total
        });
        assert!(out.iter().all(|o| o.value == 64));
    }

    // ---- fault injection ------------------------------------------------

    #[test]
    fn drops_and_delays_change_time_not_payloads() {
        let clean = run_cluster(4, NetModel::idataplex(), |comm| {
            comm.allgatherv(&[comm.rank() as u8; 64])
        });
        let plan = Arc::new(FaultPlan::new(11).with_drops(0.8, 4).with_delays(0.8, 1e-2));
        let faulty = run_cluster_faulty(4, NetModel::idataplex(), plan, |comm| {
            comm.allgatherv(&[comm.rank() as u8; 64])
        });
        let total_faults: u64 = faulty
            .iter()
            .map(|o| o.stats.retries + o.stats.delays)
            .sum();
        assert!(total_faults > 0, "plan with prob 0.8 injected nothing");
        for (c, f) in clean.iter().zip(&faulty) {
            assert!(f.state.is_completed());
            assert_eq!(f.value.as_ref().unwrap(), &c.value, "payloads must match");
            assert!(f.time >= c.time, "faults only ever add virtual time");
        }
    }

    #[test]
    fn retries_surface_as_spans() {
        let plan = Arc::new(FaultPlan::new(3).with_drops(1.0, 2));
        let out = run_cluster_faulty(2, NetModel::ideal(), plan, |comm| {
            comm.barrier();
            comm.allgatherv(&[comm.rank() as u8])
        });
        for o in &out {
            let retries: Vec<_> = o
                .trace
                .spans
                .iter()
                .filter(|s| s.name == "mpi.retry")
                .collect();
            assert_eq!(retries.len() as u64, o.stats.retries);
            assert_eq!(retries.len(), 4, "2 ops x 2 forced retries");
            assert!(retries.iter().all(|s| s.cat == "fault"));
            assert_eq!(retries[0].arg("attempt"), Some(1.0));
            // Even an ideal (zero-latency) net charges the RTO for drops.
            assert!(o.time > 0.0);
        }
    }

    #[test]
    fn same_plan_seed_is_fully_deterministic() {
        let run = || {
            let plan = Arc::new(FaultPlan::new(77).with_drops(0.5, 3).with_delays(0.5, 1e-3));
            run_cluster_faulty(4, NetModel::idataplex(), plan, |comm| {
                let pooled = comm.allgatherv(&[comm.rank() as u8; 32]);
                comm.barrier();
                (pooled, comm.clock.now())
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.value, y.value);
            assert_eq!(x.stats, y.stats);
            assert_eq!(x.time, y.time, "virtual times replay exactly");
        }
    }

    #[test]
    fn crash_is_reported_and_peers_unwind() {
        let plan = Arc::new(FaultPlan::new(0).with_crash(1, 2));
        let outs = run_cluster_faulty(3, NetModel::ideal(), Arc::clone(&plan), |comm| {
            for _ in 0..5 {
                comm.allgatherv(&[comm.rank() as u8]);
            }
            comm.rank()
        });
        assert_eq!(outs[1].state, RankState::Crashed { op: 2 });
        assert!(outs[1].value.is_none());
        assert!(
            outs[1].trace.spans.iter().any(|s| s.name == "fault.crash"),
            "crash marker span is salvaged from the dead rank"
        );
        assert_eq!(crashed_ranks(&outs), vec![1]);
        for o in [&outs[0], &outs[2]] {
            assert!(
                !o.state.is_completed(),
                "peers blocked on the crashed rank must unwind, not hang"
            );
        }
        assert!(unwrap_clean(outs).is_none());

        // Crash points are one-shot on the plan: the replay runs clean and
        // reproduces the fault-free payloads.
        let replay = run_cluster_faulty(3, NetModel::ideal(), plan, |comm| {
            for _ in 0..5 {
                comm.allgatherv(&[comm.rank() as u8]);
            }
            comm.rank()
        });
        let replay = unwrap_clean(replay).expect("replay is clean");
        let clean = run_cluster(3, NetModel::ideal(), |comm| {
            for _ in 0..5 {
                comm.allgatherv(&[comm.rank() as u8]);
            }
            comm.rank()
        });
        for (r, c) in replay.iter().zip(&clean) {
            assert_eq!(r.value, c.value);
        }
    }

    #[test]
    fn crash_during_p2p_wait_unwinds_receiver() {
        // Rank 0 crashes before sending; rank 1 is blocked in recv and must
        // unwind once the cluster aborts instead of waiting forever.
        let plan = Arc::new(FaultPlan::new(0).with_crash(0, 0));
        let outs = run_cluster_faulty(2, NetModel::ideal(), plan, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 9, vec![42]);
            } else {
                comm.recv(0, 9);
            }
        });
        assert_eq!(outs[0].state, RankState::Crashed { op: 0 });
        assert_eq!(outs[1].state, RankState::Aborted);
    }

    #[test]
    fn inactive_plan_is_equivalent_to_fault_free() {
        let plan = Arc::new(FaultPlan::new(123));
        let faulty = run_cluster_faulty(3, NetModel::idataplex(), plan, |comm| {
            comm.allgatherv(&[comm.rank() as u8; 16])
        });
        let clean = run_cluster(3, NetModel::idataplex(), |comm| {
            comm.allgatherv(&[comm.rank() as u8; 16])
        });
        for (f, c) in faulty.iter().zip(&clean) {
            assert_eq!(f.value.as_ref().unwrap(), &c.value);
            assert_eq!(f.time, c.time, "inactive plan charges nothing");
        }
    }
}

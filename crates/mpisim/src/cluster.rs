//! Cluster driver: spawn `P` ranks as threads and run a rank program.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::comm::{Comm, Message, Shared};
use crate::netmodel::NetModel;
use crate::stats::CommStats;

/// What one rank produced: its return value, final virtual clock and
/// communication counters.
#[derive(Debug, Clone)]
pub struct RankOutput<T> {
    /// The rank id.
    pub rank: usize,
    /// The rank program's return value.
    pub value: T,
    /// Final virtual time of the rank, seconds.
    pub time: f64,
    /// Communication counters.
    pub stats: CommStats,
    /// Spans recorded by the rank (collectives, named measured sections),
    /// on track `rank`, in virtual time.
    pub trace: obs::Trace,
}

/// Run `f` on `ranks` simulated MPI ranks and collect every rank's output,
/// ordered by rank.
///
/// Each rank executes on its own OS thread with a private [`Comm`]. The
/// closure receives the communicator and returns the rank's result. Panics
/// in any rank abort the whole cluster (a panicking rank would deadlock
/// peers blocked in collectives, so we propagate instead).
pub fn run_cluster<T, F>(ranks: usize, net: NetModel, f: F) -> Vec<RankOutput<T>>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    assert!(ranks > 0, "need at least one rank");
    let mut senders = Vec::with_capacity(ranks);
    let mut receivers = Vec::with_capacity(ranks);
    for _ in 0..ranks {
        let (tx, rx) = crossbeam::channel::unbounded::<Message>();
        senders.push(tx);
        receivers.push(rx);
    }
    let shared = Arc::new(Shared {
        size: ranks,
        barrier: std::sync::Barrier::new(ranks),
        slots: (0..ranks).map(|_| Mutex::new(Vec::new())).collect(),
        times: (0..ranks).map(|_| Mutex::new(0.0)).collect(),
        mail: senders,
    });

    let outputs: Vec<Mutex<Option<RankOutput<T>>>> = (0..ranks).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranks);
        for (rank, inbox) in receivers.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let f = &f;
            let out_slot = &outputs[rank];
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(4 << 20)
                    .spawn_scoped(scope, move || {
                        let mut comm = Comm::new(rank, shared, inbox, net);
                        let value = f(&mut comm);
                        *out_slot.lock() = Some(RankOutput {
                            rank,
                            value,
                            time: comm.clock.now(),
                            trace: comm.obs.take(),
                            stats: comm.stats,
                        });
                    })
                    .expect("failed to spawn rank thread"),
            );
        }
        for h in handles {
            if h.join().is_err() {
                // A rank panicked; peers may be blocked in a collective.
                // Abort loudly rather than deadlock.
                panic!("a simulated rank panicked; aborting cluster run");
            }
        }
    });

    outputs
        .into_iter()
        .map(|slot| slot.into_inner().expect("rank produced output"))
        .collect()
}

/// Convenience: the maximum virtual time across ranks — the cluster's
/// elapsed time for the run (what the paper plots).
pub fn cluster_time<T>(outputs: &[RankOutput<T>]) -> f64 {
    outputs.iter().map(|o| o.time).fold(0.0, f64::max)
}

/// Merge every rank's recorded spans into one [`obs::Trace`] (per-rank
/// tracks already equal rank ids, so no shifting is needed).
pub fn merge_traces<T>(outputs: &[RankOutput<T>]) -> obs::Trace {
    let mut merged = obs::Trace::default();
    for o in outputs {
        merged.merge_shifted(o.trace.clone(), 0.0, 0);
    }
    merged
}

/// Convenience: (min, max) rank times — the paper's load-imbalance bars.
pub fn rank_time_spread<T>(outputs: &[RankOutput<T>]) -> (f64, f64) {
    let min = outputs.iter().map(|o| o.time).fold(f64::INFINITY, f64::min);
    let max = cluster_time(outputs);
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = run_cluster(1, NetModel::ideal(), |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier();
            comm.rank() + 100
        });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 100);
    }

    #[test]
    fn ranks_see_distinct_ids() {
        let out = run_cluster(8, NetModel::ideal(), |comm| comm.rank());
        let ids: Vec<usize> = out.iter().map(|o| o.value).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn allgatherv_collects_everything() {
        let out = run_cluster(4, NetModel::ideal(), |comm| {
            let mine = vec![comm.rank() as u8; comm.rank() + 1];
            comm.allgatherv(&mine)
        });
        for o in &out {
            assert_eq!(o.value.len(), 4);
            for (r, part) in o.value.iter().enumerate() {
                assert_eq!(part, &vec![r as u8; r + 1]);
            }
        }
    }

    #[test]
    fn repeated_collectives_are_safe() {
        let out = run_cluster(3, NetModel::ideal(), |comm| {
            let mut acc = 0u64;
            for round in 0..10u64 {
                acc += comm.allreduce_sum_u64(round + comm.rank() as u64);
            }
            acc
        });
        // Each round: sum over ranks of (round + rank) = 3*round + 3.
        let expect: u64 = (0..10).map(|r| 3 * r + 3).sum();
        for o in &out {
            assert_eq!(o.value, expect);
        }
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let out = run_cluster(4, NetModel::ideal(), |comm| {
            let data = if comm.rank() == 2 {
                b"seed".to_vec()
            } else {
                vec![]
            };
            comm.bcast(2, &data)
        });
        for o in &out {
            assert_eq!(o.value, b"seed");
        }
    }

    #[test]
    fn gatherv_only_root_gets_data() {
        let out = run_cluster(4, NetModel::ideal(), |comm| {
            let mine = vec![comm.rank() as u8];
            comm.gatherv(0, &mine)
        });
        assert!(out[0].value.is_some());
        assert_eq!(out[0].value.as_ref().unwrap().len(), 4);
        for o in &out[1..] {
            assert!(o.value.is_none());
        }
    }

    #[test]
    fn p2p_ring() {
        let out = run_cluster(5, NetModel::ideal(), |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, vec![comm.rank() as u8]);
            let got = comm.recv(prev, 7);
            got[0] as usize
        });
        for o in &out {
            assert_eq!(o.value, (o.rank + 4) % 5);
        }
    }

    #[test]
    fn p2p_tag_matching_out_of_order() {
        let out = run_cluster(2, NetModel::ideal(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![b'a']);
                comm.send(1, 2, vec![b'b']);
                0
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let b = comm.recv(0, 2);
                let a = comm.recv(0, 1);
                assert_eq!((a[0], b[0]), (b'a', b'b'));
                1
            }
        });
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn virtual_time_synchronizes_at_barrier() {
        let out = run_cluster(4, NetModel::ideal(), |comm| {
            comm.charge(comm.rank() as f64); // rank r works r seconds
            comm.barrier();
            comm.clock.now()
        });
        for o in &out {
            assert!(
                (o.value - 3.0).abs() < 1e-12,
                "all ranks leave at max entry time"
            );
        }
    }

    #[test]
    fn allgatherv_costs_scale_with_bytes() {
        let big = run_cluster(4, NetModel::idataplex(), |comm| {
            let data = vec![0u8; 1 << 20];
            comm.allgatherv(&data);
            comm.clock.now()
        });
        let small = run_cluster(4, NetModel::idataplex(), |comm| {
            let data = vec![0u8; 16];
            comm.allgatherv(&data);
            comm.clock.now()
        });
        assert!(big[0].value > small[0].value);
    }

    #[test]
    fn stats_are_counted() {
        let out = run_cluster(2, NetModel::ideal(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1, 2, 3]);
            } else {
                comm.recv(0, 0);
            }
            comm.barrier();
            comm.allgatherv(&[9]);
        });
        assert_eq!(out[0].stats.p2p_sends, 1);
        assert_eq!(out[1].stats.p2p_recvs, 1);
        assert_eq!(out[1].stats.bytes_received, 3 + 1);
        assert!(out[0].stats.collectives >= 2);
    }

    #[test]
    fn spread_helpers() {
        let out = run_cluster(3, NetModel::ideal(), |comm| {
            comm.charge((comm.rank() + 1) as f64);
            comm.rank()
        });
        let (min, max) = rank_time_spread(&out);
        assert!((min - 1.0).abs() < 1e-12);
        assert!((max - 3.0).abs() < 1e-12);
        assert!((cluster_time(&out) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn collectives_record_spans() {
        let out = run_cluster(2, NetModel::idataplex(), |comm| {
            comm.charge(1.0);
            comm.allgatherv(&[0u8; 256]);
            comm.barrier();
            comm.charge_measured_named("work", || std::hint::black_box(7));
        });
        let trace = merge_traces(&out);
        for rank in 0..2u32 {
            let names: Vec<&str> = trace.on_track(rank).map(|s| s.name.as_str()).collect();
            assert_eq!(names, vec!["mpi.allgatherv", "mpi.barrier", "work"]);
        }
        let ag = trace.with_cat("comm")[0];
        assert_eq!(ag.arg("bytes_sent"), Some(256.0));
        assert!(ag.start >= 1.0 && ag.end > ag.start);
        assert_eq!(
            trace.track_names.get(&1).map(String::as_str),
            Some("rank 1")
        );
    }

    #[test]
    fn many_ranks_smoke() {
        let out = run_cluster(64, NetModel::idataplex(), |comm| {
            let total = comm.allreduce_sum_u64(1);
            comm.barrier();
            total
        });
        assert!(out.iter().all(|o| o.value == 64));
    }
}

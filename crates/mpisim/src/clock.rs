//! Per-rank virtual clocks.
//!
//! A [`VClock`] accumulates simulated seconds. Compute sections charge it
//! with measured (or replayed) durations; communication primitives advance
//! it to the synchronized completion time of the operation. Virtual time is
//! completely decoupled from wall-clock time, which is what makes scaling
//! experiments reproducible on any host.

/// A monotone virtual clock, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VClock {
    now: f64,
}

impl VClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VClock { now: 0.0 }
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Charge `seconds` of work to this clock.
    ///
    /// Negative or non-finite charges are ignored (timers can produce 0.0;
    /// they never legitimately produce negatives).
    #[inline]
    pub fn charge(&mut self, seconds: f64) {
        if seconds.is_finite() && seconds > 0.0 {
            self.now += seconds;
        }
    }

    /// Advance to an absolute time, never moving backwards.
    #[inline]
    pub fn advance_to(&mut self, t: f64) {
        if t.is_finite() && t > self.now {
            self.now = t;
        }
    }

    /// Reset to zero (used between pipeline phases that report separately).
    pub fn reset(&mut self) {
        self.now = 0.0;
    }
}

/// A scoped wall-clock timer whose elapsed time is charged to a `VClock`
/// when dropped. Used around *serial* regions that are measured directly.
pub struct ChargeGuard<'a> {
    clock: &'a mut VClock,
    start: std::time::Instant,
}

impl<'a> ChargeGuard<'a> {
    /// Start timing; charges on drop.
    pub fn new(clock: &'a mut VClock) -> Self {
        ChargeGuard {
            clock,
            start: std::time::Instant::now(),
        }
    }
}

impl Drop for ChargeGuard<'_> {
    fn drop(&mut self) {
        self.clock.charge(self.start.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut c = VClock::new();
        c.charge(1.5);
        c.charge(0.5);
        assert!((c.now() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ignores_bad_charges() {
        let mut c = VClock::new();
        c.charge(-1.0);
        c.charge(f64::NAN);
        c.charge(f64::INFINITY);
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    fn advance_is_monotone() {
        let mut c = VClock::new();
        c.advance_to(5.0);
        c.advance_to(3.0);
        assert_eq!(c.now(), 5.0);
        c.advance_to(f64::NAN);
        assert_eq!(c.now(), 5.0);
    }

    #[test]
    fn reset() {
        let mut c = VClock::new();
        c.charge(2.0);
        c.reset();
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    fn guard_charges_on_drop() {
        let mut c = VClock::new();
        {
            let _g = ChargeGuard::new(&mut c);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(c.now() > 0.0);
    }
}

//! Per-rank communication statistics.

/// Counters a rank accumulates while communicating. Returned with each
/// rank's result so experiments can report communication volume alongside
/// time (the paper notes loop 2's integer exchange is "substantially less
/// communication" than loop 1's string exchange — these counters show it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Bytes this rank contributed to sends and collectives.
    pub bytes_sent: u64,
    /// Bytes this rank received (including its share of collectives).
    pub bytes_received: u64,
    /// Point-to-point messages sent.
    pub p2p_sends: u64,
    /// Point-to-point messages received.
    pub p2p_recvs: u64,
    /// Collective operations participated in (barriers included).
    pub collectives: u64,
    /// Retransmissions of dropped messages injected by a fault plan.
    pub retries: u64,
    /// Message delays injected by a fault plan.
    pub delays: u64,
}

impl CommStats {
    /// Merge another rank's counters into this one (for cluster totals).
    pub fn merge(&mut self, other: &CommStats) {
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.p2p_sends += other.p2p_sends;
        self.p2p_recvs += other.p2p_recvs;
        self.collectives += other.collectives;
        self.retries += other.retries;
        self.delays += other.delays;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds() {
        let mut a = CommStats {
            bytes_sent: 10,
            bytes_received: 20,
            p2p_sends: 1,
            p2p_recvs: 2,
            collectives: 3,
            retries: 4,
            delays: 5,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.bytes_sent, 20);
        assert_eq!(a.collectives, 6);
        assert_eq!(a.retries, 8);
        assert_eq!(a.delays, 10);
    }

    #[test]
    fn default_is_zero() {
        let s = CommStats::default();
        assert_eq!(
            s.bytes_sent
                + s.bytes_received
                + s.p2p_sends
                + s.p2p_recvs
                + s.collectives
                + s.retries
                + s.delays,
            0
        );
    }
}

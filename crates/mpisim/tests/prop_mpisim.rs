//! Property-based tests for the MPI substrate: packing round-trips and
//! collective semantics at arbitrary rank counts and payload shapes.

use mpisim::pack::{
    pack_byte_strings, pack_u32s, pack_u64s, unpack_byte_strings, unpack_u32s, unpack_u64s,
};
use mpisim::{run_cluster, NetModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn byte_strings_round_trip(items in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..64), 0..32)) {
        let packed = pack_byte_strings(&items);
        prop_assert_eq!(unpack_byte_strings(&packed).unwrap(), items);
    }

    #[test]
    fn truncated_pack_never_panics(
        items in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..8),
        cut in 0usize..200,
    ) {
        let packed = pack_byte_strings(&items);
        let cut = cut.min(packed.len());
        // Must return None or a (possibly wrong-length) value, never panic.
        let _ = unpack_byte_strings(&packed[..cut]);
    }

    #[test]
    fn u32_u64_round_trip(a in proptest::collection::vec(any::<u32>(), 0..64),
                          b in proptest::collection::vec(any::<u64>(), 0..64)) {
        prop_assert_eq!(unpack_u32s(&pack_u32s(&a)).unwrap(), a);
        prop_assert_eq!(unpack_u64s(&pack_u64s(&b)).unwrap(), b);
    }

    #[test]
    fn allgatherv_reassembles_in_rank_order(ranks in 1usize..9, base in 0u8..200) {
        let outs = run_cluster(ranks, NetModel::ideal(), move |comm| {
            let mine = vec![base.wrapping_add(comm.rank() as u8); comm.rank() % 5 + 1];
            comm.allgatherv(&mine)
        });
        for o in &outs {
            prop_assert_eq!(o.value.len(), ranks);
            for (r, part) in o.value.iter().enumerate() {
                prop_assert_eq!(part.len(), r % 5 + 1);
                prop_assert!(part.iter().all(|&b| b == base.wrapping_add(r as u8)));
            }
        }
    }

    /// Pin the payload semantics of the three v-collectives against a
    /// plain single-rank reference model, across 1..=8 ranks and
    /// arbitrary per-rank payloads (empty ones included):
    ///
    /// * `allgatherv` — every rank gets `size` positional parts, part `r`
    ///   being exactly rank `r`'s contribution;
    /// * `bcast` — every rank gets the root's buffer, whatever it passed
    ///   itself;
    /// * `gatherv` — the root gets all parts positionally, everyone else
    ///   gets `None`.
    #[test]
    fn v_collectives_match_reference_model(
        ranks in 1usize..9,
        root in 0usize..8,
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..48), 8),
    ) {
        let root = root % ranks;
        let p = payloads.clone();
        let outs = run_cluster(ranks, NetModel::idataplex(), move |comm| {
            let mine = p[comm.rank()].clone();
            let ag = comm.allgatherv(&mine);
            let bc = comm.bcast(root, &mine);
            let gv = comm.gatherv(root, &mine);
            (ag, bc, gv)
        });
        let model: Vec<Vec<u8>> = payloads[..ranks].to_vec();
        for (r, o) in outs.iter().enumerate() {
            let (ag, bc, gv) = &o.value;
            prop_assert_eq!(ag, &model, "allgatherv on rank {}", r);
            prop_assert_eq!(bc, &model[root], "bcast on rank {}", r);
            if r == root {
                prop_assert_eq!(gv.as_ref().unwrap(), &model, "gatherv root");
            } else {
                prop_assert!(gv.is_none(), "gatherv non-root {} gets None", r);
            }
        }
    }

    #[test]
    fn allreduce_sum_is_rank_invariant(ranks in 1usize..9, values in proptest::collection::vec(0u64..1000, 9)) {
        let vals = values.clone();
        let outs = run_cluster(ranks, NetModel::idataplex(), move |comm| {
            comm.allreduce_sum_u64(vals[comm.rank()])
        });
        let expect: u64 = values[..ranks].iter().sum();
        for o in &outs {
            prop_assert_eq!(o.value, expect);
        }
    }

    #[test]
    fn barrier_clock_sync_is_max(ranks in 2usize..8, charges in proptest::collection::vec(0.0f64..5.0, 8)) {
        let ch = charges.clone();
        let outs = run_cluster(ranks, NetModel::ideal(), move |comm| {
            comm.charge(ch[comm.rank()]);
            comm.barrier();
            comm.clock.now()
        });
        let expect = charges[..ranks].iter().cloned().fold(0.0, f64::max);
        for o in &outs {
            prop_assert!((o.value - expect).abs() < 1e-9);
        }
    }
}

//! Property tests for the fault-injection layer: over arbitrary seeds,
//! probabilities, rank counts and crash points, a plan that eventually
//! delivers never changes what the collectives return — it only moves
//! virtual time — and a crashed run replays to clean convergence.

use std::sync::Arc;

use mpisim::{
    crashed_ranks, run_cluster, run_cluster_faulty, unwrap_clean, Comm, FaultPlan, NetModel,
    RankState,
};
use proptest::prelude::*;

/// A rank program with four communication operations (the allreduce is an
/// allgatherv underneath), giving crash points at ops 0..=3 something to
/// hit and drop/delay streams a few draws per rank.
fn program(comm: &mut Comm) -> (Vec<Vec<u8>>, u64, Vec<u8>) {
    let mine = vec![comm.rank() as u8 + 1; comm.rank() % 4 + 1];
    let pooled = comm.allgatherv(&mine);
    let sum = comm.allreduce_sum_u64(comm.rank() as u64 + 7);
    let bc = comm.bcast(0, &mine);
    comm.barrier();
    (pooled, sum, bc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Crash-free plans: payloads are byte-identical to the fault-free
    /// run, per-rank virtual time only ever grows, and the whole run —
    /// times, stats, payloads — is a deterministic function of the seed.
    #[test]
    fn drops_and_delays_move_time_not_payloads(
        seed in any::<u64>(),
        delay_prob in 0.0f64..1.0,
        drop_prob in 0.0f64..1.0,
        max_retries in 0u32..5,
        ranks in 1usize..7,
    ) {
        let clean = run_cluster(ranks, NetModel::idataplex(), program);
        let plan = || Arc::new(
            FaultPlan::new(seed)
                .with_delays(delay_prob, 1e-3)
                .with_drops(drop_prob, max_retries),
        );
        let a = run_cluster_faulty(ranks, NetModel::idataplex(), plan(), program);
        let b = run_cluster_faulty(ranks, NetModel::idataplex(), plan(), program);
        for ((fa, fb), cl) in a.iter().zip(&b).zip(&clean) {
            prop_assert!(matches!(fa.state, RankState::Completed));
            // Golden invariant: identical payloads, never-smaller clocks.
            prop_assert_eq!(fa.value.as_ref().unwrap(), &cl.value);
            prop_assert!(fa.time >= cl.time - 1e-12,
                "faults may only add virtual time ({} < {})", fa.time, cl.time);
            // Determinism: the same seed reproduces the run exactly.
            prop_assert_eq!(fa.value.as_ref(), fb.value.as_ref());
            prop_assert_eq!(fa.time.to_bits(), fb.time.to_bits());
            prop_assert_eq!(fa.stats.retries, fb.stats.retries);
            prop_assert_eq!(fa.stats.delays, fb.stats.delays);
        }
    }

    /// An inactive plan is indistinguishable from no plan at all.
    #[test]
    fn inactive_plan_is_a_no_op(seed in any::<u64>(), ranks in 1usize..7) {
        let clean = run_cluster(ranks, NetModel::idataplex(), program);
        let outs = run_cluster_faulty(
            ranks, NetModel::idataplex(), Arc::new(FaultPlan::new(seed)), program);
        for (f, c) in outs.iter().zip(&clean) {
            prop_assert_eq!(f.value.as_ref().unwrap(), &c.value);
            prop_assert_eq!(f.time.to_bits(), c.time.to_bits());
            prop_assert_eq!((f.stats.retries, f.stats.delays), (0, 0));
        }
    }

    /// Any single crash point kills exactly one rank (everyone else
    /// unwinds rather than deadlocking, and nobody "completes" a
    /// collective program a peer never finished), and replaying the same
    /// plan converges to the fault-free result — crash points are
    /// one-shot.
    #[test]
    fn any_crash_point_replays_to_convergence(
        seed in any::<u64>(),
        ranks in 2usize..6,
        crash_rank in 0usize..8,
        crash_op in 0u64..4,
        drop_prob in 0.0f64..0.8,
    ) {
        let crash_rank = crash_rank % ranks;
        let plan = Arc::new(
            FaultPlan::new(seed)
                .with_drops(drop_prob, 3)
                .with_crash(crash_rank, crash_op),
        );
        let clean = run_cluster(ranks, NetModel::idataplex(), program);

        let crashed = run_cluster_faulty(
            ranks, NetModel::idataplex(), Arc::clone(&plan), program);
        prop_assert_eq!(crashed_ranks(&crashed), vec![crash_rank]);
        for o in &crashed {
            // The trailing barrier means no rank can finish while a peer
            // is dead: every rank is either the victim or unwound.
            match o.state {
                RankState::Crashed { op } => {
                    prop_assert_eq!(o.rank, crash_rank);
                    prop_assert_eq!(op, crash_op);
                }
                RankState::Aborted => prop_assert!(o.value.is_none()),
                RankState::Completed => prop_assert!(false, "rank {} completed", o.rank),
            }
        }

        let replay = run_cluster_faulty(
            ranks, NetModel::idataplex(), Arc::clone(&plan), program);
        let replay = unwrap_clean(replay);
        prop_assert!(replay.is_some(), "one-shot crash point: replay is clean");
        for (f, c) in replay.unwrap().iter().zip(&clean) {
            prop_assert_eq!(&f.value, &c.value);
        }
    }
}

//! Drive path enumeration over every Chrysalis component.

use seqio::fasta::Record;
use seqio::packed::PackedSeq;

use graph::debruijn::DeBruijnGraph;

use crate::paths::{enumerate_paths, PathConfig};

/// One component's input to Butterfly: its clustered contigs and the reads
/// ReadsToTranscripts assigned to it.
///
/// Sequences arrive pre-encoded as [`PackedSeq`]: the pipeline packs every
/// read and contig once at ingest, and Butterfly's graph threading consumes
/// the 2-bit form directly instead of re-decoding ASCII per component.
#[derive(Debug, Clone, Default)]
pub struct ComponentInput {
    /// Component id (dense, from Chrysalis).
    pub component: usize,
    /// The component's Inchworm contigs.
    pub contigs: Vec<PackedSeq>,
    /// Reads assigned to this component (used as edge support).
    pub reads: Vec<PackedSeq>,
}

impl ComponentInput {
    /// Build from byte sequences, encoding each once (test/CLI convenience).
    pub fn from_bytes<S: AsRef<[u8]>>(component: usize, contigs: &[S], reads: &[S]) -> Self {
        ComponentInput {
            component,
            contigs: seqio::packed::encode_all(contigs),
            reads: seqio::packed::encode_all(reads),
        }
    }
}

/// Reconstruction parameters.
#[derive(Debug, Clone, Copy)]
pub struct ReconstructionConfig {
    /// de Bruijn word size (Trinity uses k = 25 throughout).
    pub k: usize,
    /// Path enumeration limits.
    pub paths: PathConfig,
    /// Edges with weight below this are pruned before enumeration
    /// (read-support filter; contig edges get a weight boost so contigs
    /// alone always survive).
    pub min_edge_weight: u32,
    /// Weight granted to each contig traversal (contigs are consensus
    /// sequences, so they count more than a single read).
    pub contig_weight: u32,
}

impl Default for ReconstructionConfig {
    fn default() -> Self {
        ReconstructionConfig {
            k: 25,
            paths: PathConfig::default(),
            min_edge_weight: 1,
            contig_weight: 2,
        }
    }
}

/// Reconstruct transcripts for one component.
pub fn reconstruct_component(input: &ComponentInput, cfg: ReconstructionConfig) -> Vec<Record> {
    let mut g = DeBruijnGraph::new(cfg.k);
    for contig in &input.contigs {
        g.add_packed(contig, cfg.contig_weight);
    }
    for read in &input.reads {
        g.add_packed(read, 1);
    }
    if cfg.min_edge_weight > 1 {
        g.prune_edges(cfg.min_edge_weight);
    }
    enumerate_paths(&g, cfg.paths)
        .into_iter()
        .enumerate()
        .map(|(i, seq)| Record {
            id: format!("comp{}_seq{}", input.component, i),
            desc: format!("len={}", seq.len()),
            seq,
        })
        .collect()
}

/// Reconstruct transcripts for every component (the Butterfly stage).
pub fn reconstruct(components: &[ComponentInput], cfg: ReconstructionConfig) -> Vec<Record> {
    let mut out = Vec::new();
    for c in components {
        out.extend(reconstruct_component(c, cfg));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(k: usize, min_len: usize) -> ReconstructionConfig {
        ReconstructionConfig {
            k,
            paths: PathConfig {
                min_len,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn single_contig_component() {
        let contig = b"CGAGTCGGTTATCTTCGGATACTGTATAGTCC".to_vec();
        let input = ComponentInput::from_bytes(3, std::slice::from_ref(&contig), &[]);
        let recs = reconstruct_component(&input, cfg(8, 10));
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id, "comp3_seq0");
        assert_eq!(recs[0].seq, contig);
    }

    #[test]
    fn reads_bridge_contigs() {
        // Two contigs overlapping k-1 are stitched in the graph; a read
        // spanning the junction adds support.
        let full = b"CGAGTCGGTTATCTTCGGATACTGTATAGTCCCACC".to_vec();
        let c1 = full[..20].to_vec();
        let c2 = full[13..].to_vec();
        let junction_read = full[10..26].to_vec();
        let input = ComponentInput::from_bytes(0, &[c1, c2], &[junction_read]);
        let recs = reconstruct_component(&input, cfg(8, 20));
        assert!(
            recs.iter().any(|r| r.seq == full),
            "full transcript spelled"
        );
    }

    #[test]
    fn min_edge_weight_prunes_noise() {
        let clean = b"CGAGTCGGTTATCTTCGGATACTGTATAGTCC".to_vec();
        let mut noisy = clean.clone();
        noisy[16] = b'A'; // single erroneous read creates a bubble
        let input = ComponentInput::from_bytes(0, std::slice::from_ref(&clean), &[noisy]);
        // contig weight 2 + prune at 2 kills the weight-1 error branch.
        let recs = reconstruct_component(
            &input,
            ReconstructionConfig {
                min_edge_weight: 2,
                ..cfg(8, 10)
            },
        );
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq, clean);
    }

    #[test]
    fn multiple_components_concatenate() {
        let a = ComponentInput::from_bytes(0, &[b"CGAGTCGGTTATCTTCGGATACTGTATAGTCC".to_vec()], &[]);
        let b = ComponentInput::from_bytes(1, &[b"AAAGCGGCACTTGTGAAGTGTTCCCCACGCCG".to_vec()], &[]);
        let recs = reconstruct(&[a, b], cfg(8, 10));
        assert_eq!(recs.len(), 2);
        assert!(recs[0].id.starts_with("comp0"));
        assert!(recs[1].id.starts_with("comp1"));
    }

    #[test]
    fn empty_component_is_empty() {
        let recs = reconstruct_component(&ComponentInput::default(), cfg(8, 10));
        assert!(recs.is_empty());
    }

    #[test]
    fn isoforms_of_bubble_reported() {
        let iso1 = b"CGAGTCGGTTATCTTCGGATACTGTATAGTCCCACCTGG".to_vec();
        let mut iso2 = Vec::new();
        iso2.extend_from_slice(&iso1[..12]);
        iso2.extend_from_slice(b"AAAGCGGCACTTGTGAAGTG");
        iso2.extend_from_slice(&iso1[iso1.len() - 12..]);
        let input = ComponentInput::from_bytes(0, &[iso1.clone(), iso2.clone()], &[]);
        let recs = reconstruct_component(&input, cfg(8, 20));
        let seqs: Vec<&[u8]> = recs.iter().map(|r| r.seq.as_slice()).collect();
        assert!(seqs.contains(&iso1.as_slice()));
        assert!(seqs.contains(&iso2.as_slice()));
    }
}

//! Path enumeration through one component's de Bruijn graph.
//!
//! A bounded DFS from every source node, branching where the graph
//! branches. Branch fan-out is capped (heaviest edges first) and a
//! per-path node-visit limit breaks cycles, so enumeration is total even
//! on tangled graphs.

use graph::debruijn::{DeBruijnGraph, NodeId};

/// Limits for path enumeration.
#[derive(Debug, Clone, Copy)]
pub struct PathConfig {
    /// Maximum paths reported per component.
    pub max_paths: usize,
    /// Maximum out-edges explored at any branch (heaviest first).
    pub max_branch: usize,
    /// A node may appear at most this many times within one path
    /// (permits small tandem repeats without infinite loops).
    pub max_node_visits: usize,
    /// Paths shorter than this many bases are dropped.
    pub min_len: usize,
}

impl Default for PathConfig {
    fn default() -> Self {
        PathConfig {
            max_paths: 32,
            max_branch: 4,
            max_node_visits: 2,
            min_len: 48,
        }
    }
}

struct Dfs<'g> {
    g: &'g DeBruijnGraph,
    cfg: PathConfig,
    out: Vec<Vec<NodeId>>,
    visits: Vec<u8>,
}

impl<'g> Dfs<'g> {
    fn run(&mut self, path: &mut Vec<NodeId>, node: NodeId) {
        if self.out.len() >= self.cfg.max_paths {
            return;
        }
        path.push(node);
        self.visits[node as usize] += 1;

        let edges = self.g.out_edges(node);
        let mut extended = false;
        for &(next, _w) in edges.iter().take(self.cfg.max_branch) {
            if (self.visits[next as usize] as usize) < self.cfg.max_node_visits {
                extended = true;
                self.run(path, next);
                if self.out.len() >= self.cfg.max_paths {
                    break;
                }
            }
        }
        if !extended {
            // Terminal (or fully cycle-blocked): report the path.
            self.out.push(path.clone());
        }

        self.visits[node as usize] -= 1;
        path.pop();
    }
}

/// Enumerate read-supported paths of `g` starting at its source nodes.
/// Returns spelled sequences, heaviest path first, deduplicated.
pub fn enumerate_paths(g: &DeBruijnGraph, cfg: PathConfig) -> Vec<Vec<u8>> {
    let sources = g.sources();
    let mut dfs = Dfs {
        g,
        cfg,
        out: Vec::new(),
        visits: vec![0; g.node_count()],
    };
    for s in sources {
        if dfs.out.len() >= cfg.max_paths {
            break;
        }
        let mut path = Vec::new();
        dfs.run(&mut path, s);
    }

    // Rank by total path weight (read support), heaviest first.
    let mut ranked: Vec<(u64, Vec<NodeId>)> = dfs
        .out
        .into_iter()
        .map(|p| (g.path_weight(&p), p))
        .collect();
    ranked.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    let mut seqs: Vec<Vec<u8>> = Vec::new();
    for (_, p) in ranked {
        let s = g.spell_path(&p);
        if s.len() >= cfg.min_len && !seqs.contains(&s) {
            seqs.push(s);
        }
    }
    seqs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(min_len: usize) -> PathConfig {
        PathConfig {
            min_len,
            ..Default::default()
        }
    }

    #[test]
    fn linear_graph_single_path() {
        let seq = b"CGAGTCGGTTATCTTCGGATACTGTATAG";
        let g = DeBruijnGraph::build(8, [seq.as_slice()]);
        let paths = enumerate_paths(&g, cfg(10));
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0], seq.to_vec());
    }

    #[test]
    fn bubble_gives_two_isoforms() {
        // Two isoforms sharing prefix and suffix (an exon-skip bubble).
        let iso1 = b"CGAGTCGGTTATCTTCGGATACTGTATAGTCCCACCTGG".to_vec();
        let mut iso2 = Vec::new();
        iso2.extend_from_slice(&iso1[..12]);
        iso2.extend_from_slice(b"AAAGCGGCACTTGTGAAGTG"); // alternative exon
        iso2.extend_from_slice(&iso1[iso1.len() - 12..]);
        let g = DeBruijnGraph::build(8, [iso1.as_slice(), iso2.as_slice()]);
        let paths = enumerate_paths(&g, cfg(20));
        assert_eq!(paths.len(), 2);
        assert!(paths.contains(&iso1));
        assert!(paths.contains(&iso2));
    }

    #[test]
    fn min_len_filters() {
        let g = DeBruijnGraph::build(8, [b"CGAGTCGGTTATCTT".as_slice()]);
        assert!(enumerate_paths(&g, cfg(100)).is_empty());
        assert_eq!(enumerate_paths(&g, cfg(5)).len(), 1);
    }

    #[test]
    fn cycle_only_graph_yields_nothing() {
        let g = DeBruijnGraph::build(3, [b"AAAA".as_slice()]);
        assert!(
            enumerate_paths(&g, cfg(1)).is_empty(),
            "no sources in a pure cycle"
        );
    }

    #[test]
    fn max_paths_caps_explosion() {
        // Many branches: 3 bubbles -> up to 8 paths; cap at 3.
        let base = b"CGAGTCGGTTATCTTCGGATACTGTATAGTCC".to_vec();
        let mut variants = Vec::new();
        for i in 0..3 {
            let mut v = base.clone();
            v[10 + i * 6] = b'A';
            variants.push(v);
        }
        variants.push(base.clone());
        let g = DeBruijnGraph::build(6, variants.iter().map(|v| v.as_slice()));
        let paths = enumerate_paths(
            &g,
            PathConfig {
                max_paths: 3,
                ..cfg(10)
            },
        );
        assert!(paths.len() <= 3);
        assert!(!paths.is_empty());
    }

    #[test]
    fn heaviest_path_first() {
        // iso1 threaded 5x, iso2 once: iso1 must rank first.
        let iso1 = b"CGAGTCGGTTATCTTCGGATACTGTATAGTCC".to_vec();
        let mut iso2 = iso1.clone();
        iso2[15] = b'A';
        let mut g = DeBruijnGraph::new(8);
        for _ in 0..5 {
            g.add_sequence(&iso1, 1);
        }
        g.add_sequence(&iso2, 1);
        let paths = enumerate_paths(&g, cfg(10));
        assert_eq!(paths[0], iso1);
    }

    #[test]
    fn small_tandem_repeat_traversed() {
        // Unique prefix, then a tandem repeat (nodes visited twice), then a
        // unique suffix. The prefix keeps the source outside the cycle.
        let seq = b"TTGCAATGGCCGAGTCGGTTATCTTCGAGTCGGTTATCTTACGGATAC";
        let g = DeBruijnGraph::build(8, [seq.as_slice()]);
        let paths = enumerate_paths(&g, cfg(10));
        assert!(
            paths.iter().any(|p| p == &seq.to_vec()),
            "repeat path found"
        );
    }
}

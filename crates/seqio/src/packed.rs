//! 2-bit packed sequences with an N-run index, encoded once per pipeline run.
//!
//! Every compute stage of the pipeline — Jellyfish counting, the Inchworm
//! dictionary, GraphFromFasta's weld scans, the ReadsToTranscripts vote —
//! shares one inner loop: extract the canonical k-mer at each position of a
//! read or contig. Historically each stage re-decoded the same ASCII bytes
//! (`base_to_code` per byte, per stage, per rank). [`PackedSeq`] moves that
//! decode to ingest: bases are packed 32-per-`u64`, MSB-first so integer
//! order equals lexicographic order, and the positions of valid ACGT runs
//! are kept in a side index so iteration skips `N` gaps without inspecting
//! codes. The k-mer iterators then roll forward and reverse-complement words
//! incrementally via [`RollState`] — O(1) amortized per base.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::alphabet::{base_to_code, code_to_base};
use crate::error::Result;
use crate::kmer::{Kmer, RollState};

/// Bases encoded (sum of sequence lengths) since process start.
static ENCODED_BASES: AtomicU64 = AtomicU64::new(0);
/// Sequences encoded since process start.
static ENCODED_SEQS: AtomicU64 = AtomicU64::new(0);
/// Canonical windows produced by rolling iterators since process start.
static ROLLED_WINDOWS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the crate-global encode/roll counters.
///
/// `seqio` has no dependency on the `obs` crate, so the pipeline reads this
/// snapshot and records deltas into its `MetricsRegistry` (as
/// `seqio.encoded_bases` etc.). Counters are process-wide and monotonic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeqioStats {
    /// Total sequences encoded by [`PackedSeq::from_bytes`].
    pub encoded_seqs: u64,
    /// Total bases encoded by [`PackedSeq::from_bytes`].
    pub encoded_bases: u64,
    /// Total canonical windows emitted by rolling iterators.
    pub rolled_windows: u64,
}

/// Read the current [`SeqioStats`] counters.
pub fn stats_snapshot() -> SeqioStats {
    SeqioStats {
        encoded_seqs: ENCODED_SEQS.load(Ordering::Relaxed),
        encoded_bases: ENCODED_BASES.load(Ordering::Relaxed),
        rolled_windows: ROLLED_WINDOWS.load(Ordering::Relaxed),
    }
}

/// Credit `n` rolled windows (flushed by iterator `Drop` impls, one atomic
/// add per iterator rather than per window).
pub(crate) fn add_rolled_windows(n: u64) {
    if n > 0 {
        ROLLED_WINDOWS.fetch_add(n, Ordering::Relaxed);
    }
}

/// A DNA sequence packed 2 bits per base, with a valid-run side index.
///
/// Base `i` occupies bits `2*(31 - i%32)` of word `i/32` — MSB-first, so a
/// word compares like the string it encodes. Non-ACGT input bytes (e.g. `N`)
/// pack as code 0 but are excluded from `runs`; [`PackedSeq::decode`]
/// restores them as `N` and the k-mer iterators never emit a window that
/// touches one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedSeq {
    words: Vec<u64>,
    len: usize,
    /// Maximal runs of valid ACGT bases, as half-open `(start, end)` ranges.
    runs: Vec<(usize, usize)>,
}

impl PackedSeq {
    /// Encode ASCII bases (case-insensitive). Non-ACGT bytes become gaps.
    pub fn from_bytes(seq: &[u8]) -> Self {
        let len = seq.len();
        let mut words = vec![0u64; len.div_ceil(32)];
        let mut runs = Vec::new();
        let mut run_start: Option<usize> = None;
        for (i, &b) in seq.iter().enumerate() {
            match base_to_code(b) {
                Some(code) => {
                    words[i >> 5] |= (code as u64) << ((31 - (i & 31)) << 1);
                    if run_start.is_none() {
                        run_start = Some(i);
                    }
                }
                None => {
                    if let Some(s) = run_start.take() {
                        runs.push((s, i));
                    }
                }
            }
        }
        if let Some(s) = run_start {
            runs.push((s, len));
        }
        ENCODED_SEQS.fetch_add(1, Ordering::Relaxed);
        ENCODED_BASES.fetch_add(len as u64, Ordering::Relaxed);
        PackedSeq { words, len, runs }
    }

    /// Sequence length in bases (gaps included).
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the sequence has no bases at all.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The 2-bit code at position `i`. Gap positions read as code 0; use
    /// [`PackedSeq::is_valid`] or [`PackedSeq::run_span`] to distinguish.
    #[inline(always)]
    pub fn code_at(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        ((self.words[i >> 5] >> ((31 - (i & 31)) << 1)) & 0b11) as u8
    }

    /// The maximal valid ACGT runs as half-open `(start, end)` ranges.
    #[inline(always)]
    pub fn runs(&self) -> &[(usize, usize)] {
        &self.runs
    }

    /// The valid run containing position `i`, if any.
    #[inline]
    pub fn run_span(&self, i: usize) -> Option<(usize, usize)> {
        let idx = self.runs.partition_point(|&(s, _)| s <= i);
        if idx == 0 {
            return None;
        }
        let (s, e) = self.runs[idx - 1];
        (i < e).then_some((s, e))
    }

    /// True when position `i` holds a real ACGT base (not a gap).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.run_span(i).is_some()
    }

    /// True when the whole half-open range `[start, end)` is gap-free.
    #[inline]
    pub fn range_valid(&self, start: usize, end: usize) -> bool {
        if start >= end {
            return start <= self.len && end <= self.len;
        }
        end <= self.len && self.run_span(start).is_some_and(|(_, e)| end <= e)
    }

    /// Decode back to ASCII: uppercase `ACGT` for valid bases, `N` for gaps.
    pub fn decode(&self) -> Vec<u8> {
        let mut out = vec![b'N'; self.len];
        for &(s, e) in &self.runs {
            for (i, slot) in out[s..e].iter_mut().enumerate() {
                *slot = code_to_base(self.code_at(s + i));
            }
        }
        out
    }

    /// The packed 2-bit words, MSB-first (see the type docs for the
    /// layout). This is the wire form: checkpoint codecs and rank
    /// exchanges serialize these words directly instead of re-encoding
    /// ASCII.
    #[inline(always)]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reassemble a sequence from its serialized parts ([`PackedSeq::len`],
    /// [`PackedSeq::words`], [`PackedSeq::runs`]) without re-encoding.
    ///
    /// Returns `None` unless the parts are mutually consistent: the word
    /// count matches `len`, padding bits past `len` are zero (so the
    /// result compares equal to a fresh [`PackedSeq::from_bytes`] encode),
    /// and the runs are sorted, non-adjacent, non-overlapping and in
    /// bounds. Malformed checkpoint payloads are rejected rather than
    /// trusted.
    pub fn from_parts(len: usize, words: Vec<u64>, runs: Vec<(usize, usize)>) -> Option<Self> {
        if words.len() != len.div_ceil(32) {
            return None;
        }
        if len % 32 != 0 {
            if let Some(&last) = words.last() {
                // The last word's low (unused) bits must be zero so the
                // round trip is bit-identical to a fresh encode.
                let used_bits = 2 * (len % 32);
                if last & ((1u64 << (64 - used_bits)) - 1) != 0 {
                    return None;
                }
            }
        }
        let mut prev_end = 0usize;
        for (i, &(s, e)) in runs.iter().enumerate() {
            // Runs are maximal: consecutive runs must be separated by at
            // least one gap base, exactly as `from_bytes` produces them.
            let min_start = if i == 0 { 0 } else { prev_end + 1 };
            if s < min_start || e <= s || e > len {
                return None;
            }
            prev_end = e;
        }
        Some(PackedSeq { words, len, runs })
    }

    /// Forward k-mers at every gap-free window, as `(offset, kmer)`.
    pub fn kmers(&self, k: usize) -> Result<PackedKmers<'_>> {
        Ok(PackedKmers {
            inner: RunRoller::new(self, k)?,
        })
    }

    /// Canonical k-mers (min of forward and revcomp) at every gap-free
    /// window, as `(offset, kmer)`. The reverse complement is rolled
    /// incrementally, never rebuilt per window.
    pub fn canonical_kmers(&self, k: usize) -> Result<PackedCanonicalKmers<'_>> {
        Ok(PackedCanonicalKmers {
            inner: RunRoller::new(self, k)?,
        })
    }

    /// Canonical k-mers with strand: `(offset, canonical, forward)` where
    /// `forward` is true when the forward strand is the canonical one
    /// (ties count as forward, matching `Kmer::canonical`).
    pub fn oriented_kmers(&self, k: usize) -> Result<PackedOrientedKmers<'_>> {
        Ok(PackedOrientedKmers {
            inner: RunRoller::new(self, k)?,
        })
    }
}

/// Encode a batch of sequences (anything byte-viewable, e.g. `Record`).
pub fn encode_all<S: AsRef<[u8]>>(seqs: &[S]) -> Vec<PackedSeq> {
    seqs.iter()
        .map(|s| PackedSeq::from_bytes(s.as_ref()))
        .collect()
}

/// Shared engine of the packed iterators: walk the valid runs, pushing one
/// code per position into a [`RollState`], resetting between runs.
struct RunRoller<'a> {
    seq: &'a PackedSeq,
    state: RollState,
    run_idx: usize,
    pos: usize,
    run_end: usize,
    emitted: u64,
}

impl<'a> RunRoller<'a> {
    fn new(seq: &'a PackedSeq, k: usize) -> Result<Self> {
        Ok(RunRoller {
            seq,
            state: RollState::new(k)?,
            run_idx: 0,
            pos: 0,
            run_end: 0,
            emitted: 0,
        })
    }

    /// Next completed window as `(offset, rolled)`.
    #[inline]
    fn next_window(&mut self) -> Option<(usize, crate::kmer::Rolled)> {
        loop {
            if self.pos >= self.run_end {
                let &(s, e) = self.seq.runs.get(self.run_idx)?;
                self.run_idx += 1;
                self.pos = s;
                self.run_end = e;
                self.state.reset();
                continue;
            }
            let code = self.seq.code_at(self.pos);
            self.pos += 1;
            if let Some(rolled) = self.state.push(code) {
                self.emitted += 1;
                return Some((self.pos - self.state.k(), rolled));
            }
        }
    }

    fn upper_bound(&self) -> usize {
        // Each position from `pos` onward completes at most one window.
        self.seq.len.saturating_sub(self.pos.min(self.seq.len))
    }
}

impl<'a> Drop for RunRoller<'a> {
    fn drop(&mut self) {
        add_rolled_windows(self.emitted);
    }
}

/// Forward k-mer iterator over a [`PackedSeq`]. See [`PackedSeq::kmers`].
pub struct PackedKmers<'a> {
    inner: RunRoller<'a>,
}

impl<'a> Iterator for PackedKmers<'a> {
    type Item = (usize, Kmer);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        let k = self.inner.state.k();
        self.inner
            .next_window()
            .map(|(off, r)| (off, Kmer::from_packed_unchecked(r.fwd, k)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.inner.upper_bound()))
    }
}

/// Canonical k-mer iterator over a [`PackedSeq`].
/// See [`PackedSeq::canonical_kmers`].
pub struct PackedCanonicalKmers<'a> {
    inner: RunRoller<'a>,
}

impl<'a> Iterator for PackedCanonicalKmers<'a> {
    type Item = (usize, Kmer);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        let k = self.inner.state.k();
        self.inner
            .next_window()
            .map(|(off, r)| (off, Kmer::from_packed_unchecked(r.canonical_packed(), k)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.inner.upper_bound()))
    }
}

/// Canonical k-mer iterator that also reports the canonical strand.
/// See [`PackedSeq::oriented_kmers`].
pub struct PackedOrientedKmers<'a> {
    inner: RunRoller<'a>,
}

impl<'a> Iterator for PackedOrientedKmers<'a> {
    type Item = (usize, Kmer, bool);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        let k = self.inner.state.k();
        self.inner.next_window().map(|(off, r)| {
            (
                off,
                Kmer::from_packed_unchecked(r.canonical_packed(), k),
                r.is_forward(),
            )
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.inner.upper_bound()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmer::{CanonicalKmers, KmerIter};

    #[test]
    fn from_parts_round_trips_serialized_form() {
        for seq in [
            &b""[..],
            b"ACGT",
            b"acgtNxACGT-",
            b"NNNN",
            b"ACGTACGTACGTACGTACGTACGTACGTACGTACG", // crosses a word boundary
        ] {
            let p = PackedSeq::from_bytes(seq);
            let back = PackedSeq::from_parts(p.len(), p.words().to_vec(), p.runs().to_vec())
                .expect("own parts are consistent");
            assert_eq!(back, p, "{:?}", String::from_utf8_lossy(seq));
        }
    }

    #[test]
    fn from_parts_rejects_malformed_payloads() {
        let p = PackedSeq::from_bytes(b"ACGTACGT");
        // Wrong word count.
        assert!(PackedSeq::from_parts(p.len(), vec![], p.runs().to_vec()).is_none());
        // Nonzero padding bits past len.
        let mut words = p.words().to_vec();
        words[0] |= 1;
        assert!(PackedSeq::from_parts(p.len(), words, p.runs().to_vec()).is_none());
        // Out-of-bounds, empty, overlapping and adjacent (non-maximal) runs.
        for bad in [
            vec![(0usize, 9usize)],
            vec![(3, 3)],
            vec![(0, 4), (2, 8)],
            vec![(0, 4), (4, 8)],
        ] {
            assert!(
                PackedSeq::from_parts(p.len(), p.words().to_vec(), bad.clone()).is_none(),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn round_trip_normalizes() {
        let p = PackedSeq::from_bytes(b"acgtNxACGT-");
        assert_eq!(p.decode(), b"ACGTNNACGTN");
        assert_eq!(p.len(), 11);
        assert_eq!(p.runs(), &[(0, 4), (6, 10)]);
    }

    #[test]
    fn empty_and_all_gaps() {
        let p = PackedSeq::from_bytes(b"");
        assert!(p.is_empty());
        assert!(p.decode().is_empty());
        assert_eq!(p.kmers(3).unwrap().count(), 0);

        let p = PackedSeq::from_bytes(b"NNN");
        assert_eq!(p.decode(), b"NNN");
        assert!(p.runs().is_empty());
        assert_eq!(p.canonical_kmers(1).unwrap().count(), 0);
    }

    #[test]
    fn code_at_matches_packing_order() {
        // 33 bases to cross a word boundary.
        let seq = b"ACGTACGTACGTACGTACGTACGTACGTACGTC";
        let p = PackedSeq::from_bytes(seq);
        for (i, &b) in seq.iter().enumerate() {
            assert_eq!(p.code_at(i), base_to_code(b).unwrap(), "pos {i}");
        }
    }

    #[test]
    fn run_span_and_range_valid() {
        let p = PackedSeq::from_bytes(b"ACGTNACGTACGTNN");
        assert_eq!(p.run_span(0), Some((0, 4)));
        assert_eq!(p.run_span(3), Some((0, 4)));
        assert_eq!(p.run_span(4), None);
        assert_eq!(p.run_span(5), Some((5, 13)));
        assert_eq!(p.run_span(14), None);
        assert!(p.range_valid(0, 4));
        assert!(!p.range_valid(0, 5));
        assert!(p.range_valid(5, 13));
        assert!(!p.range_valid(3, 6));
        assert!(!p.range_valid(5, 99));
        assert!(p.range_valid(4, 4), "empty range is vacuously valid");
    }

    #[test]
    fn iterators_match_byte_reference() {
        let seq: &[u8] = b"ACGTNNACGTACGTTTTGGGCCCANacgtACGTACGTACGTACGTACGTACGTACGTA";
        let p = PackedSeq::from_bytes(seq);
        for k in [1usize, 2, 5, 24, 31, 32] {
            let fwd: Vec<_> = p.kmers(k).unwrap().collect();
            let fwd_ref: Vec<_> = KmerIter::new(seq, k).unwrap().collect();
            assert_eq!(fwd, fwd_ref, "forward k={k}");

            let canon: Vec<_> = p.canonical_kmers(k).unwrap().collect();
            let canon_ref: Vec<_> = CanonicalKmers::new(seq, k).unwrap().collect();
            assert_eq!(canon, canon_ref, "canonical k={k}");

            let oriented: Vec<_> = p.oriented_kmers(k).unwrap().collect();
            let oriented_ref: Vec<_> = KmerIter::new(seq, k)
                .unwrap()
                .map(|(off, km)| {
                    let canon = km.canonical();
                    (off, canon, canon == km)
                })
                .collect();
            assert_eq!(oriented, oriented_ref, "oriented k={k}");
        }
    }

    #[test]
    fn bad_k_is_rejected() {
        let p = PackedSeq::from_bytes(b"ACGT");
        assert!(p.kmers(0).is_err());
        assert!(p.canonical_kmers(33).is_err());
        assert!(p.oriented_kmers(0).is_err());
    }

    #[test]
    fn encode_all_and_stats_advance() {
        let before = stats_snapshot();
        let packed = encode_all(&[&b"ACGT"[..], b"GGNTT"]);
        assert_eq!(packed.len(), 2);
        assert_eq!(packed[1].decode(), b"GGNTT");
        let _ = packed[0].canonical_kmers(2).unwrap().count(); // 3 windows
        let after = stats_snapshot();
        assert!(after.encoded_seqs >= before.encoded_seqs + 2);
        assert!(after.encoded_bases >= before.encoded_bases + 9);
        assert!(after.rolled_windows >= before.rolled_windows + 3);
    }
}

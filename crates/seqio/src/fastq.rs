//! FASTQ records, readers and writers.
//!
//! Sequencers deliver reads as FASTQ (sequence + per-base quality). The
//! simulated datasets in this workspace emit FASTQ, and the pipeline driver
//! converts to FASTA internally exactly as `Trinity.pl` does.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::error::{Error, Result};
use crate::fasta::Record;

/// One FASTQ record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Identifier (text after `@`, before first whitespace).
    pub id: String,
    /// Remainder of the header line.
    pub desc: String,
    /// Sequence bytes.
    pub seq: Vec<u8>,
    /// Phred+33 quality bytes, same length as `seq`.
    pub qual: Vec<u8>,
}

impl FastqRecord {
    /// Construct with uniform quality `q` (Phred+33 char).
    pub fn with_uniform_quality(id: impl Into<String>, seq: Vec<u8>, q: u8) -> Self {
        let qual = vec![q; seq.len()];
        FastqRecord {
            id: id.into(),
            desc: String::new(),
            seq,
            qual,
        }
    }

    /// Drop the qualities, yielding a FASTA record.
    pub fn into_fasta(self) -> Record {
        Record {
            id: self.id,
            desc: self.desc,
            seq: self.seq,
        }
    }

    /// Encode the sequence into its 2-bit packed form (qualities are not
    /// packed; k-mer stages never read them).
    pub fn packed(&self) -> crate::packed::PackedSeq {
        crate::packed::PackedSeq::from_bytes(&self.seq)
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// Streaming FASTQ reader (4-line records; multi-line FASTQ is not used by
/// any tool in this pipeline and is rejected for safety).
pub struct FastqReader<R: Read> {
    inner: BufReader<R>,
    line_no: usize,
}

impl FastqReader<std::fs::File> {
    /// Open a FASTQ file from a path.
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self> {
        Ok(Self::new(std::fs::File::open(path)?))
    }
}

impl<R: Read> FastqReader<R> {
    /// Wrap a reader.
    pub fn new(reader: R) -> Self {
        FastqReader {
            inner: BufReader::with_capacity(1 << 16, reader),
            line_no: 0,
        }
    }

    fn read_line(&mut self, buf: &mut String) -> Result<usize> {
        buf.clear();
        let n = self.inner.read_line(buf)?;
        if n > 0 {
            self.line_no += 1;
        }
        while buf.ends_with('\n') || buf.ends_with('\r') {
            buf.pop();
        }
        Ok(n)
    }

    /// Read the next record, or `None` at end of input.
    pub fn next_record(&mut self) -> Result<Option<FastqRecord>> {
        let mut header = String::new();
        loop {
            let n = self.read_line(&mut header)?;
            if n == 0 {
                return Ok(None);
            }
            if !header.is_empty() {
                break;
            }
        }
        let header = header
            .strip_prefix('@')
            .ok_or_else(|| {
                Error::Format(format!(
                    "line {}: expected '@' header, found {:?}",
                    self.line_no, header
                ))
            })?
            .to_string();
        let (id, desc) = match header.split_once(char::is_whitespace) {
            Some((id, rest)) => (id.to_string(), rest.trim_start().to_string()),
            None => (header, String::new()),
        };

        let mut seq = String::new();
        if self.read_line(&mut seq)? == 0 {
            return Err(Error::Format(format!(
                "line {}: truncated record (missing sequence)",
                self.line_no
            )));
        }
        let mut plus = String::new();
        if self.read_line(&mut plus)? == 0 || !plus.starts_with('+') {
            return Err(Error::Format(format!(
                "line {}: expected '+' separator",
                self.line_no
            )));
        }
        let mut qual = String::new();
        if self.read_line(&mut qual)? == 0 {
            return Err(Error::Format(format!(
                "line {}: truncated record (missing quality)",
                self.line_no
            )));
        }
        if qual.len() != seq.len() {
            return Err(Error::Format(format!(
                "line {}: quality length {} != sequence length {}",
                self.line_no,
                qual.len(),
                seq.len()
            )));
        }
        Ok(Some(FastqRecord {
            id,
            desc,
            seq: seq.into_bytes(),
            qual: qual.into_bytes(),
        }))
    }

    /// Collect every record into memory.
    pub fn read_all(mut self) -> Result<Vec<FastqRecord>> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

impl<R: Read> Iterator for FastqReader<R> {
    type Item = Result<FastqRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Buffered FASTQ writer.
pub struct FastqWriter<W: Write> {
    inner: W,
}

impl FastqWriter<std::io::BufWriter<std::fs::File>> {
    /// Create (truncate) a FASTQ file at a path.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write> FastqWriter<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        FastqWriter { inner: writer }
    }

    /// Write one record.
    pub fn write_record(&mut self, rec: &FastqRecord) -> Result<()> {
        if rec.qual.len() != rec.seq.len() {
            return Err(Error::Format(format!(
                "record {}: quality length {} != sequence length {}",
                rec.id,
                rec.qual.len(),
                rec.seq.len()
            )));
        }
        if rec.desc.is_empty() {
            writeln!(self.inner, "@{}", rec.id)?;
        } else {
            writeln!(self.inner, "@{} {}", rec.id, rec.desc)?;
        }
        self.inner.write_all(&rec.seq)?;
        self.inner.write_all(b"\n+\n")?;
        self.inner.write_all(&rec.qual)?;
        self.inner.write_all(b"\n")?;
        Ok(())
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> Result<()> {
        self.inner.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Vec<FastqRecord>> {
        FastqReader::new(bytes).read_all()
    }

    #[test]
    fn parses_basic_record() {
        let recs = parse(b"@r1 left\nACGT\n+\nIIII\n").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id, "r1");
        assert_eq!(recs[0].desc, "left");
        assert_eq!(recs[0].seq, b"ACGT");
        assert_eq!(recs[0].qual, b"IIII");
    }

    #[test]
    fn parses_multiple_records() {
        let recs = parse(b"@a\nAC\n+\nII\n@b\nGT\n+a\nJJ\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].qual, b"JJ");
    }

    #[test]
    fn rejects_mismatched_quality_length() {
        assert!(parse(b"@a\nACGT\n+\nII\n").is_err());
    }

    #[test]
    fn rejects_missing_plus() {
        assert!(parse(b"@a\nACGT\nIIII\n").is_err());
    }

    #[test]
    fn rejects_truncation() {
        assert!(parse(b"@a\nACGT\n+\n").is_err());
        assert!(parse(b"@a\nACGT\n").is_err());
        assert!(parse(b"@a\n").is_err());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse(b">a\nAC\n+\nII\n").is_err());
    }

    #[test]
    fn round_trip() {
        let rec = FastqRecord {
            id: "x".into(),
            desc: "1/2".into(),
            seq: b"GATTACA".to_vec(),
            qual: b"IIHHGGF".to_vec(),
        };
        let mut buf = Vec::new();
        FastqWriter::new(&mut buf).write_record(&rec).unwrap();
        assert_eq!(parse(&buf).unwrap(), vec![rec]);
    }

    #[test]
    fn writer_validates_lengths() {
        let rec = FastqRecord {
            id: "x".into(),
            desc: String::new(),
            seq: b"ACGT".to_vec(),
            qual: b"II".to_vec(),
        };
        assert!(FastqWriter::new(Vec::new()).write_record(&rec).is_err());
    }

    #[test]
    fn uniform_quality_and_fasta_conversion() {
        let rec = FastqRecord::with_uniform_quality("q", b"ACG".to_vec(), b'I');
        assert_eq!(rec.qual, b"III");
        let fa = rec.into_fasta();
        assert_eq!(fa.id, "q");
        assert_eq!(fa.seq, b"ACG");
    }
}

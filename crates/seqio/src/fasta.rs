//! FASTA records, readers and writers.
//!
//! The Trinity pipeline exchanges almost all of its data as (multi-)FASTA
//! files: reads, Inchworm contigs, component bundles and final transcripts.
//! The reader here handles multi-line records, arbitrary description text
//! after the identifier, and is buffered and byte-oriented.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::error::{Error, Result};

/// One FASTA record: `>id description` header plus concatenated sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Identifier: header text up to the first whitespace.
    pub id: String,
    /// Remainder of the header line (may be empty).
    pub desc: String,
    /// Sequence bytes with newlines removed.
    pub seq: Vec<u8>,
}

impl Record {
    /// Construct a record with no description.
    pub fn new(id: impl Into<String>, seq: impl Into<Vec<u8>>) -> Self {
        Record {
            id: id.into(),
            desc: String::new(),
            seq: seq.into(),
        }
    }

    /// Sequence length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Encode the sequence into its 2-bit packed form.
    ///
    /// The pipeline calls this exactly once per record per run and shares
    /// the result across stages (see [`crate::packed`]).
    pub fn packed(&self) -> crate::packed::PackedSeq {
        crate::packed::PackedSeq::from_bytes(&self.seq)
    }
}

impl AsRef<[u8]> for Record {
    /// A record coerces to its sequence bytes (readers of read sets care
    /// about the sequence, not the header).
    fn as_ref(&self) -> &[u8] {
        &self.seq
    }
}

/// Streaming FASTA reader over any `Read`.
pub struct FastaReader<R: Read> {
    inner: BufReader<R>,
    /// Header line of the next record (without `>`), if already consumed.
    pending_header: Option<String>,
    line_no: usize,
    finished: bool,
}

impl FastaReader<std::fs::File> {
    /// Open a FASTA file from a path.
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self> {
        Ok(Self::new(std::fs::File::open(path)?))
    }
}

impl<R: Read> FastaReader<R> {
    /// Wrap a reader.
    pub fn new(reader: R) -> Self {
        FastaReader {
            inner: BufReader::with_capacity(1 << 16, reader),
            pending_header: None,
            line_no: 0,
            finished: false,
        }
    }

    fn read_line(&mut self, buf: &mut String) -> Result<usize> {
        buf.clear();
        let n = self.inner.read_line(buf)?;
        if n > 0 {
            self.line_no += 1;
        }
        while buf.ends_with('\n') || buf.ends_with('\r') {
            buf.pop();
        }
        Ok(n)
    }

    /// Read the next record, or `None` at end of input.
    pub fn next_record(&mut self) -> Result<Option<Record>> {
        if self.finished {
            return Ok(None);
        }
        let mut line = String::new();
        let header = match self.pending_header.take() {
            Some(h) => h,
            None => loop {
                let n = self.read_line(&mut line)?;
                if n == 0 {
                    self.finished = true;
                    return Ok(None);
                }
                if line.is_empty() {
                    continue; // tolerate blank lines between records
                }
                if let Some(h) = line.strip_prefix('>') {
                    break h.to_string();
                }
                return Err(Error::Format(format!(
                    "line {}: expected '>' header, found {:?}",
                    self.line_no, line
                )));
            },
        };

        let (id, desc) = match header.split_once(char::is_whitespace) {
            Some((id, rest)) => (id.to_string(), rest.trim_start().to_string()),
            None => (header, String::new()),
        };
        if id.is_empty() {
            return Err(Error::Format(format!(
                "line {}: empty record identifier",
                self.line_no
            )));
        }

        let mut seq = Vec::new();
        loop {
            let n = self.read_line(&mut line)?;
            if n == 0 {
                self.finished = true;
                break;
            }
            if line.is_empty() {
                continue;
            }
            if let Some(h) = line.strip_prefix('>') {
                self.pending_header = Some(h.to_string());
                break;
            }
            seq.extend_from_slice(line.as_bytes());
        }
        Ok(Some(Record { id, desc, seq }))
    }

    /// Collect every record into memory.
    pub fn read_all(mut self) -> Result<Vec<Record>> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

impl<R: Read> Iterator for FastaReader<R> {
    type Item = Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Buffered FASTA writer with configurable line wrapping.
pub struct FastaWriter<W: Write> {
    inner: W,
    /// Wrap sequence lines at this many bases (0 = no wrapping).
    pub line_width: usize,
}

impl FastaWriter<std::io::BufWriter<std::fs::File>> {
    /// Create (truncate) a FASTA file at a path.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write> FastaWriter<W> {
    /// Wrap a writer with the conventional 60-column wrapping.
    pub fn new(writer: W) -> Self {
        FastaWriter {
            inner: writer,
            line_width: 60,
        }
    }

    /// Write one record.
    pub fn write_record(&mut self, rec: &Record) -> Result<()> {
        if rec.desc.is_empty() {
            writeln!(self.inner, ">{}", rec.id)?;
        } else {
            writeln!(self.inner, ">{} {}", rec.id, rec.desc)?;
        }
        if self.line_width == 0 {
            self.inner.write_all(&rec.seq)?;
            self.inner.write_all(b"\n")?;
        } else {
            for chunk in rec.seq.chunks(self.line_width) {
                self.inner.write_all(chunk)?;
                self.inner.write_all(b"\n")?;
            }
        }
        Ok(())
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> Result<()> {
        self.inner.flush()?;
        Ok(())
    }
}

/// Read a whole FASTA byte buffer (convenience for tests and in-memory flows).
pub fn parse_fasta(bytes: &[u8]) -> Result<Vec<Record>> {
    FastaReader::new(bytes).read_all()
}

/// Serialize records to a FASTA byte buffer.
pub fn to_fasta_bytes(records: &[Record]) -> Vec<u8> {
    let mut buf = Vec::new();
    {
        let mut w = FastaWriter::new(&mut buf);
        for rec in records {
            w.write_record(rec).expect("write to Vec cannot fail");
        }
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_record() {
        let recs = parse_fasta(b">c1 a contig\nACGT\nTTGG\n").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id, "c1");
        assert_eq!(recs[0].desc, "a contig");
        assert_eq!(recs[0].seq, b"ACGTTTGG");
    }

    #[test]
    fn parses_multiple_records_and_blank_lines() {
        let recs = parse_fasta(b">a\nAC\n\n>b\nGG\nTT\n\n>c\nA\n").unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[1].seq, b"GGTT");
        assert_eq!(recs[2].id, "c");
    }

    #[test]
    fn handles_crlf() {
        let recs = parse_fasta(b">a\r\nACGT\r\n>b\r\nTT\r\n").unwrap();
        assert_eq!(recs[0].seq, b"ACGT");
        assert_eq!(recs[1].seq, b"TT");
    }

    #[test]
    fn rejects_leading_garbage() {
        assert!(matches!(parse_fasta(b"ACGT\n"), Err(Error::Format(_))));
    }

    #[test]
    fn rejects_empty_id() {
        assert!(parse_fasta(b">\nACGT\n").is_err());
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(parse_fasta(b"").unwrap().is_empty());
    }

    #[test]
    fn record_with_no_sequence_is_allowed() {
        let recs = parse_fasta(b">a\n>b\nAC\n").unwrap();
        assert_eq!(recs[0].seq, b"");
        assert_eq!(recs[1].seq, b"AC");
    }

    #[test]
    fn round_trip_with_wrapping() {
        let records = vec![
            Record::new("x", b"ACGTACGTACGT".to_vec()),
            Record {
                id: "y".into(),
                desc: "len=3".into(),
                seq: b"GGG".to_vec(),
            },
        ];
        let mut buf = Vec::new();
        {
            let mut w = FastaWriter::new(&mut buf);
            w.line_width = 5;
            for r in &records {
                w.write_record(r).unwrap();
            }
        }
        let parsed = parse_fasta(&buf).unwrap();
        assert_eq!(parsed, records);
        // 12 bases at width 5 -> 3 sequence lines
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().filter(|l| !l.starts_with('>')).count(), 4);
    }

    #[test]
    fn round_trip_unwrapped() {
        let records = vec![Record::new("n1", b"ACGT".repeat(50))];
        let mut buf = Vec::new();
        {
            let mut w = FastaWriter::new(&mut buf);
            w.line_width = 0;
            w.write_record(&records[0]).unwrap();
        }
        assert_eq!(parse_fasta(&buf).unwrap(), records);
    }

    #[test]
    fn iterator_interface() {
        let r = FastaReader::new(&b">a\nAC\n>b\nGT\n"[..]);
        let ids: Vec<String> = r.map(|rec| rec.unwrap().id).collect();
        assert_eq!(ids, ["a", "b"]);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("seqio_fasta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.fa");
        {
            let mut w = FastaWriter::create(&path).unwrap();
            w.write_record(&Record::new("f", b"ACGTACGA".to_vec()))
                .unwrap();
            w.flush().unwrap();
        }
        let recs = FastaReader::from_path(&path).unwrap().read_all().unwrap();
        assert_eq!(recs[0].seq, b"ACGTACGA");
        std::fs::remove_file(&path).ok();
    }
}

//! Error type shared by the sequence-I/O substrate.

use std::fmt;

/// Convenience alias used throughout `seqio`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while parsing or writing sequence data.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A FASTA/FASTQ record violated the format (message, byte offset hint).
    Format(String),
    /// A base outside `ACGTN` (case-insensitive) was encountered where a
    /// strict alphabet was required.
    InvalidBase(u8),
    /// A k-mer parameter was out of the supported range.
    InvalidK(usize),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Format(msg) => write!(f, "format error: {msg}"),
            Error::InvalidBase(b) => {
                write!(f, "invalid base byte 0x{b:02x} ({:?})", *b as char)
            }
            Error::InvalidK(k) => write!(f, "unsupported k-mer size {k} (must be 1..=32)"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::InvalidBase(b'X');
        assert!(e.to_string().contains("0x58"));
        let e = Error::InvalidK(33);
        assert!(e.to_string().contains("33"));
        let e = Error::Format("bad header".into());
        assert!(e.to_string().contains("bad header"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = Error::from(io);
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! PyFasta-equivalent FASTA partitioner.
//!
//! The paper's distributed Bowtie step splits the Inchworm-contig FASTA into
//! `n` pieces — one per MPI rank — with PyFasta (`pyfasta split -n`), which
//! balances pieces by total bases rather than by record count. Note that
//! PyFasta is single-threaded, which the paper identifies as the dominant
//! overhead of the parallel Bowtie step (Fig. 10); callers that model time
//! should therefore charge the whole split to one serial clock.

use crate::error::{Error, Result};
use crate::fasta::Record;

/// A partition plan: for each output piece, the indices of input records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitPlan {
    /// `pieces[p]` lists indices (into the input record slice) assigned to
    /// piece `p`, in input order.
    pub pieces: Vec<Vec<usize>>,
}

impl SplitPlan {
    /// Number of pieces.
    pub fn n_pieces(&self) -> usize {
        self.pieces.len()
    }

    /// Total records across all pieces.
    pub fn total_records(&self) -> usize {
        self.pieces.iter().map(Vec::len).sum()
    }
}

/// Plan an even-by-bases split of `records` into `n` pieces.
///
/// Mirrors PyFasta's greedy strategy: records are assigned, in input order,
/// to the piece with the least accumulated bases so far (ties broken by the
/// lowest piece index, so the plan is deterministic). Every piece index
/// exists in the plan even if it receives no records (possible when there
/// are fewer records than pieces).
pub fn plan_split(records: &[Record], n: usize) -> Result<SplitPlan> {
    if n == 0 {
        return Err(Error::Format("cannot split into 0 pieces".into()));
    }
    let mut pieces = vec![Vec::new(); n];
    let mut load = vec![0usize; n];
    for (i, rec) in records.iter().enumerate() {
        // O(n) argmin is fine: n is the rank count (≤ a few hundred).
        let p = (0..n).min_by_key(|&p| (load[p], p)).expect("n > 0");
        pieces[p].push(i);
        load[p] += rec.seq.len();
    }
    Ok(SplitPlan { pieces })
}

/// Materialize a plan into per-piece record vectors (clones the records).
pub fn split_records(records: &[Record], n: usize) -> Result<Vec<Vec<Record>>> {
    let plan = plan_split(records, n)?;
    Ok(plan
        .pieces
        .iter()
        .map(|idxs| idxs.iter().map(|&i| records[i].clone()).collect())
        .collect())
}

/// Imbalance of a plan: `max_piece_bases / mean_piece_bases` (1.0 = perfect).
/// Returns 1.0 for degenerate inputs (no bases).
pub fn plan_imbalance(records: &[Record], plan: &SplitPlan) -> f64 {
    let loads: Vec<usize> = plan
        .pieces
        .iter()
        .map(|idxs| idxs.iter().map(|&i| records[i].seq.len()).sum())
        .collect();
    let total: usize = loads.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    let max = *loads.iter().max().expect("nonempty") as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(lens: &[usize]) -> Vec<Record> {
        lens.iter()
            .enumerate()
            .map(|(i, &l)| Record::new(format!("r{i}"), vec![b'A'; l]))
            .collect()
    }

    #[test]
    fn covers_every_record_exactly_once() {
        let records = recs(&[5, 1, 9, 2, 2, 7, 3]);
        let plan = plan_split(&records, 3).unwrap();
        let mut seen: Vec<usize> = plan.pieces.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..records.len()).collect::<Vec<_>>());
    }

    #[test]
    fn single_piece_gets_everything_in_order() {
        let records = recs(&[3, 1, 2]);
        let plan = plan_split(&records, 1).unwrap();
        assert_eq!(plan.pieces[0], vec![0, 1, 2]);
    }

    #[test]
    fn more_pieces_than_records() {
        let records = recs(&[4, 4]);
        let plan = plan_split(&records, 5).unwrap();
        assert_eq!(plan.n_pieces(), 5);
        assert_eq!(plan.total_records(), 2);
        assert!(plan.pieces.iter().filter(|p| p.is_empty()).count() == 3);
    }

    #[test]
    fn zero_pieces_is_an_error() {
        assert!(plan_split(&recs(&[1]), 0).is_err());
    }

    #[test]
    fn balances_by_bases_not_count() {
        // One huge record plus many tiny ones: the huge one should sit alone.
        let mut lens = vec![1000];
        lens.extend(std::iter::repeat(10).take(100));
        let records = recs(&lens);
        let plan = plan_split(&records, 2).unwrap();
        let piece_of_big = plan
            .pieces
            .iter()
            .position(|p| p.contains(&0))
            .expect("record 0 assigned");
        // The big record's piece should have far fewer records.
        let other = 1 - piece_of_big;
        assert!(plan.pieces[piece_of_big].len() < plan.pieces[other].len());
        assert!(plan_imbalance(&records, &plan) < 1.5);
    }

    #[test]
    fn uniform_records_split_evenly() {
        let records = recs(&[10; 64]);
        let plan = plan_split(&records, 8).unwrap();
        for piece in &plan.pieces {
            assert_eq!(piece.len(), 8);
        }
        assert!((plan_imbalance(&records, &plan) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn split_records_materializes_clones() {
        let records = recs(&[2, 4, 6]);
        let pieces = split_records(&records, 2).unwrap();
        let total: usize = pieces.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn imbalance_of_empty_input_is_one() {
        let records: Vec<Record> = vec![];
        let plan = plan_split(&records, 4).unwrap();
        assert_eq!(plan_imbalance(&records, &plan), 1.0);
    }

    #[test]
    fn deterministic() {
        let records = recs(&[7, 3, 3, 9, 1, 1, 4]);
        let a = plan_split(&records, 3).unwrap();
        let b = plan_split(&records, 3).unwrap();
        assert_eq!(a, b);
    }
}

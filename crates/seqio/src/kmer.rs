//! 2-bit packed k-mers, k ≤ 32.
//!
//! A [`Kmer`] packs up to 32 bases into a `u64`, most-significant-pair first,
//! so that integer ordering equals lexicographic ordering of the bases. This
//! is the representation used by the k-mer counter (Jellyfish substrate), the
//! Inchworm dictionary and the Chrysalis component maps.

use crate::alphabet::{base_to_code, code_to_base, complement_code};
use crate::error::{Error, Result};

/// A fixed-length DNA word, 2 bits per base, `k <= 32`.
///
/// The word is stored right-aligned: the last base occupies the two least
/// significant bits. Together with MSB-first packing this makes `Ord` on the
/// `(k, packed)` pair equal to lexicographic order for equal `k`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Kmer {
    packed: u64,
    k: u8,
}

impl Kmer {
    /// Maximum supported k.
    pub const MAX_K: usize = 32;

    /// Build from ASCII bases. Fails on non-ACGT bytes or bad `k`.
    pub fn from_bases(seq: &[u8]) -> Result<Self> {
        let k = seq.len();
        if k == 0 || k > Self::MAX_K {
            return Err(Error::InvalidK(k));
        }
        let mut packed = 0u64;
        for &b in seq {
            let code = base_to_code(b).ok_or(Error::InvalidBase(b))?;
            packed = (packed << 2) | code as u64;
        }
        Ok(Kmer { packed, k: k as u8 })
    }

    /// Build directly from a packed word. `packed` must only use the low
    /// `2k` bits.
    pub fn from_packed(packed: u64, k: usize) -> Result<Self> {
        if k == 0 || k > Self::MAX_K {
            return Err(Error::InvalidK(k));
        }
        if k < 32 && packed >> (2 * k) != 0 {
            return Err(Error::Format(format!(
                "packed value 0x{packed:x} has bits above 2k={}",
                2 * k
            )));
        }
        Ok(Kmer { packed, k: k as u8 })
    }

    /// Build from a packed word that is already known to be in range.
    ///
    /// Hot-path constructor used by the rolling iterators, which mask their
    /// words on every shift. Only debug-asserts the invariants that
    /// [`Kmer::from_packed`] checks; violating them corrupts ordering (not
    /// memory safety).
    #[inline(always)]
    pub fn from_packed_unchecked(packed: u64, k: usize) -> Self {
        debug_assert!((1..=Self::MAX_K).contains(&k));
        debug_assert!(k == 32 || packed >> (2 * k) == 0);
        Kmer { packed, k: k as u8 }
    }

    /// The packed 2-bit representation.
    #[inline(always)]
    pub fn packed(self) -> u64 {
        self.packed
    }

    /// Word length in bases.
    #[inline(always)]
    pub fn k(self) -> usize {
        self.k as usize
    }

    /// The 2-bit code of base `i` (0 = leftmost).
    #[inline(always)]
    pub fn code_at(self, i: usize) -> u8 {
        debug_assert!(i < self.k());
        ((self.packed >> (2 * (self.k() - 1 - i))) & 0b11) as u8
    }

    /// Decode into ASCII bases.
    pub fn bases(self) -> Vec<u8> {
        (0..self.k())
            .map(|i| code_to_base(self.code_at(i)))
            .collect()
    }

    /// Reverse complement of this k-mer.
    ///
    /// Branch-free: complement all 32 2-bit lanes at once (`!`), reverse the
    /// lane order with a shift/mask ladder (swap adjacent pairs, swap
    /// nibbles, then [`u64::swap_bytes`] for the byte level), and shift the
    /// `k` meaningful lanes back down to the LSB end. The complement turns
    /// the zero bits above `2k` into ones, but lane reversal moves exactly
    /// those lanes to the bottom where the final shift discards them.
    #[inline]
    pub fn revcomp(self) -> Self {
        let mut v = !self.packed;
        v = ((v >> 2) & 0x3333_3333_3333_3333) | ((v & 0x3333_3333_3333_3333) << 2);
        v = ((v >> 4) & 0x0F0F_0F0F_0F0F_0F0F) | ((v & 0x0F0F_0F0F_0F0F_0F0F) << 4);
        v = v.swap_bytes();
        Kmer {
            packed: v >> (2 * (32 - self.k())),
            k: self.k,
        }
    }

    /// The lexicographically smaller of this k-mer and its reverse complement.
    pub fn canonical(self) -> Self {
        let rc = self.revcomp();
        if rc.packed < self.packed {
            rc
        } else {
            self
        }
    }

    /// Shift one base onto the right end, dropping the leftmost base:
    /// the successor k-mer in a left-to-right scan.
    #[inline(always)]
    pub fn roll_right(self, code: u8) -> Self {
        let mask = if self.k() == 32 {
            u64::MAX
        } else {
            (1u64 << (2 * self.k())) - 1
        };
        Kmer {
            packed: ((self.packed << 2) | (code & 0b11) as u64) & mask,
            k: self.k,
        }
    }

    /// Shift one base onto the left end, dropping the rightmost base:
    /// the predecessor k-mer.
    #[inline(always)]
    pub fn roll_left(self, code: u8) -> Self {
        Kmer {
            packed: (self.packed >> 2) | (((code & 0b11) as u64) << (2 * (self.k() - 1))),
            k: self.k,
        }
    }

    /// The (k-1)-mer prefix (drops the last base). Requires `k >= 2`.
    pub fn prefix(self) -> Self {
        debug_assert!(self.k() >= 2);
        Kmer {
            packed: self.packed >> 2,
            k: self.k - 1,
        }
    }

    /// The (k-1)-mer suffix (drops the first base). Requires `k >= 2`.
    pub fn suffix(self) -> Self {
        debug_assert!(self.k() >= 2);
        let k1 = self.k() - 1;
        let mask = (1u64 << (2 * k1)) - 1;
        Kmer {
            packed: self.packed & mask,
            k: self.k - 1,
        }
    }
}

impl std::fmt::Debug for Kmer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Kmer({})", String::from_utf8_lossy(&self.bases()))
    }
}

impl std::fmt::Display for Kmer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.k() {
            write!(f, "{}", code_to_base(self.code_at(i)) as char)?;
        }
        Ok(())
    }
}

/// Streaming iterator over all valid k-mers of a byte sequence.
///
/// Windows containing a non-ACGT byte (e.g. `N`) are skipped; the iterator
/// resumes after the offending byte, exactly as Jellyfish and Inchworm do.
/// Yields `(offset, kmer)` pairs where `offset` is the 0-based start of the
/// window in the input.
pub struct KmerIter<'a> {
    seq: &'a [u8],
    k: usize,
    pos: usize,
    current: u64,
    /// Number of consecutive valid bases ending just before `pos`.
    run: usize,
    mask: u64,
}

impl<'a> KmerIter<'a> {
    /// Iterate over the k-mers of `seq`. Returns an error only for bad `k`.
    pub fn new(seq: &'a [u8], k: usize) -> Result<Self> {
        if k == 0 || k > Kmer::MAX_K {
            return Err(Error::InvalidK(k));
        }
        let mask = if k == 32 {
            u64::MAX
        } else {
            (1u64 << (2 * k)) - 1
        };
        Ok(KmerIter {
            seq,
            k,
            pos: 0,
            current: 0,
            run: 0,
            mask,
        })
    }
}

impl<'a> Iterator for KmerIter<'a> {
    type Item = (usize, Kmer);

    fn next(&mut self) -> Option<Self::Item> {
        while self.pos < self.seq.len() {
            let b = self.seq[self.pos];
            self.pos += 1;
            match base_to_code(b) {
                Some(code) => {
                    self.current = ((self.current << 2) | code as u64) & self.mask;
                    self.run += 1;
                    if self.run >= self.k {
                        let offset = self.pos - self.k;
                        return Some((
                            offset,
                            Kmer {
                                packed: self.current,
                                k: self.k as u8,
                            },
                        ));
                    }
                }
                None => {
                    self.run = 0;
                    self.current = 0;
                }
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.seq.len() - self.pos;
        // A remaining byte at index `pos + i` can complete a window only once
        // the valid run reaches length k, i.e. when `run + i + 1 >= k`. The
        // first `k - 1 - run` bytes therefore cannot yield, and each byte
        // after that yields at most one window.
        let needed = (self.k - 1).saturating_sub(self.run);
        (0, Some(remaining.saturating_sub(needed)))
    }
}

/// Incremental forward + reverse-complement canonical roller.
///
/// Feeding one 2-bit code per base maintains both the forward window
/// (`fwd = ((fwd << 2) | c) & mask`) and its reverse complement
/// (`rc = (rc >> 2) | (comp(c) << 2(k-1))`) in O(1), so the canonical form
/// `min(fwd, rc)` costs a compare instead of the O(k) per-window
/// reconstruction the naive path pays. Callers must [`RollState::reset`]
/// at non-ACGT bytes; the state refuses to emit until `k` consecutive codes
/// have been pushed since the last reset.
#[derive(Clone, Debug)]
pub struct RollState {
    k: u8,
    /// 2*(k-1): where the complement of an incoming base lands in `rc`.
    rc_shift: u8,
    run: u32,
    mask: u64,
    fwd: u64,
    rc: u64,
}

/// One complete window emitted by [`RollState::push`]: the forward word and
/// its reverse complement, both right-aligned in the low `2k` bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rolled {
    /// Forward-strand packed word.
    pub fwd: u64,
    /// Reverse-complement packed word.
    pub rc: u64,
}

impl Rolled {
    /// The canonical (lexicographically smaller) of the two strands.
    #[inline(always)]
    pub fn canonical_packed(self) -> u64 {
        self.fwd.min(self.rc)
    }

    /// True when the forward strand is canonical (ties count as forward).
    #[inline(always)]
    pub fn is_forward(self) -> bool {
        self.fwd <= self.rc
    }
}

impl RollState {
    /// Start an empty roller for window length `k`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 || k > Kmer::MAX_K {
            return Err(Error::InvalidK(k));
        }
        let mask = if k == 32 {
            u64::MAX
        } else {
            (1u64 << (2 * k)) - 1
        };
        Ok(RollState {
            k: k as u8,
            rc_shift: (2 * (k - 1)) as u8,
            run: 0,
            mask,
            fwd: 0,
            rc: 0,
        })
    }

    /// Window length.
    #[inline(always)]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// Forget all pushed codes (call when a non-ACGT byte breaks the run).
    #[inline(always)]
    pub fn reset(&mut self) {
        self.run = 0;
        self.fwd = 0;
        self.rc = 0;
    }

    /// Push one 2-bit code (must be `< 4`); returns the completed window
    /// once at least `k` codes have been pushed since the last reset.
    #[inline(always)]
    pub fn push(&mut self, code: u8) -> Option<Rolled> {
        debug_assert!(code < 4);
        self.fwd = ((self.fwd << 2) | code as u64) & self.mask;
        self.rc = (self.rc >> 2) | ((complement_code(code) as u64) << self.rc_shift);
        self.run += 1;
        (self.run >= self.k as u32).then_some(Rolled {
            fwd: self.fwd,
            rc: self.rc,
        })
    }
}

/// Iterator adapter yielding canonical k-mers (min of forward and revcomp).
///
/// Rolls both strands incrementally via [`RollState`] — O(1) amortized per
/// base — instead of reconstructing the reverse complement per window.
/// Windows containing non-ACGT bytes are skipped, exactly like [`KmerIter`].
pub struct CanonicalKmers<'a> {
    seq: &'a [u8],
    pos: usize,
    state: RollState,
    emitted: u64,
}

impl<'a> CanonicalKmers<'a> {
    /// Iterate over canonical k-mers of `seq`.
    pub fn new(seq: &'a [u8], k: usize) -> Result<Self> {
        Ok(CanonicalKmers {
            seq,
            pos: 0,
            state: RollState::new(k)?,
            emitted: 0,
        })
    }
}

impl<'a> Iterator for CanonicalKmers<'a> {
    type Item = (usize, Kmer);

    fn next(&mut self) -> Option<Self::Item> {
        while self.pos < self.seq.len() {
            let b = self.seq[self.pos];
            self.pos += 1;
            match base_to_code(b) {
                Some(code) => {
                    if let Some(rolled) = self.state.push(code) {
                        self.emitted += 1;
                        let k = self.state.k();
                        return Some((
                            self.pos - k,
                            Kmer::from_packed_unchecked(rolled.canonical_packed(), k),
                        ));
                    }
                }
                None => self.state.reset(),
            }
        }
        None
    }
}

impl<'a> Drop for CanonicalKmers<'a> {
    fn drop(&mut self) {
        crate::packed::add_rolled_windows(self.emitted);
    }
}

/// Count of valid k-mer windows in `seq` (convenience used by sizing code).
pub fn count_kmers(seq: &[u8], k: usize) -> usize {
    match KmerIter::new(seq, k) {
        Ok(it) => it.count(),
        Err(_) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        for s in [&b"A"[..], b"ACGT", b"TTTTTTTT", b"GATTACA"] {
            let km = Kmer::from_bases(s).unwrap();
            assert_eq!(km.bases(), s.to_vec());
            assert_eq!(km.k(), s.len());
        }
    }

    #[test]
    fn max_k_supported() {
        let s = vec![b'T'; 32];
        let km = Kmer::from_bases(&s).unwrap();
        assert_eq!(km.packed(), u64::MAX);
        assert_eq!(km.bases(), s);
        assert!(Kmer::from_bases(&vec![b'A'; 33]).is_err());
        assert!(Kmer::from_bases(b"").is_err());
    }

    #[test]
    fn rejects_invalid_bases() {
        assert!(matches!(
            Kmer::from_bases(b"ACNG"),
            Err(Error::InvalidBase(b'N'))
        ));
    }

    #[test]
    fn from_packed_validates_high_bits() {
        assert!(Kmer::from_packed(0b1111, 2).is_ok());
        assert!(Kmer::from_packed(0b1_1111, 2).is_err());
        let km = Kmer::from_packed(u64::MAX, 32).unwrap();
        assert_eq!(km.k(), 32);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Kmer::from_bases(b"AAAC").unwrap();
        let b = Kmer::from_bases(b"AACA").unwrap();
        let c = Kmer::from_bases(b"TTTT").unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn revcomp_known_values() {
        let km = Kmer::from_bases(b"ACGT").unwrap();
        assert_eq!(km.revcomp(), km); // palindrome
        let km = Kmer::from_bases(b"AAAA").unwrap();
        assert_eq!(km.revcomp().bases(), b"TTTT");
        let km = Kmer::from_bases(b"GATTACA").unwrap();
        assert_eq!(km.revcomp().bases(), b"TGTAATC");
    }

    #[test]
    fn canonical_is_min() {
        let km = Kmer::from_bases(b"TTTT").unwrap();
        assert_eq!(km.canonical().bases(), b"AAAA");
        let km = Kmer::from_bases(b"AAAA").unwrap();
        assert_eq!(km.canonical().bases(), b"AAAA");
    }

    #[test]
    fn roll_right_matches_window() {
        let seq = b"ACGTACGG";
        let k = 4;
        let mut km = Kmer::from_bases(&seq[..k]).unwrap();
        for i in 1..=seq.len() - k {
            let code = base_to_code(seq[i + k - 1]).unwrap();
            km = km.roll_right(code);
            assert_eq!(km, Kmer::from_bases(&seq[i..i + k]).unwrap());
        }
    }

    #[test]
    fn roll_left_matches_window() {
        let seq = b"ACGTACGG";
        let k = 4;
        let mut km = Kmer::from_bases(&seq[seq.len() - k..]).unwrap();
        for i in (0..seq.len() - k).rev() {
            let code = base_to_code(seq[i]).unwrap();
            km = km.roll_left(code);
            assert_eq!(km, Kmer::from_bases(&seq[i..i + k]).unwrap());
        }
    }

    #[test]
    fn prefix_suffix() {
        let km = Kmer::from_bases(b"ACGT").unwrap();
        assert_eq!(km.prefix().bases(), b"ACG");
        assert_eq!(km.suffix().bases(), b"CGT");
    }

    #[test]
    fn iter_skips_n_runs() {
        let seq = b"ACGTNACGT";
        let kmers: Vec<_> = KmerIter::new(seq, 3).unwrap().collect();
        // Windows: ACG, CGT from first run; ACG, CGT from second.
        assert_eq!(kmers.len(), 4);
        assert_eq!(kmers[0].0, 0);
        assert_eq!(kmers[2].0, 5);
        assert_eq!(kmers[2].1.bases(), b"ACG");
    }

    #[test]
    fn iter_short_sequence_yields_nothing() {
        assert_eq!(KmerIter::new(b"AC", 3).unwrap().count(), 0);
        assert_eq!(KmerIter::new(b"", 3).unwrap().count(), 0);
    }

    #[test]
    fn iter_full_coverage() {
        let seq = b"ACGTACGTAC";
        let k = 5;
        let got: Vec<_> = KmerIter::new(seq, k).unwrap().collect();
        assert_eq!(got.len(), seq.len() - k + 1);
        for (off, km) in got {
            assert_eq!(km.bases(), seq[off..off + k].to_vec());
        }
    }

    #[test]
    fn canonical_iter_matches_manual() {
        let seq = b"TTTTAAAA";
        let canon: Vec<_> = CanonicalKmers::new(seq, 4)
            .unwrap()
            .map(|(_, km)| km)
            .collect();
        let manual: Vec<_> = KmerIter::new(seq, 4)
            .unwrap()
            .map(|(_, km)| km.canonical())
            .collect();
        assert_eq!(canon, manual);
    }

    #[test]
    fn display_matches_bases() {
        let km = Kmer::from_bases(b"GATTACA").unwrap();
        assert_eq!(km.to_string(), "GATTACA");
        assert_eq!(format!("{km:?}"), "Kmer(GATTACA)");
    }

    #[test]
    fn count_kmers_helper() {
        assert_eq!(count_kmers(b"ACGTACGT", 4), 5);
        assert_eq!(count_kmers(b"ACGT", 99), 0);
    }

    /// Per-base reference implementation the bit-twiddled revcomp must match.
    fn naive_revcomp(km: Kmer) -> Kmer {
        let mut packed = 0u64;
        for i in 0..km.k() {
            packed |= (complement_code(km.code_at(i)) as u64) << (2 * i);
        }
        Kmer::from_packed(packed, km.k()).unwrap()
    }

    #[test]
    fn revcomp_matches_naive_reference() {
        // Deterministic pseudo-random words across every k, including the
        // k=32 boundary (shift by zero) and k=1 (garbage fills 62 bits).
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for k in 1..=32usize {
            for _ in 0..64 {
                x = x.wrapping_mul(0xd129_42e4_5bcf_5bd3).rotate_left(23) ^ 0x6a09_e667;
                let packed = if k == 32 {
                    x
                } else {
                    x & ((1u64 << (2 * k)) - 1)
                };
                let km = Kmer::from_packed(packed, k).unwrap();
                assert_eq!(km.revcomp(), naive_revcomp(km), "k={k} packed={packed:#x}");
                assert_eq!(km.revcomp().revcomp(), km, "revcomp is an involution");
            }
        }
    }

    #[test]
    fn rolling_canonical_matches_per_window_reference() {
        let seq = b"ACGTNNACGTACGTTTTGGGCCCANacgtACGTACGTACGTACGTACGTACGTACGTACGTA";
        for k in [1usize, 2, 4, 24, 31, 32] {
            let rolled: Vec<_> = CanonicalKmers::new(seq, k).unwrap().collect();
            let reference: Vec<_> = KmerIter::new(seq, k)
                .unwrap()
                .map(|(off, km)| (off, km.canonical()))
                .collect();
            assert_eq!(rolled, reference, "k={k}");
        }
    }

    #[test]
    fn roll_state_resets_clear_both_strands() {
        let mut st = RollState::new(2).unwrap();
        assert!(st.push(3).is_none()); // T
        assert_eq!(
            st.push(3).unwrap().canonical_packed(),
            Kmer::from_bases(b"AA").unwrap().packed() // canon(TT) = AA
        );
        st.reset();
        assert!(st.push(0).is_none(), "run restarts after reset");
        let r = st.push(1).unwrap(); // AC
        assert_eq!(r.fwd, Kmer::from_bases(b"AC").unwrap().packed());
        assert_eq!(r.rc, Kmer::from_bases(b"GT").unwrap().packed());
        assert!(r.is_forward());
    }

    #[test]
    fn size_hint_upper_bound_is_tight_and_sound() {
        let cases: [(&[u8], usize); 6] = [
            (b"ACGTACGTAC", 4),
            (b"ACGTNACGT", 3),
            (b"NNNNN", 2),
            (b"ACNGTNACGTACG", 5),
            (b"ACGT", 32),
            (b"A", 1),
        ];
        for (seq, k) in cases {
            let mut it = KmerIter::new(seq, k).unwrap();
            loop {
                let (lo, hi) = it.size_hint();
                let actual = {
                    let probe = KmerIter {
                        seq: it.seq,
                        k: it.k,
                        pos: it.pos,
                        current: it.current,
                        run: it.run,
                        mask: it.mask,
                    };
                    probe.count()
                };
                let hi = hi.expect("upper bound is always known");
                assert!(
                    lo <= actual && actual <= hi,
                    "{seq:?} k={k}: {lo}..{actual}..{hi}"
                );
                if it.next().is_none() {
                    break;
                }
            }
            // Strict-DNA sequences: the bound is exact from the start.
            if seq.iter().all(|&b| base_to_code(b).is_some()) {
                let it = KmerIter::new(seq, k).unwrap();
                assert_eq!(it.size_hint().1.unwrap(), seq.len().saturating_sub(k - 1));
            }
        }
    }
}

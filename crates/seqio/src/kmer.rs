//! 2-bit packed k-mers, k ≤ 32.
//!
//! A [`Kmer`] packs up to 32 bases into a `u64`, most-significant-pair first,
//! so that integer ordering equals lexicographic ordering of the bases. This
//! is the representation used by the k-mer counter (Jellyfish substrate), the
//! Inchworm dictionary and the Chrysalis component maps.

use crate::alphabet::{base_to_code, code_to_base, complement_code};
use crate::error::{Error, Result};

/// A fixed-length DNA word, 2 bits per base, `k <= 32`.
///
/// The word is stored right-aligned: the last base occupies the two least
/// significant bits. Together with MSB-first packing this makes `Ord` on the
/// `(k, packed)` pair equal to lexicographic order for equal `k`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Kmer {
    packed: u64,
    k: u8,
}

impl Kmer {
    /// Maximum supported k.
    pub const MAX_K: usize = 32;

    /// Build from ASCII bases. Fails on non-ACGT bytes or bad `k`.
    pub fn from_bases(seq: &[u8]) -> Result<Self> {
        let k = seq.len();
        if k == 0 || k > Self::MAX_K {
            return Err(Error::InvalidK(k));
        }
        let mut packed = 0u64;
        for &b in seq {
            let code = base_to_code(b).ok_or(Error::InvalidBase(b))?;
            packed = (packed << 2) | code as u64;
        }
        Ok(Kmer { packed, k: k as u8 })
    }

    /// Build directly from a packed word. `packed` must only use the low
    /// `2k` bits.
    pub fn from_packed(packed: u64, k: usize) -> Result<Self> {
        if k == 0 || k > Self::MAX_K {
            return Err(Error::InvalidK(k));
        }
        if k < 32 && packed >> (2 * k) != 0 {
            return Err(Error::Format(format!(
                "packed value 0x{packed:x} has bits above 2k={}",
                2 * k
            )));
        }
        Ok(Kmer { packed, k: k as u8 })
    }

    /// The packed 2-bit representation.
    #[inline(always)]
    pub fn packed(self) -> u64 {
        self.packed
    }

    /// Word length in bases.
    #[inline(always)]
    pub fn k(self) -> usize {
        self.k as usize
    }

    /// The 2-bit code of base `i` (0 = leftmost).
    #[inline(always)]
    pub fn code_at(self, i: usize) -> u8 {
        debug_assert!(i < self.k());
        ((self.packed >> (2 * (self.k() - 1 - i))) & 0b11) as u8
    }

    /// Decode into ASCII bases.
    pub fn bases(self) -> Vec<u8> {
        (0..self.k())
            .map(|i| code_to_base(self.code_at(i)))
            .collect()
    }

    /// Reverse complement of this k-mer.
    pub fn revcomp(self) -> Self {
        let mut packed = 0u64;
        for i in 0..self.k() {
            let code = complement_code(self.code_at(i));
            packed |= (code as u64) << (2 * i);
        }
        Kmer { packed, k: self.k }
    }

    /// The lexicographically smaller of this k-mer and its reverse complement.
    pub fn canonical(self) -> Self {
        let rc = self.revcomp();
        if rc.packed < self.packed {
            rc
        } else {
            self
        }
    }

    /// Shift one base onto the right end, dropping the leftmost base:
    /// the successor k-mer in a left-to-right scan.
    #[inline(always)]
    pub fn roll_right(self, code: u8) -> Self {
        let mask = if self.k() == 32 {
            u64::MAX
        } else {
            (1u64 << (2 * self.k())) - 1
        };
        Kmer {
            packed: ((self.packed << 2) | (code & 0b11) as u64) & mask,
            k: self.k,
        }
    }

    /// Shift one base onto the left end, dropping the rightmost base:
    /// the predecessor k-mer.
    #[inline(always)]
    pub fn roll_left(self, code: u8) -> Self {
        Kmer {
            packed: (self.packed >> 2) | (((code & 0b11) as u64) << (2 * (self.k() - 1))),
            k: self.k,
        }
    }

    /// The (k-1)-mer prefix (drops the last base). Requires `k >= 2`.
    pub fn prefix(self) -> Self {
        debug_assert!(self.k() >= 2);
        Kmer {
            packed: self.packed >> 2,
            k: self.k - 1,
        }
    }

    /// The (k-1)-mer suffix (drops the first base). Requires `k >= 2`.
    pub fn suffix(self) -> Self {
        debug_assert!(self.k() >= 2);
        let k1 = self.k() - 1;
        let mask = (1u64 << (2 * k1)) - 1;
        Kmer {
            packed: self.packed & mask,
            k: self.k - 1,
        }
    }
}

impl std::fmt::Debug for Kmer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Kmer({})", String::from_utf8_lossy(&self.bases()))
    }
}

impl std::fmt::Display for Kmer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.k() {
            write!(f, "{}", code_to_base(self.code_at(i)) as char)?;
        }
        Ok(())
    }
}

/// Streaming iterator over all valid k-mers of a byte sequence.
///
/// Windows containing a non-ACGT byte (e.g. `N`) are skipped; the iterator
/// resumes after the offending byte, exactly as Jellyfish and Inchworm do.
/// Yields `(offset, kmer)` pairs where `offset` is the 0-based start of the
/// window in the input.
pub struct KmerIter<'a> {
    seq: &'a [u8],
    k: usize,
    pos: usize,
    current: u64,
    /// Number of consecutive valid bases ending just before `pos`.
    run: usize,
    mask: u64,
}

impl<'a> KmerIter<'a> {
    /// Iterate over the k-mers of `seq`. Returns an error only for bad `k`.
    pub fn new(seq: &'a [u8], k: usize) -> Result<Self> {
        if k == 0 || k > Kmer::MAX_K {
            return Err(Error::InvalidK(k));
        }
        let mask = if k == 32 {
            u64::MAX
        } else {
            (1u64 << (2 * k)) - 1
        };
        Ok(KmerIter {
            seq,
            k,
            pos: 0,
            current: 0,
            run: 0,
            mask,
        })
    }
}

impl<'a> Iterator for KmerIter<'a> {
    type Item = (usize, Kmer);

    fn next(&mut self) -> Option<Self::Item> {
        while self.pos < self.seq.len() {
            let b = self.seq[self.pos];
            self.pos += 1;
            match base_to_code(b) {
                Some(code) => {
                    self.current = ((self.current << 2) | code as u64) & self.mask;
                    self.run += 1;
                    if self.run >= self.k {
                        let offset = self.pos - self.k;
                        return Some((
                            offset,
                            Kmer {
                                packed: self.current,
                                k: self.k as u8,
                            },
                        ));
                    }
                }
                None => {
                    self.run = 0;
                    self.current = 0;
                }
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.seq.len() - self.pos;
        // Upper bound: every remaining byte could complete a window.
        (0, Some(remaining + self.run))
    }
}

/// Iterator adapter yielding canonical k-mers (min of forward and revcomp).
pub struct CanonicalKmers<'a>(KmerIter<'a>);

impl<'a> CanonicalKmers<'a> {
    /// Iterate over canonical k-mers of `seq`.
    pub fn new(seq: &'a [u8], k: usize) -> Result<Self> {
        Ok(CanonicalKmers(KmerIter::new(seq, k)?))
    }
}

impl<'a> Iterator for CanonicalKmers<'a> {
    type Item = (usize, Kmer);

    fn next(&mut self) -> Option<Self::Item> {
        self.0.next().map(|(off, km)| (off, km.canonical()))
    }
}

/// Count of valid k-mer windows in `seq` (convenience used by sizing code).
pub fn count_kmers(seq: &[u8], k: usize) -> usize {
    match KmerIter::new(seq, k) {
        Ok(it) => it.count(),
        Err(_) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        for s in [&b"A"[..], b"ACGT", b"TTTTTTTT", b"GATTACA"] {
            let km = Kmer::from_bases(s).unwrap();
            assert_eq!(km.bases(), s.to_vec());
            assert_eq!(km.k(), s.len());
        }
    }

    #[test]
    fn max_k_supported() {
        let s = vec![b'T'; 32];
        let km = Kmer::from_bases(&s).unwrap();
        assert_eq!(km.packed(), u64::MAX);
        assert_eq!(km.bases(), s);
        assert!(Kmer::from_bases(&vec![b'A'; 33]).is_err());
        assert!(Kmer::from_bases(b"").is_err());
    }

    #[test]
    fn rejects_invalid_bases() {
        assert!(matches!(
            Kmer::from_bases(b"ACNG"),
            Err(Error::InvalidBase(b'N'))
        ));
    }

    #[test]
    fn from_packed_validates_high_bits() {
        assert!(Kmer::from_packed(0b1111, 2).is_ok());
        assert!(Kmer::from_packed(0b1_1111, 2).is_err());
        let km = Kmer::from_packed(u64::MAX, 32).unwrap();
        assert_eq!(km.k(), 32);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Kmer::from_bases(b"AAAC").unwrap();
        let b = Kmer::from_bases(b"AACA").unwrap();
        let c = Kmer::from_bases(b"TTTT").unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn revcomp_known_values() {
        let km = Kmer::from_bases(b"ACGT").unwrap();
        assert_eq!(km.revcomp(), km); // palindrome
        let km = Kmer::from_bases(b"AAAA").unwrap();
        assert_eq!(km.revcomp().bases(), b"TTTT");
        let km = Kmer::from_bases(b"GATTACA").unwrap();
        assert_eq!(km.revcomp().bases(), b"TGTAATC");
    }

    #[test]
    fn canonical_is_min() {
        let km = Kmer::from_bases(b"TTTT").unwrap();
        assert_eq!(km.canonical().bases(), b"AAAA");
        let km = Kmer::from_bases(b"AAAA").unwrap();
        assert_eq!(km.canonical().bases(), b"AAAA");
    }

    #[test]
    fn roll_right_matches_window() {
        let seq = b"ACGTACGG";
        let k = 4;
        let mut km = Kmer::from_bases(&seq[..k]).unwrap();
        for i in 1..=seq.len() - k {
            let code = base_to_code(seq[i + k - 1]).unwrap();
            km = km.roll_right(code);
            assert_eq!(km, Kmer::from_bases(&seq[i..i + k]).unwrap());
        }
    }

    #[test]
    fn roll_left_matches_window() {
        let seq = b"ACGTACGG";
        let k = 4;
        let mut km = Kmer::from_bases(&seq[seq.len() - k..]).unwrap();
        for i in (0..seq.len() - k).rev() {
            let code = base_to_code(seq[i]).unwrap();
            km = km.roll_left(code);
            assert_eq!(km, Kmer::from_bases(&seq[i..i + k]).unwrap());
        }
    }

    #[test]
    fn prefix_suffix() {
        let km = Kmer::from_bases(b"ACGT").unwrap();
        assert_eq!(km.prefix().bases(), b"ACG");
        assert_eq!(km.suffix().bases(), b"CGT");
    }

    #[test]
    fn iter_skips_n_runs() {
        let seq = b"ACGTNACGT";
        let kmers: Vec<_> = KmerIter::new(seq, 3).unwrap().collect();
        // Windows: ACG, CGT from first run; ACG, CGT from second.
        assert_eq!(kmers.len(), 4);
        assert_eq!(kmers[0].0, 0);
        assert_eq!(kmers[2].0, 5);
        assert_eq!(kmers[2].1.bases(), b"ACG");
    }

    #[test]
    fn iter_short_sequence_yields_nothing() {
        assert_eq!(KmerIter::new(b"AC", 3).unwrap().count(), 0);
        assert_eq!(KmerIter::new(b"", 3).unwrap().count(), 0);
    }

    #[test]
    fn iter_full_coverage() {
        let seq = b"ACGTACGTAC";
        let k = 5;
        let got: Vec<_> = KmerIter::new(seq, k).unwrap().collect();
        assert_eq!(got.len(), seq.len() - k + 1);
        for (off, km) in got {
            assert_eq!(km.bases(), seq[off..off + k].to_vec());
        }
    }

    #[test]
    fn canonical_iter_matches_manual() {
        let seq = b"TTTTAAAA";
        let canon: Vec<_> = CanonicalKmers::new(seq, 4)
            .unwrap()
            .map(|(_, km)| km)
            .collect();
        let manual: Vec<_> = KmerIter::new(seq, 4)
            .unwrap()
            .map(|(_, km)| km.canonical())
            .collect();
        assert_eq!(canon, manual);
    }

    #[test]
    fn display_matches_bases() {
        let km = Kmer::from_bases(b"GATTACA").unwrap();
        assert_eq!(km.to_string(), "GATTACA");
        assert_eq!(format!("{km:?}"), "Kmer(GATTACA)");
    }

    #[test]
    fn count_kmers_helper() {
        assert_eq!(count_kmers(b"ACGTACGT", 4), 5);
        assert_eq!(count_kmers(b"ACGT", 99), 0);
    }
}

//! Sequence I/O substrate for the `trinity-hpc` workspace.
//!
//! This crate provides the low-level pieces every other stage of the pipeline
//! builds on:
//!
//! * [`alphabet`] — the DNA alphabet, complementation and validation;
//! * [`kmer`] — 2-bit packed k-mers (k ≤ 32) with canonical forms and
//!   streaming extraction from arbitrary byte sequences;
//! * [`packed`] — whole sequences packed 2 bits/base with an N-run index,
//!   encoded once at ingest, plus rolling canonical k-mer iterators
//!   (O(1) amortized per base) that every hot stage consumes;
//! * [`fasta`] / [`fastq`] — record types, readers and writers for the two
//!   interchange formats the Trinity pipeline moves data through;
//! * [`splitter`] — a PyFasta-equivalent even-by-bases partitioner used by
//!   the distributed Bowtie step;
//! * [`stats`] — assembly statistics (N50 and friends) used by reports.
//!
//! All parsing is byte-oriented (no UTF-8 validation on sequence data) and
//! buffered, per the I/O guidance for HPC Rust.

pub mod alphabet;
pub mod error;
pub mod fasta;
pub mod fastq;
pub mod kmer;
pub mod packed;
pub mod splitter;
pub mod stats;

pub use error::{Error, Result};
pub use fasta::{FastaReader, FastaWriter, Record};
pub use fastq::{FastqReader, FastqRecord, FastqWriter};
pub use kmer::{CanonicalKmers, Kmer, KmerIter, RollState, Rolled};
pub use packed::{PackedSeq, SeqioStats};

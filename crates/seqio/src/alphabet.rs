//! The DNA alphabet: encoding, complementation and validation.
//!
//! Sequences travel through the pipeline as raw `&[u8]` ASCII. The 2-bit
//! code (`A=0, C=1, G=2, T=3`) defined here is the packing used by
//! [`crate::kmer::Kmer`] and by the FM-index in the `bowtie` crate.

use crate::error::{Error, Result};

/// Number of symbols in the strict DNA alphabet.
pub const ALPHABET_SIZE: usize = 4;

/// The four bases in code order.
pub const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Map an ASCII base (case-insensitive) to its 2-bit code.
///
/// Returns `None` for `N` and any other non-ACGT byte.
#[inline(always)]
pub fn base_to_code(b: u8) -> Option<u8> {
    match b {
        b'A' | b'a' => Some(0),
        b'C' | b'c' => Some(1),
        b'G' | b'g' => Some(2),
        b'T' | b't' => Some(3),
        _ => None,
    }
}

/// Map a 2-bit code back to its uppercase ASCII base.
///
/// # Panics
/// Debug-asserts that `code < 4`; in release the low two bits are used.
#[inline(always)]
pub fn code_to_base(code: u8) -> u8 {
    BASES[(code & 0b11) as usize]
}

/// Complement of a 2-bit code (`A<->T`, `C<->G`): bitwise NOT of the low 2 bits.
#[inline(always)]
pub fn complement_code(code: u8) -> u8 {
    (!code) & 0b11
}

/// Complement an ASCII base, preserving unknown bytes (`N -> N`).
#[inline(always)]
pub fn complement_base(b: u8) -> u8 {
    match b {
        b'A' | b'a' => b'T',
        b'C' | b'c' => b'G',
        b'G' | b'g' => b'C',
        b'T' | b't' => b'A',
        other => other,
    }
}

/// Reverse-complement a sequence into a fresh vector.
pub fn revcomp(seq: &[u8]) -> Vec<u8> {
    seq.iter().rev().map(|&b| complement_base(b)).collect()
}

/// Reverse-complement a sequence in place (no allocation).
pub fn revcomp_in_place(seq: &mut [u8]) {
    let n = seq.len();
    for i in 0..n / 2 {
        let (a, b) = (seq[i], seq[n - 1 - i]);
        seq[i] = complement_base(b);
        seq[n - 1 - i] = complement_base(a);
    }
    if n % 2 == 1 {
        let mid = n / 2;
        seq[mid] = complement_base(seq[mid]);
    }
}

/// True if every byte is a strict `ACGT` base (case-insensitive).
pub fn is_strict_dna(seq: &[u8]) -> bool {
    seq.iter().all(|&b| base_to_code(b).is_some())
}

/// Validate a sequence allowing `N`/`n` wildcards; returns the first
/// offending byte otherwise.
pub fn validate_dna(seq: &[u8]) -> Result<()> {
    for &b in seq {
        if base_to_code(b).is_none() && b != b'N' && b != b'n' {
            return Err(Error::InvalidBase(b));
        }
    }
    Ok(())
}

/// Uppercase a sequence in place (ASCII only).
pub fn uppercase_in_place(seq: &mut [u8]) {
    for b in seq.iter_mut() {
        *b = b.to_ascii_uppercase();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for (i, &b) in BASES.iter().enumerate() {
            assert_eq!(base_to_code(b), Some(i as u8));
            assert_eq!(base_to_code(b.to_ascii_lowercase()), Some(i as u8));
            assert_eq!(code_to_base(i as u8), b);
        }
        assert_eq!(base_to_code(b'N'), None);
        assert_eq!(base_to_code(b'-'), None);
    }

    #[test]
    fn complement_code_pairs() {
        assert_eq!(complement_code(0), 3); // A -> T
        assert_eq!(complement_code(3), 0);
        assert_eq!(complement_code(1), 2); // C -> G
        assert_eq!(complement_code(2), 1);
    }

    #[test]
    fn complement_base_preserves_n() {
        assert_eq!(complement_base(b'N'), b'N');
        assert_eq!(complement_base(b'a'), b'T');
    }

    #[test]
    fn revcomp_known() {
        assert_eq!(revcomp(b"ACGT"), b"ACGT".to_vec());
        assert_eq!(revcomp(b"AACC"), b"GGTT".to_vec());
        assert_eq!(revcomp(b""), Vec::<u8>::new());
        assert_eq!(revcomp(b"G"), b"C".to_vec());
    }

    #[test]
    fn revcomp_in_place_matches_alloc_version() {
        let cases: [&[u8]; 4] = [b"A", b"ACGTN", b"GGGCCCAT", b"TTTTT"];
        for case in cases {
            let mut v = case.to_vec();
            revcomp_in_place(&mut v);
            assert_eq!(v, revcomp(case));
        }
    }

    #[test]
    fn validation() {
        assert!(is_strict_dna(b"ACGTacgt"));
        assert!(!is_strict_dna(b"ACGN"));
        assert!(validate_dna(b"ACGTN").is_ok());
        assert!(matches!(
            validate_dna(b"ACGT-"),
            Err(Error::InvalidBase(b'-'))
        ));
    }

    #[test]
    fn uppercase() {
        let mut v = b"acGt".to_vec();
        uppercase_in_place(&mut v);
        assert_eq!(v, b"ACGT");
    }
}

//! Assembly statistics: length distributions, N50 and friends.
//!
//! Used by the pipeline reports and by the validation experiments to
//! summarise contig and transcript sets.

/// Summary statistics over a set of sequence lengths.
#[derive(Debug, Clone, PartialEq)]
pub struct LengthStats {
    /// Number of sequences.
    pub count: usize,
    /// Total bases.
    pub total: usize,
    /// Shortest sequence (0 if empty set).
    pub min: usize,
    /// Longest sequence (0 if empty set).
    pub max: usize,
    /// Mean length (0.0 if empty set).
    pub mean: f64,
    /// Median length (0 if empty set).
    pub median: usize,
    /// N50: length L such that sequences of length >= L cover >= half the
    /// total bases.
    pub n50: usize,
}

/// Compute [`LengthStats`] from an iterator of lengths.
pub fn length_stats<I: IntoIterator<Item = usize>>(lengths: I) -> LengthStats {
    let mut v: Vec<usize> = lengths.into_iter().collect();
    if v.is_empty() {
        return LengthStats {
            count: 0,
            total: 0,
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
            n50: 0,
        };
    }
    v.sort_unstable();
    let count = v.len();
    let total: usize = v.iter().sum();
    let min = v[0];
    let max = v[count - 1];
    let mean = total as f64 / count as f64;
    let median = if count % 2 == 1 {
        v[count / 2]
    } else {
        (v[count / 2 - 1] + v[count / 2]) / 2
    };
    // N50: walk from the longest down until half the bases are covered.
    let half = total.div_ceil(2);
    let mut acc = 0usize;
    let mut n50 = 0usize;
    for &len in v.iter().rev() {
        acc += len;
        if acc >= half {
            n50 = len;
            break;
        }
    }
    LengthStats {
        count,
        total,
        min,
        max,
        mean,
        median,
        n50,
    }
}

/// GC fraction of a sequence (ignores non-ACGT bytes). Returns 0.0 for
/// sequences with no ACGT content.
pub fn gc_content(seq: &[u8]) -> f64 {
    let mut gc = 0usize;
    let mut at = 0usize;
    for &b in seq {
        match b {
            b'G' | b'g' | b'C' | b'c' => gc += 1,
            b'A' | b'a' | b'T' | b't' => at += 1,
            _ => {}
        }
    }
    if gc + at == 0 {
        0.0
    } else {
        gc as f64 / (gc + at) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set() {
        let s = length_stats(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.n50, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sequence() {
        let s = length_stats([100]);
        assert_eq!(s.count, 1);
        assert_eq!(s.total, 100);
        assert_eq!(s.min, 100);
        assert_eq!(s.max, 100);
        assert_eq!(s.median, 100);
        assert_eq!(s.n50, 100);
    }

    #[test]
    fn classic_n50_example() {
        // Lengths 2,3,4,5,6: total 20, half 10; from longest: 6+5=11 >= 10
        // so N50 = 5.
        let s = length_stats([2, 3, 4, 5, 6]);
        assert_eq!(s.n50, 5);
        assert_eq!(s.median, 4);
        assert_eq!(s.total, 20);
    }

    #[test]
    fn even_count_median_averages() {
        let s = length_stats([1, 3, 5, 7]);
        assert_eq!(s.median, 4);
    }

    #[test]
    fn n50_at_least_median_for_skewed() {
        let s = length_stats([1, 1, 1, 1, 100]);
        assert_eq!(s.n50, 100);
    }

    #[test]
    fn gc() {
        assert_eq!(gc_content(b"GGCC"), 1.0);
        assert_eq!(gc_content(b"AATT"), 0.0);
        assert!((gc_content(b"ACGT") - 0.5).abs() < 1e-12);
        assert_eq!(gc_content(b"NNN"), 0.0);
        assert!((gc_content(b"GcNat") - 0.5).abs() < 1e-12);
    }
}

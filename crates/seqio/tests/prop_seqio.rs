//! Property-based tests for the sequence substrate.

use proptest::prelude::*;
use seqio::alphabet::{revcomp, revcomp_in_place};
use seqio::fasta::{parse_fasta, to_fasta_bytes, Record};
use seqio::kmer::{Kmer, KmerIter};
use seqio::splitter::plan_split;

use seqio::fasta::Record as FaRecord;

fn dna_strict() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')],
        0..200,
    )
}

fn dna_with_n() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T'), Just(b'N')],
        0..200,
    )
}

proptest! {
    #[test]
    fn revcomp_is_involution(seq in dna_with_n()) {
        prop_assert_eq!(revcomp(&revcomp(&seq)), seq);
    }

    #[test]
    fn revcomp_in_place_matches(seq in dna_with_n()) {
        let mut v = seq.clone();
        revcomp_in_place(&mut v);
        prop_assert_eq!(v, revcomp(&seq));
    }

    #[test]
    fn kmer_pack_round_trip(seq in dna_strict().prop_filter("nonempty", |s| !s.is_empty())) {
        let take = seq.len().min(32);
        let km = Kmer::from_bases(&seq[..take]).unwrap();
        prop_assert_eq!(km.bases(), seq[..take].to_vec());
    }

    #[test]
    fn kmer_revcomp_involution(seq in dna_strict().prop_filter("len>=1", |s| !s.is_empty())) {
        let take = seq.len().min(32);
        let km = Kmer::from_bases(&seq[..take]).unwrap();
        prop_assert_eq!(km.revcomp().revcomp(), km);
    }

    #[test]
    fn canonical_idempotent(seq in dna_strict().prop_filter("len>=1", |s| !s.is_empty())) {
        let take = seq.len().min(32);
        let km = Kmer::from_bases(&seq[..take]).unwrap();
        prop_assert_eq!(km.canonical().canonical(), km.canonical());
        prop_assert!(km.canonical() <= km);
    }

    #[test]
    fn kmer_iter_windows_match_slices(seq in dna_with_n(), k in 1usize..16) {
        for (off, km) in KmerIter::new(&seq, k).unwrap() {
            prop_assert_eq!(km.bases(), seq[off..off + k].to_vec());
        }
    }

    #[test]
    fn kmer_iter_count_on_clean_dna(seq in dna_strict(), k in 1usize..16) {
        let n = KmerIter::new(&seq, k).unwrap().count();
        let expect = seq.len().saturating_sub(k - 1);
        prop_assert_eq!(n, expect);
    }

    #[test]
    fn fasta_round_trip(
        ids in proptest::collection::vec("[a-zA-Z0-9_.-]{1,12}", 1..8),
        seqs in proptest::collection::vec(dna_with_n(), 1..8),
    ) {
        let n = ids.len().min(seqs.len());
        let records: Vec<Record> = (0..n)
            .map(|i| Record::new(ids[i].clone(), seqs[i].clone()))
            .collect();
        let bytes = to_fasta_bytes(&records);
        prop_assert_eq!(parse_fasta(&bytes).unwrap(), records);
    }

    #[test]
    fn split_partition_property(lens in proptest::collection::vec(0usize..500, 0..60), n in 1usize..12) {
        let records: Vec<FaRecord> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| FaRecord::new(format!("r{i}"), vec![b'A'; l]))
            .collect();
        let plan = plan_split(&records, n).unwrap();
        prop_assert_eq!(plan.n_pieces(), n);
        let mut seen: Vec<usize> = plan.pieces.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expect: Vec<usize> = (0..records.len()).collect();
        prop_assert_eq!(seen, expect);
        // Greedy bound: max load <= mean + max item length.
        let loads: Vec<usize> = plan
            .pieces
            .iter()
            .map(|p| p.iter().map(|&i| records[i].seq.len()).sum::<usize>())
            .collect();
        let total: usize = loads.iter().sum();
        let maxlen = lens.iter().copied().max().unwrap_or(0);
        let bound = total / n + maxlen;
        prop_assert!(loads.iter().all(|&l| l <= bound));
    }
}

//! Property-based tests for the sequence substrate.

use proptest::prelude::*;
use seqio::alphabet::{base_to_code, complement_code, revcomp, revcomp_in_place};
use seqio::fasta::{parse_fasta, to_fasta_bytes, Record};
use seqio::kmer::{CanonicalKmers, Kmer, KmerIter};
use seqio::packed::PackedSeq;
use seqio::splitter::plan_split;

use seqio::fasta::Record as FaRecord;

fn dna_strict() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')],
        0..200,
    )
}

fn dna_with_n() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T'), Just(b'N')],
        0..200,
    )
}

/// Mixed-case DNA with embedded N-runs and stray junk bytes — the messiest
/// input the packed encoder must normalize.
fn dna_messy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            Just(b'A'),
            Just(b'c'),
            Just(b'G'),
            Just(b't'),
            Just(b'N'),
            Just(b'n'),
            Just(b'-'),
        ],
        0..200,
    )
}

/// The k values the tentpole cares about: tiny, the pipeline defaults, and
/// both sides of the k=32 word boundary.
fn interesting_k() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1), Just(2), Just(24), Just(25), Just(31), Just(32)]
}

/// Naive per-window reverse complement — the reference the bit-twiddled
/// `Kmer::revcomp` must reproduce exactly.
fn naive_revcomp(km: Kmer) -> Kmer {
    let mut packed = 0u64;
    for i in 0..km.k() {
        packed |= (complement_code(km.code_at(i)) as u64) << (2 * i);
    }
    Kmer::from_packed(packed, km.k()).unwrap()
}

/// What `PackedSeq::decode` must return: uppercase ACGT, everything else N.
fn normalize(seq: &[u8]) -> Vec<u8> {
    seq.iter()
        .map(|&b| match base_to_code(b) {
            Some(c) => b"ACGT"[c as usize],
            None => b'N',
        })
        .collect()
}

proptest! {
    #[test]
    fn revcomp_is_involution(seq in dna_with_n()) {
        prop_assert_eq!(revcomp(&revcomp(&seq)), seq);
    }

    #[test]
    fn revcomp_in_place_matches(seq in dna_with_n()) {
        let mut v = seq.clone();
        revcomp_in_place(&mut v);
        prop_assert_eq!(v, revcomp(&seq));
    }

    #[test]
    fn kmer_pack_round_trip(seq in dna_strict().prop_filter("nonempty", |s| !s.is_empty())) {
        let take = seq.len().min(32);
        let km = Kmer::from_bases(&seq[..take]).unwrap();
        prop_assert_eq!(km.bases(), seq[..take].to_vec());
    }

    #[test]
    fn kmer_revcomp_involution(seq in dna_strict().prop_filter("len>=1", |s| !s.is_empty())) {
        let take = seq.len().min(32);
        let km = Kmer::from_bases(&seq[..take]).unwrap();
        prop_assert_eq!(km.revcomp().revcomp(), km);
    }

    #[test]
    fn canonical_idempotent(seq in dna_strict().prop_filter("len>=1", |s| !s.is_empty())) {
        let take = seq.len().min(32);
        let km = Kmer::from_bases(&seq[..take]).unwrap();
        prop_assert_eq!(km.canonical().canonical(), km.canonical());
        prop_assert!(km.canonical() <= km);
    }

    #[test]
    fn kmer_iter_windows_match_slices(seq in dna_with_n(), k in 1usize..16) {
        for (off, km) in KmerIter::new(&seq, k).unwrap() {
            prop_assert_eq!(km.bases(), seq[off..off + k].to_vec());
        }
    }

    #[test]
    fn kmer_iter_count_on_clean_dna(seq in dna_strict(), k in 1usize..16) {
        let n = KmerIter::new(&seq, k).unwrap().count();
        let expect = seq.len().saturating_sub(k - 1);
        prop_assert_eq!(n, expect);
    }

    #[test]
    fn bit_twiddled_revcomp_matches_naive(packed in any::<u64>(), k in interesting_k()) {
        let packed = if k == 32 { packed } else { packed & ((1u64 << (2 * k)) - 1) };
        let km = Kmer::from_packed(packed, k).unwrap();
        prop_assert_eq!(km.revcomp(), naive_revcomp(km));
    }

    #[test]
    fn rolling_canonical_matches_naive_reference(seq in dna_with_n(), k in interesting_k()) {
        let rolled: Vec<_> = CanonicalKmers::new(&seq, k).unwrap().collect();
        let reference: Vec<_> = KmerIter::new(&seq, k)
            .unwrap()
            .map(|(off, km)| (off, naive_revcomp(km).min(km)))
            .collect();
        prop_assert_eq!(rolled, reference);
    }

    #[test]
    fn packed_seq_round_trips(seq in dna_messy()) {
        let p = PackedSeq::from_bytes(&seq);
        prop_assert_eq!(p.len(), seq.len());
        prop_assert_eq!(p.decode(), normalize(&seq));
        // Re-encoding the normalized form is a fixed point.
        let p2 = PackedSeq::from_bytes(&p.decode());
        prop_assert_eq!(p2.decode(), p.decode());
        prop_assert_eq!(p2.runs(), p.runs());
    }

    #[test]
    fn packed_iterators_match_byte_iterators(seq in dna_messy(), k in interesting_k()) {
        let p = PackedSeq::from_bytes(&seq);
        let fwd: Vec<_> = p.kmers(k).unwrap().collect();
        let fwd_ref: Vec<_> = KmerIter::new(&seq, k).unwrap().collect();
        prop_assert_eq!(fwd, fwd_ref);

        let canon: Vec<_> = p.canonical_kmers(k).unwrap().collect();
        let canon_ref: Vec<_> = CanonicalKmers::new(&seq, k).unwrap().collect();
        prop_assert_eq!(canon, canon_ref);

        let oriented: Vec<_> = p.oriented_kmers(k).unwrap().collect();
        let oriented_ref: Vec<_> = KmerIter::new(&seq, k)
            .unwrap()
            .map(|(off, km)| { let c = km.canonical(); (off, c, c == km) })
            .collect();
        prop_assert_eq!(oriented, oriented_ref);
    }

    #[test]
    fn kmer_iter_size_hint_upper_bound_sound(seq in dna_with_n(), k in interesting_k()) {
        let total = KmerIter::new(&seq, k).unwrap().count();
        let mut it = KmerIter::new(&seq, k).unwrap();
        // Before each yield, the hint must bracket the true remaining count.
        for consumed in 0..=total {
            let remaining = total - consumed;
            let (lo, hi) = it.size_hint();
            let hi = hi.expect("upper bound is always known");
            prop_assert!(lo <= remaining && remaining <= hi,
                "consumed={consumed}: {lo} <= {remaining} <= {hi}");
            if consumed < total {
                prop_assert!(it.next().is_some());
            }
        }
        prop_assert!(it.next().is_none());
    }

    #[test]
    fn fasta_round_trip(
        ids in proptest::collection::vec("[a-zA-Z0-9_.-]{1,12}", 1..8),
        seqs in proptest::collection::vec(dna_with_n(), 1..8),
    ) {
        let n = ids.len().min(seqs.len());
        let records: Vec<Record> = (0..n)
            .map(|i| Record::new(ids[i].clone(), seqs[i].clone()))
            .collect();
        let bytes = to_fasta_bytes(&records);
        prop_assert_eq!(parse_fasta(&bytes).unwrap(), records);
    }

    #[test]
    fn split_partition_property(lens in proptest::collection::vec(0usize..500, 0..60), n in 1usize..12) {
        let records: Vec<FaRecord> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| FaRecord::new(format!("r{i}"), vec![b'A'; l]))
            .collect();
        let plan = plan_split(&records, n).unwrap();
        prop_assert_eq!(plan.n_pieces(), n);
        let mut seen: Vec<usize> = plan.pieces.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expect: Vec<usize> = (0..records.len()).collect();
        prop_assert_eq!(seen, expect);
        // Greedy bound: max load <= mean + max item length.
        let loads: Vec<usize> = plan
            .pieces
            .iter()
            .map(|p| p.iter().map(|&i| records[i].seq.len()).sum::<usize>())
            .collect();
        let total: usize = loads.iter().sum();
        let maxlen = lens.iter().copied().max().unwrap_or(0);
        let bound = total / n + maxlen;
        prop_assert!(loads.iter().all(|&l| l <= bound));
    }
}

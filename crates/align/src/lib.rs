//! Validation substrate: sequence alignment and transcript-quality metrics.
//!
//! §IV of the paper validates the hybrid Chrysalis in two ways:
//!
//! 1. **All-to-all Smith–Waterman** between transcripts from the parallel
//!    and original pipelines (via the FASTA program), categorized into
//!    (a) 100 % identical full-length matches, (b) <100 % full-length,
//!    (c) partial-length, with (d) the identity distribution of (c) —
//!    Fig. 4;
//! 2. **Reference-based counting**: reconstructed genes/isoforms aligned
//!    full-length onto a reference transcript set (Fig. 5) and "fused"
//!    transcripts spanning multiple reference genes (Fig. 6).
//!
//! [`sw`] implements affine-gap local alignment (Smith–Waterman, the same
//! algorithm the FASTA program uses), [`global`] the Needleman–Wunsch
//! variant, and [`validate`] the categorization and counting logic.

pub mod global;
pub mod sw;
pub mod validate;

pub use sw::{smith_waterman, LocalAlignment, ScoringScheme};
pub use validate::{
    all_to_all_categories, count_full_length, count_fusions, AlignmentClass, CategoryCounts,
    FullLengthCriteria,
};

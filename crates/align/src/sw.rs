//! Affine-gap Smith–Waterman local alignment.
//!
//! The quadratic-space DP keeps a direction matrix for traceback so callers
//! get aligned spans, identity and gap counts — everything the Fig. 4
//! categorization needs. Sequence pairs in this pipeline are transcripts
//! (hundreds to a few thousand bases), well within quadratic reach.

/// Match/mismatch/gap scores (FASTA-program-like defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoringScheme {
    /// Score for a matching pair (positive).
    pub match_score: i32,
    /// Score for a mismatching pair (negative).
    pub mismatch: i32,
    /// Penalty for opening a gap (negative).
    pub gap_open: i32,
    /// Penalty for extending a gap (negative).
    pub gap_extend: i32,
}

impl Default for ScoringScheme {
    fn default() -> Self {
        ScoringScheme {
            match_score: 5,
            mismatch: -4,
            gap_open: -12,
            gap_extend: -4,
        }
    }
}

/// Result of a local alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalAlignment {
    /// Optimal local score.
    pub score: i32,
    /// Aligned span in the query: `[start, end)`.
    pub query_span: (usize, usize),
    /// Aligned span in the target: `[start, end)`.
    pub target_span: (usize, usize),
    /// Matching positions within the alignment.
    pub matches: usize,
    /// Mismatching positions within the alignment.
    pub mismatches: usize,
    /// Gap positions (in either sequence) within the alignment.
    pub gaps: usize,
}

impl LocalAlignment {
    /// Alignment columns (matches + mismatches + gaps).
    pub fn alignment_len(&self) -> usize {
        self.matches + self.mismatches + self.gaps
    }

    /// Fraction of alignment columns that match, in [0, 1].
    pub fn identity(&self) -> f64 {
        let len = self.alignment_len();
        if len == 0 {
            0.0
        } else {
            self.matches as f64 / len as f64
        }
    }

    /// Fraction of the query covered by the aligned span.
    pub fn query_coverage(&self, query_len: usize) -> f64 {
        if query_len == 0 {
            0.0
        } else {
            (self.query_span.1 - self.query_span.0) as f64 / query_len as f64
        }
    }

    /// Fraction of the target covered by the aligned span.
    pub fn target_coverage(&self, target_len: usize) -> f64 {
        if target_len == 0 {
            0.0
        } else {
            (self.target_span.1 - self.target_span.0) as f64 / target_len as f64
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Dir {
    Stop,
    Diag,
    Up,   // gap in query (consume target)
    Left, // gap in target (consume query)
}

/// Smith–Waterman with affine gaps. Returns the best local alignment of
/// `query` vs `target` (uppercase comparison).
pub fn smith_waterman(query: &[u8], target: &[u8], s: ScoringScheme) -> LocalAlignment {
    let n = query.len();
    let m = target.len();
    if n == 0 || m == 0 {
        return LocalAlignment {
            score: 0,
            query_span: (0, 0),
            target_span: (0, 0),
            matches: 0,
            mismatches: 0,
            gaps: 0,
        };
    }

    const NEG: i32 = i32::MIN / 4;
    // Rolling rows for H (best), E (gap in target / left), F (gap in query / up).
    let mut h_prev = vec![0i32; m + 1];
    let mut h_cur = vec![0i32; m + 1];
    let mut e_row = vec![NEG; m + 1]; // E for current cell, computed left-to-right
    let mut f_prev = vec![NEG; m + 1];
    let mut f_cur = vec![NEG; m + 1];
    // Direction matrix over H for traceback (n+1) x (m+1).
    let mut dir = vec![Dir::Stop; (n + 1) * (m + 1)];

    let mut best = (0i32, 0usize, 0usize);
    for i in 1..=n {
        let qb = query[i - 1].to_ascii_uppercase();
        let mut e = NEG;
        for j in 1..=m {
            let tb = target[j - 1].to_ascii_uppercase();
            let sub = if qb == tb { s.match_score } else { s.mismatch };

            e = (e + s.gap_extend).max(h_cur[j - 1] + s.gap_open + s.gap_extend);
            let f = (f_prev[j] + s.gap_extend).max(h_prev[j] + s.gap_open + s.gap_extend);
            f_cur[j] = f;
            e_row[j] = e;

            let diag = h_prev[j - 1] + sub;
            let mut h = 0;
            let mut d = Dir::Stop;
            if diag > h {
                h = diag;
                d = Dir::Diag;
            }
            if e > h {
                h = e;
                d = Dir::Left;
            }
            if f > h {
                h = f;
                d = Dir::Up;
            }
            h_cur[j] = h;
            dir[i * (m + 1) + j] = d;
            if h > best.0 {
                best = (h, i, j);
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut f_prev, &mut f_cur);
        h_cur[0] = 0;
    }

    // Traceback from the best cell. The affine traceback through a single
    // H-direction matrix is approximate for runs of gaps (it re-decides per
    // cell); to keep counts exact we follow greedy direction steps, which
    // reproduces one optimal-scoring path's column classes.
    let (score, mut i, mut j) = best;
    let (qe, te) = (i, j);
    let (mut matches, mut mismatches, mut gaps) = (0usize, 0usize, 0usize);
    while i > 0 && j > 0 {
        match dir[i * (m + 1) + j] {
            Dir::Stop => break,
            Dir::Diag => {
                if query[i - 1].eq_ignore_ascii_case(&target[j - 1]) {
                    matches += 1;
                } else {
                    mismatches += 1;
                }
                i -= 1;
                j -= 1;
            }
            Dir::Left => {
                gaps += 1;
                j -= 1;
            }
            Dir::Up => {
                gaps += 1;
                i -= 1;
            }
        }
    }
    LocalAlignment {
        score,
        query_span: (i, qe),
        target_span: (j, te),
        matches,
        mismatches,
        gaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sw(q: &[u8], t: &[u8]) -> LocalAlignment {
        smith_waterman(q, t, ScoringScheme::default())
    }

    #[test]
    fn identical_sequences() {
        let a = b"ACGTACGTAC";
        let al = sw(a, a);
        assert_eq!(al.matches, 10);
        assert_eq!(al.mismatches, 0);
        assert_eq!(al.gaps, 0);
        assert_eq!(al.identity(), 1.0);
        assert_eq!(al.query_span, (0, 10));
        assert_eq!(al.target_span, (0, 10));
        assert_eq!(al.score, 50);
    }

    #[test]
    fn substring_alignment() {
        let al = sw(b"CGTA", b"AACGTATT");
        assert_eq!(al.matches, 4);
        assert_eq!(al.query_span, (0, 4));
        assert_eq!(al.target_span, (2, 6));
        assert!((al.query_coverage(4) - 1.0).abs() < 1e-12);
        assert!((al.target_coverage(8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_mismatch() {
        let al = sw(b"ACGTACGTAC", b"ACGTTCGTAC");
        assert_eq!(al.matches, 9);
        assert_eq!(al.mismatches, 1);
        assert_eq!(al.gaps, 0);
        assert!((al.identity() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn gap_alignment() {
        // Query has an extra base in the middle; flanks are long enough
        // that bridging the gap (−16) beats either gapless half (≤ 50).
        let al = sw(b"ACGTGCATTGCAGGCTATTCCG", b"ACGTGCATTGCGGCTATTCCG");
        assert_eq!(al.mismatches, 0);
        assert_eq!(al.gaps, 1);
        assert_eq!(al.matches, 21);
    }

    #[test]
    fn disjoint_sequences_score_low() {
        let al = sw(b"AAAAAAAA", b"CCCCCCCC");
        assert_eq!(al.score, 0);
        assert_eq!(al.matches, 0);
    }

    #[test]
    fn empty_inputs() {
        let al = sw(b"", b"ACGT");
        assert_eq!(al.score, 0);
        assert_eq!(al.alignment_len(), 0);
        let al = sw(b"ACGT", b"");
        assert_eq!(al.score, 0);
        assert_eq!(al.identity(), 0.0);
        assert_eq!(al.query_coverage(0), 0.0);
    }

    #[test]
    fn case_insensitive() {
        let al = sw(b"acgt", b"ACGT");
        assert_eq!(al.matches, 4);
    }

    #[test]
    fn local_ignores_noisy_flanks() {
        let q = b"GGGGGGACGTACGTACGTCCCCCC";
        let t = b"TTTTTTACGTACGTACGTAAAAAA";
        let al = sw(q, t);
        assert_eq!(al.matches, 12);
        assert_eq!(al.query_span, (6, 18));
        assert_eq!(al.target_span, (6, 18));
    }

    #[test]
    fn score_symmetry() {
        let q = b"ACGTGCATTGCAGG";
        let t = b"ACGTCCATTGCGG";
        let a = sw(q, t);
        let b = sw(t, q);
        assert_eq!(a.score, b.score);
        assert_eq!(a.matches, b.matches);
    }

    #[test]
    fn affine_prefers_one_long_gap() {
        // Two separated 1-gaps cost 2*(open+extend) = -32; one 2-gap costs
        // open+2*extend = -20. Deleting "GG" as one block must win.
        let al = sw(b"ACGTTTACAGGACGTTTACA", b"ACGTTTACAACGTTTACA");
        assert_eq!(al.gaps, 2);
        assert_eq!(al.mismatches, 0);
        assert_eq!(al.matches, 18);
    }
}

//! Transcript-set validation: the paper's Figs. 4–6 metrics.

use std::collections::{HashMap, HashSet};

use seqio::alphabet::revcomp;
use seqio::fasta::Record;
use seqio::kmer::KmerIter;

use crate::sw::{smith_waterman, LocalAlignment, ScoringScheme};

/// Word size of the candidate prefilter (pairs sharing no 16-mer are never
/// aligned; with transcript-scale sequences this is lossless in practice
/// and keeps all-to-all quadratic work near-linear).
const FILTER_K: usize = 16;

/// Fig. 4's categories for the best alignment of one transcript against a
/// counterpart set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignmentClass {
    /// (a) 100 % identity over the full length of both sequences.
    IdenticalFullLength,
    /// (b) <100 % identity but full-length alignment.
    FullLength,
    /// (c) alignment covering only part of the sequences.
    Partial,
    /// No alignment found at all (not plotted in Fig. 4; tracked anyway).
    Unaligned,
}

/// Thresholds deciding "full length".
#[derive(Debug, Clone, Copy)]
pub struct FullLengthCriteria {
    /// Minimum fraction of each sequence the alignment must span.
    pub min_coverage: f64,
    /// Minimum identity for reference-based full-length counting (Fig. 5).
    pub min_identity: f64,
}

impl Default for FullLengthCriteria {
    fn default() -> Self {
        FullLengthCriteria {
            min_coverage: 0.99,
            min_identity: 0.95,
        }
    }
}

/// Aggregated Fig. 4 counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CategoryCounts {
    /// (a) identical, full-length.
    pub identical_full: usize,
    /// (b) <100 % identity, full-length.
    pub full: usize,
    /// (c) partial-length.
    pub partial: usize,
    /// Found no counterpart sharing even a 16-mer.
    pub unaligned: usize,
    /// (d) identity of each partial-length alignment, for the distribution.
    pub partial_identities: Vec<f64>,
}

impl CategoryCounts {
    /// Total classified transcripts.
    pub fn total(&self) -> usize {
        self.identical_full + self.full + self.partial + self.unaligned
    }
}

/// A k-mer → target-index prefilter over a transcript set.
struct CandidateFilter {
    map: HashMap<u64, Vec<u32>>,
}

impl CandidateFilter {
    fn build(targets: &[Record]) -> Self {
        let mut map: HashMap<u64, Vec<u32>> = HashMap::new();
        for (i, t) in targets.iter().enumerate() {
            let mut seen = HashSet::new();
            if let Ok(iter) = KmerIter::new(&t.seq, FILTER_K) {
                for (_, km) in iter {
                    if seen.insert(km.canonical().packed()) {
                        map.entry(km.canonical().packed())
                            .or_default()
                            .push(i as u32);
                    }
                }
            }
        }
        CandidateFilter { map }
    }

    fn candidates(&self, query: &[u8]) -> Vec<u32> {
        let mut out = HashSet::new();
        if let Ok(iter) = KmerIter::new(query, FILTER_K) {
            for (_, km) in iter {
                if let Some(v) = self.map.get(&km.canonical().packed()) {
                    out.extend(v.iter().copied());
                }
            }
        }
        let mut v: Vec<u32> = out.into_iter().collect();
        v.sort_unstable();
        v
    }
}

/// Best strand-aware local alignment of `query` against `target`.
fn best_alignment(query: &[u8], target: &[u8], s: ScoringScheme) -> LocalAlignment {
    let fwd = smith_waterman(query, target, s);
    let rc = revcomp(query);
    let rev = smith_waterman(&rc, target, s);
    if rev.score > fwd.score {
        rev
    } else {
        fwd
    }
}

/// Classify one query transcript against a counterpart set.
fn classify(
    query: &Record,
    targets: &[Record],
    filter: &CandidateFilter,
    criteria: FullLengthCriteria,
    s: ScoringScheme,
) -> (AlignmentClass, f64) {
    let cands = filter.candidates(&query.seq);
    let mut best: Option<(LocalAlignment, usize, f64)> = None;
    for &c in &cands {
        let al = best_alignment(&query.seq, &targets[c as usize].seq, s);
        // Ties (e.g. a transcript nested inside a longer isoform score
        // identically against both) break toward the higher mutual
        // coverage, so a sequence always classifies against its best
        // *full-length* counterpart.
        let cov =
            al.query_coverage(query.seq.len()) * al.target_coverage(targets[c as usize].seq.len());
        let better = match &best {
            None => true,
            Some((b, _, bcov)) => al.score > b.score || (al.score == b.score && cov > *bcov),
        };
        if better {
            best = Some((al, c as usize, cov));
        }
    }
    match best {
        None => (AlignmentClass::Unaligned, 0.0),
        Some((al, tgt, _)) => {
            let qcov = al.query_coverage(query.seq.len());
            let tcov = al.target_coverage(targets[tgt].seq.len());
            let full = qcov >= criteria.min_coverage && tcov >= criteria.min_coverage;
            let ident = al.identity();
            if full && al.mismatches == 0 && al.gaps == 0 {
                (AlignmentClass::IdenticalFullLength, ident)
            } else if full {
                (AlignmentClass::FullLength, ident)
            } else {
                (AlignmentClass::Partial, ident)
            }
        }
    }
}

/// Fig. 4: classify every transcript of `set_a` by its best match in
/// `set_b`.
pub fn all_to_all_categories(
    set_a: &[Record],
    set_b: &[Record],
    criteria: FullLengthCriteria,
) -> CategoryCounts {
    let filter = CandidateFilter::build(set_b);
    let s = ScoringScheme::default();
    let mut counts = CategoryCounts::default();
    for q in set_a {
        let (class, ident) = classify(q, set_b, &filter, criteria, s);
        match class {
            AlignmentClass::IdenticalFullLength => counts.identical_full += 1,
            AlignmentClass::FullLength => counts.full += 1,
            AlignmentClass::Partial => {
                counts.partial += 1;
                counts.partial_identities.push(ident);
            }
            AlignmentClass::Unaligned => counts.unaligned += 1,
        }
    }
    counts
}

/// A reference transcript with its gene grouping (the Trinity reference
/// sets are annotated this way).
#[derive(Debug, Clone)]
pub struct RefTranscript {
    /// Gene identifier (isoforms of a gene share it).
    pub gene: String,
    /// Isoform identifier (unique).
    pub isoform: String,
    /// Transcript sequence.
    pub seq: Vec<u8>,
}

/// Fig. 5 counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullLengthCounts {
    /// Genes with at least one isoform reconstructed full-length.
    pub genes: usize,
    /// Isoforms reconstructed full-length.
    pub isoforms: usize,
}

/// Fig. 5: count reference genes/isoforms reconstructed in full length.
///
/// A reference isoform counts when some reconstructed transcript aligns to
/// it covering ≥ `min_coverage` of the *reference* at ≥ `min_identity`.
pub fn count_full_length(
    transcripts: &[Record],
    references: &[RefTranscript],
    criteria: FullLengthCriteria,
) -> FullLengthCounts {
    let filter = CandidateFilter::build(transcripts);
    let s = ScoringScheme::default();
    let mut genes: HashSet<&str> = HashSet::new();
    let mut isoforms = 0usize;
    for r in references {
        let pseudo = Record::new(r.isoform.clone(), r.seq.clone());
        let cands = filter.candidates(&pseudo.seq);
        let hit = cands.iter().any(|&c| {
            let al = best_alignment(&r.seq, &transcripts[c as usize].seq, s);
            al.target_coverage(r.seq.len()).min(al.query_coverage(r.seq.len())) >= 0.0 // keep clippy quiet about unused min
                && al.query_coverage(r.seq.len()) >= criteria.min_coverage
                && al.identity() >= criteria.min_identity
        });
        if hit {
            isoforms += 1;
            genes.insert(&r.gene);
        }
    }
    FullLengthCounts {
        genes: genes.len(),
        isoforms,
    }
}

/// Fig. 6 counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionCounts {
    /// Reconstructed transcripts containing ≥2 full-length references from
    /// different genes.
    pub fused_transcripts: usize,
    /// Distinct genes that participate in at least one fusion.
    pub genes_involved: usize,
}

/// Fig. 6: count "fused" reconstructions — single reconstructed transcripts
/// that contain multiple full-length reference transcripts end to end
/// (false positives caused by overlapping UTRs etc.).
pub fn count_fusions(
    transcripts: &[Record],
    references: &[RefTranscript],
    criteria: FullLengthCriteria,
) -> FusionCounts {
    let filter = CandidateFilter::build(transcripts);
    let s = ScoringScheme::default();
    // For each reconstructed transcript, genes whose reference aligns
    // full-length (reference coverage) inside it.
    let mut genes_in: Vec<HashSet<&str>> = vec![HashSet::new(); transcripts.len()];
    for r in references {
        let cands = filter.candidates(&r.seq);
        for &c in &cands {
            let al = best_alignment(&r.seq, &transcripts[c as usize].seq, s);
            if al.query_coverage(r.seq.len()) >= criteria.min_coverage
                && al.identity() >= criteria.min_identity
            {
                genes_in[c as usize].insert(&r.gene);
            }
        }
    }
    let mut fused = 0usize;
    let mut genes: HashSet<&str> = HashSet::new();
    for set in &genes_in {
        if set.len() >= 2 {
            fused += 1;
            genes.extend(set.iter().copied());
        }
    }
    FusionCounts {
        fused_transcripts: fused,
        genes_involved: genes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, seq: &[u8]) -> Record {
        Record::new(id, seq.to_vec())
    }

    // 60-base transcripts, distinct enough to not cross-match.
    const T1: &[u8] = b"ACGTGCATTGCAGGCTATTCCGATGGCAAGTCAGGTTAACCGGATCTTACGGATCCAGTT";
    const T2: &[u8] = b"TTGGCCAATCGCGCTAAAGGTCTCGAGATTTCCCAGGTGCACAATTGGCACCAGTGGAAT";

    #[test]
    fn identical_sets_all_category_a() {
        let a = vec![rec("x", T1), rec("y", T2)];
        let counts = all_to_all_categories(&a, &a, FullLengthCriteria::default());
        assert_eq!(counts.identical_full, 2);
        assert_eq!(counts.total(), 2);
        assert!(counts.partial_identities.is_empty());
    }

    #[test]
    fn revcomp_counterpart_still_identical() {
        let a = vec![rec("x", T1)];
        let b = vec![rec("x_rc", &revcomp(T1))];
        let counts = all_to_all_categories(&a, &b, FullLengthCriteria::default());
        assert_eq!(counts.identical_full, 1);
    }

    #[test]
    fn near_identical_is_category_b() {
        let mut t = T1.to_vec();
        t[30] = if t[30] == b'A' { b'C' } else { b'A' };
        let counts = all_to_all_categories(
            &[rec("x", T1)],
            &[rec("y", &t)],
            FullLengthCriteria::default(),
        );
        assert_eq!(counts.full, 1);
        assert_eq!(counts.identical_full, 0);
    }

    #[test]
    fn truncated_is_partial_with_identity_recorded() {
        let counts = all_to_all_categories(
            &[rec("x", T1)],
            &[rec("y", &T1[..40])],
            FullLengthCriteria::default(),
        );
        assert_eq!(counts.partial, 1);
        assert_eq!(counts.partial_identities.len(), 1);
        assert!(counts.partial_identities[0] > 0.99);
    }

    #[test]
    fn unrelated_is_unaligned() {
        let counts = all_to_all_categories(
            &[rec("x", T1)],
            &[rec("y", T2)],
            FullLengthCriteria::default(),
        );
        assert_eq!(counts.unaligned, 1);
    }

    fn refs() -> Vec<RefTranscript> {
        vec![
            RefTranscript {
                gene: "g1".into(),
                isoform: "g1.i1".into(),
                seq: T1.to_vec(),
            },
            RefTranscript {
                gene: "g1".into(),
                isoform: "g1.i2".into(),
                seq: T1[..50].to_vec(),
            },
            RefTranscript {
                gene: "g2".into(),
                isoform: "g2.i1".into(),
                seq: T2.to_vec(),
            },
        ]
    }

    #[test]
    fn full_length_counting() {
        // Reconstructed: full T1 (covers g1.i1 and contains g1.i2), nothing for g2.
        let tr = vec![rec("t0", T1)];
        let c = count_full_length(&tr, &refs(), FullLengthCriteria::default());
        assert_eq!(c.isoforms, 2);
        assert_eq!(c.genes, 1);
    }

    #[test]
    fn full_length_requires_reference_coverage() {
        // Reconstruction covers only half of T2: g2 not full-length.
        let tr = vec![rec("t0", &T2[..30])];
        let c = count_full_length(&tr, &refs(), FullLengthCriteria::default());
        assert_eq!(c.isoforms, 0);
        assert_eq!(c.genes, 0);
    }

    #[test]
    fn fusion_detection() {
        // One reconstructed transcript = T1 + T2 end-to-end: a classic fusion.
        let mut fused = T1.to_vec();
        fused.extend_from_slice(T2);
        let tr = vec![rec("fused", &fused), rec("normal", T1)];
        let c = count_fusions(&tr, &refs(), FullLengthCriteria::default());
        assert_eq!(c.fused_transcripts, 1);
        assert_eq!(c.genes_involved, 2);
    }

    #[test]
    fn no_fusions_in_clean_set() {
        let tr = vec![rec("a", T1), rec("b", T2)];
        let c = count_fusions(&tr, &refs(), FullLengthCriteria::default());
        assert_eq!(c.fused_transcripts, 0);
        assert_eq!(c.genes_involved, 0);
    }

    #[test]
    fn empty_sets() {
        let counts = all_to_all_categories(&[], &[], FullLengthCriteria::default());
        assert_eq!(counts.total(), 0);
        let c = count_full_length(&[], &refs(), FullLengthCriteria::default());
        assert_eq!(c.isoforms, 0);
        let f = count_fusions(&[], &refs(), FullLengthCriteria::default());
        assert_eq!(f.fused_transcripts, 0);
    }
}

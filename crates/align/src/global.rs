//! Global (Needleman–Wunsch) alignment with affine gaps.
//!
//! Used where end-to-end identity matters (e.g. deciding that two
//! transcripts are the *same* sequence rather than sharing a domain).

use crate::sw::ScoringScheme;

/// Result of a global alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalAlignment {
    /// Alignment score.
    pub score: i32,
    /// Matching columns.
    pub matches: usize,
    /// Mismatching columns.
    pub mismatches: usize,
    /// Gap columns.
    pub gaps: usize,
}

impl GlobalAlignment {
    /// Total alignment columns.
    pub fn alignment_len(&self) -> usize {
        self.matches + self.mismatches + self.gaps
    }

    /// Fraction of columns that match.
    pub fn identity(&self) -> f64 {
        let len = self.alignment_len();
        if len == 0 {
            1.0 // two empty sequences are identical
        } else {
            self.matches as f64 / len as f64
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Dir {
    Diag,
    Up,
    Left,
}

/// Needleman–Wunsch with affine gaps (linear-ish gap init: every leading/
/// trailing gap pays open + extends).
pub fn needleman_wunsch(query: &[u8], target: &[u8], s: ScoringScheme) -> GlobalAlignment {
    let n = query.len();
    let m = target.len();
    if n == 0 || m == 0 {
        return GlobalAlignment {
            score: if n == 0 && m == 0 {
                0
            } else {
                s.gap_open + s.gap_extend * (n + m) as i32
            },
            matches: 0,
            mismatches: 0,
            gaps: n + m,
        };
    }

    const NEG: i32 = i32::MIN / 4;
    let width = m + 1;
    let mut h = vec![NEG; (n + 1) * width];
    let mut e = vec![NEG; (n + 1) * width];
    let mut f = vec![NEG; (n + 1) * width];
    let mut dir = vec![Dir::Diag; (n + 1) * width];

    h[0] = 0;
    for j in 1..=m {
        e[j] = s.gap_open + s.gap_extend * j as i32;
        h[j] = e[j];
        dir[j] = Dir::Left;
    }
    for i in 1..=n {
        f[i * width] = s.gap_open + s.gap_extend * i as i32;
        h[i * width] = f[i * width];
        dir[i * width] = Dir::Up;
    }

    for i in 1..=n {
        let qb = query[i - 1].to_ascii_uppercase();
        for j in 1..=m {
            let tb = target[j - 1].to_ascii_uppercase();
            let sub = if qb == tb { s.match_score } else { s.mismatch };
            let idx = i * width + j;
            e[idx] = (e[idx - 1] + s.gap_extend).max(h[idx - 1] + s.gap_open + s.gap_extend);
            f[idx] =
                (f[idx - width] + s.gap_extend).max(h[idx - width] + s.gap_open + s.gap_extend);
            let diag = h[idx - width - 1] + sub;
            let (mut best, mut d) = (diag, Dir::Diag);
            if e[idx] > best {
                best = e[idx];
                d = Dir::Left;
            }
            if f[idx] > best {
                best = f[idx];
                d = Dir::Up;
            }
            h[idx] = best;
            dir[idx] = d;
        }
    }

    let (mut i, mut j) = (n, m);
    let (mut matches, mut mismatches, mut gaps) = (0, 0, 0);
    while i > 0 || j > 0 {
        let idx = i * width + j;
        match dir[idx] {
            Dir::Diag if i > 0 && j > 0 => {
                if query[i - 1].eq_ignore_ascii_case(&target[j - 1]) {
                    matches += 1;
                } else {
                    mismatches += 1;
                }
                i -= 1;
                j -= 1;
            }
            Dir::Up | Dir::Diag if i > 0 => {
                gaps += 1;
                i -= 1;
            }
            _ => {
                gaps += 1;
                j -= 1;
            }
        }
    }
    GlobalAlignment {
        score: h[n * width + m],
        matches,
        mismatches,
        gaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nw(q: &[u8], t: &[u8]) -> GlobalAlignment {
        needleman_wunsch(q, t, ScoringScheme::default())
    }

    #[test]
    fn identical() {
        let a = nw(b"ACGTACGT", b"ACGTACGT");
        assert_eq!(a.matches, 8);
        assert_eq!(a.identity(), 1.0);
        assert_eq!(a.score, 40);
    }

    #[test]
    fn one_substitution() {
        let a = nw(b"ACGTACGT", b"ACGTCCGT");
        assert_eq!(a.matches, 7);
        assert_eq!(a.mismatches, 1);
        assert_eq!(a.gaps, 0);
    }

    #[test]
    fn deletion_costs_gap() {
        let a = nw(b"ACGTACGT", b"ACGTCGT");
        assert_eq!(a.gaps, 1);
        assert_eq!(a.matches, 7);
    }

    #[test]
    fn empty_cases() {
        let a = nw(b"", b"");
        assert_eq!(a.score, 0);
        assert_eq!(a.identity(), 1.0);
        let a = nw(b"ACGT", b"");
        assert_eq!(a.gaps, 4);
        assert!(a.score < 0);
    }

    #[test]
    fn global_penalizes_flanks_unlike_local() {
        // Shared core, different flanks: global identity is low.
        let a = nw(b"GGGGGGACGTACGT", b"TTTTTTACGTACGT");
        assert!(a.identity() < 0.7);
    }

    #[test]
    fn symmetry() {
        let a = nw(b"ACGTGCATT", b"ACGGCATT");
        let b = nw(b"ACGGCATT", b"ACGTGCATT");
        assert_eq!(a.score, b.score);
        assert_eq!(a.matches, b.matches);
    }
}

//! Property-based tests for the alignment substrate.

use align::global::needleman_wunsch;
use align::sw::{smith_waterman, ScoringScheme};
use proptest::prelude::*;

fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')],
        len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sw_score_symmetric(a in dna(0..60), b in dna(0..60)) {
        let s = ScoringScheme::default();
        let ab = smith_waterman(&a, &b, s);
        let ba = smith_waterman(&b, &a, s);
        // Scores are symmetric; column counts may differ between
        // co-optimal paths, so only the score is asserted.
        prop_assert_eq!(ab.score, ba.score);
    }

    #[test]
    fn sw_self_alignment_is_perfect(a in dna(1..80)) {
        let al = smith_waterman(&a, &a, ScoringScheme::default());
        prop_assert_eq!(al.matches, a.len());
        prop_assert_eq!(al.mismatches, 0);
        prop_assert_eq!(al.gaps, 0);
        prop_assert_eq!(al.score, 5 * a.len() as i32);
        prop_assert!((al.identity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sw_score_bounds(a in dna(0..60), b in dna(0..60)) {
        let al = smith_waterman(&a, &b, ScoringScheme::default());
        prop_assert!(al.score >= 0);
        prop_assert!(al.score <= 5 * a.len().min(b.len()) as i32);
        // Spans lie within the sequences.
        prop_assert!(al.query_span.1 <= a.len());
        prop_assert!(al.target_span.1 <= b.len());
        prop_assert!(al.query_span.0 <= al.query_span.1);
    }

    #[test]
    fn sw_substring_fully_covered(a in dna(20..80), start in 0usize..10, len in 8usize..15) {
        prop_assume!(start + len <= a.len());
        let sub = a[start..start + len].to_vec();
        let al = smith_waterman(&sub, &a, ScoringScheme::default());
        prop_assert_eq!(al.matches, len);
        prop_assert_eq!(al.score, 5 * len as i32);
        prop_assert!((al.query_coverage(len) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nw_identity_le_one_and_symmetric(a in dna(0..50), b in dna(0..50)) {
        let s = ScoringScheme::default();
        let ab = needleman_wunsch(&a, &b, s);
        let ba = needleman_wunsch(&b, &a, s);
        prop_assert_eq!(ab.score, ba.score);
        prop_assert!(ab.identity() <= 1.0 + 1e-12);
        // Global alignment length covers both sequences.
        prop_assert!(ab.alignment_len() >= a.len().max(b.len()));
    }

    #[test]
    fn nw_never_beats_perfect_self(a in dna(1..50)) {
        let s = ScoringScheme::default();
        let self_score = needleman_wunsch(&a, &a, s).score;
        prop_assert_eq!(self_score, 5 * a.len() as i32);
    }

    #[test]
    fn sw_at_least_nw(a in dna(1..40), b in dna(1..40)) {
        // Local alignment can always do at least as well as global
        // (it may skip penalized flanks; global must pay them).
        let s = ScoringScheme::default();
        let local = smith_waterman(&a, &b, s).score;
        let global = needleman_wunsch(&a, &b, s).score;
        prop_assert!(local >= global);
    }
}

//! Greedy contig assembly (the Inchworm main loop).

use std::collections::HashSet;

use seqio::alphabet::code_to_base;
use seqio::kmer::Kmer;

use crate::contig::Contig;
use crate::dictionary::Dictionary;

/// Assembly parameters.
#[derive(Debug, Clone, Copy)]
pub struct InchwormConfig {
    /// Minimum k-mer abundance to seed a contig.
    pub min_seed_count: u32,
    /// Minimum abundance for an extension k-mer.
    pub min_extend_count: u32,
    /// Contigs shorter than this are discarded. Trinity's default is
    /// roughly 2k (48 bases at k = 25).
    pub min_contig_len: usize,
    /// Optional tie-break jitter. Trinity's output is "slightly
    /// indeterministic" (§IV): repeated runs differ where extension
    /// candidates tie. `None` breaks ties deterministically (smallest
    /// base); `Some(seed)` breaks them pseudo-randomly so repeated runs
    /// reproduce that run-to-run distribution.
    pub jitter_seed: Option<u64>,
}

impl Default for InchwormConfig {
    fn default() -> Self {
        InchwormConfig {
            min_seed_count: 2,
            min_extend_count: 1,
            min_contig_len: 48,
            jitter_seed: None,
        }
    }
}

/// A tiny splitmix64 step for tie-break jitter (no dependency on `rand` in
/// this hot path; the sequence only has to be uncorrelated, not strong).
#[inline]
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Assembler<'d> {
    dict: &'d Dictionary,
    used: HashSet<u64>,
    cfg: InchwormConfig,
    rng: u64,
}

impl<'d> Assembler<'d> {
    fn is_used(&self, km: Kmer) -> bool {
        self.used.contains(&km.canonical().packed())
    }

    fn mark_used(&mut self, km: Kmer) {
        self.used.insert(km.canonical().packed());
    }

    /// Pick the best extension among up to 4 candidates:
    /// highest count wins; ties go to the smallest base code, or are
    /// shuffled when jitter is enabled.
    fn best_candidate(&mut self, candidates: [(Kmer, u32); 4]) -> Option<(Kmer, u8)> {
        let mut best: Option<(Kmer, u8, u32)> = None;
        for (code, &(km, count)) in candidates.iter().enumerate() {
            if count < self.cfg.min_extend_count.max(1) || self.is_used(km) {
                continue;
            }
            let better = match best {
                None => true,
                Some((_, _, bc)) => {
                    if count != bc {
                        count > bc
                    } else if self.cfg.jitter_seed.is_some() {
                        splitmix(&mut self.rng) & 1 == 1
                    } else {
                        false // keep the earlier (smaller) base
                    }
                }
            };
            if better {
                best = Some((km, code as u8, count));
            }
        }
        best.map(|(km, code, _)| (km, code))
    }

    /// Extend `seed` rightwards, appending bases to `seq`.
    fn extend_right(&mut self, seed: Kmer, seq: &mut Vec<u8>, cov_acc: &mut (u64, usize)) {
        let mut cur = seed;
        loop {
            let candidates = std::array::from_fn(|code| {
                let next = cur.roll_right(code as u8);
                (next, self.dict.count(next))
            });
            match self.best_candidate(candidates) {
                Some((next, code)) => {
                    seq.push(code_to_base(code));
                    self.mark_used(next);
                    cov_acc.0 += self.dict.count(next) as u64;
                    cov_acc.1 += 1;
                    cur = next;
                }
                None => break,
            }
        }
    }

    /// Extend `seed` leftwards, prepending bases (collected reversed, then
    /// fixed by the caller).
    fn extend_left(&mut self, seed: Kmer, rev_prefix: &mut Vec<u8>, cov_acc: &mut (u64, usize)) {
        let mut cur = seed;
        loop {
            let candidates = std::array::from_fn(|code| {
                let prev = cur.roll_left(code as u8);
                (prev, self.dict.count(prev))
            });
            match self.best_candidate(candidates) {
                Some((prev, code)) => {
                    rev_prefix.push(code_to_base(code));
                    self.mark_used(prev);
                    cov_acc.0 += self.dict.count(prev) as u64;
                    cov_acc.1 += 1;
                    cur = prev;
                }
                None => break,
            }
        }
    }
}

/// Run the Inchworm main loop over a dictionary.
pub fn assemble(dict: &Dictionary, cfg: InchwormConfig) -> Vec<Contig> {
    let mut asm = Assembler {
        dict,
        used: HashSet::with_capacity(dict.len()),
        cfg,
        rng: cfg.jitter_seed.unwrap_or(0),
    };
    let mut contigs = Vec::new();

    for (seed, count) in dict.iter_by_abundance() {
        if count < cfg.min_seed_count.max(1) || asm.is_used(seed) {
            continue;
        }
        asm.mark_used(seed);
        let mut cov = (count as u64, 1usize);

        let mut body = seed.bases();
        asm.extend_right(seed, &mut body, &mut cov);
        let mut rev_prefix = Vec::new();
        asm.extend_left(seed, &mut rev_prefix, &mut cov);
        rev_prefix.reverse();

        let mut seq = rev_prefix;
        seq.extend_from_slice(&body);
        if seq.len() >= cfg.min_contig_len {
            contigs.push(Contig {
                id: contigs.len(),
                seq,
                coverage: cov.0 as f64 / cov.1 as f64,
            });
        }
    }
    contigs
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcount::counter::{count_kmers, CounterConfig};
    use seqio::alphabet::revcomp;

    fn assemble_reads(reads: &[&[u8]], k: usize, cfg: InchwormConfig) -> Vec<Contig> {
        let table = count_kmers(reads, CounterConfig::new(k));
        let dict = Dictionary::from_counts(table, 1);
        assemble(&dict, cfg)
    }

    fn tiny_cfg() -> InchwormConfig {
        InchwormConfig {
            min_seed_count: 1,
            min_extend_count: 1,
            min_contig_len: 10,
            jitter_seed: None,
        }
    }

    /// Simulate perfect tiling reads over a transcript.
    fn tile(transcript: &[u8], read_len: usize, step: usize) -> Vec<Vec<u8>> {
        let mut reads = Vec::new();
        let mut i = 0;
        while i + read_len <= transcript.len() {
            reads.push(transcript[i..i + read_len].to_vec());
            i += step;
        }
        // Always cover the tail so every k-mer of the transcript exists.
        if transcript.len() >= read_len {
            reads.push(transcript[transcript.len() - read_len..].to_vec());
        }
        reads
    }

    #[test]
    fn reconstructs_single_transcript() {
        // A transcript with no repeated k-mers for k=8.
        let transcript = b"CGAGTCGGTTATCTTCGGATACTGTATAGTCCCACCTGGT";
        let reads = tile(transcript, 20, 3);
        let read_refs: Vec<&[u8]> = reads.iter().map(|r| r.as_slice()).collect();
        let contigs = assemble_reads(&read_refs, 8, tiny_cfg());
        assert_eq!(contigs.len(), 1);
        let got = &contigs[0].seq;
        assert!(
            got == &transcript.to_vec() || got == &revcomp(transcript),
            "reconstructed {:?}",
            String::from_utf8_lossy(got)
        );
    }

    #[test]
    fn two_disjoint_transcripts_give_two_contigs() {
        let t1 = b"AAAGCGGCACTTGTGAAGTGTTCCCCACGCCG";
        let t2 = b"TGTTCGCGTGGTGCTGAGACAAAGCACGCCAT";
        let mut reads = tile(t1, 16, 2);
        reads.extend(tile(t2, 16, 2));
        let refs: Vec<&[u8]> = reads.iter().map(|r| r.as_slice()).collect();
        let contigs = assemble_reads(&refs, 8, tiny_cfg());
        assert_eq!(contigs.len(), 2);
        let mut lens: Vec<usize> = contigs.iter().map(|c| c.len()).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![t1.len(), t2.len()]);
    }

    #[test]
    fn min_contig_len_discards_short() {
        let contigs = assemble_reads(
            &[b"ACGTACGTACG"],
            8,
            InchwormConfig {
                min_contig_len: 100,
                ..tiny_cfg()
            },
        );
        assert!(contigs.is_empty());
    }

    #[test]
    fn abundant_seed_assembled_first() {
        let rare = b"TGTTCGCGTGGTGCTGAGACAAAGCACGCCAT";
        let common = b"AAAGCGGCACTTGTGAAGTGTTCCCCACGCCG";
        let mut reads: Vec<Vec<u8>> = tile(common, 16, 2);
        let extra = reads.clone();
        reads.extend(extra); // double the common transcript's coverage
        reads.extend(tile(rare, 16, 2));
        let refs: Vec<&[u8]> = reads.iter().map(|r| r.as_slice()).collect();
        let contigs = assemble_reads(&refs, 8, tiny_cfg());
        assert_eq!(contigs.len(), 2);
        assert!(contigs[0].coverage > contigs[1].coverage);
        assert_eq!(contigs[0].id, 0);
    }

    #[test]
    fn kmers_consumed_once_no_duplicate_contigs() {
        let transcript = b"AAAGCGGCACTTGTGAAGTGTTCCCCACGCCG";
        let reads = tile(transcript, 16, 1);
        let refs: Vec<&[u8]> = reads.iter().map(|r| r.as_slice()).collect();
        let contigs = assemble_reads(&refs, 8, tiny_cfg());
        assert_eq!(contigs.len(), 1);
    }

    #[test]
    fn deterministic_without_jitter() {
        let transcript = b"CCATACCAAGAGGTAGTAGTCTCAGAATCTTGCGGGTACAGACCCATC";
        let reads = tile(transcript, 20, 2);
        let refs: Vec<&[u8]> = reads.iter().map(|r| r.as_slice()).collect();
        let a = assemble_reads(&refs, 8, tiny_cfg());
        let b = assemble_reads(&refs, 8, tiny_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn jitter_changes_tie_breaks_but_not_coverage_mass() {
        // A branch point with equal counts: jitter may choose differently.
        let reads: Vec<&[u8]> = vec![b"AAAACGTTTC", b"AAAACGTTTG"];
        let base = assemble_reads(
            &reads,
            6,
            InchwormConfig {
                jitter_seed: None,
                min_contig_len: 6,
                ..tiny_cfg()
            },
        );
        let jit = assemble_reads(
            &reads,
            6,
            InchwormConfig {
                jitter_seed: Some(7),
                min_contig_len: 6,
                ..tiny_cfg()
            },
        );
        let mass = |cs: &[Contig]| cs.iter().map(|c| c.len()).sum::<usize>();
        // Same total assembled mass even if tie-breaks differ.
        assert_eq!(mass(&base), mass(&jit));
    }

    #[test]
    fn empty_dictionary_yields_nothing() {
        let contigs = assemble_reads(&[b"ACG"], 8, tiny_cfg());
        assert!(contigs.is_empty());
    }

    #[test]
    fn respects_min_seed_count() {
        let contigs = assemble_reads(
            &[b"CGAGTCGGTTATCTTCGGATAC"],
            8,
            InchwormConfig {
                min_seed_count: 5, // nothing reaches count 5
                ..tiny_cfg()
            },
        );
        assert!(contigs.is_empty());
    }
}

//! Inchworm substrate: greedy contig assembly from k-mer counts.
//!
//! Inchworm (§II-A of the paper) ingests the Jellyfish k-mer table and:
//!
//! 1. builds a dictionary of k-mers sorted by decreasing abundance
//!    (removing likely error k-mers);
//! 2. seeds a contig at the most abundant unused k-mer;
//! 3. greedily extends the seed in both directions, at each step taking the
//!    highest-abundance k-mer with a (k−1)-base overlap;
//! 4. reports the linear contig, marks its k-mers used, and repeats until
//!    the dictionary is exhausted.
//!
//! The output — a FASTA of "Inchworm contigs" — is what Chrysalis clusters.

pub mod assemble;
pub mod contig;
pub mod dictionary;

pub use assemble::{assemble, InchwormConfig};
pub use contig::Contig;
pub use dictionary::Dictionary;

//! The abundance-sorted k-mer dictionary.
//!
//! "Inchworm constructs a hash table object consisting of pairs or duals …
//! subsequently sorted in order of decreasing k-mer abundance" (§II-A).
//! Keeping the whole table in memory is what gives Inchworm its large
//! footprint; we reproduce the structure (the footprint scales the same
//! way, just on smaller simulated datasets).

use kcount::counter::KmerCounts;
use kmertable::PackedKmerTable;
use seqio::kmer::Kmer;

/// Abundance-sorted dictionary over canonical k-mers.
#[derive(Debug, Clone)]
pub struct Dictionary {
    k: usize,
    /// Canonical k-mers in decreasing-count order (ties: k-mer order).
    sorted: Vec<(Kmer, u32)>,
    /// Canonical packed k-mer -> count, for O(1) extension lookups. The
    /// open-addressing table keeps the greedy extension probes (4 per
    /// extension step, the Inchworm inner loop) SipHash-free.
    counts: PackedKmerTable,
}

impl Dictionary {
    /// Build from a (canonical) count table, dropping k-mers with count
    /// below `min_count` — the error-k-mer filter.
    pub fn from_counts(table: KmerCounts, min_count: u32) -> Self {
        let k = table.k();
        let mut counts = PackedKmerTable::new();
        for (km, c) in table.iter() {
            if c >= min_count {
                // Canonicalize defensively: a non-canonical table still
                // yields a strand-merged dictionary.
                counts.add(km.canonical().packed(), c);
            }
        }
        let mut sorted: Vec<(Kmer, u32)> = counts
            .iter()
            .map(|(p, c)| (Kmer::from_packed(p, k).expect("valid"), c))
            .collect();
        // Total order over distinct (kmer, count) pairs — unstable sort is
        // deterministic here and skips the merge-sort allocation.
        sorted.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Dictionary { k, sorted, counts }
    }

    /// Word size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct (canonical) k-mers.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Count of `km` (any strand; canonicalized internally). 0 if absent.
    #[inline]
    pub fn count(&self, km: Kmer) -> u32 {
        self.counts.get(km.canonical().packed()).unwrap_or(0)
    }

    /// Iterate k-mers in decreasing-abundance order.
    pub fn iter_by_abundance(&self) -> impl Iterator<Item = (Kmer, u32)> + '_ {
        self.sorted.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcount::counter::{count_kmers, CounterConfig};

    fn dict_of(reads: &[&[u8]], k: usize, min: u32) -> Dictionary {
        let table = count_kmers(reads, CounterConfig::new(k));
        Dictionary::from_counts(table, min)
    }

    #[test]
    fn sorted_decreasing() {
        let d = dict_of(&[b"AAAAAAAACGTCGT"], 4, 1);
        let v: Vec<u32> = d.iter_by_abundance().map(|(_, c)| c).collect();
        for w in v.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(!d.is_empty());
    }

    #[test]
    fn tie_order_is_pinned() {
        // Every k-mer here is unique (count 1), so the whole order is
        // decided by the tie-break. The comparator is a total order, which
        // is what makes the unstable sort deterministic.
        let d = dict_of(&[b"ACGTCCAGTTGAC"], 6, 1);
        let v: Vec<u64> = d.iter_by_abundance().map(|(km, _)| km.packed()).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        assert_eq!(v, expect, "equal counts fall back to ascending k-mer order");
    }

    #[test]
    fn min_count_filters() {
        let all = dict_of(&[b"AAAAAACGT"], 4, 1);
        let filtered = dict_of(&[b"AAAAAACGT"], 4, 2);
        assert!(filtered.len() < all.len());
    }

    #[test]
    fn count_is_strand_agnostic() {
        let d = dict_of(&[b"AAAA"], 4, 1);
        assert_eq!(d.count(Kmer::from_bases(b"AAAA").unwrap()), 1);
        assert_eq!(d.count(Kmer::from_bases(b"TTTT").unwrap()), 1);
        assert_eq!(d.count(Kmer::from_bases(b"ACAC").unwrap()), 0);
    }

    #[test]
    fn k_is_propagated() {
        let d = dict_of(&[b"ACGTACGT"], 5, 1);
        assert_eq!(d.k(), 5);
    }
}

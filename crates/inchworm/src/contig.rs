//! The Inchworm contig record.

use seqio::fasta::Record;

/// One assembled Inchworm contig.
#[derive(Debug, Clone, PartialEq)]
pub struct Contig {
    /// Dense id in assembly order (most abundant seed first).
    pub id: usize,
    /// Contig bases.
    pub seq: Vec<u8>,
    /// Mean k-mer abundance along the contig (Inchworm's coverage proxy).
    pub coverage: f64,
}

impl Contig {
    /// Length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if empty (never produced by the assembler).
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Render as a FASTA record with Inchworm-style header metadata.
    pub fn to_record(&self) -> Record {
        Record {
            id: format!("a{}", self.id),
            desc: format!("len={} cov={:.2}", self.len(), self.coverage),
            seq: self.seq.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_rendering() {
        let c = Contig {
            id: 3,
            seq: b"ACGT".to_vec(),
            coverage: 2.5,
        };
        let rec = c.to_record();
        assert_eq!(rec.id, "a3");
        assert!(rec.desc.contains("len=4"));
        assert!(rec.desc.contains("cov=2.50"));
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }
}

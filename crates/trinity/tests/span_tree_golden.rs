//! Golden-file test of the span tree a small end-to-end pipeline run
//! produces: the track-0 stage timeline plus the Chrysalis sub-traces
//! spliced onto track `RANK_TRACK_BASE`.
//!
//! The golden file (`tests/golden/pipeline_span_tree.txt`) pins the span
//! *names and nesting*, not durations. Repeated lines (per-chunk
//! `rtt.io` / `rtt.loop` spans — their count scales with the read set)
//! are collapsed to their first occurrence before comparison.

use simulate::datasets::{Dataset, DatasetPreset};
use trinity::pipeline::{run_pipeline, PipelineConfig, RANK_TRACK_BASE};

const GOLDEN: &str = include_str!("golden/pipeline_span_tree.txt");

/// Keep only the first occurrence of each (indent, name) line.
fn collapse(rendered: &str) -> String {
    let mut seen = std::collections::HashSet::new();
    let mut out = String::new();
    for line in rendered.lines() {
        if seen.insert(line) {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[test]
fn serial_pipeline_span_tree_matches_golden() {
    let reads = Dataset::generate(DatasetPreset::Tiny, 11).all_reads();
    let out = run_pipeline(&reads, &PipelineConfig::small(12));

    // Track 0: the seven collectl-style stage spans, in timeline order.
    let mut actual = out.trace.render_tree(0);

    // Track RANK_TRACK_BASE carries the spliced Chrysalis sub-traces;
    // keep only GraphFromFasta / ReadsToTranscripts spans (Bowtie's MPI
    // collective spans on the same track depend on the rank layout).
    let sub = obs::Trace {
        spans: out
            .trace
            .spans
            .iter()
            .filter(|s| {
                s.track == RANK_TRACK_BASE
                    && (s.name.starts_with("gff.") || s.name.starts_with("rtt."))
            })
            .cloned()
            .collect(),
        ..Default::default()
    };
    actual.push_str(&sub.render_tree(RANK_TRACK_BASE));

    let actual = collapse(&actual);
    assert_eq!(
        actual, GOLDEN,
        "span tree drifted from golden file;\n--- actual ---\n{actual}\n--- golden ---\n{GOLDEN}"
    );
}

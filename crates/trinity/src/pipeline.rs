//! The end-to-end Trinity pipeline.

use std::sync::Arc;

use seqio::fasta::Record;

use bowtie::align::AlignConfig;
use butterfly::transcripts::{reconstruct_component, ComponentInput, ReconstructionConfig};
use chrysalis::bowtie_mpi::{bowtie_mpi, contig_name_index, BowtieMpiOutput, BowtieTimings};
use chrysalis::config::ChrysalisConfig;
use chrysalis::graph_from_fasta::{cluster, gff_hybrid, gff_shared_memory, GffOutput, GffShared};
use chrysalis::reads_to_transcripts::{rtt_hybrid, rtt_shared_memory, RttOutput, RttShared};
use chrysalis::scaffold::{scaffold_pairs, ScaffoldConfig};
use chrysalis::timings::{GffTimings, RttTimings};
use inchworm::assemble::{assemble, InchwormConfig};
use inchworm::dictionary::Dictionary;
use kcount::counter::{count_kmers, CounterConfig};
use mpisim::{run_cluster, NetModel};
use omp::makespan::simulate_loop;
use omp::pool::parallel_map_timed;

use crate::collectl::{ram, CollectlTrace};

/// Serial (single-node OpenMP) or hybrid (MPI+OpenMP) execution.
#[derive(Debug, Clone, Copy)]
pub enum PipelineMode {
    /// The original Trinity layout: one node, OpenMP threads.
    Serial,
    /// The paper's layout: `ranks` nodes, 16 threads each.
    Hybrid {
        /// MPI ranks (nodes).
        ranks: usize,
        /// Interconnect model.
        net: NetModel,
    },
}

/// Pipeline parameters (the `Trinity.pl` command line).
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Chrysalis parameters (k, threads, schedule, chunking …).
    pub chrysalis: ChrysalisConfig,
    /// Inchworm parameters.
    pub inchworm: InchwormConfig,
    /// Jellyfish minimum k-mer count (error filter).
    pub min_kmer_count: u32,
    /// Butterfly parameters.
    pub reconstruction: ReconstructionConfig,
    /// Bowtie parameters.
    pub align: AlignConfig,
    /// Scaffolding parameters.
    pub scaffold: ScaffoldConfig,
    /// Execution mode.
    pub mode: PipelineMode,
}

impl PipelineConfig {
    /// A small-k configuration suitable for tests and examples.
    pub fn small(k: usize) -> Self {
        let chrysalis = ChrysalisConfig::small(k);
        PipelineConfig {
            chrysalis,
            inchworm: InchwormConfig {
                min_seed_count: 1,
                min_extend_count: 1,
                min_contig_len: 2 * k,
                jitter_seed: None,
            },
            min_kmer_count: 1,
            reconstruction: ReconstructionConfig {
                k,
                paths: butterfly::paths::PathConfig {
                    min_len: 2 * k,
                    ..Default::default()
                },
                // Prune weight-1 edges: a single erroneous read cannot open
                // an isoform bubble (contigs thread at weight 2).
                min_edge_weight: 2,
                ..Default::default()
            },
            align: AlignConfig {
                max_mismatches: 1,
                ..Default::default()
            },
            scaffold: ScaffoldConfig::default(),
            mode: PipelineMode::Serial,
        }
    }

    /// The paper's production-style configuration at word size `k`.
    pub fn paper(k: usize) -> Self {
        let mut cfg = Self::small(k);
        cfg.chrysalis = ChrysalisConfig {
            k,
            ..ChrysalisConfig::default()
        };
        cfg.inchworm.min_seed_count = 2;
        cfg.min_kmer_count = 1;
        cfg
    }
}

/// Everything the pipeline produced.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Inchworm contigs.
    pub contigs: Vec<Record>,
    /// Final components (contig indices per component, after welding and
    /// scaffolding).
    pub components: Vec<Vec<usize>>,
    /// Read→component assignments.
    pub assignments: Vec<(u32, u32)>,
    /// Reconstructed transcripts.
    pub transcripts: Vec<Record>,
    /// Stage trace (virtual time + modelled RAM), Figs. 2/11.
    pub trace: CollectlTrace,
    /// Per-rank GraphFromFasta timings (one entry in serial mode).
    pub gff_timings: Vec<GffTimings>,
    /// Per-rank ReadsToTranscripts timings.
    pub rtt_timings: Vec<RttTimings>,
    /// Per-rank Bowtie timings.
    pub bowtie_timings: Vec<BowtieTimings>,
}

fn max_time<T>(outs: &[mpisim::RankOutput<T>]) -> f64 {
    outs.iter().map(|o| o.time).fold(0.0, f64::max)
}

/// Run the pipeline over `reads`.
pub fn run_pipeline(reads: &[Record], cfg: &PipelineConfig) -> PipelineOutput {
    let mut trace = CollectlTrace::default();
    let k = cfg.chrysalis.k;

    // ---- Jellyfish ----
    // Counting is embarrassingly parallel over read batches (Jellyfish's
    // lock-free table); time per-batch costs and replay the 16-thread
    // makespan, then merge serially (measured).
    let batches: Vec<&[Record]> = reads.chunks(256).collect();
    let (tables, costs) = parallel_map_timed(&batches, |batch| {
        count_kmers(
            batch,
            CounterConfig {
                k,
                canonical: true,
                threads: 1,
                shards: 1,
            },
        )
    });
    let count_time = simulate_loop(&costs, cfg.chrysalis.threads, cfg.chrysalis.schedule).makespan;
    let t0 = std::time::Instant::now();
    let mut counts = kcount::counter::KmerCounts::empty(k);
    for t in tables {
        for (km, c) in t.iter() {
            counts.add(km, c);
        }
    }
    counts.retain_min(cfg.min_kmer_count.max(1));
    let merge_time = t0.elapsed().as_secs_f64();
    let distinct = counts.len();
    trace.push(
        "Jellyfish",
        count_time + merge_time,
        ram::jellyfish(distinct),
    );

    // ---- Inchworm ----
    let t0 = std::time::Instant::now();
    let dict = Dictionary::from_counts(counts.clone(), cfg.min_kmer_count.max(1));
    let contig_list = assemble(&dict, cfg.inchworm);
    let contigs: Vec<Record> = contig_list.iter().map(|c| c.to_record()).collect();
    let contig_bytes: usize = contigs.iter().map(|c| c.seq.len()).sum();
    trace.push(
        "Inchworm",
        t0.elapsed().as_secs_f64(),
        ram::inchworm(distinct, contig_bytes),
    );

    // ---- Chrysalis: Bowtie ----
    let (ranks, net) = match cfg.mode {
        PipelineMode::Serial => (1, NetModel::ideal()),
        PipelineMode::Hybrid { ranks, net } => (ranks, net),
    };
    let contigs_arc = Arc::new(contigs);
    let reads_arc = Arc::new(reads.to_vec());
    let (c_arc, r_arc, ch_cfg, al_cfg) = (
        Arc::clone(&contigs_arc),
        Arc::clone(&reads_arc),
        cfg.chrysalis,
        cfg.align,
    );
    let bowtie_outs = run_cluster(ranks, net, move |comm| {
        bowtie_mpi(comm, &c_arc, &r_arc, &ch_cfg, al_cfg)
    });
    let bowtie_out: &BowtieMpiOutput = &bowtie_outs[0].value;
    let read_buffer: usize = reads.iter().map(|r| r.seq.len()).sum();
    trace.push(
        "Bowtie",
        max_time(&bowtie_outs),
        ram::bowtie(contig_bytes.div_ceil(ranks), read_buffer),
    );
    let bowtie_timings: Vec<BowtieTimings> = bowtie_outs.iter().map(|o| o.value.timings).collect();
    let sam = bowtie_out.sam.clone();

    // ---- Chrysalis: GraphFromFasta ----
    let gff_shared = Arc::new(GffShared::prepare(
        contigs_arc.as_ref().clone(),
        counts,
        cfg.chrysalis,
    ));
    let (gff_out, gff_timings, gff_time): (GffOutput, Vec<GffTimings>, f64) = if ranks == 1 {
        let out = gff_shared_memory(&gff_shared);
        let t = out.timings;
        let total = t.total;
        (out, vec![t], total)
    } else {
        let sh = Arc::clone(&gff_shared);
        let outs = run_cluster(ranks, net, move |comm| gff_hybrid(comm, &sh));
        let timings: Vec<GffTimings> = outs.iter().map(|o| o.value.timings).collect();
        let time = max_time(&outs);
        (
            outs.into_iter().next().expect("rank 0").value,
            timings,
            time,
        )
    };
    let weld_bytes: usize = gff_out.welds.iter().map(Vec::len).sum();
    trace.push(
        "GraphFromFasta",
        gff_time,
        ram::graph_from_fasta(contig_bytes, gff_shared.kmap.len(), weld_bytes),
    );

    // ---- Chrysalis: scaffolding (combine Bowtie links with welds) ----
    let t0 = std::time::Instant::now();
    let name_index = contig_name_index(&contigs_arc);
    let lens: Vec<usize> = contigs_arc.iter().map(|c| c.seq.len()).collect();
    let scaf_pairs = scaffold_pairs(&sam, &name_index, &lens, cfg.scaffold);
    let mut all_pairs = gff_out.pairs.clone();
    all_pairs.extend(scaf_pairs);
    all_pairs.sort_unstable();
    all_pairs.dedup();
    let (_, components) = cluster(contigs_arc.len(), &all_pairs);
    trace.push(
        "QuantifyGraph",
        t0.elapsed().as_secs_f64(),
        ram::graph_from_fasta(contig_bytes, 0, weld_bytes),
    );

    // ---- Chrysalis: ReadsToTranscripts ----
    let rtt_shared = Arc::new(RttShared::prepare(
        reads.to_vec(),
        &contigs_arc,
        &components,
        cfg.chrysalis,
    ));
    let (rtt_out, rtt_timings, rtt_time): (RttOutput, Vec<RttTimings>, f64) = if ranks == 1 {
        let out = rtt_shared_memory(&rtt_shared);
        let t = out.timings;
        let total = t.total;
        (out, vec![t], total)
    } else {
        let sh = Arc::clone(&rtt_shared);
        let outs = run_cluster(ranks, net, move |comm| rtt_hybrid(comm, &sh));
        let timings: Vec<RttTimings> = outs.iter().map(|o| o.value.timings).collect();
        let time = max_time(&outs);
        (
            outs.into_iter().next().expect("rank 0").value,
            timings,
            time,
        )
    };
    let chunk_bytes: usize = reads
        .iter()
        .take(cfg.chrysalis.max_mem_reads)
        .map(|r| r.seq.len())
        .sum();
    trace.push(
        "ReadsToTranscripts",
        rtt_time,
        ram::reads_to_transcripts(rtt_shared.kmer_to_component.len(), chunk_bytes),
    );

    // ---- Butterfly ----
    let mut comp_inputs: Vec<ComponentInput> = components
        .iter()
        .enumerate()
        .map(|(ci, members)| ComponentInput {
            component: ci,
            contigs: members
                .iter()
                .map(|&m| contigs_arc[m].seq.clone())
                .collect(),
            reads: Vec::new(),
        })
        .collect();
    for &(r, c) in &rtt_out.assignments {
        comp_inputs[c as usize]
            .reads
            .push(reads[r as usize].seq.clone());
    }
    let (transcript_lists, costs) = parallel_map_timed(&comp_inputs, |input| {
        reconstruct_component(input, cfg.reconstruction)
    });
    let butterfly_time =
        simulate_loop(&costs, cfg.chrysalis.threads, cfg.chrysalis.schedule).makespan;
    let transcripts: Vec<Record> = transcript_lists.into_iter().flatten().collect();
    let max_nodes = comp_inputs
        .iter()
        .map(|c| c.contigs.iter().map(Vec::len).sum::<usize>())
        .max()
        .unwrap_or(0);
    trace.push("Butterfly", butterfly_time, ram::butterfly(max_nodes));

    PipelineOutput {
        contigs: Arc::try_unwrap(contigs_arc).unwrap_or_else(|a| a.as_ref().clone()),
        components,
        assignments: rtt_out.assignments,
        transcripts,
        trace,
        gff_timings,
        rtt_timings,
        bowtie_timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simulate::datasets::{Dataset, DatasetPreset};

    fn tiny_reads() -> Vec<Record> {
        Dataset::generate(DatasetPreset::Tiny, 11).all_reads()
    }

    #[test]
    fn serial_pipeline_produces_transcripts() {
        let reads = tiny_reads();
        let out = run_pipeline(&reads, &PipelineConfig::small(12));
        assert!(!out.contigs.is_empty(), "contigs assembled");
        assert!(!out.transcripts.is_empty(), "transcripts reconstructed");
        assert!(!out.assignments.is_empty(), "reads assigned");
        assert_eq!(out.trace.stages.len(), 7);
        assert!(out.trace.total_time() > 0.0);
        assert_eq!(out.gff_timings.len(), 1);
    }

    #[test]
    fn hybrid_pipeline_matches_serial_components() {
        let reads = tiny_reads();
        let serial = run_pipeline(&reads, &PipelineConfig::small(12));
        let mut cfg = PipelineConfig::small(12);
        cfg.mode = PipelineMode::Hybrid {
            ranks: 3,
            net: NetModel::ideal(),
        };
        let hybrid = run_pipeline(&reads, &cfg);
        assert_eq!(hybrid.components, serial.components);
        assert_eq!(hybrid.assignments, serial.assignments);
        // Transcript sets identical for identical component inputs.
        let mut a: Vec<&[u8]> = serial
            .transcripts
            .iter()
            .map(|r| r.seq.as_slice())
            .collect();
        let mut b: Vec<&[u8]> = hybrid
            .transcripts
            .iter()
            .map(|r| r.seq.as_slice())
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(hybrid.gff_timings.len(), 3);
        assert_eq!(hybrid.rtt_timings.len(), 3);
    }

    #[test]
    fn transcripts_match_reference_genes() {
        // At least one simulated gene should be reconstructed end-to-end.
        let ds = Dataset::generate(DatasetPreset::Tiny, 11);
        let out = run_pipeline(&ds.all_reads(), &PipelineConfig::small(12));
        let hit = ds.reference.iter().any(|refseq| {
            out.transcripts
                .iter()
                .any(|t| t.seq == refseq.seq || t.seq == seqio::alphabet::revcomp(&refseq.seq))
        });
        assert!(hit, "no reference transcript reconstructed exactly");
    }

    #[test]
    fn trace_is_chrysalis_dominated() {
        // Fig. 2's headline: Chrysalis (Bowtie+GFF+RTT) dominates runtime.
        let reads = tiny_reads();
        let out = run_pipeline(&reads, &PipelineConfig::small(12));
        let chrysalis_time: f64 = out
            .trace
            .stages
            .iter()
            .filter(|s| {
                [
                    "Bowtie",
                    "GraphFromFasta",
                    "QuantifyGraph",
                    "ReadsToTranscripts",
                ]
                .contains(&s.name.as_str())
            })
            .map(|s| s.duration())
            .sum();
        let jelly_time = out.trace.stages[0].duration();
        assert!(
            chrysalis_time > jelly_time,
            "Chrysalis ({chrysalis_time}) should dominate Jellyfish ({jelly_time})"
        );
    }
}

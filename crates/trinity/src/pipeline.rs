//! The end-to-end Trinity pipeline.
//!
//! Observability: the pipeline records into one [`obs::Tracer`] — track 0
//! carries collectl-style `cat:"stage"` spans (with a modelled-RAM `"ram"`
//! arg and counter series, Figs. 2/11), per-rank Chrysalis sub-traces are
//! spliced onto tracks `1 + rank`, and OpenMP busy/idle lanes sit at
//! [`obs::THREAD_TRACK_BASE`]` + thread`. Table/counter health goes into an
//! [`obs::MetricsRegistry`]; both land in [`PipelineOutput`] ready for the
//! JSON / Chrome-trace exporters in [`obs::export`].

use std::path::{Path, PathBuf};
use std::sync::Arc;

use seqio::fasta::Record;
use seqio::packed::PackedSeq;

use bowtie::align::AlignConfig;
use butterfly::transcripts::{reconstruct_component, ComponentInput, ReconstructionConfig};
use chrysalis::bowtie_mpi::{bowtie_mpi, contig_name_index, BowtieMpiOutput, BowtieTimings};
use chrysalis::config::ChrysalisConfig;
use chrysalis::graph_from_fasta::{cluster, gff_hybrid, gff_shared_memory, GffOutput, GffShared};
use chrysalis::reads_to_transcripts::{rtt_hybrid, rtt_shared_memory, RttOutput, RttShared};
use chrysalis::scaffold::{scaffold_pairs, ScaffoldConfig};
use chrysalis::timings::{GffTimings, RttTimings};
use inchworm::assemble::{assemble, InchwormConfig};
use inchworm::dictionary::Dictionary;
use kcount::counter::{count_kmers_packed, CounterConfig};
use mpisim::{run_cluster, run_cluster_faulty, Comm, FaultPlan, NetModel};
use omp::makespan::simulate_loop;
use omp::pool::parallel_map_timed;

use crate::checkpoint as ckpt;

/// Rough resident-set model for the pipeline's data structures. The
/// coefficients are hash-map-overhead multipliers, not exact science —
/// the *shape* (Jellyfish/Inchworm dominate memory, Chrysalis dominates
/// time) is what Figs. 2/11 show.
pub mod ram {
    /// Jellyfish: distinct k-mers × (key + count + table overhead).
    pub fn jellyfish(distinct_kmers: usize) -> u64 {
        (distinct_kmers as u64) * 48
    }

    /// Inchworm: the dictionary (sorted vec + hash) plus contig text.
    pub fn inchworm(distinct_kmers: usize, contig_bytes: usize) -> u64 {
        (distinct_kmers as u64) * 64 + contig_bytes as u64
    }

    /// Bowtie: FM-index ≈ 6 bytes per reference base (SA + BWT + Occ)
    /// plus the read stream buffer.
    pub fn bowtie(ref_bases: usize, read_buffer: usize) -> u64 {
        (ref_bases as u64) * 6 + read_buffer as u64
    }

    /// GraphFromFasta: contigs + k-mer map + welds.
    pub fn graph_from_fasta(contig_bytes: usize, kmer_entries: usize, weld_bytes: usize) -> u64 {
        contig_bytes as u64 + (kmer_entries as u64) * 56 + weld_bytes as u64
    }

    /// ReadsToTranscripts: k-mer→component table + one chunk of reads.
    pub fn reads_to_transcripts(kmer_entries: usize, chunk_bytes: usize) -> u64 {
        (kmer_entries as u64) * 40 + chunk_bytes as u64
    }

    /// Butterfly: graph nodes/edges per component (peak over components).
    pub fn butterfly(max_component_nodes: usize) -> u64 {
        (max_component_nodes as u64) * 96
    }
}

/// Collectl-style stage logger: each stage becomes a `cat:"stage"` span on
/// track 0 starting where the previous ended, carrying the modelled RAM as
/// a span arg and as a step in the `"ram"` counter series.
struct StageLog {
    obs: obs::Tracer,
    cursor: f64,
}

impl StageLog {
    fn new() -> Self {
        let obs = obs::Tracer::new();
        obs.name_track(0, "pipeline");
        StageLog { obs, cursor: 0.0 }
    }

    /// Append a stage; returns its start time (for splicing sub-traces).
    fn push(&mut self, name: &str, duration: f64, peak_ram: u64) -> f64 {
        let start = self.cursor;
        self.cursor += duration.max(0.0);
        self.obs.record_with(
            0,
            "stage",
            name,
            start,
            self.cursor,
            &[("ram", peak_ram as f64)],
        );
        self.obs.counter(0, "ram", start, peak_ram as f64);
        self.obs.counter(0, "ram", self.cursor, peak_ram as f64);
        start
    }
}

/// Track offset for per-rank sub-traces spliced into the pipeline trace:
/// rank `r`'s spans land on track `RANK_TRACK_BASE + r`.
pub const RANK_TRACK_BASE: u32 = 1;

/// Serial (single-node OpenMP) or hybrid (MPI+OpenMP) execution.
#[derive(Debug, Clone, Copy)]
pub enum PipelineMode {
    /// The original Trinity layout: one node, OpenMP threads.
    Serial,
    /// The paper's layout: `ranks` nodes, 16 threads each.
    Hybrid {
        /// MPI ranks (nodes).
        ranks: usize,
        /// Interconnect model.
        net: NetModel,
    },
}

/// Pipeline parameters (the `Trinity.pl` command line).
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Chrysalis parameters (k, threads, schedule, chunking …).
    pub chrysalis: ChrysalisConfig,
    /// Inchworm parameters.
    pub inchworm: InchwormConfig,
    /// Jellyfish minimum k-mer count (error filter).
    pub min_kmer_count: u32,
    /// Butterfly parameters.
    pub reconstruction: ReconstructionConfig,
    /// Bowtie parameters.
    pub align: AlignConfig,
    /// Scaffolding parameters.
    pub scaffold: ScaffoldConfig,
    /// Execution mode.
    pub mode: PipelineMode,
}

impl PipelineConfig {
    /// A small-k configuration suitable for tests and examples.
    pub fn small(k: usize) -> Self {
        let chrysalis = ChrysalisConfig::small(k);
        PipelineConfig {
            chrysalis,
            inchworm: InchwormConfig {
                min_seed_count: 1,
                min_extend_count: 1,
                min_contig_len: 2 * k,
                jitter_seed: None,
            },
            min_kmer_count: 1,
            reconstruction: ReconstructionConfig {
                k,
                paths: butterfly::paths::PathConfig {
                    min_len: 2 * k,
                    ..Default::default()
                },
                // Prune weight-1 edges: a single erroneous read cannot open
                // an isoform bubble (contigs thread at weight 2).
                min_edge_weight: 2,
                ..Default::default()
            },
            align: AlignConfig {
                max_mismatches: 1,
                ..Default::default()
            },
            scaffold: ScaffoldConfig::default(),
            mode: PipelineMode::Serial,
        }
    }

    /// The paper's production-style configuration at word size `k`.
    pub fn paper(k: usize) -> Self {
        let mut cfg = Self::small(k);
        cfg.chrysalis = ChrysalisConfig {
            k,
            ..ChrysalisConfig::default()
        };
        cfg.inchworm.min_seed_count = 2;
        cfg.min_kmer_count = 1;
        cfg
    }
}

/// Run-level options orthogonal to [`PipelineConfig`]: fault injection
/// for the simulated cluster stages and stage-level checkpoint/resume.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Deterministic fault plan applied to every cluster stage (Bowtie,
    /// GraphFromFasta, ReadsToTranscripts). Delays and drops perturb
    /// virtual time only; rank crashes trigger a deterministic stage
    /// replay (crash points are one-shot).
    pub faults: Option<Arc<FaultPlan>>,
    /// Directory for stage checkpoints. When set, each checkpointable
    /// stage writes its output (with a content checksum) after completing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from `checkpoint_dir`: skip each stage whose checkpoint
    /// validates, for as long as the completed prefix holds. The first
    /// missing or corrupt checkpoint switches the rest of the run back to
    /// compute-and-save.
    pub resume: bool,
}

/// Result of running one cluster stage to completion under (possible)
/// fault injection.
struct ClusterRun<T> {
    /// Per-rank outputs of the final, successful attempt.
    outs: Vec<mpisim::RankOutput<T>>,
    /// Total virtual time, including crashed attempts that were replayed.
    time: f64,
    /// Partial traces salvaged from crashed/aborted attempts (they carry
    /// the `fault.crash` markers and any pre-crash comm spans).
    aborted_traces: Vec<obs::Trace>,
}

/// Run a cluster stage, replaying it until every rank completes. Crash
/// points are one-shot on the shared plan, so each replay is strictly
/// closer to a clean run; drops/delays replay with identical RNG streams
/// and never change payloads. Fault counters are folded into `metrics`.
fn run_cluster_resilient<T, F>(
    ranks: usize,
    net: NetModel,
    plan: Option<&Arc<FaultPlan>>,
    metrics: &obs::MetricsRegistry,
    f: F,
) -> ClusterRun<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    let Some(plan) = plan.filter(|p| p.is_active()) else {
        let outs = run_cluster(ranks, net, f);
        return ClusterRun {
            time: max_time(&outs),
            outs,
            aborted_traces: Vec::new(),
        };
    };
    let mut time = 0.0;
    let mut aborted_traces = Vec::new();
    // Each failed attempt fires at least one one-shot crash point, so the
    // loop is bounded by the number of scheduled crashes.
    for _attempt in 0..=plan.crashes().len() {
        let outs = run_cluster_faulty(ranks, net, Arc::clone(plan), &f);
        for o in &outs {
            metrics.counter("fault.retries").add(o.stats.retries);
            metrics.counter("fault.delays").add(o.stats.delays);
        }
        time += outs.iter().map(|o| o.time).fold(0.0, f64::max);
        if outs.iter().all(|o| o.state.is_completed()) {
            let outs = mpisim::unwrap_clean(outs).expect("all ranks completed");
            return ClusterRun {
                outs,
                time,
                aborted_traces,
            };
        }
        metrics
            .counter("fault.rank_crashes")
            .add(mpisim::crashed_ranks(&outs).len() as u64);
        metrics.counter("fault.replays").add(1);
        for o in outs {
            if !o.trace.is_empty() {
                aborted_traces.push(o.trace);
            }
        }
    }
    unreachable!("crash points are one-shot; a replay must eventually run clean")
}

/// Everything the pipeline produced.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Inchworm contigs.
    pub contigs: Vec<Record>,
    /// Final components (contig indices per component, after welding and
    /// scaffolding).
    pub components: Vec<Vec<usize>>,
    /// Read→component assignments.
    pub assignments: Vec<(u32, u32)>,
    /// Reconstructed transcripts.
    pub transcripts: Vec<Record>,
    /// Unified span trace: collectl-style stage spans + RAM counter on
    /// track 0, per-rank Chrysalis sub-traces on tracks
    /// [`RANK_TRACK_BASE`]` + rank`, OpenMP lanes at
    /// [`obs::THREAD_TRACK_BASE`]` + thread`. Export with
    /// [`obs::export::chrome_trace`] / [`obs::export::trace_json`].
    pub trace: obs::Trace,
    /// Table/counter health recorded during the run (k-mer table load
    /// factors, probe-length histograms, weld/assignment counts, MPI
    /// bytes). Export with [`obs::export::metrics_json`].
    pub metrics: obs::MetricsSnapshot,
    /// Per-rank GraphFromFasta timings (one entry in serial mode; empty
    /// when the stage was resumed from a checkpoint).
    pub gff_timings: Vec<GffTimings>,
    /// Per-rank ReadsToTranscripts timings (empty when resumed).
    pub rtt_timings: Vec<RttTimings>,
    /// Per-rank Bowtie timings.
    pub bowtie_timings: Vec<BowtieTimings>,
}

/// Per-run checkpoint controller: `resume` consumes checkpoints while the
/// completed prefix validates; `save` writes them after computed stages.
struct CkptCtl<'a> {
    dir: Option<&'a Path>,
    fingerprint: u64,
    prefix_valid: bool,
}

impl CkptCtl<'_> {
    /// Try to resume `stage`. Returns the checkpoint only if the dir is
    /// configured, every earlier stage resumed cleanly, and this stage's
    /// file validates (magic, version, checksum, fingerprint). A missing
    /// file is the normal "not completed yet" case; a corrupt one is
    /// counted and reported before falling back to recompute.
    fn resume(&mut self, metrics: &obs::MetricsRegistry, stage: &str) -> Option<ckpt::Checkpoint> {
        let dir = self.dir?;
        if !self.prefix_valid {
            return None;
        }
        match ckpt::load(dir, self.fingerprint, stage) {
            Ok(ck) => {
                metrics.counter("ckpt.resumed").add(1);
                Some(ck)
            }
            Err(err) => {
                if !matches!(err, ckpt::CkptError::Io(_)) {
                    metrics.counter("ckpt.invalid").add(1);
                    eprintln!("checkpoint for {stage} rejected ({err}); recomputing");
                }
                self.prefix_valid = false;
                None
            }
        }
    }

    /// Persist a computed stage's output (no-op without a checkpoint dir).
    fn save(&self, metrics: &obs::MetricsRegistry, stage: &str, duration: f64, payload: &[u8]) {
        let Some(dir) = self.dir else { return };
        match ckpt::save(dir, self.fingerprint, stage, duration, payload) {
            Ok(_) => {
                metrics.counter("ckpt.saved").add(1);
            }
            Err(e) => eprintln!("warning: could not write {stage} checkpoint: {e}"),
        }
    }
}

fn max_time<T>(outs: &[mpisim::RankOutput<T>]) -> f64 {
    outs.iter().map(|o| o.time).fold(0.0, f64::max)
}

/// Queue each rank's sub-trace for splicing at the stage's start time and
/// fold its communication counters into the shared registry.
fn record_cluster<T>(
    metrics: &obs::MetricsRegistry,
    sub_traces: &mut Vec<(f64, obs::Trace)>,
    start: f64,
    outs: &[mpisim::RankOutput<T>],
) {
    for o in outs {
        metrics.counter("comm.bytes_sent").add(o.stats.bytes_sent);
        metrics.counter("comm.collectives").add(o.stats.collectives);
        if !o.trace.is_empty() {
            sub_traces.push((start, o.trace.clone()));
        }
    }
}

/// Run the pipeline over `reads` (fault-free, no checkpointing).
pub fn run_pipeline(reads: &[Record], cfg: &PipelineConfig) -> PipelineOutput {
    run_pipeline_opts(reads, cfg, &RunOptions::default())
}

/// Run the pipeline over `reads` with [`RunOptions`]: deterministic fault
/// injection on the cluster stages and/or stage-level checkpoint/resume.
pub fn run_pipeline_opts(
    reads: &[Record],
    cfg: &PipelineConfig,
    opts: &RunOptions,
) -> PipelineOutput {
    let mut log = StageLog::new();
    let metrics = obs::MetricsRegistry::new();
    // Per-rank sub-traces, collected as (stage start, trace) and spliced
    // into the pipeline timeline at the end.
    let mut sub_traces: Vec<(f64, obs::Trace)> = Vec::new();
    let k = cfg.chrysalis.k;
    let (ranks, net) = match cfg.mode {
        PipelineMode::Serial => (1, NetModel::ideal()),
        PipelineMode::Hybrid { ranks, net } => (ranks, net),
    };
    let mut ctl = CkptCtl {
        dir: opts.checkpoint_dir.as_deref(),
        fingerprint: if opts.checkpoint_dir.is_some() {
            ckpt::run_fingerprint(
                reads,
                &[
                    k as u64,
                    cfg.min_kmer_count as u64,
                    ranks as u64,
                    cfg.inchworm.min_seed_count as u64,
                    cfg.inchworm.min_extend_count as u64,
                    cfg.inchworm.min_contig_len as u64,
                ],
            )
        } else {
            0
        },
        prefix_valid: opts.resume,
    };
    let seqio_before = seqio::packed::stats_snapshot();

    // ---- Ingest: 2-bit pack every read exactly once ----
    // Jellyfish counts, ReadsToTranscripts votes and Butterfly threads all
    // consume this same encoding; no stage re-walks the ASCII.
    let t0 = std::time::Instant::now();
    let packed_reads: Arc<Vec<PackedSeq>> = Arc::new(seqio::packed::encode_all(reads));
    let encode_time = t0.elapsed().as_secs_f64();

    // ---- Jellyfish ----
    // Counting is embarrassingly parallel over read batches (Jellyfish's
    // lock-free table); time per-batch costs and replay the 16-thread
    // makespan, then merge serially (measured). A valid checkpoint skips
    // all of it and replays the recorded duration.
    let (counts, jelly_time, jelly_sim) = match ctl.resume(&metrics, "Jellyfish") {
        Some(ck) => {
            let counts =
                ckpt::decode_counts(&ck.payload).expect("validated Jellyfish checkpoint decodes");
            (counts, ck.duration, None)
        }
        None => {
            let batches: Vec<&[PackedSeq]> = packed_reads.chunks(256).collect();
            let (tables, costs) = parallel_map_timed(&batches, |batch| {
                count_kmers_packed(
                    batch,
                    CounterConfig {
                        k,
                        canonical: true,
                        threads: 1,
                        shards: 1,
                    },
                )
            });
            let count_sim = simulate_loop(&costs, cfg.chrysalis.threads, cfg.chrysalis.schedule);
            let count_time = count_sim.makespan;
            let t0 = std::time::Instant::now();
            let mut counts = kcount::counter::KmerCounts::empty(k);
            for t in tables {
                for (km, c) in t.iter() {
                    counts.add(km, c);
                }
            }
            counts.retain_min(cfg.min_kmer_count.max(1));
            let merge_time = t0.elapsed().as_secs_f64();
            // The one-time read encode is charged to the counting stage
            // (the first consumer of the packed form).
            (
                counts,
                encode_time + count_time + merge_time,
                Some(count_sim),
            )
        }
    };
    let distinct = counts.len();
    counts.record_metrics(&metrics, "jellyfish");
    let start = log.push("Jellyfish", jelly_time, ram::jellyfish(distinct));
    if let Some(sim) = &jelly_sim {
        sim.record_metrics(&metrics, "jellyfish.loop");
        sim.record_spans(&log.obs, start, obs::THREAD_TRACK_BASE, "jellyfish");
        ctl.save(
            &metrics,
            "Jellyfish",
            jelly_time,
            &ckpt::encode_counts(&counts),
        );
    }

    // ---- Inchworm ----
    let (contigs, inch_time, inch_computed) = match ctl.resume(&metrics, "Inchworm") {
        Some(ck) => (
            ckpt::decode_records(&ck.payload).expect("validated Inchworm checkpoint decodes"),
            ck.duration,
            false,
        ),
        None => {
            let t0 = std::time::Instant::now();
            let dict = Dictionary::from_counts(counts.clone(), cfg.min_kmer_count.max(1));
            let contig_list = assemble(&dict, cfg.inchworm);
            let contigs: Vec<Record> = contig_list.iter().map(|c| c.to_record()).collect();
            (contigs, t0.elapsed().as_secs_f64(), true)
        }
    };
    let contig_bytes: usize = contigs.iter().map(|c| c.seq.len()).sum();
    log.push("Inchworm", inch_time, ram::inchworm(distinct, contig_bytes));
    if inch_computed {
        ctl.save(
            &metrics,
            "Inchworm",
            inch_time,
            &ckpt::encode_records(&contigs),
        );
    }

    // ---- Chrysalis: Bowtie ----
    // Not checkpointed: its artifact (the SAM stream) only feeds
    // scaffolding, whose result is checkpointed at QuantifyGraph.
    let contigs_arc = Arc::new(contigs);
    // Contigs, like reads, are packed exactly once; GraphFromFasta,
    // ReadsToTranscripts and Butterfly all share this encoding.
    let packed_contigs: Arc<Vec<PackedSeq>> =
        Arc::new(seqio::packed::encode_all(contigs_arc.as_ref()));
    let reads_arc = Arc::new(reads.to_vec());
    let (c_arc, r_arc, ch_cfg, al_cfg) = (
        Arc::clone(&contigs_arc),
        Arc::clone(&reads_arc),
        cfg.chrysalis,
        cfg.align,
    );
    let bowtie_run =
        run_cluster_resilient(ranks, net, opts.faults.as_ref(), &metrics, move |comm| {
            bowtie_mpi(comm, &c_arc, &r_arc, &ch_cfg, al_cfg)
        });
    let bowtie_outs = bowtie_run.outs;
    let bowtie_out: &BowtieMpiOutput = &bowtie_outs[0].value;
    let read_buffer: usize = reads.iter().map(|r| r.seq.len()).sum();
    let start = log.push(
        "Bowtie",
        bowtie_run.time,
        ram::bowtie(contig_bytes.div_ceil(ranks), read_buffer),
    );
    record_cluster(&metrics, &mut sub_traces, start, &bowtie_outs);
    for t in bowtie_run.aborted_traces {
        sub_traces.push((start, t));
    }
    let bowtie_timings: Vec<BowtieTimings> = bowtie_outs.iter().map(|o| o.value.timings).collect();
    let sam = bowtie_out.sam.clone();

    // ---- Chrysalis: GraphFromFasta ----
    let (welds, gff_pairs, gff_trace, gff_time, gff_timings, kmap_entries, gff_computed) = match ctl
        .resume(&metrics, "GraphFromFasta")
    {
        Some(ck) => {
            let (welds, pairs) = ckpt::decode_welds(&ck.payload)
                .expect("validated GraphFromFasta checkpoint decodes");
            (
                welds,
                pairs,
                obs::Trace::default(),
                ck.duration,
                Vec::new(),
                0usize,
                false,
            )
        }
        None => {
            let gff_shared = Arc::new(GffShared::prepare(
                packed_contigs.as_ref().clone(),
                counts,
                cfg.chrysalis,
            ));
            gff_shared.kmap.record_metrics(&metrics, "gff.kmap");
            let kmap_len = gff_shared.kmap.len();
            let (mut gff_out, timings, time, aborted): (
                GffOutput,
                Vec<GffTimings>,
                f64,
                Vec<obs::Trace>,
            ) = if ranks == 1 {
                let out = gff_shared_memory(&gff_shared);
                let t = out.timings;
                let total = t.total;
                (out, vec![t], total, Vec::new())
            } else {
                let sh = Arc::clone(&gff_shared);
                let run = run_cluster_resilient(ranks, net, opts.faults.as_ref(), &metrics, {
                    move |comm| gff_hybrid(comm, &sh)
                });
                let timings: Vec<GffTimings> = run.outs.iter().map(|o| o.value.timings).collect();
                let time = run.time;
                let mut first = None;
                let mut ranked = Vec::new();
                for o in run.outs {
                    metrics.counter("comm.bytes_sent").add(o.stats.bytes_sent);
                    metrics.counter("comm.collectives").add(o.stats.collectives);
                    ranked.push(o.trace);
                    if first.is_none() {
                        first = Some(o.value);
                    }
                }
                let mut out = first.expect("rank 0");
                // Stash the merged per-rank spans in the stage output's
                // trace slot so the splice below handles serial and
                // hybrid uniformly.
                for t in ranked {
                    out.trace.merge_shifted(t, 0.0, 0);
                }
                (out, timings, time, run.aborted_traces)
            };
            let mut trace = std::mem::take(&mut gff_out.trace);
            for t in aborted {
                trace.merge_shifted(t, 0.0, 0);
            }
            (
                gff_out.welds,
                gff_out.pairs,
                trace,
                time,
                timings,
                kmap_len,
                true,
            )
        }
    };
    let weld_bytes: usize = welds.iter().map(Vec::len).sum();
    metrics.counter("gff.welds").add(welds.len() as u64);
    metrics.counter("gff.pairs").add(gff_pairs.len() as u64);
    let start = log.push(
        "GraphFromFasta",
        gff_time,
        ram::graph_from_fasta(contig_bytes, kmap_entries, weld_bytes),
    );
    sub_traces.push((start, gff_trace));
    if gff_computed {
        ctl.save(
            &metrics,
            "GraphFromFasta",
            gff_time,
            &ckpt::encode_welds(&welds, &gff_pairs),
        );
    }

    // ---- Chrysalis: scaffolding (combine Bowtie links with welds) ----
    let (components, quant_time, quant_computed) = match ctl.resume(&metrics, "QuantifyGraph") {
        Some(ck) => (
            ckpt::decode_components(&ck.payload)
                .expect("validated QuantifyGraph checkpoint decodes"),
            ck.duration,
            false,
        ),
        None => {
            let t0 = std::time::Instant::now();
            let name_index = contig_name_index(&contigs_arc);
            let lens: Vec<usize> = contigs_arc.iter().map(|c| c.seq.len()).collect();
            let scaf_pairs = scaffold_pairs(&sam, &name_index, &lens, cfg.scaffold);
            let mut all_pairs = gff_pairs.clone();
            all_pairs.extend(scaf_pairs);
            all_pairs.sort_unstable();
            all_pairs.dedup();
            let (_, components) = cluster(contigs_arc.len(), &all_pairs);
            (components, t0.elapsed().as_secs_f64(), true)
        }
    };
    metrics
        .gauge("pipeline.components")
        .set(components.len() as f64);
    log.push(
        "QuantifyGraph",
        quant_time,
        ram::graph_from_fasta(contig_bytes, 0, weld_bytes),
    );
    if quant_computed {
        ctl.save(
            &metrics,
            "QuantifyGraph",
            quant_time,
            &ckpt::encode_components(&components),
        );
    }

    // ---- Chrysalis: ReadsToTranscripts ----
    let (assignments, rtt_time, rtt_timings, rtt_trace, rtt_table_entries, rtt_computed) = match ctl
        .resume(&metrics, "ReadsToTranscripts")
    {
        Some(ck) => (
            ckpt::decode_pairs(&ck.payload)
                .expect("validated ReadsToTranscripts checkpoint decodes"),
            ck.duration,
            Vec::new(),
            obs::Trace::default(),
            0usize,
            false,
        ),
        None => {
            let rtt_shared = Arc::new(RttShared::prepare_with_packed(
                reads.to_vec(),
                packed_reads.as_ref().clone(),
                &packed_contigs,
                &components,
                cfg.chrysalis,
            ));
            rtt_shared
                .kmer_to_component
                .record_metrics(&metrics, "rtt.kmer_table");
            let entries = rtt_shared.kmer_to_component.len();
            let (mut rtt_out, timings, time, aborted): (
                RttOutput,
                Vec<RttTimings>,
                f64,
                Vec<obs::Trace>,
            ) = if ranks == 1 {
                let out = rtt_shared_memory(&rtt_shared);
                let t = out.timings;
                let total = t.total;
                (out, vec![t], total, Vec::new())
            } else {
                let sh = Arc::clone(&rtt_shared);
                let run = run_cluster_resilient(ranks, net, opts.faults.as_ref(), &metrics, {
                    move |comm| rtt_hybrid(comm, &sh)
                });
                let timings: Vec<RttTimings> = run.outs.iter().map(|o| o.value.timings).collect();
                let time = run.time;
                let mut first = None;
                let mut ranked = Vec::new();
                for o in run.outs {
                    metrics.counter("comm.bytes_sent").add(o.stats.bytes_sent);
                    metrics.counter("comm.collectives").add(o.stats.collectives);
                    ranked.push(o.trace);
                    if first.is_none() {
                        first = Some(o.value);
                    }
                }
                let mut out = first.expect("rank 0");
                for t in ranked {
                    out.trace.merge_shifted(t, 0.0, 0);
                }
                (out, timings, time, run.aborted_traces)
            };
            let mut trace = std::mem::take(&mut rtt_out.trace);
            for t in aborted {
                trace.merge_shifted(t, 0.0, 0);
            }
            (rtt_out.assignments, time, timings, trace, entries, true)
        }
    };
    metrics
        .counter("rtt.assignments")
        .add(assignments.len() as u64);
    let chunk_bytes: usize = reads
        .iter()
        .take(cfg.chrysalis.max_mem_reads)
        .map(|r| r.seq.len())
        .sum();
    let start = log.push(
        "ReadsToTranscripts",
        rtt_time,
        ram::reads_to_transcripts(rtt_table_entries, chunk_bytes),
    );
    sub_traces.push((start, rtt_trace));
    if rtt_computed {
        ctl.save(
            &metrics,
            "ReadsToTranscripts",
            rtt_time,
            &ckpt::encode_pairs(&assignments),
        );
    }

    // ---- Butterfly ----
    let mut comp_inputs: Vec<ComponentInput> = components
        .iter()
        .enumerate()
        .map(|(ci, members)| ComponentInput {
            component: ci,
            contigs: members.iter().map(|&m| packed_contigs[m].clone()).collect(),
            reads: Vec::new(),
        })
        .collect();
    for &(r, c) in &assignments {
        comp_inputs[c as usize]
            .reads
            .push(packed_reads[r as usize].clone());
    }
    let (transcript_lists, costs) = parallel_map_timed(&comp_inputs, |input| {
        reconstruct_component(input, cfg.reconstruction)
    });
    let butterfly_sim = simulate_loop(&costs, cfg.chrysalis.threads, cfg.chrysalis.schedule);
    let transcripts: Vec<Record> = transcript_lists.into_iter().flatten().collect();
    let max_nodes = comp_inputs
        .iter()
        .map(|c| c.contigs.iter().map(|s| s.len()).sum::<usize>())
        .max()
        .unwrap_or(0);
    butterfly_sim.record_metrics(&metrics, "butterfly.loop");
    metrics
        .counter("butterfly.transcripts")
        .add(transcripts.len() as u64);
    let start = log.push(
        "Butterfly",
        butterfly_sim.makespan,
        ram::butterfly(max_nodes),
    );
    butterfly_sim.record_spans(&log.obs, start, obs::THREAD_TRACK_BASE, "butterfly");

    let seqio_after = seqio::packed::stats_snapshot();
    metrics
        .gauge("seqio.encoded_seqs")
        .set((seqio_after.encoded_seqs - seqio_before.encoded_seqs) as f64);
    metrics
        .gauge("seqio.encoded_bases")
        .set((seqio_after.encoded_bases - seqio_before.encoded_bases) as f64);
    metrics
        .gauge("seqio.rolled_windows")
        .set((seqio_after.rolled_windows - seqio_before.rolled_windows) as f64);

    let mut trace = log.obs.take();
    for (dt, sub) in sub_traces {
        trace.merge_shifted(sub, dt, RANK_TRACK_BASE);
    }
    // Sampling-profiler pass: walk each pipeline/rank lane's open-span
    // stack at a fixed period and append `profile.depth` /
    // `profile.samples.<leaf>` counter series, so long stages (gff
    // loop1/loop2, the rtt chunk loops) show internal progress in a trace
    // viewer instead of one opaque span. Thread lanes (busy/idle pairs)
    // carry no nesting worth sampling and are skipped.
    let sampler = obs::Sampler::with_samples(&trace, 256);
    let lanes: std::collections::BTreeSet<u32> = trace
        .spans
        .iter()
        .map(|s| s.track)
        .filter(|&t| t < obs::THREAD_TRACK_BASE)
        .collect();
    for lane in lanes {
        sampler.annotate(&mut trace, lane);
    }
    PipelineOutput {
        contigs: Arc::try_unwrap(contigs_arc).unwrap_or_else(|a| a.as_ref().clone()),
        components,
        assignments,
        transcripts,
        trace,
        metrics: metrics.snapshot(),
        gff_timings,
        rtt_timings,
        bowtie_timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simulate::datasets::{Dataset, DatasetPreset};

    fn tiny_reads() -> Vec<Record> {
        Dataset::generate(DatasetPreset::Tiny, 11).all_reads()
    }

    #[test]
    fn serial_pipeline_produces_transcripts() {
        let reads = tiny_reads();
        let out = run_pipeline(&reads, &PipelineConfig::small(12));
        assert!(!out.contigs.is_empty(), "contigs assembled");
        assert!(!out.transcripts.is_empty(), "transcripts reconstructed");
        assert!(!out.assignments.is_empty(), "reads assigned");
        let stages: Vec<&obs::SpanRecord> = out
            .trace
            .with_cat("stage")
            .into_iter()
            .filter(|s| s.track == 0)
            .collect();
        assert_eq!(stages.len(), 7, "one stage span per pipeline stage");
        assert!(out.trace.total_time() > 0.0);
        assert!(out.trace.max_counter("ram").unwrap_or(0.0) > 0.0);
        assert_eq!(out.gff_timings.len(), 1);
        // Serial Chrysalis sub-traces are spliced in: the GFF stage timeline
        // lands on track RANK_TRACK_BASE at the stage's start offset.
        let gff_stage = stages
            .iter()
            .find(|s| s.name == "GraphFromFasta")
            .expect("GraphFromFasta stage span");
        let (sub_start, sub_end) = out
            .trace
            .span_bounds(RANK_TRACK_BASE, "gff.total")
            .expect("spliced gff.total span");
        assert!((sub_start - gff_stage.start).abs() < 1e-9);
        assert!(sub_end <= gff_stage.end + 1e-9);
    }

    #[test]
    fn hybrid_pipeline_matches_serial_components() {
        let reads = tiny_reads();
        let serial = run_pipeline(&reads, &PipelineConfig::small(12));
        let mut cfg = PipelineConfig::small(12);
        cfg.mode = PipelineMode::Hybrid {
            ranks: 3,
            net: NetModel::ideal(),
        };
        let hybrid = run_pipeline(&reads, &cfg);
        assert_eq!(hybrid.components, serial.components);
        assert_eq!(hybrid.assignments, serial.assignments);
        // Transcript sets identical for identical component inputs.
        let mut a: Vec<&[u8]> = serial
            .transcripts
            .iter()
            .map(|r| r.seq.as_slice())
            .collect();
        let mut b: Vec<&[u8]> = hybrid
            .transcripts
            .iter()
            .map(|r| r.seq.as_slice())
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(hybrid.gff_timings.len(), 3);
        assert_eq!(hybrid.rtt_timings.len(), 3);
    }

    #[test]
    fn transcripts_match_reference_genes() {
        // At least one simulated gene should be reconstructed end-to-end.
        let ds = Dataset::generate(DatasetPreset::Tiny, 11);
        let out = run_pipeline(&ds.all_reads(), &PipelineConfig::small(12));
        let hit = ds.reference.iter().any(|refseq| {
            out.transcripts
                .iter()
                .any(|t| t.seq == refseq.seq || t.seq == seqio::alphabet::revcomp(&refseq.seq))
        });
        assert!(hit, "no reference transcript reconstructed exactly");
    }

    #[test]
    fn trace_is_chrysalis_dominated() {
        // Fig. 2's headline: Chrysalis (Bowtie+GFF+RTT) dominates runtime.
        let reads = tiny_reads();
        let out = run_pipeline(&reads, &PipelineConfig::small(12));
        let chrysalis_time: f64 = out
            .trace
            .with_cat("stage")
            .into_iter()
            .filter(|s| {
                s.track == 0
                    && [
                        "Bowtie",
                        "GraphFromFasta",
                        "QuantifyGraph",
                        "ReadsToTranscripts",
                    ]
                    .contains(&s.name.as_str())
            })
            .map(|s| s.end - s.start)
            .sum();
        let jelly_time = out.trace.span_sum(0, "Jellyfish");
        assert!(
            chrysalis_time > jelly_time,
            "Chrysalis ({chrysalis_time}) should dominate Jellyfish ({jelly_time})"
        );
    }
}

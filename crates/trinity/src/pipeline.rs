//! The end-to-end Trinity pipeline.
//!
//! Observability: the pipeline records into one [`obs::Tracer`] — track 0
//! carries collectl-style `cat:"stage"` spans (with a modelled-RAM `"ram"`
//! arg and counter series, Figs. 2/11), per-rank Chrysalis sub-traces are
//! spliced onto tracks `1 + rank`, and OpenMP busy/idle lanes sit at
//! [`obs::THREAD_TRACK_BASE`]` + thread`. Table/counter health goes into an
//! [`obs::MetricsRegistry`]; both land in [`PipelineOutput`] ready for the
//! JSON / Chrome-trace exporters in [`obs::export`].

use std::sync::Arc;

use seqio::fasta::Record;

use bowtie::align::AlignConfig;
use butterfly::transcripts::{reconstruct_component, ComponentInput, ReconstructionConfig};
use chrysalis::bowtie_mpi::{bowtie_mpi, contig_name_index, BowtieMpiOutput, BowtieTimings};
use chrysalis::config::ChrysalisConfig;
use chrysalis::graph_from_fasta::{cluster, gff_hybrid, gff_shared_memory, GffOutput, GffShared};
use chrysalis::reads_to_transcripts::{rtt_hybrid, rtt_shared_memory, RttOutput, RttShared};
use chrysalis::scaffold::{scaffold_pairs, ScaffoldConfig};
use chrysalis::timings::{GffTimings, RttTimings};
use inchworm::assemble::{assemble, InchwormConfig};
use inchworm::dictionary::Dictionary;
use kcount::counter::{count_kmers, CounterConfig};
use mpisim::{run_cluster, NetModel};
use omp::makespan::simulate_loop;
use omp::pool::parallel_map_timed;

/// Rough resident-set model for the pipeline's data structures. The
/// coefficients are hash-map-overhead multipliers, not exact science —
/// the *shape* (Jellyfish/Inchworm dominate memory, Chrysalis dominates
/// time) is what Figs. 2/11 show.
pub mod ram {
    /// Jellyfish: distinct k-mers × (key + count + table overhead).
    pub fn jellyfish(distinct_kmers: usize) -> u64 {
        (distinct_kmers as u64) * 48
    }

    /// Inchworm: the dictionary (sorted vec + hash) plus contig text.
    pub fn inchworm(distinct_kmers: usize, contig_bytes: usize) -> u64 {
        (distinct_kmers as u64) * 64 + contig_bytes as u64
    }

    /// Bowtie: FM-index ≈ 6 bytes per reference base (SA + BWT + Occ)
    /// plus the read stream buffer.
    pub fn bowtie(ref_bases: usize, read_buffer: usize) -> u64 {
        (ref_bases as u64) * 6 + read_buffer as u64
    }

    /// GraphFromFasta: contigs + k-mer map + welds.
    pub fn graph_from_fasta(contig_bytes: usize, kmer_entries: usize, weld_bytes: usize) -> u64 {
        contig_bytes as u64 + (kmer_entries as u64) * 56 + weld_bytes as u64
    }

    /// ReadsToTranscripts: k-mer→component table + one chunk of reads.
    pub fn reads_to_transcripts(kmer_entries: usize, chunk_bytes: usize) -> u64 {
        (kmer_entries as u64) * 40 + chunk_bytes as u64
    }

    /// Butterfly: graph nodes/edges per component (peak over components).
    pub fn butterfly(max_component_nodes: usize) -> u64 {
        (max_component_nodes as u64) * 96
    }
}

/// Collectl-style stage logger: each stage becomes a `cat:"stage"` span on
/// track 0 starting where the previous ended, carrying the modelled RAM as
/// a span arg and as a step in the `"ram"` counter series.
struct StageLog {
    obs: obs::Tracer,
    cursor: f64,
}

impl StageLog {
    fn new() -> Self {
        let obs = obs::Tracer::new();
        obs.name_track(0, "pipeline");
        StageLog { obs, cursor: 0.0 }
    }

    /// Append a stage; returns its start time (for splicing sub-traces).
    fn push(&mut self, name: &str, duration: f64, peak_ram: u64) -> f64 {
        let start = self.cursor;
        self.cursor += duration.max(0.0);
        self.obs.record_with(
            0,
            "stage",
            name,
            start,
            self.cursor,
            &[("ram", peak_ram as f64)],
        );
        self.obs.counter(0, "ram", start, peak_ram as f64);
        self.obs.counter(0, "ram", self.cursor, peak_ram as f64);
        start
    }
}

/// Track offset for per-rank sub-traces spliced into the pipeline trace:
/// rank `r`'s spans land on track `RANK_TRACK_BASE + r`.
pub const RANK_TRACK_BASE: u32 = 1;

/// Serial (single-node OpenMP) or hybrid (MPI+OpenMP) execution.
#[derive(Debug, Clone, Copy)]
pub enum PipelineMode {
    /// The original Trinity layout: one node, OpenMP threads.
    Serial,
    /// The paper's layout: `ranks` nodes, 16 threads each.
    Hybrid {
        /// MPI ranks (nodes).
        ranks: usize,
        /// Interconnect model.
        net: NetModel,
    },
}

/// Pipeline parameters (the `Trinity.pl` command line).
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Chrysalis parameters (k, threads, schedule, chunking …).
    pub chrysalis: ChrysalisConfig,
    /// Inchworm parameters.
    pub inchworm: InchwormConfig,
    /// Jellyfish minimum k-mer count (error filter).
    pub min_kmer_count: u32,
    /// Butterfly parameters.
    pub reconstruction: ReconstructionConfig,
    /// Bowtie parameters.
    pub align: AlignConfig,
    /// Scaffolding parameters.
    pub scaffold: ScaffoldConfig,
    /// Execution mode.
    pub mode: PipelineMode,
}

impl PipelineConfig {
    /// A small-k configuration suitable for tests and examples.
    pub fn small(k: usize) -> Self {
        let chrysalis = ChrysalisConfig::small(k);
        PipelineConfig {
            chrysalis,
            inchworm: InchwormConfig {
                min_seed_count: 1,
                min_extend_count: 1,
                min_contig_len: 2 * k,
                jitter_seed: None,
            },
            min_kmer_count: 1,
            reconstruction: ReconstructionConfig {
                k,
                paths: butterfly::paths::PathConfig {
                    min_len: 2 * k,
                    ..Default::default()
                },
                // Prune weight-1 edges: a single erroneous read cannot open
                // an isoform bubble (contigs thread at weight 2).
                min_edge_weight: 2,
                ..Default::default()
            },
            align: AlignConfig {
                max_mismatches: 1,
                ..Default::default()
            },
            scaffold: ScaffoldConfig::default(),
            mode: PipelineMode::Serial,
        }
    }

    /// The paper's production-style configuration at word size `k`.
    pub fn paper(k: usize) -> Self {
        let mut cfg = Self::small(k);
        cfg.chrysalis = ChrysalisConfig {
            k,
            ..ChrysalisConfig::default()
        };
        cfg.inchworm.min_seed_count = 2;
        cfg.min_kmer_count = 1;
        cfg
    }
}

/// Everything the pipeline produced.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Inchworm contigs.
    pub contigs: Vec<Record>,
    /// Final components (contig indices per component, after welding and
    /// scaffolding).
    pub components: Vec<Vec<usize>>,
    /// Read→component assignments.
    pub assignments: Vec<(u32, u32)>,
    /// Reconstructed transcripts.
    pub transcripts: Vec<Record>,
    /// Unified span trace: collectl-style stage spans + RAM counter on
    /// track 0, per-rank Chrysalis sub-traces on tracks
    /// [`RANK_TRACK_BASE`]` + rank`, OpenMP lanes at
    /// [`obs::THREAD_TRACK_BASE`]` + thread`. Export with
    /// [`obs::export::chrome_trace`] / [`obs::export::trace_json`].
    pub trace: obs::Trace,
    /// Table/counter health recorded during the run (k-mer table load
    /// factors, probe-length histograms, weld/assignment counts, MPI
    /// bytes). Export with [`obs::export::metrics_json`].
    pub metrics: obs::MetricsSnapshot,
    /// Per-rank GraphFromFasta timings (one entry in serial mode).
    pub gff_timings: Vec<GffTimings>,
    /// Per-rank ReadsToTranscripts timings.
    pub rtt_timings: Vec<RttTimings>,
    /// Per-rank Bowtie timings.
    pub bowtie_timings: Vec<BowtieTimings>,
}

fn max_time<T>(outs: &[mpisim::RankOutput<T>]) -> f64 {
    outs.iter().map(|o| o.time).fold(0.0, f64::max)
}

/// Queue each rank's sub-trace for splicing at the stage's start time and
/// fold its communication counters into the shared registry.
fn record_cluster<T>(
    metrics: &obs::MetricsRegistry,
    sub_traces: &mut Vec<(f64, obs::Trace)>,
    start: f64,
    outs: &[mpisim::RankOutput<T>],
) {
    for o in outs {
        metrics.counter("comm.bytes_sent").add(o.stats.bytes_sent);
        metrics.counter("comm.collectives").add(o.stats.collectives);
        if !o.trace.is_empty() {
            sub_traces.push((start, o.trace.clone()));
        }
    }
}

/// Run the pipeline over `reads`.
pub fn run_pipeline(reads: &[Record], cfg: &PipelineConfig) -> PipelineOutput {
    let mut log = StageLog::new();
    let metrics = obs::MetricsRegistry::new();
    // Per-rank sub-traces, collected as (stage start, trace) and spliced
    // into the pipeline timeline at the end.
    let mut sub_traces: Vec<(f64, obs::Trace)> = Vec::new();
    let k = cfg.chrysalis.k;

    // ---- Jellyfish ----
    // Counting is embarrassingly parallel over read batches (Jellyfish's
    // lock-free table); time per-batch costs and replay the 16-thread
    // makespan, then merge serially (measured).
    let batches: Vec<&[Record]> = reads.chunks(256).collect();
    let (tables, costs) = parallel_map_timed(&batches, |batch| {
        count_kmers(
            batch,
            CounterConfig {
                k,
                canonical: true,
                threads: 1,
                shards: 1,
            },
        )
    });
    let count_sim = simulate_loop(&costs, cfg.chrysalis.threads, cfg.chrysalis.schedule);
    let count_time = count_sim.makespan;
    let t0 = std::time::Instant::now();
    let mut counts = kcount::counter::KmerCounts::empty(k);
    for t in tables {
        for (km, c) in t.iter() {
            counts.add(km, c);
        }
    }
    counts.retain_min(cfg.min_kmer_count.max(1));
    let merge_time = t0.elapsed().as_secs_f64();
    let distinct = counts.len();
    counts.record_metrics(&metrics, "jellyfish");
    count_sim.record_metrics(&metrics, "jellyfish.loop");
    let start = log.push(
        "Jellyfish",
        count_time + merge_time,
        ram::jellyfish(distinct),
    );
    count_sim.record_spans(&log.obs, start, obs::THREAD_TRACK_BASE, "jellyfish");

    // ---- Inchworm ----
    let t0 = std::time::Instant::now();
    let dict = Dictionary::from_counts(counts.clone(), cfg.min_kmer_count.max(1));
    let contig_list = assemble(&dict, cfg.inchworm);
    let contigs: Vec<Record> = contig_list.iter().map(|c| c.to_record()).collect();
    let contig_bytes: usize = contigs.iter().map(|c| c.seq.len()).sum();
    log.push(
        "Inchworm",
        t0.elapsed().as_secs_f64(),
        ram::inchworm(distinct, contig_bytes),
    );

    // ---- Chrysalis: Bowtie ----
    let (ranks, net) = match cfg.mode {
        PipelineMode::Serial => (1, NetModel::ideal()),
        PipelineMode::Hybrid { ranks, net } => (ranks, net),
    };
    let contigs_arc = Arc::new(contigs);
    let reads_arc = Arc::new(reads.to_vec());
    let (c_arc, r_arc, ch_cfg, al_cfg) = (
        Arc::clone(&contigs_arc),
        Arc::clone(&reads_arc),
        cfg.chrysalis,
        cfg.align,
    );
    let bowtie_outs = run_cluster(ranks, net, move |comm| {
        bowtie_mpi(comm, &c_arc, &r_arc, &ch_cfg, al_cfg)
    });
    let bowtie_out: &BowtieMpiOutput = &bowtie_outs[0].value;
    let read_buffer: usize = reads.iter().map(|r| r.seq.len()).sum();
    let start = log.push(
        "Bowtie",
        max_time(&bowtie_outs),
        ram::bowtie(contig_bytes.div_ceil(ranks), read_buffer),
    );
    record_cluster(&metrics, &mut sub_traces, start, &bowtie_outs);
    let bowtie_timings: Vec<BowtieTimings> = bowtie_outs.iter().map(|o| o.value.timings).collect();
    let sam = bowtie_out.sam.clone();

    // ---- Chrysalis: GraphFromFasta ----
    let gff_shared = Arc::new(GffShared::prepare(
        contigs_arc.as_ref().clone(),
        counts,
        cfg.chrysalis,
    ));
    gff_shared.kmap.record_metrics(&metrics, "gff.kmap");
    let (mut gff_out, gff_timings, gff_time): (GffOutput, Vec<GffTimings>, f64) = if ranks == 1 {
        let out = gff_shared_memory(&gff_shared);
        let t = out.timings;
        let total = t.total;
        (out, vec![t], total)
    } else {
        let sh = Arc::clone(&gff_shared);
        let outs = run_cluster(ranks, net, move |comm| gff_hybrid(comm, &sh));
        let timings: Vec<GffTimings> = outs.iter().map(|o| o.value.timings).collect();
        let time = max_time(&outs);
        let mut first = None;
        let mut ranked = Vec::new();
        for o in outs {
            metrics.counter("comm.bytes_sent").add(o.stats.bytes_sent);
            metrics.counter("comm.collectives").add(o.stats.collectives);
            ranked.push(o.trace);
            if first.is_none() {
                first = Some(o.value);
            }
        }
        let mut out = first.expect("rank 0");
        // Stash the merged per-rank spans in the stage output's trace slot
        // so the splice below handles serial and hybrid uniformly.
        for t in ranked {
            out.trace.merge_shifted(t, 0.0, 0);
        }
        (out, timings, time)
    };
    let weld_bytes: usize = gff_out.welds.iter().map(Vec::len).sum();
    metrics.counter("gff.welds").add(gff_out.welds.len() as u64);
    metrics.counter("gff.pairs").add(gff_out.pairs.len() as u64);
    let start = log.push(
        "GraphFromFasta",
        gff_time,
        ram::graph_from_fasta(contig_bytes, gff_shared.kmap.len(), weld_bytes),
    );
    sub_traces.push((start, std::mem::take(&mut gff_out.trace)));

    // ---- Chrysalis: scaffolding (combine Bowtie links with welds) ----
    let t0 = std::time::Instant::now();
    let name_index = contig_name_index(&contigs_arc);
    let lens: Vec<usize> = contigs_arc.iter().map(|c| c.seq.len()).collect();
    let scaf_pairs = scaffold_pairs(&sam, &name_index, &lens, cfg.scaffold);
    let mut all_pairs = gff_out.pairs.clone();
    all_pairs.extend(scaf_pairs);
    all_pairs.sort_unstable();
    all_pairs.dedup();
    let (_, components) = cluster(contigs_arc.len(), &all_pairs);
    metrics
        .gauge("pipeline.components")
        .set(components.len() as f64);
    log.push(
        "QuantifyGraph",
        t0.elapsed().as_secs_f64(),
        ram::graph_from_fasta(contig_bytes, 0, weld_bytes),
    );

    // ---- Chrysalis: ReadsToTranscripts ----
    let rtt_shared = Arc::new(RttShared::prepare(
        reads.to_vec(),
        &contigs_arc,
        &components,
        cfg.chrysalis,
    ));
    rtt_shared
        .kmer_to_component
        .record_metrics(&metrics, "rtt.kmer_table");
    let (mut rtt_out, rtt_timings, rtt_time): (RttOutput, Vec<RttTimings>, f64) = if ranks == 1 {
        let out = rtt_shared_memory(&rtt_shared);
        let t = out.timings;
        let total = t.total;
        (out, vec![t], total)
    } else {
        let sh = Arc::clone(&rtt_shared);
        let outs = run_cluster(ranks, net, move |comm| rtt_hybrid(comm, &sh));
        let timings: Vec<RttTimings> = outs.iter().map(|o| o.value.timings).collect();
        let time = max_time(&outs);
        let mut first = None;
        let mut ranked = Vec::new();
        for o in outs {
            metrics.counter("comm.bytes_sent").add(o.stats.bytes_sent);
            metrics.counter("comm.collectives").add(o.stats.collectives);
            ranked.push(o.trace);
            if first.is_none() {
                first = Some(o.value);
            }
        }
        let mut out = first.expect("rank 0");
        for t in ranked {
            out.trace.merge_shifted(t, 0.0, 0);
        }
        (out, timings, time)
    };
    metrics
        .counter("rtt.assignments")
        .add(rtt_out.assignments.len() as u64);
    let chunk_bytes: usize = reads
        .iter()
        .take(cfg.chrysalis.max_mem_reads)
        .map(|r| r.seq.len())
        .sum();
    let start = log.push(
        "ReadsToTranscripts",
        rtt_time,
        ram::reads_to_transcripts(rtt_shared.kmer_to_component.len(), chunk_bytes),
    );
    sub_traces.push((start, std::mem::take(&mut rtt_out.trace)));

    // ---- Butterfly ----
    let mut comp_inputs: Vec<ComponentInput> = components
        .iter()
        .enumerate()
        .map(|(ci, members)| ComponentInput {
            component: ci,
            contigs: members
                .iter()
                .map(|&m| contigs_arc[m].seq.clone())
                .collect(),
            reads: Vec::new(),
        })
        .collect();
    for &(r, c) in &rtt_out.assignments {
        comp_inputs[c as usize]
            .reads
            .push(reads[r as usize].seq.clone());
    }
    let (transcript_lists, costs) = parallel_map_timed(&comp_inputs, |input| {
        reconstruct_component(input, cfg.reconstruction)
    });
    let butterfly_sim = simulate_loop(&costs, cfg.chrysalis.threads, cfg.chrysalis.schedule);
    let transcripts: Vec<Record> = transcript_lists.into_iter().flatten().collect();
    let max_nodes = comp_inputs
        .iter()
        .map(|c| c.contigs.iter().map(Vec::len).sum::<usize>())
        .max()
        .unwrap_or(0);
    butterfly_sim.record_metrics(&metrics, "butterfly.loop");
    metrics
        .counter("butterfly.transcripts")
        .add(transcripts.len() as u64);
    let start = log.push(
        "Butterfly",
        butterfly_sim.makespan,
        ram::butterfly(max_nodes),
    );
    butterfly_sim.record_spans(&log.obs, start, obs::THREAD_TRACK_BASE, "butterfly");

    let mut trace = log.obs.take();
    for (dt, sub) in sub_traces {
        trace.merge_shifted(sub, dt, RANK_TRACK_BASE);
    }
    // Sampling-profiler pass: walk each pipeline/rank lane's open-span
    // stack at a fixed period and append `profile.depth` /
    // `profile.samples.<leaf>` counter series, so long stages (gff
    // loop1/loop2, the rtt chunk loops) show internal progress in a trace
    // viewer instead of one opaque span. Thread lanes (busy/idle pairs)
    // carry no nesting worth sampling and are skipped.
    let sampler = obs::Sampler::with_samples(&trace, 256);
    let lanes: std::collections::BTreeSet<u32> = trace
        .spans
        .iter()
        .map(|s| s.track)
        .filter(|&t| t < obs::THREAD_TRACK_BASE)
        .collect();
    for lane in lanes {
        sampler.annotate(&mut trace, lane);
    }
    PipelineOutput {
        contigs: Arc::try_unwrap(contigs_arc).unwrap_or_else(|a| a.as_ref().clone()),
        components,
        assignments: rtt_out.assignments,
        transcripts,
        trace,
        metrics: metrics.snapshot(),
        gff_timings,
        rtt_timings,
        bowtie_timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simulate::datasets::{Dataset, DatasetPreset};

    fn tiny_reads() -> Vec<Record> {
        Dataset::generate(DatasetPreset::Tiny, 11).all_reads()
    }

    #[test]
    fn serial_pipeline_produces_transcripts() {
        let reads = tiny_reads();
        let out = run_pipeline(&reads, &PipelineConfig::small(12));
        assert!(!out.contigs.is_empty(), "contigs assembled");
        assert!(!out.transcripts.is_empty(), "transcripts reconstructed");
        assert!(!out.assignments.is_empty(), "reads assigned");
        let stages: Vec<&obs::SpanRecord> = out
            .trace
            .with_cat("stage")
            .into_iter()
            .filter(|s| s.track == 0)
            .collect();
        assert_eq!(stages.len(), 7, "one stage span per pipeline stage");
        assert!(out.trace.total_time() > 0.0);
        assert!(out.trace.max_counter("ram").unwrap_or(0.0) > 0.0);
        assert_eq!(out.gff_timings.len(), 1);
        // Serial Chrysalis sub-traces are spliced in: the GFF stage timeline
        // lands on track RANK_TRACK_BASE at the stage's start offset.
        let gff_stage = stages
            .iter()
            .find(|s| s.name == "GraphFromFasta")
            .expect("GraphFromFasta stage span");
        let (sub_start, sub_end) = out
            .trace
            .span_bounds(RANK_TRACK_BASE, "gff.total")
            .expect("spliced gff.total span");
        assert!((sub_start - gff_stage.start).abs() < 1e-9);
        assert!(sub_end <= gff_stage.end + 1e-9);
    }

    #[test]
    fn hybrid_pipeline_matches_serial_components() {
        let reads = tiny_reads();
        let serial = run_pipeline(&reads, &PipelineConfig::small(12));
        let mut cfg = PipelineConfig::small(12);
        cfg.mode = PipelineMode::Hybrid {
            ranks: 3,
            net: NetModel::ideal(),
        };
        let hybrid = run_pipeline(&reads, &cfg);
        assert_eq!(hybrid.components, serial.components);
        assert_eq!(hybrid.assignments, serial.assignments);
        // Transcript sets identical for identical component inputs.
        let mut a: Vec<&[u8]> = serial
            .transcripts
            .iter()
            .map(|r| r.seq.as_slice())
            .collect();
        let mut b: Vec<&[u8]> = hybrid
            .transcripts
            .iter()
            .map(|r| r.seq.as_slice())
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(hybrid.gff_timings.len(), 3);
        assert_eq!(hybrid.rtt_timings.len(), 3);
    }

    #[test]
    fn transcripts_match_reference_genes() {
        // At least one simulated gene should be reconstructed end-to-end.
        let ds = Dataset::generate(DatasetPreset::Tiny, 11);
        let out = run_pipeline(&ds.all_reads(), &PipelineConfig::small(12));
        let hit = ds.reference.iter().any(|refseq| {
            out.transcripts
                .iter()
                .any(|t| t.seq == refseq.seq || t.seq == seqio::alphabet::revcomp(&refseq.seq))
        });
        assert!(hit, "no reference transcript reconstructed exactly");
    }

    #[test]
    fn trace_is_chrysalis_dominated() {
        // Fig. 2's headline: Chrysalis (Bowtie+GFF+RTT) dominates runtime.
        let reads = tiny_reads();
        let out = run_pipeline(&reads, &PipelineConfig::small(12));
        let chrysalis_time: f64 = out
            .trace
            .with_cat("stage")
            .into_iter()
            .filter(|s| {
                s.track == 0
                    && [
                        "Bowtie",
                        "GraphFromFasta",
                        "QuantifyGraph",
                        "ReadsToTranscripts",
                    ]
                    .contains(&s.name.as_str())
            })
            .map(|s| s.end - s.start)
            .sum();
        let jelly_time = out.trace.span_sum(0, "Jellyfish");
        assert!(
            chrysalis_time > jelly_time,
            "Chrysalis ({chrysalis_time}) should dominate Jellyfish ({jelly_time})"
        );
    }
}

//! `trinity` — the pipeline driver binary (the `Trinity.pl` equivalent).
//!
//! ```text
//! trinity --reads reads.fa [--reads more.fa] --out outdir \
//!         [--nprocs N] [--threads T] [--kmer K] [--simulate PRESET[:SEED]]
//! ```
//!
//! Reads FASTA (or FASTQ; detected by the first byte), runs
//! Jellyfish → Inchworm → Chrysalis → Butterfly, and writes into `--out`:
//! `inchworm.fasta`, `components.txt`, `read_assignments.txt`,
//! `transcripts.fasta`, `collectl.txt` (text stage table + top-self-time
//! profile), `trace.json` (Chrome `trace_event` timeline — open in
//! `chrome://tracing` / Perfetto), `metrics.json` (counter/gauge/histogram
//! snapshot), `flame.txt` (collapsed-stack fold for speedscope / inferno)
//! and `flame.svg` (self-contained flamegraph; `--flame-out DIR` redirects
//! the two flame artifacts). `--nprocs` is the paper's extension: with
//! `N > 1` Chrysalis runs in the hybrid MPI+OpenMP layout over `N`
//! simulated ranks.
//!
//! `--simulate tiny:7` generates a synthetic dataset instead of reading
//! files (handy for smoke tests; see `simulate::datasets`).
//!
//! Two analytics subcommands close the loop on the recorded artifacts:
//!
//! ```text
//! trinity analyze <trace.json | run-dir> [--baseline PATH] [--out FILE]
//! trinity diff <baseline> <current> [--tol-rel F] [--tol-abs S] [--json]
//! ```
//!
//! `analyze` loads a finished trace (Chrome or plain JSON), computes the
//! cross-rank critical path, per-stage imbalance, comm matrix and (with
//! `--baseline`, a serial run's trace or analysis) scaling efficiency,
//! writes `analysis.json` and prints the tables. `diff` compares two
//! artifacts — `analysis.json`, raw traces, or `trinity-bench/v1` files —
//! under tolerance bands and exits non-zero on a regression, which is the
//! CI perf-gate.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use std::sync::Arc;

use mpisim::{FaultPlan, NetModel};
use seqio::fasta::{FastaWriter, Record};
use seqio::fastq::FastqReader;
use seqio::stats::length_stats;
use simulate::datasets::{Dataset, DatasetPreset};
use trinity::pipeline::{run_pipeline_opts, PipelineConfig, PipelineMode, RunOptions};
use trinity::report::{
    render_bars, render_critical_path, render_faults, render_imbalance, render_self_time,
    render_trace,
};

struct Args {
    reads: Vec<PathBuf>,
    out: PathBuf,
    nprocs: usize,
    threads: usize,
    k: usize,
    simulate: Option<(DatasetPreset, u64)>,
    flame_out: Option<PathBuf>,
    faults: Option<Arc<FaultPlan>>,
    checkpoint: Option<PathBuf>,
    resume: bool,
}

fn usage() -> &'static str {
    "usage: trinity --reads <fasta|fastq>... --out <dir> \
     [--nprocs N] [--threads T] [--kmer K] [--flame-out DIR] \
     [--simulate tiny|whitefly|schizo|drosophila|sugarbeet[:SEED]] \
     [--faults SEED[,delay=P][,drop=P][,crash=RANK@OP]...] \
     [--checkpoint DIR] [--resume]\n\
     \x20      trinity analyze <trace.json | run-dir> [--baseline PATH] [--out FILE]\n\
     \x20      trinity diff <baseline> <current> [--tol-rel F] [--tol-abs S] [--json]"
}

/// Parse a `--faults` spec: a mandatory RNG seed, then comma-separated
/// `delay=P` (per-op delay probability, up to 1 ms each), `drop=P`
/// (per-message drop probability, retried up to 3 times) and
/// `crash=RANK@OP` (kill RANK at its OP-th communication operation;
/// repeatable) clauses. Example: `--faults 42,delay=0.1,drop=0.05,crash=1@7`.
fn parse_fault_plan(spec: &str) -> Result<FaultPlan, String> {
    let mut parts = spec.split(',');
    let seed: u64 = parts
        .next()
        .expect("split yields at least one part")
        .parse()
        .map_err(|e| format!("--faults seed: {e}"))?;
    let mut plan = FaultPlan::new(seed);
    for part in parts {
        let (key, val) = part
            .split_once('=')
            .ok_or_else(|| format!("--faults: expected key=value, got {part:?}\n{}", usage()))?;
        match key {
            "delay" => {
                let p: f64 = val.parse().map_err(|e| format!("--faults delay: {e}"))?;
                plan = plan.with_delays(p, 1e-3);
            }
            "drop" => {
                let p: f64 = val.parse().map_err(|e| format!("--faults drop: {e}"))?;
                plan = plan.with_drops(p, 3);
            }
            "crash" => {
                let (rank, op) = val
                    .split_once('@')
                    .ok_or_else(|| format!("--faults crash: expected RANK@OP, got {val:?}"))?;
                plan = plan.with_crash(
                    rank.parse()
                        .map_err(|e| format!("--faults crash rank: {e}"))?,
                    op.parse().map_err(|e| format!("--faults crash op: {e}"))?,
                );
            }
            other => return Err(format!("--faults: unknown clause {other:?}\n{}", usage())),
        }
    }
    Ok(plan)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        reads: Vec::new(),
        out: PathBuf::from("trinity_out"),
        nprocs: 1,
        threads: 16,
        k: 16,
        simulate: None,
        flame_out: None,
        faults: None,
        checkpoint: None,
        resume: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match a.as_str() {
            "--reads" => args.reads.push(PathBuf::from(value("--reads")?)),
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--flame-out" => args.flame_out = Some(PathBuf::from(value("--flame-out")?)),
            "--nprocs" => {
                args.nprocs = value("--nprocs")?
                    .parse()
                    .map_err(|e| format!("--nprocs: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--kmer" => {
                args.k = value("--kmer")?
                    .parse()
                    .map_err(|e| format!("--kmer: {e}"))?
            }
            "--simulate" => {
                let v = value("--simulate")?;
                let (name, seed) = v.split_once(':').unwrap_or((v.as_str(), "42"));
                let preset = match name {
                    "tiny" => DatasetPreset::Tiny,
                    "whitefly" => DatasetPreset::WhiteflyLike,
                    "schizo" => DatasetPreset::SchizoLike,
                    "drosophila" => DatasetPreset::DrosophilaLike,
                    "sugarbeet" => DatasetPreset::SugarbeetLike,
                    other => return Err(format!("unknown preset {other:?}\n{}", usage())),
                };
                let seed = seed.parse().map_err(|e| format!("--simulate seed: {e}"))?;
                args.simulate = Some((preset, seed));
            }
            "--faults" => args.faults = Some(Arc::new(parse_fault_plan(&value("--faults")?)?)),
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--resume" => args.resume = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    if args.reads.is_empty() && args.simulate.is_none() {
        return Err(format!("no input: pass --reads or --simulate\n{}", usage()));
    }
    if args.resume && args.checkpoint.is_none() {
        return Err(format!("--resume needs --checkpoint DIR\n{}", usage()));
    }
    if args.k < 8 || args.k > 32 {
        return Err("--kmer must be in 8..=32".into());
    }
    Ok(args)
}

fn load_reads(path: &Path) -> Result<Vec<Record>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    match bytes.first() {
        Some(b'>') => seqio::fasta::parse_fasta(&bytes).map_err(|e| e.to_string()),
        Some(b'@') => FastqReader::new(&bytes[..])
            .read_all()
            .map(|v| v.into_iter().map(|r| r.into_fasta()).collect())
            .map_err(|e| e.to_string()),
        _ => Err(format!("{}: not FASTA or FASTQ", path.display())),
    }
}

fn write_fasta(path: &Path, records: &[Record]) -> Result<(), String> {
    let mut w = FastaWriter::create(path).map_err(|e| e.to_string())?;
    for r in records {
        w.write_record(r).map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let mut reads = Vec::new();
    if let Some((preset, seed)) = args.simulate {
        let ds = Dataset::generate(preset, seed);
        eprintln!(
            "simulated {:?} (seed {seed}): {} reads, {} reference isoforms",
            preset,
            ds.all_reads().len(),
            ds.reference.len()
        );
        reads = ds.all_reads();
    }
    for p in &args.reads {
        let mut r = load_reads(p)?;
        eprintln!("{}: {} reads", p.display(), r.len());
        reads.append(&mut r);
    }
    if reads.is_empty() {
        return Err("no reads in input".into());
    }

    let mut cfg = PipelineConfig::small(args.k);
    cfg.chrysalis.threads = args.threads.max(1);
    cfg.mode = if args.nprocs > 1 {
        PipelineMode::Hybrid {
            ranks: args.nprocs,
            net: NetModel::idataplex(),
        }
    } else {
        PipelineMode::Serial
    };

    let run_opts = RunOptions {
        faults: args.faults.clone(),
        checkpoint_dir: args.checkpoint.clone(),
        resume: args.resume,
    };
    let out = run_pipeline_opts(&reads, &cfg, &run_opts);

    std::fs::create_dir_all(&args.out).map_err(|e| e.to_string())?;
    write_fasta(&args.out.join("inchworm.fasta"), &out.contigs)?;
    write_fasta(&args.out.join("transcripts.fasta"), &out.transcripts)?;

    let mut f =
        std::fs::File::create(args.out.join("components.txt")).map_err(|e| e.to_string())?;
    for (c, members) in out.components.iter().enumerate() {
        let names: Vec<&str> = members
            .iter()
            .map(|&m| out.contigs[m].id.as_str())
            .collect();
        writeln!(f, "comp{c}\t{}", names.join(",")).map_err(|e| e.to_string())?;
    }
    let mut f =
        std::fs::File::create(args.out.join("read_assignments.txt")).map_err(|e| e.to_string())?;
    for &(r, c) in &out.assignments {
        writeln!(f, "{}\tcomp{c}", reads[r as usize].id).map_err(|e| e.to_string())?;
    }
    let analysis = obs::analyze(&out.trace);
    std::fs::write(
        args.out.join("analysis.json"),
        obs::analyze::analysis_json(&analysis),
    )
    .map_err(|e| e.to_string())?;
    let fault_report = render_faults(&out.metrics);
    std::fs::write(
        args.out.join("collectl.txt"),
        format!(
            "{}\n{}\n{}\n{}\n{}{}",
            render_trace(&out.trace),
            render_bars(&out.trace, 50),
            render_self_time(&out.trace, 15),
            render_critical_path(&analysis),
            render_imbalance(&analysis),
            if fault_report.is_empty() {
                String::new()
            } else {
                format!("\n{fault_report}")
            }
        ),
    )
    .map_err(|e| e.to_string())?;
    if !fault_report.is_empty() {
        eprint!("{fault_report}");
    }
    std::fs::write(
        args.out.join("trace.json"),
        obs::export::chrome_trace(&out.trace),
    )
    .map_err(|e| e.to_string())?;
    std::fs::write(
        args.out.join("metrics.json"),
        obs::export::metrics_json(&out.metrics),
    )
    .map_err(|e| e.to_string())?;
    // Flamegraph artifacts: the merged-across-lanes fold as collapsed
    // stacks (speedscope / inferno input) and a self-contained SVG.
    let flame_dir = args.flame_out.clone().unwrap_or_else(|| args.out.clone());
    std::fs::create_dir_all(&flame_dir).map_err(|e| e.to_string())?;
    let folds = obs::flame::collapsed_merged(&out.trace);
    std::fs::write(flame_dir.join("flame.txt"), obs::flame::to_text(&folds))
        .map_err(|e| e.to_string())?;
    std::fs::write(
        flame_dir.join("flame.svg"),
        obs::flame::svg(&folds, "trinity pipeline (all lanes)"),
    )
    .map_err(|e| e.to_string())?;

    let tx = length_stats(out.transcripts.iter().map(|t| t.seq.len()));
    eprintln!(
        "wrote {} -> {} contigs, {} components, {} transcripts (N50 {} bp); \
         virtual pipeline time {:.3}s ({} ranks x {} threads)",
        args.out.display(),
        out.contigs.len(),
        out.components.len(),
        tx.count,
        tx.n50,
        out.trace.total_time(),
        args.nprocs,
        cfg.chrysalis.threads,
    );
    Ok(())
}

// ---- analytics subcommands ---------------------------------------------

/// Resolve an analyze/diff input: a run directory means its `trace.json`.
fn resolve_trace_path(p: &Path) -> PathBuf {
    if p.is_dir() {
        p.join("trace.json")
    } else {
        p.to_path_buf()
    }
}

/// Load a trace artifact (Chrome or plain JSON) from a file or run dir.
fn load_trace(p: &Path) -> Result<obs::Trace, String> {
    let path = resolve_trace_path(p);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    obs::export::trace_from_json(&text)
        .ok_or_else(|| format!("{}: not a trace artifact", path.display()))
}

/// The serial-baseline total for `--baseline`: accepts an `analysis.json`
/// (its `total_s`) or any trace artifact (analyzed on the fly).
fn load_baseline_total(p: &Path) -> Result<f64, String> {
    let path = resolve_trace_path(p);
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Some(a) = obs::analyze::parse_analysis(&text) {
            return Ok(a.total);
        }
    }
    Ok(obs::analyze(&load_trace(p)?).total)
}

/// `trinity analyze <trace.json | run-dir> [--baseline PATH] [--out FILE]`.
fn run_analyze(argv: &[String]) -> Result<(), String> {
    let mut input: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => {
                baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?))
            }
            "--out" => out_path = Some(PathBuf::from(it.next().ok_or("--out needs a value")?)),
            other if input.is_none() && !other.starts_with("--") => {
                input = Some(PathBuf::from(other))
            }
            other => return Err(format!("analyze: unexpected argument {other:?}")),
        }
    }
    let input = input
        .ok_or("usage: trinity analyze <trace.json | run-dir> [--baseline PATH] [--out FILE]")?;
    let trace = load_trace(&input)?;
    let baseline_total = baseline.map(|p| load_baseline_total(&p)).transpose()?;
    let analysis = obs::analyze_vs(&trace, baseline_total);

    let out_path = out_path.unwrap_or_else(|| {
        resolve_trace_path(&input)
            .parent()
            .unwrap_or(Path::new("."))
            .join("analysis.json")
    });
    std::fs::write(&out_path, obs::analyze::analysis_json(&analysis))
        .map_err(|e| format!("{}: {e}", out_path.display()))?;

    print!("{}", render_critical_path(&analysis));
    println!();
    print!("{}", render_imbalance(&analysis));
    if !analysis.comm.is_empty() {
        println!();
        println!(
            "{:<18} {:>6} {:>8} {:>14} {:>10}",
            "collective", "lane", "calls", "bytes", "time (s)"
        );
        for c in &analysis.comm {
            println!(
                "{:<18} {:>6} {:>8} {:>14.0} {:>10.4}",
                c.op,
                format!("r{}", c.track.saturating_sub(1)),
                c.calls,
                c.bytes,
                c.time
            );
        }
    }
    if let Some(s) = &analysis.scaling {
        println!();
        println!(
            "scaling vs baseline: {:.3}s -> {:.3}s on {} ranks = {:.2}x speedup, \
             {:.0}% efficiency{}",
            s.baseline_total,
            s.total,
            s.ranks,
            s.speedup,
            100.0 * s.efficiency,
            match s.serial_fraction {
                Some(f) => format!(", Karp-Flatt serial fraction {f:.3}"),
                None => String::new(),
            }
        );
    }
    eprintln!("wrote {}", out_path.display());
    Ok(())
}

/// Timing series of one diff input: an `analysis.json`, a raw trace, or a
/// `trinity-bench/v1` file (workload candidate times, in seconds).
fn load_series(p: &Path) -> Result<std::collections::BTreeMap<String, f64>, String> {
    let path = resolve_trace_path(p);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    if let Some(a) = obs::analyze::parse_analysis(&text) {
        return Ok(obs::diff::analysis_series(&a));
    }
    if let Some(v) = obs::jsonio::parse(&text) {
        if v.str("schema") == Some("trinity-bench/v1") {
            let bench = v.str("bench").unwrap_or("bench");
            let mut series = std::collections::BTreeMap::new();
            for w in v
                .get("workloads")
                .and_then(|w| w.as_arr())
                .unwrap_or_default()
            {
                if let (Some(name), Some(ns)) = (w.str("name"), w.num("candidate_ns")) {
                    series.insert(format!("bench:{bench}:{name}"), ns * 1e-9);
                }
            }
            return Ok(series);
        }
    }
    if let Some(trace) = obs::export::trace_from_json(&text) {
        return Ok(obs::diff::analysis_series(&obs::analyze(&trace)));
    }
    Err(format!(
        "{}: not an analysis, trace, or trinity-bench/v1 artifact",
        path.display()
    ))
}

/// `trinity diff <baseline> <current> [--tol-rel F] [--tol-abs S] [--json]`.
/// Exits non-zero (via the returned flag) when a regression clears the
/// tolerance bands.
fn run_diff(argv: &[String]) -> Result<bool, String> {
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut tol = obs::Tolerance::default();
    let mut json = false;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tol-rel" => {
                tol.rel = it
                    .next()
                    .ok_or("--tol-rel needs a value")?
                    .parse()
                    .map_err(|e| format!("--tol-rel: {e}"))?
            }
            "--tol-abs" => {
                tol.abs_s = it
                    .next()
                    .ok_or("--tol-abs needs a value")?
                    .parse()
                    .map_err(|e| format!("--tol-abs: {e}"))?
            }
            "--json" => json = true,
            other if !other.starts_with("--") => inputs.push(PathBuf::from(other)),
            other => return Err(format!("diff: unexpected argument {other:?}")),
        }
    }
    let [baseline, current] = inputs.as_slice() else {
        return Err(
            "usage: trinity diff <baseline> <current> [--tol-rel F] [--tol-abs S] [--json]"
                .to_string(),
        );
    };
    let base = load_series(baseline)?;
    let cur = load_series(current)?;
    let report = obs::diff::diff_series(&base, &cur, tol);
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if !report.passed() {
        eprintln!(
            "perf regression vs {} (tolerance: +{:.0}% and +{:.0} ms). If this \
             slowdown is intended, refresh the baseline:\n  trinity analyze <run-dir> \
             --out {}",
            baseline.display(),
            100.0 * tol.rel,
            1e3 * tol.abs_s,
            baseline.display(),
        );
    }
    Ok(report.passed())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("analyze") => {
            return match run_analyze(&argv[1..]) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("diff") => {
            return match run_diff(&argv[1..]) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => {}
    }
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

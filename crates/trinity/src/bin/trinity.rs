//! `trinity` — the pipeline driver binary (the `Trinity.pl` equivalent).
//!
//! ```text
//! trinity --reads reads.fa [--reads more.fa] --out outdir \
//!         [--nprocs N] [--threads T] [--kmer K] [--simulate PRESET[:SEED]]
//! ```
//!
//! Reads FASTA (or FASTQ; detected by the first byte), runs
//! Jellyfish → Inchworm → Chrysalis → Butterfly, and writes into `--out`:
//! `inchworm.fasta`, `components.txt`, `read_assignments.txt`,
//! `transcripts.fasta`, `collectl.txt` (text stage table + top-self-time
//! profile), `trace.json` (Chrome `trace_event` timeline — open in
//! `chrome://tracing` / Perfetto), `metrics.json` (counter/gauge/histogram
//! snapshot), `flame.txt` (collapsed-stack fold for speedscope / inferno)
//! and `flame.svg` (self-contained flamegraph; `--flame-out DIR` redirects
//! the two flame artifacts). `--nprocs` is the paper's extension: with
//! `N > 1` Chrysalis runs in the hybrid MPI+OpenMP layout over `N`
//! simulated ranks.
//!
//! `--simulate tiny:7` generates a synthetic dataset instead of reading
//! files (handy for smoke tests; see `simulate::datasets`).

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use std::sync::Arc;

use mpisim::{FaultPlan, NetModel};
use seqio::fasta::{FastaWriter, Record};
use seqio::fastq::FastqReader;
use seqio::stats::length_stats;
use simulate::datasets::{Dataset, DatasetPreset};
use trinity::pipeline::{run_pipeline_opts, PipelineConfig, PipelineMode, RunOptions};
use trinity::report::{render_bars, render_faults, render_self_time, render_trace};

struct Args {
    reads: Vec<PathBuf>,
    out: PathBuf,
    nprocs: usize,
    threads: usize,
    k: usize,
    simulate: Option<(DatasetPreset, u64)>,
    flame_out: Option<PathBuf>,
    faults: Option<Arc<FaultPlan>>,
    checkpoint: Option<PathBuf>,
    resume: bool,
}

fn usage() -> &'static str {
    "usage: trinity --reads <fasta|fastq>... --out <dir> \
     [--nprocs N] [--threads T] [--kmer K] [--flame-out DIR] \
     [--simulate tiny|whitefly|schizo|drosophila|sugarbeet[:SEED]] \
     [--faults SEED[,delay=P][,drop=P][,crash=RANK@OP]...] \
     [--checkpoint DIR] [--resume]"
}

/// Parse a `--faults` spec: a mandatory RNG seed, then comma-separated
/// `delay=P` (per-op delay probability, up to 1 ms each), `drop=P`
/// (per-message drop probability, retried up to 3 times) and
/// `crash=RANK@OP` (kill RANK at its OP-th communication operation;
/// repeatable) clauses. Example: `--faults 42,delay=0.1,drop=0.05,crash=1@7`.
fn parse_fault_plan(spec: &str) -> Result<FaultPlan, String> {
    let mut parts = spec.split(',');
    let seed: u64 = parts
        .next()
        .expect("split yields at least one part")
        .parse()
        .map_err(|e| format!("--faults seed: {e}"))?;
    let mut plan = FaultPlan::new(seed);
    for part in parts {
        let (key, val) = part
            .split_once('=')
            .ok_or_else(|| format!("--faults: expected key=value, got {part:?}\n{}", usage()))?;
        match key {
            "delay" => {
                let p: f64 = val.parse().map_err(|e| format!("--faults delay: {e}"))?;
                plan = plan.with_delays(p, 1e-3);
            }
            "drop" => {
                let p: f64 = val.parse().map_err(|e| format!("--faults drop: {e}"))?;
                plan = plan.with_drops(p, 3);
            }
            "crash" => {
                let (rank, op) = val
                    .split_once('@')
                    .ok_or_else(|| format!("--faults crash: expected RANK@OP, got {val:?}"))?;
                plan = plan.with_crash(
                    rank.parse()
                        .map_err(|e| format!("--faults crash rank: {e}"))?,
                    op.parse().map_err(|e| format!("--faults crash op: {e}"))?,
                );
            }
            other => return Err(format!("--faults: unknown clause {other:?}\n{}", usage())),
        }
    }
    Ok(plan)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        reads: Vec::new(),
        out: PathBuf::from("trinity_out"),
        nprocs: 1,
        threads: 16,
        k: 16,
        simulate: None,
        flame_out: None,
        faults: None,
        checkpoint: None,
        resume: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match a.as_str() {
            "--reads" => args.reads.push(PathBuf::from(value("--reads")?)),
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--flame-out" => args.flame_out = Some(PathBuf::from(value("--flame-out")?)),
            "--nprocs" => {
                args.nprocs = value("--nprocs")?
                    .parse()
                    .map_err(|e| format!("--nprocs: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--kmer" => {
                args.k = value("--kmer")?
                    .parse()
                    .map_err(|e| format!("--kmer: {e}"))?
            }
            "--simulate" => {
                let v = value("--simulate")?;
                let (name, seed) = v.split_once(':').unwrap_or((v.as_str(), "42"));
                let preset = match name {
                    "tiny" => DatasetPreset::Tiny,
                    "whitefly" => DatasetPreset::WhiteflyLike,
                    "schizo" => DatasetPreset::SchizoLike,
                    "drosophila" => DatasetPreset::DrosophilaLike,
                    "sugarbeet" => DatasetPreset::SugarbeetLike,
                    other => return Err(format!("unknown preset {other:?}\n{}", usage())),
                };
                let seed = seed.parse().map_err(|e| format!("--simulate seed: {e}"))?;
                args.simulate = Some((preset, seed));
            }
            "--faults" => args.faults = Some(Arc::new(parse_fault_plan(&value("--faults")?)?)),
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--resume" => args.resume = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    if args.reads.is_empty() && args.simulate.is_none() {
        return Err(format!("no input: pass --reads or --simulate\n{}", usage()));
    }
    if args.resume && args.checkpoint.is_none() {
        return Err(format!("--resume needs --checkpoint DIR\n{}", usage()));
    }
    if args.k < 8 || args.k > 32 {
        return Err("--kmer must be in 8..=32".into());
    }
    Ok(args)
}

fn load_reads(path: &Path) -> Result<Vec<Record>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    match bytes.first() {
        Some(b'>') => seqio::fasta::parse_fasta(&bytes).map_err(|e| e.to_string()),
        Some(b'@') => FastqReader::new(&bytes[..])
            .read_all()
            .map(|v| v.into_iter().map(|r| r.into_fasta()).collect())
            .map_err(|e| e.to_string()),
        _ => Err(format!("{}: not FASTA or FASTQ", path.display())),
    }
}

fn write_fasta(path: &Path, records: &[Record]) -> Result<(), String> {
    let mut w = FastaWriter::create(path).map_err(|e| e.to_string())?;
    for r in records {
        w.write_record(r).map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let mut reads = Vec::new();
    if let Some((preset, seed)) = args.simulate {
        let ds = Dataset::generate(preset, seed);
        eprintln!(
            "simulated {:?} (seed {seed}): {} reads, {} reference isoforms",
            preset,
            ds.all_reads().len(),
            ds.reference.len()
        );
        reads = ds.all_reads();
    }
    for p in &args.reads {
        let mut r = load_reads(p)?;
        eprintln!("{}: {} reads", p.display(), r.len());
        reads.append(&mut r);
    }
    if reads.is_empty() {
        return Err("no reads in input".into());
    }

    let mut cfg = PipelineConfig::small(args.k);
    cfg.chrysalis.threads = args.threads.max(1);
    cfg.mode = if args.nprocs > 1 {
        PipelineMode::Hybrid {
            ranks: args.nprocs,
            net: NetModel::idataplex(),
        }
    } else {
        PipelineMode::Serial
    };

    let run_opts = RunOptions {
        faults: args.faults.clone(),
        checkpoint_dir: args.checkpoint.clone(),
        resume: args.resume,
    };
    let out = run_pipeline_opts(&reads, &cfg, &run_opts);

    std::fs::create_dir_all(&args.out).map_err(|e| e.to_string())?;
    write_fasta(&args.out.join("inchworm.fasta"), &out.contigs)?;
    write_fasta(&args.out.join("transcripts.fasta"), &out.transcripts)?;

    let mut f =
        std::fs::File::create(args.out.join("components.txt")).map_err(|e| e.to_string())?;
    for (c, members) in out.components.iter().enumerate() {
        let names: Vec<&str> = members
            .iter()
            .map(|&m| out.contigs[m].id.as_str())
            .collect();
        writeln!(f, "comp{c}\t{}", names.join(",")).map_err(|e| e.to_string())?;
    }
    let mut f =
        std::fs::File::create(args.out.join("read_assignments.txt")).map_err(|e| e.to_string())?;
    for &(r, c) in &out.assignments {
        writeln!(f, "{}\tcomp{c}", reads[r as usize].id).map_err(|e| e.to_string())?;
    }
    let fault_report = render_faults(&out.metrics);
    std::fs::write(
        args.out.join("collectl.txt"),
        format!(
            "{}\n{}\n{}{}",
            render_trace(&out.trace),
            render_bars(&out.trace, 50),
            render_self_time(&out.trace, 15),
            if fault_report.is_empty() {
                String::new()
            } else {
                format!("\n{fault_report}")
            }
        ),
    )
    .map_err(|e| e.to_string())?;
    if !fault_report.is_empty() {
        eprint!("{fault_report}");
    }
    std::fs::write(
        args.out.join("trace.json"),
        obs::export::chrome_trace(&out.trace),
    )
    .map_err(|e| e.to_string())?;
    std::fs::write(
        args.out.join("metrics.json"),
        obs::export::metrics_json(&out.metrics),
    )
    .map_err(|e| e.to_string())?;
    // Flamegraph artifacts: the merged-across-lanes fold as collapsed
    // stacks (speedscope / inferno input) and a self-contained SVG.
    let flame_dir = args.flame_out.clone().unwrap_or_else(|| args.out.clone());
    std::fs::create_dir_all(&flame_dir).map_err(|e| e.to_string())?;
    let folds = obs::flame::collapsed_merged(&out.trace);
    std::fs::write(flame_dir.join("flame.txt"), obs::flame::to_text(&folds))
        .map_err(|e| e.to_string())?;
    std::fs::write(
        flame_dir.join("flame.svg"),
        obs::flame::svg(&folds, "trinity pipeline (all lanes)"),
    )
    .map_err(|e| e.to_string())?;

    let tx = length_stats(out.transcripts.iter().map(|t| t.seq.len()));
    eprintln!(
        "wrote {} -> {} contigs, {} components, {} transcripts (N50 {} bp); \
         virtual pipeline time {:.3}s ({} ranks x {} threads)",
        args.out.display(),
        out.contigs.len(),
        out.components.len(),
        tx.count,
        tx.n50,
        out.trace.total_time(),
        args.nprocs,
        cfg.chrysalis.threads,
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

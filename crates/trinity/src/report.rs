//! Text rendering of pipeline traces and stage statistics.
//!
//! Both renderers read the pipeline-level `cat:"stage"` spans on track 0 of
//! an [`obs::Trace`] (spliced rank sub-traces on higher tracks carry their
//! own stage spans like `gff.total` and are deliberately ignored here).

use obs::{SpanRecord, Trace};

/// Pipeline stage spans: `cat == "stage"` on track 0, in timeline order.
fn stage_spans(trace: &Trace) -> Vec<&SpanRecord> {
    let mut spans: Vec<&SpanRecord> = trace
        .with_cat("stage")
        .into_iter()
        .filter(|s| s.track == 0)
        .collect();
    spans.sort_by(|a, b| a.start.total_cmp(&b.start));
    spans
}

/// Render a trace as an aligned text table (the textual Fig. 2 / Fig. 11).
///
/// The RAM column comes from each stage span's `"ram"` arg (bytes, rendered
/// as MB); the TOTAL row shows the timeline extent and the peak of the
/// `"ram"` counter series.
pub fn render_trace(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>12} {:>12} {:>12} {:>10}\n",
        "stage", "start (s)", "end (s)", "dur (s)", "RAM (MB)"
    ));
    for s in stage_spans(trace) {
        out.push_str(&format!(
            "{:<20} {:>12.3} {:>12.3} {:>12.3} {:>10.1}\n",
            s.name,
            s.start,
            s.end,
            s.end - s.start,
            s.arg("ram").unwrap_or(0.0) / 1e6
        ));
    }
    out.push_str(&format!(
        "{:<20} {:>12} {:>12} {:>12.3} {:>10.1}\n",
        "TOTAL",
        "",
        "",
        trace.total_time(),
        trace.max_counter("ram").unwrap_or(0.0) / 1e6
    ));
    out
}

/// Render an ASCII bar chart of stage durations (quick terminal look at
/// where the time goes).
pub fn render_bars(trace: &Trace, width: usize) -> String {
    let total = trace.total_time().max(f64::MIN_POSITIVE);
    let mut out = String::new();
    for s in stage_spans(trace) {
        let dur = s.end - s.start;
        let bar = ((dur / total) * width as f64).round() as usize;
        out.push_str(&format!(
            "{:<20} |{:<width$}| {:6.1}%\n",
            s.name,
            "#".repeat(bar.min(width)),
            100.0 * dur / total,
            width = width
        ));
    }
    out
}

/// Render the top-`limit` frames by *self time* — the flamegraph fold of
/// every lane ([`obs::flame::collapsed_merged`]), re-grouped by leaf frame
/// name. Like a multi-thread CPU flamegraph, values sum across lanes, so a
/// phase that runs on every rank shows its total across ranks and the
/// percentages are shares of summed lane time, not of wall-clock.
pub fn render_self_time(trace: &Trace, limit: usize) -> String {
    let mut by_frame: std::collections::BTreeMap<&str, f64> = std::collections::BTreeMap::new();
    let folds = obs::flame::collapsed_merged(trace);
    for (path, t) in &folds {
        let leaf = path.rsplit(obs::flame::FRAME_SEP).next().unwrap_or(path);
        *by_frame.entry(leaf).or_insert(0.0) += t;
    }
    let total: f64 = by_frame.values().sum();
    let mut rows: Vec<(&str, f64)> = by_frame.into_iter().collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
    let mut out = format!(
        "{:<24} {:>12} {:>8}\n",
        "frame (by self time)", "self (s)", "share"
    );
    for (name, t) in rows.into_iter().take(limit) {
        out.push_str(&format!(
            "{:<24} {:>12.3} {:>7.1}%\n",
            name,
            t,
            100.0 * t / total.max(f64::MIN_POSITIVE)
        ));
    }
    out
}

/// Render the cross-rank critical path of an [`obs::Analysis`]: one row
/// per path step with its lane, exclusive contribution and slack (the
/// most total runtime fixing only that span could save). Contributions
/// sum to the analyzed total — the table *is* the wall-clock, itemized.
pub fn render_critical_path(analysis: &obs::Analysis) -> String {
    let mut out = format!(
        "critical path (total {:.3} s)\n{:<26} {:>6} {:>12} {:>12} {:>8}\n",
        analysis.total, "span", "lane", "contrib (s)", "slack (s)", "share"
    );
    for step in &analysis.critical_path {
        let lane = if step.track == 0 {
            "pipe".to_string()
        } else {
            format!("r{}", step.track - 1)
        };
        out.push_str(&format!(
            "{:<26} {:>6} {:>12.3} {:>12.3} {:>7.1}%\n",
            step.name,
            lane,
            step.contribution,
            step.slack,
            100.0 * step.contribution / analysis.total.max(f64::MIN_POSITIVE),
        ));
    }
    out
}

/// Render the per-stage load-imbalance table of an [`obs::Analysis`]:
/// max/mean rank busy time, the max/mean imbalance factor, the idle
/// fraction lost to waiting on the straggler, and which rank it was.
/// Serial stages (no rank lanes) render with a `-` straggler.
pub fn render_imbalance(analysis: &obs::Analysis) -> String {
    let mut out = format!(
        "{:<20} {:>6} {:>10} {:>10} {:>9} {:>7} {:>10}\n",
        "stage", "ranks", "max (s)", "mean (s)", "max/mean", "idle", "straggler"
    );
    for s in &analysis.stages {
        let straggler = match s.straggler {
            Some(t) => format!("r{}", t.saturating_sub(1)),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<20} {:>6} {:>10.3} {:>10.3} {:>9.2} {:>6.1}% {:>10}\n",
            s.name,
            s.lane_busy.len(),
            s.max_busy,
            s.mean_busy,
            s.imbalance,
            100.0 * s.idle_frac,
            straggler,
        ));
    }
    out
}

/// Render the fault-injection / recovery summary from a run's metrics:
/// injected delays and retransmissions, rank crashes and stage replays,
/// checkpoint writes/resumes. Returns an empty string for a fault-free,
/// checkpoint-less run so callers can append it unconditionally.
pub fn render_faults(metrics: &obs::MetricsSnapshot) -> String {
    let rows = [
        ("fault.delays", "message delays injected"),
        ("fault.retries", "dropped messages retransmitted"),
        ("fault.rank_crashes", "rank crashes"),
        ("fault.replays", "stage replays after a crash"),
        ("ckpt.saved", "checkpoints written"),
        ("ckpt.resumed", "stages resumed from checkpoint"),
        ("ckpt.invalid", "corrupt checkpoints recomputed"),
    ];
    let mut body = String::new();
    for (name, label) in rows {
        if let Some(v) = metrics.counter(name).filter(|&v| v > 0) {
            body.push_str(&format!("{label:<36} {v:>8}\n"));
        }
    }
    if body.is_empty() {
        String::new()
    } else {
        format!("fault injection & recovery\n{body}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_faults_empty_for_clean_run() {
        let metrics = obs::MetricsRegistry::new();
        metrics.counter("comm.bytes_sent").add(100);
        assert_eq!(render_faults(&metrics.snapshot()), "");
    }

    #[test]
    fn render_faults_lists_nonzero_counters() {
        let metrics = obs::MetricsRegistry::new();
        metrics.counter("fault.retries").add(7);
        metrics.counter("fault.rank_crashes").add(1);
        metrics.counter("ckpt.resumed").add(3);
        let s = render_faults(&metrics.snapshot());
        assert!(s.contains("dropped messages retransmitted"));
        assert!(s.contains('7'));
        assert!(s.contains("rank crashes"));
        assert!(s.contains("stages resumed from checkpoint"));
        assert!(!s.contains("delays"), "zero counters are omitted");
    }

    fn trace() -> Trace {
        let obs = obs::Tracer::new();
        obs.record_with(0, "stage", "Jellyfish", 0.0, 1.0, &[("ram", 4e6)]);
        obs.record_with(0, "stage", "Chrysalis", 1.0, 10.0, &[("ram", 2e6)]);
        obs.counter(0, "ram", 0.5, 4e6);
        obs.counter(0, "ram", 5.0, 2e6);
        // A rank sub-trace stage span on track 1 must not show in the table.
        obs.record(1, "stage", "gff.total", 1.0, 9.0);
        obs.take()
    }

    #[test]
    fn table_contains_stages_and_total() {
        let s = render_trace(&trace());
        assert!(s.contains("Jellyfish"));
        assert!(s.contains("Chrysalis"));
        assert!(s.contains("TOTAL"));
        assert!(s.contains("10.000"));
        assert!(s.contains("4.0")); // RAM MB from the span arg
        assert!(!s.contains("gff.total"), "rank sub-spans excluded");
    }

    #[test]
    fn bars_scale_with_share() {
        let s = render_bars(&trace(), 40);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        let hashes = |l: &str| l.matches('#').count();
        assert!(hashes(lines[1]) > hashes(lines[0]));
        assert!(s.contains("90.0%"));
    }

    #[test]
    fn empty_trace_renders() {
        let t = Trace::default();
        assert!(render_trace(&t).contains("TOTAL"));
        assert_eq!(render_bars(&t, 10), "");
        assert_eq!(render_self_time(&t, 5).lines().count(), 1, "header only");
    }

    #[test]
    fn critical_path_and_imbalance_tables() {
        let tr = obs::Tracer::new();
        tr.record(0, "stage", "Jellyfish", 0.0, 2.0);
        tr.record(0, "stage", "GraphFromFasta", 2.0, 10.0);
        tr.record(1, "work", "gff.total", 2.0, 7.0);
        tr.record(2, "work", "gff.total", 2.0, 9.0);
        let a = obs::analyze(&tr.take());
        let cp = render_critical_path(&a);
        assert!(cp.contains("critical path (total 10.000 s)"), "{cp}");
        assert!(cp.contains("GraphFromFasta"), "{cp}");
        assert!(cp.contains("gff.total"), "{cp}");
        assert!(cp.contains("r1"), "straggler lane labeled: {cp}");
        let im = render_imbalance(&a);
        assert!(im.contains("straggler"), "{im}");
        assert!(im.contains("GraphFromFasta"), "{im}");
        assert!(im.contains("r1"), "{im}");
        // Serial stage renders a dash, not a bogus rank.
        let jf_line = im.lines().find(|l| l.contains("Jellyfish")).unwrap();
        assert!(jf_line.trim_end().ends_with('-'), "{jf_line}");
        // Degenerate input stays renderable.
        let empty = obs::analyze(&Trace::default());
        assert!(render_critical_path(&empty).contains("critical path"));
        assert!(render_imbalance(&empty).contains("stage"));
    }

    #[test]
    fn self_time_table_ranks_leaves() {
        let obs = obs::Tracer::new();
        obs.record(1, "stage", "gff.total", 0.0, 10.0);
        obs.record(1, "stage", "gff.loop1", 0.0, 7.0);
        obs.record(2, "stage", "gff.total", 0.0, 10.0);
        obs.record(2, "stage", "gff.loop1", 0.0, 4.0);
        let s = render_self_time(&obs.take(), 10);
        let lines: Vec<&str> = s.lines().collect();
        // loop1 sums across ranks (11s) and outranks total's self (9s).
        assert!(lines[1].starts_with("gff.loop1"), "{s}");
        assert!(lines[1].contains("11.000"), "{s}");
        assert!(lines[2].starts_with("gff.total"), "{s}");
        assert!(lines[2].contains("9.000"), "{s}");
        // Limit truncates below the header.
        assert_eq!(render_self_time(&trace(), 1).lines().count(), 2);
    }
}

//! Text rendering of pipeline traces and stage statistics.

use crate::collectl::CollectlTrace;

/// Render a trace as an aligned text table (the textual Fig. 2 / Fig. 11).
pub fn render_trace(trace: &CollectlTrace) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>12} {:>12} {:>12} {:>10}\n",
        "stage", "start (s)", "end (s)", "dur (s)", "RAM (MB)"
    ));
    for s in &trace.stages {
        out.push_str(&format!(
            "{:<20} {:>12.3} {:>12.3} {:>12.3} {:>10.1}\n",
            s.name,
            s.start,
            s.end,
            s.duration(),
            s.peak_ram as f64 / 1e6
        ));
    }
    out.push_str(&format!(
        "{:<20} {:>12} {:>12} {:>12.3} {:>10.1}\n",
        "TOTAL",
        "",
        "",
        trace.total_time(),
        trace.peak_ram() as f64 / 1e6
    ));
    out
}

/// Render an ASCII bar chart of stage durations (quick terminal look at
/// where the time goes).
pub fn render_bars(trace: &CollectlTrace, width: usize) -> String {
    let total = trace.total_time().max(f64::MIN_POSITIVE);
    let mut out = String::new();
    for s in &trace.stages {
        let bar = ((s.duration() / total) * width as f64).round() as usize;
        out.push_str(&format!(
            "{:<20} |{:<width$}| {:6.1}%\n",
            s.name,
            "#".repeat(bar.min(width)),
            100.0 * s.duration() / total,
            width = width
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> CollectlTrace {
        let mut t = CollectlTrace::default();
        t.push("Jellyfish", 1.0, 4_000_000);
        t.push("Chrysalis", 9.0, 2_000_000);
        t
    }

    #[test]
    fn table_contains_stages_and_total() {
        let s = render_trace(&trace());
        assert!(s.contains("Jellyfish"));
        assert!(s.contains("Chrysalis"));
        assert!(s.contains("TOTAL"));
        assert!(s.contains("10.000"));
    }

    #[test]
    fn bars_scale_with_share() {
        let s = render_bars(&trace(), 40);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        let hashes = |l: &str| l.matches('#').count();
        assert!(hashes(lines[1]) > hashes(lines[0]));
        assert!(s.contains("90.0%"));
    }

    #[test]
    fn empty_trace_renders() {
        let t = CollectlTrace::default();
        assert!(render_trace(&t).contains("TOTAL"));
        assert_eq!(render_bars(&t, 10), "");
    }
}

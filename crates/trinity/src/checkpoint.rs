//! Stage-level checkpointing for the pipeline.
//!
//! Each completed stage writes its output to `<dir>/<stage>.ckpt` in a
//! small versioned binary format:
//!
//! ```text
//! magic      8 bytes   b"TRNCKPT1"
//! version    u32 LE    format version (currently 2)
//! fprint     u64 LE    run fingerprint (hash of reads + config knobs)
//! stage      u32 LE length + UTF-8 bytes
//! duration   f64 LE bits   the stage's virtual duration, replayed on resume
//! payload    u64 LE length + bytes (stage-specific codec below)
//! checksum   u64 LE    FNV-1a-64 over every preceding byte
//! ```
//!
//! The trailing checksum covers the header too, so a flipped byte anywhere
//! in the file — magic, fingerprint, payload — is detected on load and the
//! stage is recomputed instead of resumed. The fingerprint ties a
//! checkpoint to the exact input reads and configuration that produced it;
//! `--resume` against a different dataset silently falls back to a full
//! run rather than resurrecting stale artifacts.
//!
//! Format version 2 changed the record codec: sequences serialize as
//! 2-bit [`PackedSeq`] words plus the N-run index (≈4x smaller than the
//! v1 ASCII bytes), with a per-record raw-bytes fallback for sequences
//! the packing cannot restore losslessly (lowercase or IUPAC input).
//! Version-1 files are rejected with [`CkptError::BadVersion`] and the
//! stage recomputed — resume never trusts a payload written under a
//! different codec.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use kcount::counter::KmerCounts;
use seqio::fasta::Record;
use seqio::kmer::Kmer;
use seqio::packed::PackedSeq;

/// File magic: "TRiNity ChecKPoinT, format 1".
pub const MAGIC: [u8; 8] = *b"TRNCKPT1";
/// Current checkpoint format version.
pub const VERSION: u32 = 2;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a-64 over `bytes` — the checkpoint content checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a checkpoint could not be resumed. Every variant is recoverable:
/// the caller recomputes the stage and overwrites the file.
#[derive(Debug)]
pub enum CkptError {
    /// The file does not exist or could not be read.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file was written by an incompatible format version.
    BadVersion(u32),
    /// The stored checksum does not match the recomputed one — the file
    /// was corrupted (or tampered with) after it was written.
    BadChecksum {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the file's bytes.
        actual: u64,
    },
    /// The file checkpoints a different stage than requested.
    WrongStage(String),
    /// The checkpoint was produced by a different input/config
    /// combination.
    WrongFingerprint {
        /// Fingerprint stored in the file.
        stored: u64,
        /// Fingerprint of the current run.
        expected: u64,
    },
    /// The file is structurally truncated or a length field overruns.
    Truncated,
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CkptError::BadChecksum { stored, actual } => write!(
                f,
                "checkpoint checksum mismatch (stored {stored:#018x}, actual {actual:#018x})"
            ),
            CkptError::WrongStage(s) => write!(f, "checkpoint is for stage {s:?}"),
            CkptError::WrongFingerprint { stored, expected } => write!(
                f,
                "checkpoint fingerprint {stored:#018x} does not match run {expected:#018x}"
            ),
            CkptError::Truncated => write!(f, "checkpoint file truncated"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// A decoded checkpoint: the stage it belongs to, the stage's virtual
/// duration (replayed into the trace on resume) and the codec payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Stage name, e.g. `"Jellyfish"`.
    pub stage: String,
    /// Virtual duration of the original stage run, seconds.
    pub duration: f64,
    /// Stage-specific payload (see the `encode_*`/`decode_*` codecs).
    pub payload: Vec<u8>,
}

/// Path of a stage's checkpoint file inside `dir`.
pub fn stage_path(dir: &Path, stage: &str) -> PathBuf {
    dir.join(format!("{}.ckpt", stage.to_ascii_lowercase()))
}

/// Serialize and write a stage checkpoint atomically (temp file + rename),
/// returning the final path.
pub fn save(
    dir: &Path,
    fingerprint: u64,
    stage: &str,
    duration: f64,
    payload: &[u8],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let mut buf = Vec::with_capacity(48 + stage.len() + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&fingerprint.to_le_bytes());
    buf.extend_from_slice(&(stage.len() as u32).to_le_bytes());
    buf.extend_from_slice(stage.as_bytes());
    buf.extend_from_slice(&duration.to_bits().to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = fnv1a64(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());

    let path = stage_path(dir, stage);
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Read and validate a stage checkpoint: magic, version, checksum, stage
/// name and run fingerprint must all match or the load is rejected.
pub fn load(dir: &Path, fingerprint: u64, stage: &str) -> Result<Checkpoint, CkptError> {
    let bytes = std::fs::read(stage_path(dir, stage))?;
    if bytes.len() < MAGIC.len() + 4 + 8 + 4 + 8 + 8 + 8 {
        return Err(CkptError::Truncated);
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    let actual = fnv1a64(body);
    if stored != actual {
        return Err(CkptError::BadChecksum { stored, actual });
    }
    let mut r = Reader::new(body);
    if r.take(8).ok_or(CkptError::Truncated)? != MAGIC {
        return Err(CkptError::BadMagic);
    }
    let version = r.u32().ok_or(CkptError::Truncated)?;
    if version != VERSION {
        return Err(CkptError::BadVersion(version));
    }
    let fprint = r.u64().ok_or(CkptError::Truncated)?;
    if fprint != fingerprint {
        return Err(CkptError::WrongFingerprint {
            stored: fprint,
            expected: fingerprint,
        });
    }
    let name = r.string().ok_or(CkptError::Truncated)?;
    if name != stage {
        return Err(CkptError::WrongStage(name));
    }
    let duration = f64::from_bits(r.u64().ok_or(CkptError::Truncated)?);
    let payload = r.blob64().ok_or(CkptError::Truncated)?.to_vec();
    if !r.is_empty() {
        return Err(CkptError::Truncated);
    }
    Ok(Checkpoint {
        stage: name,
        duration,
        payload,
    })
}

// ---- primitive codec helpers -------------------------------------------

/// Bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Some(head)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn string(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }

    fn blob64(&mut self) -> Option<&'a [u8]> {
        let n = self.u64()?;
        self.take(usize::try_from(n).ok()?)
    }

    fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u64(buf, b.len() as u64);
    buf.extend_from_slice(b);
}

// ---- stage payload codecs ----------------------------------------------

/// Encode a k-mer count table: `k`, entry count, then `(packed, count)`
/// pairs sorted by packed key so the encoding is independent of table
/// iteration order.
pub fn encode_counts(counts: &KmerCounts) -> Vec<u8> {
    let mut pairs: Vec<(u64, u32)> = counts.iter_packed().collect();
    pairs.sort_unstable();
    let mut buf = Vec::with_capacity(16 + pairs.len() * 12);
    put_u32(&mut buf, counts.k() as u32);
    put_u64(&mut buf, pairs.len() as u64);
    for (packed, count) in pairs {
        put_u64(&mut buf, packed);
        put_u32(&mut buf, count);
    }
    buf
}

/// Decode [`encode_counts`]; `None` on any structural problem.
pub fn decode_counts(payload: &[u8]) -> Option<KmerCounts> {
    let mut r = Reader::new(payload);
    let k = r.u32()? as usize;
    let n = r.u64()?;
    let mut counts = KmerCounts::empty(k);
    for _ in 0..n {
        let packed = r.u64()?;
        let count = r.u32()?;
        let km = Kmer::from_packed(packed, k).ok()?;
        counts.add(km, count);
    }
    r.is_empty().then_some(counts)
}

/// Per-record sequence encoding: 2-bit packed words + N-run index.
const SEQ_PACKED: u8 = 1;
/// Per-record sequence encoding: raw ASCII bytes (lossless fallback).
const SEQ_RAW: u8 = 0;

/// Encode FASTA records (id, description, sequence per record).
///
/// Sequences ship as 2-bit [`PackedSeq`] words plus the N-run index —
/// ≈4x smaller than ASCII for clean ACGT data. A sequence the packing
/// cannot restore byte-for-byte (lowercase bases, IUPAC codes other than
/// `N`) falls back to raw bytes under a per-record flag, so the codec is
/// lossless for every input.
pub fn encode_records(records: &[Record]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, records.len() as u64);
    for rec in records {
        put_bytes(&mut buf, rec.id.as_bytes());
        put_bytes(&mut buf, rec.desc.as_bytes());
        let packed = PackedSeq::from_bytes(&rec.seq);
        if packed.decode() == rec.seq {
            buf.push(SEQ_PACKED);
            put_u64(&mut buf, packed.len() as u64);
            for &w in packed.words() {
                put_u64(&mut buf, w);
            }
            let runs = packed.runs();
            put_u64(&mut buf, runs.len() as u64);
            for &(s, e) in runs {
                put_u64(&mut buf, s as u64);
                put_u64(&mut buf, e as u64);
            }
        } else {
            buf.push(SEQ_RAW);
            put_bytes(&mut buf, &rec.seq);
        }
    }
    buf
}

/// Decode [`encode_records`]; `None` on any structural problem, including
/// packed parts [`PackedSeq::from_parts`] refuses to reassemble.
pub fn decode_records(payload: &[u8]) -> Option<Vec<Record>> {
    let mut r = Reader::new(payload);
    let n = r.u64()?;
    let mut out = Vec::new();
    for _ in 0..n {
        let id = String::from_utf8(r.blob64()?.to_vec()).ok()?;
        let desc = String::from_utf8(r.blob64()?.to_vec()).ok()?;
        let seq = match *r.take(1)?.first()? {
            SEQ_PACKED => {
                let len = usize::try_from(r.u64()?).ok()?;
                // The word count is implied by the length; the Reader
                // bounds-checks it, so an absurd length fails cleanly
                // instead of allocating.
                let word_bytes = r.take(len.div_ceil(32).checked_mul(8)?)?;
                let words: Vec<u64> = word_bytes
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect();
                let run_count = r.u64()?;
                let mut runs = Vec::new();
                for _ in 0..run_count {
                    let s = usize::try_from(r.u64()?).ok()?;
                    let e = usize::try_from(r.u64()?).ok()?;
                    runs.push((s, e));
                }
                PackedSeq::from_parts(len, words, runs)?.decode()
            }
            SEQ_RAW => r.blob64()?.to_vec(),
            _ => return None,
        };
        out.push(Record { id, desc, seq });
    }
    r.is_empty().then_some(out)
}

/// Encode the GraphFromFasta weld pool: the weld-mer byte strings plus the
/// contig pairs they glue.
pub fn encode_welds(welds: &[Vec<u8>], pairs: &[(u32, u32)]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, welds.len() as u64);
    for w in welds {
        put_bytes(&mut buf, w);
    }
    put_u64(&mut buf, pairs.len() as u64);
    for &(a, b) in pairs {
        put_u32(&mut buf, a);
        put_u32(&mut buf, b);
    }
    buf
}

/// Decode [`encode_welds`].
#[allow(clippy::type_complexity)]
pub fn decode_welds(payload: &[u8]) -> Option<(Vec<Vec<u8>>, Vec<(u32, u32)>)> {
    let mut r = Reader::new(payload);
    let n = r.u64()?;
    let mut welds = Vec::new();
    for _ in 0..n {
        welds.push(r.blob64()?.to_vec());
    }
    let m = r.u64()?;
    let mut pairs = Vec::new();
    for _ in 0..m {
        pairs.push((r.u32()?, r.u32()?));
    }
    r.is_empty().then_some((welds, pairs))
}

/// Encode clustered components (contig member lists).
pub fn encode_components(components: &[Vec<usize>]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, components.len() as u64);
    for members in components {
        put_u64(&mut buf, members.len() as u64);
        for &m in members {
            put_u64(&mut buf, m as u64);
        }
    }
    buf
}

/// Decode [`encode_components`].
pub fn decode_components(payload: &[u8]) -> Option<Vec<Vec<usize>>> {
    let mut r = Reader::new(payload);
    let n = r.u64()?;
    let mut out = Vec::new();
    for _ in 0..n {
        let len = r.u64()?;
        let mut members = Vec::new();
        for _ in 0..len {
            members.push(usize::try_from(r.u64()?).ok()?);
        }
        out.push(members);
    }
    r.is_empty().then_some(out)
}

/// Encode read→component assignments (or any `(u32, u32)` pair list).
pub fn encode_pairs(pairs: &[(u32, u32)]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, pairs.len() as u64);
    for &(a, b) in pairs {
        put_u32(&mut buf, a);
        put_u32(&mut buf, b);
    }
    buf
}

/// Decode [`encode_pairs`].
pub fn decode_pairs(payload: &[u8]) -> Option<Vec<(u32, u32)>> {
    let mut r = Reader::new(payload);
    let n = r.u64()?;
    let mut out = Vec::new();
    for _ in 0..n {
        out.push((r.u32()?, r.u32()?));
    }
    r.is_empty().then_some(out)
}

/// Fingerprint of a run: FNV-1a over the input reads and the configuration
/// knobs that change stage outputs. Two runs with the same fingerprint may
/// share checkpoints; anything else must not.
pub fn run_fingerprint(reads: &[Record], key: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for k in key {
        mix(&k.to_le_bytes());
    }
    mix(&(reads.len() as u64).to_le_bytes());
    for rec in reads {
        mix(rec.id.as_bytes());
        mix(&[0]);
        mix(&rec.seq);
        mix(&[0]);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("trinity-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmpdir("roundtrip");
        let payload = encode_pairs(&[(1, 2), (3, 4)]);
        save(&dir, 42, "Stage", 1.5, &payload).unwrap();
        let ck = load(&dir, 42, "Stage").unwrap();
        assert_eq!(ck.stage, "Stage");
        assert_eq!(ck.duration, 1.5);
        assert_eq!(decode_pairs(&ck.payload).unwrap(), vec![(1, 2), (3, 4)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        let dir = tmpdir("corrupt");
        let payload = encode_pairs(&[(7, 8)]);
        let path = save(&dir, 1, "Stage", 0.5, &payload).unwrap();
        let good = std::fs::read(&path).unwrap();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                load(&dir, 1, "Stage").is_err(),
                "flipping byte {i} went undetected"
            );
        }
        std::fs::write(&path, &good).unwrap();
        assert!(load(&dir, 1, "Stage").is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_and_stage_mismatches_rejected() {
        let dir = tmpdir("mismatch");
        save(&dir, 5, "Stage", 0.0, b"x").unwrap();
        assert!(matches!(
            load(&dir, 6, "Stage"),
            Err(CkptError::WrongFingerprint { .. })
        ));
        assert!(matches!(load(&dir, 5, "Other"), Err(CkptError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn counts_codec_round_trips() {
        let mut counts = KmerCounts::empty(8);
        for (i, seq) in [b"ACGTACGT", b"TTTTACGT", b"GGGGCCCC"].iter().enumerate() {
            counts.add(Kmer::from_bases(*seq).unwrap(), i as u32 + 1);
        }
        let decoded = decode_counts(&encode_counts(&counts)).unwrap();
        assert_eq!(decoded.k(), 8);
        let mut a: Vec<_> = counts.iter_packed().collect();
        let mut b: Vec<_> = decoded.iter_packed().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn records_codec_round_trips() {
        let recs = vec![
            Record {
                id: "r1".into(),
                desc: "left".into(),
                seq: b"ACGT".to_vec(),
            },
            Record {
                id: "r2".into(),
                desc: String::new(),
                seq: b"GGGG".to_vec(),
            },
            // Gaps exercise the N-run index path.
            Record {
                id: "r3".into(),
                desc: "gappy".into(),
                seq: b"NNACGTNNNNGGGGN".to_vec(),
            },
            // Crosses the 32-base word boundary.
            Record {
                id: "r4".into(),
                desc: String::new(),
                seq: b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTA".to_vec(),
            },
            Record {
                id: "empty".into(),
                desc: String::new(),
                seq: Vec::new(),
            },
        ];
        assert_eq!(decode_records(&encode_records(&recs)).unwrap(), recs);
    }

    #[test]
    fn records_codec_falls_back_to_raw_for_unpackable_bytes() {
        // Lowercase and IUPAC bytes don't survive 2-bit packing; the codec
        // must keep them byte-identical via the raw fallback.
        let recs = vec![
            Record {
                id: "soft".into(),
                desc: "masked".into(),
                seq: b"acgtACGT".to_vec(),
            },
            Record {
                id: "iupac".into(),
                desc: String::new(),
                seq: b"ACGTRYSWKM".to_vec(),
            },
        ];
        let buf = encode_records(&recs);
        assert_eq!(decode_records(&buf).unwrap(), recs);
        assert!(buf.contains(&SEQ_RAW));
    }

    #[test]
    fn packed_records_are_much_smaller_than_ascii() {
        // ~4x: 2 bits/base instead of 8, with only a constant per-record
        // overhead (len + run index).
        let recs: Vec<Record> = (0..16)
            .map(|i| {
                let seq: Vec<u8> = (0..4096).map(|j| b"ACGT"[(i + j) % 4]).collect();
                Record {
                    id: format!("r{i}"),
                    desc: String::new(),
                    seq,
                }
            })
            .collect();
        let packed_size = encode_records(&recs).len();
        let ascii_size: usize = recs.iter().map(|r| r.seq.len()).sum();
        assert!(
            packed_size * 3 < ascii_size,
            "packed {packed_size} vs ascii {ascii_size}"
        );
        assert_eq!(decode_records(&encode_records(&recs)).unwrap(), recs);
    }

    #[test]
    fn records_codec_rejects_truncation_and_bad_parts() {
        let recs = vec![Record {
            id: "r".into(),
            desc: String::new(),
            seq: b"NNACGTACGTNN".to_vec(),
        }];
        let buf = encode_records(&recs);
        for cut in 1..buf.len() {
            assert!(decode_records(&buf[..cut]).is_none(), "cut at {cut}");
        }
        // Corrupt the run index (swap a run end past len): from_parts
        // must refuse rather than build an inconsistent sequence.
        let mut bad = buf.clone();
        let pos = bad.len() - 8;
        bad[pos..].copy_from_slice(&(u64::MAX).to_le_bytes());
        assert!(decode_records(&bad).is_none());
    }

    #[test]
    fn old_version_checkpoints_rejected() {
        let dir = tmpdir("oldver");
        // Rewrite a valid file's version field to 1 and fix up the
        // checksum: a structurally sound v1 file whose payload codec we
        // no longer trust.
        let path = save(&dir, 9, "Stage", 0.0, b"payload").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let n = bytes.len();
        let sum = fnv1a64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load(&dir, 9, "Stage"),
            Err(CkptError::BadVersion(1))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn welds_and_components_round_trip() {
        let welds = vec![b"ACGTACGT".to_vec(), b"TTTT".to_vec()];
        let pairs = vec![(0, 1), (2, 3)];
        let (w, p) = decode_welds(&encode_welds(&welds, &pairs)).unwrap();
        assert_eq!(w, welds);
        assert_eq!(p, pairs);
        let comps = vec![vec![0, 1, 2], vec![], vec![5]];
        assert_eq!(
            decode_components(&encode_components(&comps)).unwrap(),
            comps
        );
    }

    #[test]
    fn truncated_payloads_rejected() {
        let buf = encode_pairs(&[(1, 2), (3, 4)]);
        for cut in 1..buf.len() {
            assert!(decode_pairs(&buf[..cut]).is_none(), "cut at {cut}");
        }
        let extra: Vec<u8> = buf.iter().copied().chain([0]).collect();
        assert!(decode_pairs(&extra).is_none(), "trailing garbage rejected");
    }

    #[test]
    fn fingerprint_sensitive_to_reads_and_key() {
        let reads = vec![Record::new("r", b"ACGT".to_vec())];
        let base = run_fingerprint(&reads, &[1, 2]);
        assert_ne!(base, run_fingerprint(&reads, &[1, 3]));
        let other = vec![Record::new("r", b"ACGA".to_vec())];
        assert_ne!(base, run_fingerprint(&other, &[1, 2]));
        assert_eq!(base, run_fingerprint(&reads, &[1, 2]));
    }
}

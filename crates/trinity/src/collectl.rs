//! Collectl-style stage tracing: runtime and modelled RAM per stage.
//!
//! The paper instruments Trinity with the Collectl tool and plots RAM
//! against runtime (Figs. 2 and 11). We record the same series: each stage
//! contributes an interval on the virtual-time axis and a resident-set
//! estimate derived from the sizes of the structures it actually holds.

/// One pipeline stage's interval and memory footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name (Jellyfish, Inchworm, Bowtie, GraphFromFasta, …).
    pub name: String,
    /// Stage start on the virtual-time axis, seconds.
    pub start: f64,
    /// Stage end, seconds.
    pub end: f64,
    /// Estimated peak resident set during the stage, bytes.
    pub peak_ram: u64,
}

impl StageReport {
    /// Stage duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The whole trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CollectlTrace {
    /// Stages in execution order.
    pub stages: Vec<StageReport>,
}

impl CollectlTrace {
    /// Append a stage starting where the previous one ended.
    pub fn push(&mut self, name: impl Into<String>, duration: f64, peak_ram: u64) {
        let start = self.stages.last().map(|s| s.end).unwrap_or(0.0);
        self.stages.push(StageReport {
            name: name.into(),
            start,
            end: start + duration.max(0.0),
            peak_ram,
        });
    }

    /// Total pipeline runtime.
    pub fn total_time(&self) -> f64 {
        self.stages.last().map(|s| s.end).unwrap_or(0.0)
    }

    /// Peak RAM across stages.
    pub fn peak_ram(&self) -> u64 {
        self.stages.iter().map(|s| s.peak_ram).max().unwrap_or(0)
    }

    /// The stage holding the largest share of the runtime.
    pub fn dominant_stage(&self) -> Option<&StageReport> {
        self.stages
            .iter()
            .max_by(|a, b| a.duration().partial_cmp(&b.duration()).expect("finite"))
    }

    /// Sample the trace as `(time, ram)` step points for plotting.
    pub fn ram_series(&self) -> Vec<(f64, u64)> {
        let mut pts = Vec::with_capacity(self.stages.len() * 2);
        for s in &self.stages {
            pts.push((s.start, s.peak_ram));
            pts.push((s.end, s.peak_ram));
        }
        pts
    }
}

/// Rough resident-set model for the pipeline's data structures. The
/// coefficients are hash-map-overhead multipliers, not exact science —
/// the *shape* (Jellyfish/Inchworm dominate memory, Chrysalis dominates
/// time) is what Figs. 2/11 show.
pub mod ram {
    /// Jellyfish: distinct k-mers × (key + count + table overhead).
    pub fn jellyfish(distinct_kmers: usize) -> u64 {
        (distinct_kmers as u64) * 48
    }

    /// Inchworm: the dictionary (sorted vec + hash) plus contig text.
    pub fn inchworm(distinct_kmers: usize, contig_bytes: usize) -> u64 {
        (distinct_kmers as u64) * 64 + contig_bytes as u64
    }

    /// Bowtie: FM-index ≈ 6 bytes per reference base (SA + BWT + Occ)
    /// plus the read stream buffer.
    pub fn bowtie(ref_bases: usize, read_buffer: usize) -> u64 {
        (ref_bases as u64) * 6 + read_buffer as u64
    }

    /// GraphFromFasta: contigs + k-mer map + welds.
    pub fn graph_from_fasta(contig_bytes: usize, kmer_entries: usize, weld_bytes: usize) -> u64 {
        contig_bytes as u64 + (kmer_entries as u64) * 56 + weld_bytes as u64
    }

    /// ReadsToTranscripts: k-mer→component table + one chunk of reads.
    pub fn reads_to_transcripts(kmer_entries: usize, chunk_bytes: usize) -> u64 {
        (kmer_entries as u64) * 40 + chunk_bytes as u64
    }

    /// Butterfly: graph nodes/edges per component (peak over components).
    pub fn butterfly(max_component_nodes: usize) -> u64 {
        (max_component_nodes as u64) * 96
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_are_contiguous() {
        let mut t = CollectlTrace::default();
        t.push("a", 2.0, 100);
        t.push("b", 3.0, 50);
        assert_eq!(t.stages[0].start, 0.0);
        assert_eq!(t.stages[0].end, 2.0);
        assert_eq!(t.stages[1].start, 2.0);
        assert_eq!(t.total_time(), 5.0);
        assert_eq!(t.peak_ram(), 100);
    }

    #[test]
    fn dominant_stage() {
        let mut t = CollectlTrace::default();
        t.push("short", 1.0, 10);
        t.push("long", 9.0, 5);
        assert_eq!(t.dominant_stage().unwrap().name, "long");
    }

    #[test]
    fn empty_trace() {
        let t = CollectlTrace::default();
        assert_eq!(t.total_time(), 0.0);
        assert_eq!(t.peak_ram(), 0);
        assert!(t.dominant_stage().is_none());
        assert!(t.ram_series().is_empty());
    }

    #[test]
    fn negative_duration_clamped() {
        let mut t = CollectlTrace::default();
        t.push("x", -1.0, 1);
        assert_eq!(t.total_time(), 0.0);
    }

    #[test]
    fn ram_series_steps() {
        let mut t = CollectlTrace::default();
        t.push("a", 1.0, 7);
        let pts = t.ram_series();
        assert_eq!(pts, vec![(0.0, 7), (1.0, 7)]);
    }

    #[test]
    fn ram_models_scale() {
        assert!(ram::jellyfish(1000) > ram::jellyfish(10));
        assert!(ram::inchworm(1000, 50) > ram::jellyfish(1000));
        assert!(ram::bowtie(10_000, 0) > 0);
        assert!(ram::butterfly(10) > 0);
        assert!(ram::graph_from_fasta(10, 10, 10) > 0);
        assert!(ram::reads_to_transcripts(10, 10) > 0);
    }
}

//! The Trinity pipeline driver.
//!
//! Equivalent of `Trinity.pl`: runs Jellyfish → Inchworm → Chrysalis →
//! Butterfly over a read set, in the original single-node layout or with
//! the paper's hybrid MPI+OpenMP Chrysalis (`--nprocs`, §III-C's extended
//! command line). [`pipeline`] records the per-stage runtime/RAM timeline
//! that Figs. 2 and 11 plot into an [`obs::Trace`] (plus an
//! [`obs::MetricsSnapshot`] of table/comm health); [`report`] renders the
//! collectl-style text views and `obs::export` serialises the same trace
//! to JSON / Chrome `trace_event` files.

pub mod checkpoint;
pub mod pipeline;
pub mod report;

pub use pipeline::{
    run_pipeline, run_pipeline_opts, PipelineConfig, PipelineMode, PipelineOutput, RunOptions,
};

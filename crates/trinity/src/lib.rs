//! The Trinity pipeline driver.
//!
//! Equivalent of `Trinity.pl`: runs Jellyfish → Inchworm → Chrysalis →
//! Butterfly over a read set, in the original single-node layout or with
//! the paper's hybrid MPI+OpenMP Chrysalis (`--nprocs`, §III-C's extended
//! command line). [`collectl`] records the per-stage runtime/RAM trace that
//! Figs. 2 and 11 plot; [`report`] renders it.

pub mod collectl;
pub mod pipeline;
pub mod report;

pub use collectl::{CollectlTrace, StageReport};
pub use pipeline::{run_pipeline, PipelineConfig, PipelineMode, PipelineOutput};

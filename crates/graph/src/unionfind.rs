//! Disjoint-set forest with path halving and union by size.
//!
//! GraphFromFasta's second phase turns the harvested weld pairs into
//! connected components of Inchworm contigs; this is the clustering
//! structure it uses.

/// Union-find over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(
            n <= u32::MAX as usize,
            "UnionFind supports up to u32::MAX elements"
        );
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x as usize
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Group element ids by component, assigning dense component ids in
    /// order of each component's smallest element. Returns
    /// `(component_of_element, members_per_component)`.
    pub fn into_components(mut self) -> (Vec<usize>, Vec<Vec<usize>>) {
        let n = self.len();
        let mut comp_of_root = vec![usize::MAX; n];
        let mut comp_of = vec![0usize; n];
        let mut members: Vec<Vec<usize>> = Vec::new();
        for (x, slot) in comp_of.iter_mut().enumerate() {
            let r = self.find(x);
            let c = if comp_of_root[r] == usize::MAX {
                let c = members.len();
                comp_of_root[r] = c;
                members.push(Vec::new());
                c
            } else {
                comp_of_root[r]
            };
            *slot = c;
            members[c].push(x);
        }
        (comp_of, members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.set_size(i), 1);
        }
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0)); // already merged
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert_eq!(uf.component_count(), 3);
        assert_eq!(uf.set_size(1), 2);
    }

    #[test]
    fn transitive() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 2);
        assert!(uf.same(0, 3));
        assert_eq!(uf.set_size(0), 4);
        assert_eq!(uf.component_count(), 3); // {0,1,2,3},{4},{5}
    }

    #[test]
    fn chain_path_compression() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert_eq!(uf.set_size(0), n);
        assert!(uf.same(0, n - 1));
    }

    #[test]
    fn components_are_dense_and_ordered() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 5);
        uf.union(1, 3);
        let (comp_of, members) = uf.into_components();
        // Components numbered by smallest member: {0}=0, {1,3}=1, {2}=2, {4,5}=3
        assert_eq!(comp_of, vec![0, 1, 2, 1, 3, 3]);
        assert_eq!(members, vec![vec![0], vec![1, 3], vec![2], vec![4, 5]]);
    }

    #[test]
    fn empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
        let (c, m) = uf.into_components();
        assert!(c.is_empty() && m.is_empty());
    }
}

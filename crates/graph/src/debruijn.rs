//! Per-component de Bruijn graphs.
//!
//! Chrysalis finishes by building a de Bruijn graph for every component
//! (`FastaToDebruijn`): nodes are (k−1)-mers, edges are the k-mers observed
//! in the component's contigs, weighted by how often reads/contigs support
//! them. Butterfly then reconstructs transcripts as weighted paths.

use kmertable::PackedKmerTable;
use seqio::kmer::{Kmer, KmerIter};
use seqio::packed::PackedSeq;

/// Dense node id within one graph.
pub type NodeId = u32;

/// A weighted de Bruijn graph over (k−1)-mer nodes.
#[derive(Debug, Clone)]
pub struct DeBruijnGraph {
    k: usize,
    /// Node id -> (k-1)-mer.
    nodes: Vec<Kmer>,
    /// Packed (k-1)-mer -> node id. All nodes share one word size, so the
    /// packed `u64` is a unique key and the open-addressing table makes
    /// `intern` (two probes per k-mer threaded) allocation- and SipHash-free.
    index: PackedKmerTable,
    /// Out-adjacency: node -> (successor, weight).
    out: Vec<Vec<(NodeId, u32)>>,
    /// In-degree per node (for source detection).
    indeg: Vec<u32>,
    edge_count: usize,
}

impl DeBruijnGraph {
    /// Create an empty graph with word size `k` (edges are k-mers, nodes
    /// are (k−1)-mers; requires `2 <= k <= 32`).
    pub fn new(k: usize) -> Self {
        assert!((2..=32).contains(&k), "k must be in 2..=32");
        DeBruijnGraph {
            k,
            nodes: Vec::new(),
            index: PackedKmerTable::new(),
            out: Vec::new(),
            indeg: Vec::new(),
            edge_count: 0,
        }
    }

    /// Build from a set of sequences, adding weight `w` per occurrence of
    /// each k-mer.
    pub fn build<'a, I: IntoIterator<Item = &'a [u8]>>(k: usize, seqs: I) -> Self {
        let mut g = DeBruijnGraph::new(k);
        for seq in seqs {
            g.add_sequence(seq, 1);
        }
        g
    }

    /// Word size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn intern(&mut self, km: Kmer) -> NodeId {
        let next = self.nodes.len() as NodeId;
        let id = self.index.get_or_insert(km.packed(), next);
        if id == next {
            self.nodes.push(km);
            self.out.push(Vec::new());
            self.indeg.push(0);
        }
        id
    }

    /// Thread a sequence through the graph, adding `weight` to every edge
    /// (k-mer) it contains. Windows with non-ACGT bytes are skipped.
    pub fn add_sequence(&mut self, seq: &[u8], weight: u32) {
        let k = self.k;
        let iter = match KmerIter::new(seq, k) {
            Ok(it) => it,
            Err(_) => return,
        };
        for (_, km) in iter {
            let from = self.intern(km.prefix());
            let to = self.intern(km.suffix());
            self.add_edge(from, to, weight);
        }
    }

    /// Thread a pre-encoded sequence through the graph — the Butterfly hot
    /// path, which receives its component bundle already packed and never
    /// re-decodes ASCII. Identical semantics to [`Self::add_sequence`].
    pub fn add_packed(&mut self, seq: &PackedSeq, weight: u32) {
        let iter = match seq.kmers(self.k) {
            Ok(it) => it,
            Err(_) => return,
        };
        for (_, km) in iter {
            let from = self.intern(km.prefix());
            let to = self.intern(km.suffix());
            self.add_edge(from, to, weight);
        }
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId, weight: u32) {
        let adj = &mut self.out[from as usize];
        if let Some(e) = adj.iter_mut().find(|(t, _)| *t == to) {
            e.1 = e.1.saturating_add(weight);
        } else {
            adj.push((to, weight));
            self.indeg[to as usize] += 1;
            self.edge_count += 1;
        }
    }

    /// The (k−1)-mer of a node.
    pub fn node_kmer(&self, id: NodeId) -> Kmer {
        self.nodes[id as usize]
    }

    /// Look up a node by its (k−1)-mer.
    pub fn node_of(&self, km: Kmer) -> Option<NodeId> {
        self.index.get(km.packed())
    }

    /// Successors of a node with edge weights, heaviest first.
    pub fn out_edges(&self, id: NodeId) -> Vec<(NodeId, u32)> {
        let mut edges = self.out[id as usize].clone();
        edges.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        edges
    }

    /// In-degree of a node.
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.indeg[id as usize] as usize
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.out[id as usize].len()
    }

    /// Nodes with in-degree 0 (path starts). If the graph is a single cycle
    /// this is empty — callers must handle that (Butterfly bails out on
    /// pure cycles exactly like the original).
    pub fn sources(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as NodeId)
            .filter(|&id| self.indeg[id as usize] == 0)
            .collect()
    }

    /// Spell the sequence of a node path: first node's (k−1)-mer plus one
    /// base per subsequent node. Panics if the path is not connected.
    pub fn spell_path(&self, path: &[NodeId]) -> Vec<u8> {
        if path.is_empty() {
            return Vec::new();
        }
        let mut seq = self.node_kmer(path[0]).bases();
        for w in path.windows(2) {
            debug_assert!(
                self.out[w[0] as usize].iter().any(|(t, _)| *t == w[1]),
                "path edge {}->{} missing",
                w[0],
                w[1]
            );
            let km = self.node_kmer(w[1]);
            seq.push(km.bases()[km.k() - 1]);
        }
        seq
    }

    /// Total weight along a path (sum of its edge weights).
    pub fn path_weight(&self, path: &[NodeId]) -> u64 {
        let mut total = 0u64;
        for w in path.windows(2) {
            if let Some((_, wt)) = self.out[w[0] as usize].iter().find(|(t, _)| *t == w[1]) {
                total += *wt as u64;
            }
        }
        total
    }

    /// Weight of the edge `from -> to`, if present.
    pub fn edge_weight(&self, from: NodeId, to: NodeId) -> Option<u32> {
        self.out[from as usize]
            .iter()
            .find(|(t, _)| *t == to)
            .map(|(_, w)| *w)
    }

    /// Remove edges with weight below `min_weight` (error pruning), then
    /// recompute in-degrees. Nodes are kept (possibly isolated).
    pub fn prune_edges(&mut self, min_weight: u32) {
        let mut removed = 0usize;
        for adj in &mut self.out {
            let before = adj.len();
            adj.retain(|(_, w)| *w >= min_weight);
            removed += before - adj.len();
        }
        if removed > 0 {
            self.edge_count -= removed;
            for d in &mut self.indeg {
                *d = 0;
            }
            for adj in &self.out {
                for &(to, _) in adj {
                    self.indeg[to as usize] += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_sequence_makes_a_chain() {
        let g = DeBruijnGraph::build(4, [b"ACGTAC".as_slice()]);
        // 4-mers: ACGT, CGTA, GTAC -> nodes ACG,CGT,GTA,TAC
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        let sources = g.sources();
        assert_eq!(sources.len(), 1);
        assert_eq!(g.node_kmer(sources[0]).bases(), b"ACG");
    }

    #[test]
    fn spell_path_reconstructs_sequence() {
        let seq = b"ACGTACGGTTA";
        let g = DeBruijnGraph::build(5, [seq.as_slice()]);
        // Follow the chain from the single source.
        let mut path = vec![g.sources()[0]];
        loop {
            let last = *path.last().unwrap();
            let next = g.out_edges(last);
            if next.is_empty() {
                break;
            }
            path.push(next[0].0);
        }
        assert_eq!(g.spell_path(&path), seq.to_vec());
    }

    #[test]
    fn repeated_kmers_accumulate_weight() {
        let g = DeBruijnGraph::build(3, [b"AAAA".as_slice()]);
        // Node AA with a self-loop of weight 2 (AAA seen twice).
        assert_eq!(g.node_count(), 1);
        let id = g.node_of(Kmer::from_bases(b"AA").unwrap()).unwrap();
        assert_eq!(g.edge_weight(id, id), Some(2));
    }

    #[test]
    fn branch_creates_two_out_edges() {
        let g = DeBruijnGraph::build(4, [b"AACGT".as_slice(), b"AACGG".as_slice()]);
        let id = g.node_of(Kmer::from_bases(b"ACG").unwrap()).unwrap();
        assert_eq!(g.out_degree(id), 2);
    }

    #[test]
    fn out_edges_sorted_by_weight() {
        let mut g = DeBruijnGraph::new(4);
        g.add_sequence(b"AACGT", 1);
        g.add_sequence(b"AACGG", 5);
        let id = g.node_of(Kmer::from_bases(b"ACG").unwrap()).unwrap();
        let edges = g.out_edges(id);
        assert_eq!(edges.len(), 2);
        assert!(edges[0].1 >= edges[1].1);
        assert_eq!(g.node_kmer(edges[0].0).bases(), b"CGG");
    }

    #[test]
    fn cycle_has_no_source() {
        // ACGA's 3-mers: ACG, CGA; nodes AC,CG,GA + wrap creates partial
        // chain; build a true cycle with AA->AA self loop instead.
        let g = DeBruijnGraph::build(3, [b"AAA".as_slice()]);
        assert!(g.sources().is_empty());
    }

    #[test]
    fn prune_removes_light_edges() {
        let mut g = DeBruijnGraph::new(4);
        g.add_sequence(b"AACGT", 1);
        g.add_sequence(b"AACGG", 5);
        let before = g.edge_count();
        g.prune_edges(3);
        assert!(g.edge_count() < before);
        let id = g.node_of(Kmer::from_bases(b"ACG").unwrap()).unwrap();
        assert_eq!(g.out_degree(id), 1);
        // In-degrees were rebuilt: CGT lost its only in-edge.
        let cgt = g.node_of(Kmer::from_bases(b"CGT").unwrap()).unwrap();
        assert_eq!(g.in_degree(cgt), 0);
    }

    #[test]
    fn skips_n_windows() {
        let g = DeBruijnGraph::build(4, [b"ACGNACGT".as_slice()]);
        // Only the second run contributes 4-mers: ACGT -> nodes ACG, CGT.
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn short_sequence_contributes_nothing() {
        let g = DeBruijnGraph::build(5, [b"ACG".as_slice()]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.sources().is_empty());
    }

    #[test]
    fn path_weight_sums_edges() {
        let g = DeBruijnGraph::build(3, [b"ACGT".as_slice(), b"ACGT".as_slice()]);
        let a = g.node_of(Kmer::from_bases(b"AC").unwrap()).unwrap();
        let b = g.node_of(Kmer::from_bases(b"CG").unwrap()).unwrap();
        let c = g.node_of(Kmer::from_bases(b"GT").unwrap()).unwrap();
        assert_eq!(g.path_weight(&[a, b, c]), 4);
        assert_eq!(g.path_weight(&[a]), 0);
    }

    #[test]
    fn empty_path_spells_empty() {
        let g = DeBruijnGraph::new(4);
        assert!(g.spell_path(&[]).is_empty());
    }

    #[test]
    fn add_packed_matches_add_sequence() {
        let seqs: [&[u8]; 3] = [b"ACGTACGGTTA", b"AACGNNACGT", b"TTTT"];
        let mut bytes = DeBruijnGraph::new(4);
        let mut packed = DeBruijnGraph::new(4);
        for (i, s) in seqs.iter().enumerate() {
            bytes.add_sequence(s, i as u32 + 1);
            packed.add_packed(&PackedSeq::from_bytes(s), i as u32 + 1);
        }
        assert_eq!(bytes.node_count(), packed.node_count());
        assert_eq!(bytes.edge_count(), packed.edge_count());
        for id in 0..bytes.node_count() as NodeId {
            let km = bytes.node_kmer(id);
            let pid = packed.node_of(km).expect("node present in packed graph");
            assert_eq!(bytes.out_edges(id).len(), packed.out_edges(pid).len());
            for (to, w) in bytes.out_edges(id) {
                let to_km = bytes.node_kmer(to);
                let pto = packed.node_of(to_km).unwrap();
                assert_eq!(packed.edge_weight(pid, pto), Some(w));
            }
        }
    }
}

//! Graph substrate for the Trinity reproduction.
//!
//! Two structures Chrysalis and Butterfly are built on:
//!
//! * [`unionfind`] — disjoint-set clustering, used by GraphFromFasta to turn
//!   "weld" pairs of Inchworm contigs into connected components;
//! * [`debruijn`] — the per-component de Bruijn graph Chrysalis emits
//!   (`FastaToDebruijn`) and Butterfly traverses to enumerate isoforms.

pub mod debruijn;
pub mod unionfind;

pub use debruijn::DeBruijnGraph;
pub use unionfind::UnionFind;

//! Cross-rank summary statistics over recorded spans.

/// Min/max/mean of one phase across ranks — the load-imbalance bars of
/// Figs. 7 and 9.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseSpread {
    /// Fastest rank's time.
    pub min: f64,
    /// Slowest rank's time (the representative time, per §V-A).
    pub max: f64,
    /// Mean across ranks.
    pub mean: f64,
}

impl PhaseSpread {
    /// Compute the spread of one extracted phase over per-rank records.
    pub fn over<T>(records: &[T], phase: impl Fn(&T) -> f64) -> PhaseSpread {
        if records.is_empty() {
            return PhaseSpread::default();
        }
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        for r in records {
            let v = phase(r);
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        PhaseSpread {
            min,
            max,
            mean: sum / records.len() as f64,
        }
    }

    /// Spread of the summed durations of spans named `name` on each of the
    /// given tracks of a [`crate::Trace`] — one value per rank, then
    /// min/max/mean over ranks.
    pub fn over_spans(trace: &crate::Trace, tracks: &[u32], name: &str) -> PhaseSpread {
        PhaseSpread::over(tracks, |&t| trace.span_sum(t, name))
    }

    /// Max/min ratio (the paper quotes "the highest time of a process more
    /// than three times the process with the lowest time" at 192 nodes).
    pub fn imbalance(&self) -> f64 {
        if self.min == 0.0 {
            1.0
        } else {
            self.max / self.min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    #[test]
    fn spread_over_records() {
        let times = [1.0f64, 3.0, 2.0];
        let s = PhaseSpread::over(&times, |&t| t);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.imbalance() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_spread() {
        let s = PhaseSpread::over::<f64>(&[], |&t| t);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.imbalance(), 1.0);
    }

    #[test]
    fn spread_over_spans() {
        let tr = Tracer::new();
        tr.record(0, "c", "loop", 0.0, 1.0);
        tr.record(0, "c", "loop", 1.0, 1.5); // rank 0 total: 1.5
        tr.record(1, "c", "loop", 0.0, 3.0); // rank 1 total: 3.0
        let s = PhaseSpread::over_spans(&tr.take(), &[0, 1], "loop");
        assert_eq!(s.min, 1.5);
        assert_eq!(s.max, 3.0);
        assert!((s.imbalance() - 2.0).abs() < 1e-12);
    }
}

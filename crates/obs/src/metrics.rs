//! Typed metrics: counters, gauges and power-of-two histograms behind a
//! shared [`MetricsRegistry`].
//!
//! Handles returned by the registry ([`Counter`], [`Gauge`], [`Histogram`])
//! are cheap `Arc`-backed clones that update lock-free atomics, so they can
//! be hoisted out of hot loops and shared across threads. A
//! [`MetricsSnapshot`] freezes every metric, sorted by name, for stable
//! export.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of power-of-two buckets in a [`Histogram`]: bucket `i` counts
/// values of bit length `i` — bucket 0 holds zeros, bucket `i` holds
/// `[2^(i-1), 2^i)`, and bucket 63 absorbs everything from `2^62` up.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing event count (bytes sent, k-mers welded, …).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins instantaneous measurement (load factor, queue depth).
/// Stores the `f64` bit pattern in an atomic, so updates are lock-free.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A power-of-two-bucket histogram of `u64` samples (probe lengths, chunk
/// sizes). Recording is two relaxed atomic adds — safe on hot paths.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Freeze the histogram into a summary.
    pub fn summary(&self) -> HistogramSummary {
        let buckets: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        HistogramSummary {
            count,
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A frozen [`Histogram`]: total count/sum plus per-bucket counts.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Per-bucket counts; bucket `i` covers `[2^(i-1), 2^i)`, bucket 0
    /// holds zeros. Always [`HISTOGRAM_BUCKETS`] long.
    pub buckets: Vec<u64>,
}

impl HistogramSummary {
    /// Mean sample value, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive) of the highest non-empty bucket — a cheap
    /// "max is below" statistic. 0 if empty.
    pub fn max_bound(&self) -> u64 {
        match self.buckets.iter().rposition(|&c| c > 0) {
            None => 0,
            Some(0) => 1,
            Some(i) if i >= 63 => u64::MAX,
            Some(i) => 1u64 << i,
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A registry of named metrics. Cheap to clone; clones share storage.
/// Registration takes a lock, updates through the returned handles do not —
/// fetch handles once, outside hot loops.
///
/// Names are dotted paths (`"comm.bytes_sent"`, `"kmertable.probe_len"`);
/// re-requesting a name returns a handle to the same metric. Requesting an
/// existing name as a different type panics — that is always an
/// instrumentation bug.
///
/// # Examples
///
/// ```
/// use obs::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// let bytes = reg.counter("comm.bytes_sent");
/// bytes.add(1024);
/// reg.gauge("table.load_factor").set(0.42);
/// reg.histogram("table.probe_len").record(3);
///
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("comm.bytes_sent"), Some(1024));
/// assert_eq!(snap.gauge("table.load_factor"), Some(0.42));
/// assert_eq!(snap.histogram("table.probe_len").unwrap().count, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or create the counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: impl Into<String>) -> Counter {
        let name = name.into();
        let mut map = self.inner.lock().expect("metrics lock");
        match map
            .entry(name.clone())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// Get or create the gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&self, name: impl Into<String>) -> Gauge {
        let name = name.into();
        let mut map = self.inner.lock().expect("metrics lock");
        match map
            .entry(name.clone())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// Get or create the histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn histogram(&self, name: impl Into<String>) -> Histogram {
        let name = name.into();
        let mut map = self.inner.lock().expect("metrics lock");
        match map
            .entry(name.clone())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// Freeze every metric into a [`MetricsSnapshot`], sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().expect("metrics lock");
        MetricsSnapshot {
            metrics: map
                .iter()
                .map(|(name, m)| {
                    let value = match m {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// The frozen value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(f64),
    /// A histogram's summary.
    Histogram(HistogramSummary),
}

/// A point-in-time freeze of a [`MetricsRegistry`], sorted by name (the
/// order is stable across runs, so exports diff cleanly).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in ascending name order.
    pub metrics: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].1)
    }

    /// The value of counter `name`, if present and a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value of gauge `name`, if present and a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The summary of histogram `name`, if present and a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_clones() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("c");
        let b = reg.counter("c");
        a.add(2);
        b.inc();
        assert_eq!(reg.snapshot().counter("c"), Some(3));
    }

    #[test]
    fn gauge_last_value_wins() {
        let reg = MetricsRegistry::new();
        reg.gauge("g").set(1.5);
        reg.gauge("g").set(-2.5);
        assert_eq!(reg.snapshot().gauge("g"), Some(-2.5));
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn histogram_summary_stats() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        for v in [0, 1, 3, 100] {
            h.record(v);
        }
        let s = reg.snapshot();
        let s = s.histogram("h").unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 104);
        assert_eq!(s.mean(), 26.0);
        assert_eq!(s.max_bound(), 128);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 1); // 3
        assert_eq!(s.buckets[7], 1); // 100
    }

    #[test]
    fn empty_histogram() {
        let s = Histogram::default().summary();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max_bound(), 0);
    }

    #[test]
    fn snapshot_is_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("z");
        reg.counter("a");
        reg.counter("m");
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn concurrent_updates() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}

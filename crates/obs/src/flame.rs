//! Flamegraph folding and rendering over [`Trace::tree`].
//!
//! [`collapsed`] folds one track's span tree into Brendan-Gregg
//! collapsed-stack lines (`gff.total;gff.loop1 3.2`) with *self-time*
//! accounting: each stack's value is the time its leaf frame was open
//! minus the time any child span was open, so the values of all stacks
//! sum exactly to the track's root span durations. [`collapsed_merged`]
//! folds every track and merges identical stacks — the cross-rank
//! aggregate view, where the common phase names of all ranks pile up.
//! [`to_text`] serializes folds for `inferno` / [speedscope](https://speedscope.app),
//! and [`svg`] renders a small self-contained flamegraph directly.
//!
//! Folding is only trustworthy because [`Trace::tree`] treats partial
//! overlap as sibling-ship, never containment: sibling spans under one
//! parent are disjoint, so self time is never negative.

use crate::span::{SpanNode, Trace};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Separator between frames of a folded stack path.
pub const FRAME_SEP: char = ';';

/// Fold one track's span tree into collapsed stacks.
///
/// Returns `(path, self_seconds)` pairs sorted by path; identical paths
/// (e.g. the per-chunk `rtt.loop` spans) are merged. Self time is the
/// span's duration minus its children's durations, clamped at zero
/// against floating-point dust.
///
/// # Examples
///
/// ```
/// let tr = obs::Tracer::new();
/// tr.record(0, "stage", "gff.total", 0.0, 10.0);
/// tr.record(0, "stage", "gff.loop1", 0.0, 6.0);
/// tr.record(0, "stage", "gff.loop2", 6.0, 9.0);
/// let folds = obs::flame::collapsed(&tr.take(), 0);
/// assert_eq!(folds, vec![
///     ("gff.total".to_string(), 1.0),            // 10 - 6 - 3 of self time
///     ("gff.total;gff.loop1".to_string(), 6.0),
///     ("gff.total;gff.loop2".to_string(), 3.0),
/// ]);
/// let total: f64 = folds.iter().map(|(_, t)| t).sum();
/// assert!((total - 10.0).abs() < 1e-9);          // sums to the root span
/// ```
pub fn collapsed(trace: &Trace, track: u32) -> Vec<(String, f64)> {
    let mut acc: BTreeMap<String, f64> = BTreeMap::new();
    fold_nodes(&trace.tree(track), "", &mut acc);
    acc.into_iter().collect()
}

/// Fold every track of `trace` and merge identical stacks — the
/// across-ranks view. Phases that run on all ranks (`gff.loop1`, …)
/// aggregate into one tower whose value is the *summed* per-rank time,
/// exactly like a multi-thread CPU flamegraph.
///
/// # Examples
///
/// ```
/// let tr = obs::Tracer::new();
/// tr.record(1, "stage", "gff.loop1", 0.0, 2.0); // rank 0
/// tr.record(2, "stage", "gff.loop1", 0.0, 3.0); // rank 1
/// let folds = obs::flame::collapsed_merged(&tr.take());
/// assert_eq!(folds, vec![("gff.loop1".to_string(), 5.0)]);
/// ```
pub fn collapsed_merged(trace: &Trace) -> Vec<(String, f64)> {
    let tracks: std::collections::BTreeSet<u32> = trace.spans.iter().map(|s| s.track).collect();
    let mut acc: BTreeMap<String, f64> = BTreeMap::new();
    for track in tracks {
        fold_nodes(&trace.tree(track), "", &mut acc);
    }
    acc.into_iter().collect()
}

fn fold_nodes(nodes: &[SpanNode], prefix: &str, acc: &mut BTreeMap<String, f64>) {
    for n in nodes {
        let path = if prefix.is_empty() {
            n.name.clone()
        } else {
            format!("{prefix}{FRAME_SEP}{}", n.name)
        };
        let child_time: f64 = n.children.iter().map(|c| c.end - c.start).sum();
        let self_time = ((n.end - n.start) - child_time).max(0.0);
        if self_time > 0.0 || n.children.is_empty() {
            *acc.entry(path.clone()).or_insert(0.0) += self_time;
        }
        fold_nodes(&n.children, &path, acc);
    }
}

/// Serialize folds as collapsed-stack text: one `path value` line per
/// stack, parseable by `inferno-flamegraph`, speedscope, and
/// `flamegraph.pl`.
///
/// # Examples
///
/// ```
/// let folds = vec![("a;b".to_string(), 1.5), ("a".to_string(), 0.5)];
/// assert_eq!(obs::flame::to_text(&folds), "a;b 1.5\na 0.5\n");
/// ```
pub fn to_text(folds: &[(String, f64)]) -> String {
    let mut out = String::new();
    for (path, t) in folds {
        // Shortest round-trippable float form keeps the file diffable.
        let _ = writeln!(out, "{path} {t}");
    }
    out
}

/// Escape a string for XML text/attribute context.
fn xml_esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Deterministic warm color for a frame name (the classic flamegraph
/// orange/red family), stable across runs so diffs stay readable.
fn frame_color(name: &str) -> String {
    // FNV-1a; any stable small hash works here.
    let mut h: u32 = 0x811c9dc5;
    for b in name.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    let r = 205 + (h % 50);
    let g = 60 + ((h >> 8) % 120);
    let b = (h >> 16) % 40;
    format!("rgb({r},{g},{b})")
}

/// Reconstructed frame tree for SVG layout (built back from folds, so the
/// same renderer serves per-track and merged views).
#[derive(Default)]
struct FrameNode {
    self_time: f64,
    children: BTreeMap<String, FrameNode>,
}

impl FrameNode {
    fn total(&self) -> f64 {
        self.self_time + self.children.values().map(FrameNode::total).sum::<f64>()
    }

    fn depth(&self) -> usize {
        1 + self
            .children
            .values()
            .map(FrameNode::depth)
            .max()
            .unwrap_or(0)
    }
}

/// Render folds as a small self-contained SVG flamegraph (icicle layout,
/// root row on top, hover a frame for its full path and time). No
/// scripts, no external assets — the file opens in any browser.
///
/// # Examples
///
/// ```
/// let folds = vec![
///     ("gff.total".to_string(), 1.0),
///     ("gff.total;gff.loop1".to_string(), 6.0),
/// ];
/// let svg = obs::flame::svg(&folds, "GraphFromFasta");
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("gff.loop1") && svg.ends_with("</svg>\n"));
/// ```
pub fn svg(folds: &[(String, f64)], title: &str) -> String {
    const WIDTH: f64 = 1200.0;
    const ROW: f64 = 17.0;
    const TOP: f64 = 28.0;

    let mut root = FrameNode::default();
    for (path, t) in folds {
        let mut node = &mut root;
        for frame in path.split(FRAME_SEP) {
            node = node.children.entry(frame.to_string()).or_default();
        }
        node.self_time += t;
    }
    let total = root.total();
    let rows = root.depth().saturating_sub(1).max(1);
    let height = TOP + rows as f64 * ROW + 4.0;

    let mut out = String::new();
    let _ = write!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height}\" \
         font-family=\"monospace\" font-size=\"12\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"#fdf6e3\"/>\n\
         <text x=\"{}\" y=\"18\" text-anchor=\"middle\" font-size=\"14\">{} ({:.3}s)</text>\n",
        WIDTH / 2.0,
        xml_esc(title),
        total,
    );
    if total > 0.0 {
        let scale = WIDTH / total;
        // Roots start at x=0, laid out in key order; children pack inside
        // their parent's x extent.
        fn draw(
            out: &mut String,
            children: &BTreeMap<String, FrameNode>,
            parent_path: &str,
            mut x: f64,
            depth: usize,
            scale: f64,
            total: f64,
        ) {
            const ROW: f64 = 17.0;
            const TOP: f64 = 28.0;
            // Average glyph advance of a 12px monospace font, for label
            // fitting.
            const CHAR_W: f64 = 7.3;
            for (name, node) in children {
                let w = node.total() * scale;
                let path = if parent_path.is_empty() {
                    name.clone()
                } else {
                    format!("{parent_path};{name}")
                };
                if w >= 0.2 {
                    let y = TOP + depth as f64 * ROW;
                    let _ = write!(
                        out,
                        "<g><title>{} — {:.4}s ({:.1}%)</title>\
                         <rect x=\"{:.2}\" y=\"{:.1}\" width=\"{:.2}\" height=\"{:.1}\" \
                         fill=\"{}\" stroke=\"#fdf6e3\" stroke-width=\"0.5\"/>",
                        xml_esc(&path),
                        node.total(),
                        100.0 * node.total() / total,
                        x,
                        y,
                        w,
                        ROW - 1.0,
                        frame_color(name),
                    );
                    let fit = ((w - 4.0) / CHAR_W).floor() as usize;
                    if fit >= 3 {
                        let label: String = if name.chars().count() <= fit {
                            name.clone()
                        } else {
                            name.chars().take(fit.saturating_sub(1)).collect::<String>() + "…"
                        };
                        let _ = write!(
                            out,
                            "<text x=\"{:.2}\" y=\"{:.1}\">{}</text>",
                            x + 2.0,
                            y + 12.0,
                            xml_esc(&label),
                        );
                    }
                    out.push_str("</g>\n");
                }
                draw(out, &node.children, &path, x, depth + 1, scale, total);
                x += w;
            }
        }
        draw(&mut out, &root.children, "", 0.0, 0, scale, total);
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    fn gff_like_trace() -> Trace {
        let tr = Tracer::new();
        tr.record(1, "stage", "gff.total", 0.0, 10.0);
        tr.record(1, "stage", "gff.prep", 0.0, 1.0);
        tr.record(1, "stage", "gff.loop1", 1.0, 6.0);
        // The collective records itself first; the wrapper that timed it
        // records second over the identical interval and becomes parent.
        tr.record(1, "comm", "mpi.allgatherv", 6.0, 7.5);
        tr.record(1, "comm", "gff.comm1", 6.0, 7.5);
        tr.record(1, "stage", "gff.loop2", 7.5, 9.5);
        tr.take()
    }

    #[test]
    fn self_times_sum_to_root_durations() {
        let t = gff_like_trace();
        let folds = collapsed(&t, 1);
        let total: f64 = folds.iter().map(|(_, v)| v).sum();
        let roots: f64 = t.tree(1).iter().map(|r| r.end - r.start).sum();
        assert!((total - roots).abs() < 1e-9, "{total} vs {roots}");
        assert!((total - 10.0).abs() < 1e-9);
    }

    #[test]
    fn leaf_self_time_equals_span_sum() {
        // Round-trip against the raw trace: a leaf phase's folded self
        // time is exactly its span_sum.
        let t = gff_like_trace();
        let folds = collapsed(&t, 1);
        let loop1 = folds
            .iter()
            .find(|(p, _)| p.ends_with("gff.loop1"))
            .expect("loop1 stack");
        assert!((loop1.1 - t.span_sum(1, "gff.loop1")).abs() < 1e-12);
    }

    #[test]
    fn nested_paths_and_self_accounting() {
        let t = gff_like_trace();
        let folds = collapsed(&t, 1);
        let get = |p: &str| folds.iter().find(|(q, _)| q == p).map(|(_, v)| *v);
        // comm1 wraps the collective tightly: zero self, child has it all.
        assert_eq!(get("gff.total;gff.comm1;mpi.allgatherv"), Some(1.5));
        assert_eq!(get("gff.total;gff.comm1"), None, "zero-self interior");
        // total's residual: 10 - 1 - 5 - 1.5 - 2 = 0.5 of untraced time.
        assert!((get("gff.total").unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn repeated_identical_paths_merge() {
        let tr = Tracer::new();
        tr.record(0, "stage", "rtt.total", 0.0, 10.0);
        tr.record(0, "stage", "rtt.loop", 0.0, 3.0);
        tr.record(0, "stage", "rtt.loop", 3.0, 7.0);
        let folds = collapsed(&tr.take(), 0);
        let loops = folds
            .iter()
            .find(|(p, _)| p == "rtt.total;rtt.loop")
            .unwrap();
        assert!((loops.1 - 7.0).abs() < 1e-12, "per-chunk spans merged");
    }

    #[test]
    fn overlap_does_not_go_negative() {
        // Regression companion to Trace::tree's overlap fix: before the
        // fix, [0,10] adopting [5,15] gave 10 - 10 = 0 self for the outer
        // and a child longer than its parent; folds now treat them as
        // siblings and conserve total time.
        let tr = Tracer::new();
        tr.record(0, "s", "a", 0.0, 10.0);
        tr.record(0, "s", "b", 5.0, 15.0);
        let folds = collapsed(&tr.take(), 0);
        assert_eq!(folds.len(), 2);
        assert!(folds.iter().all(|(p, _)| !p.contains(FRAME_SEP)));
        let total: f64 = folds.iter().map(|(_, v)| v).sum();
        assert!((total - 20.0).abs() < 1e-12);
    }

    #[test]
    fn merged_aggregates_across_tracks() {
        let tr = Tracer::new();
        tr.record(1, "s", "gff.loop1", 0.0, 2.0);
        tr.record(2, "s", "gff.loop1", 0.0, 3.0);
        tr.record(2, "s", "gff.loop2", 3.0, 4.0);
        let folds = collapsed_merged(&tr.take());
        assert_eq!(
            folds,
            vec![
                ("gff.loop1".to_string(), 5.0),
                ("gff.loop2".to_string(), 1.0),
            ]
        );
    }

    #[test]
    fn text_format_is_line_per_stack() {
        let folds = vec![("a;b c".to_string(), 0.25)];
        let text = to_text(&folds);
        assert_eq!(text, "a;b c 0.25\n");
        // Tools split on the *last* space: path may contain spaces.
        let (path, v) = text.trim_end().rsplit_once(' ').unwrap();
        assert_eq!(path, "a;b c");
        assert_eq!(v.parse::<f64>().unwrap(), 0.25);
    }

    #[test]
    fn svg_renders_all_visible_frames() {
        let t = gff_like_trace();
        let folds = collapsed(&t, 1);
        let svg = svg(&folds, "gff");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        for name in ["gff.total", "gff.loop1", "gff.loop2", "mpi.allgatherv"] {
            assert!(svg.contains(name), "missing {name}");
        }
    }

    #[test]
    fn svg_escapes_and_handles_empty() {
        let empty = svg(&[], "no<data>&stuff");
        assert!(empty.starts_with("<svg") && empty.contains("&lt;data&gt;&amp;"));
        let folds = vec![("<evil>&\"frame\"".to_string(), 1.0)];
        let s = svg(&folds, "t");
        assert!(!s.contains("<evil>"), "frame name must be escaped: {s}");
        assert!(s.contains("&lt;evil&gt;"));
    }
}

//! Unified observability layer for the pipeline: span tracing + metrics.
//!
//! The paper's whole argument rests on per-phase timing breakdowns — the
//! loop/comm/serial splits of Figs. 7–10 and the collectl-style stage
//! traces of Figs. 2/11. Before this crate those numbers were produced by
//! hand-threaded floats scattered over `core::timings` and a bespoke
//! `trinity::collectl` emulator; now every crate records into the same two
//! primitives:
//!
//! * [`Tracer`] — a thread-safe recorder of named, categorized time
//!   intervals ([`SpanRecord`]s) on per-rank/per-thread *tracks*, driven
//!   either by wall-clock RAII guards ([`Span`]) or by explicit
//!   virtual-clock timestamps ([`Tracer::record`]);
//! * [`MetricsRegistry`] — named typed counters, gauges and power-of-two
//!   histograms (bytes sent, k-mers welded, probe lengths, queue depths).
//!
//! A finished [`Trace`] exports to plain JSON ([`export::trace_json`]) or
//! to the Chrome `trace_event` format ([`export::chrome_trace`]) so any
//! run opens directly in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev).
//!
//! On top of the trace sit two profiling views: [`flame`] folds a track's
//! span tree into collapsed-stack format with self-time accounting (plus a
//! self-contained SVG flamegraph renderer), and [`Sampler`] replays a
//! fixed-period stack sampler over a finished trace, turning opaque
//! long-running spans into `profile.*` progress counter series.
//!
//! The analytics layer closes the loop: [`analyze`](analyze()) reduces a
//! finished trace to an [`Analysis`] — the cross-rank critical path with
//! per-step slack, per-stage load-imbalance statistics, a communication
//! matrix and scaling-efficiency figures — and [`diff`](diff::diff)
//! compares two analyses under configurable tolerance bands so CI can
//! fail a pull request that regresses the critical path.
//!
//! The crate is deliberately **zero-dependency** (std only): it sits at
//! the root of the workspace dependency graph so `mpisim`, `omp`,
//! `kmertable`, `kcount`, `chrysalis` and `trinity` can all record into it.
//!
//! # Examples
//!
//! ```
//! use obs::{Obs, export};
//!
//! let obs = Obs::new();
//! {
//!     let _stage = obs.tracer.span("assemble");       // wall-clock RAII
//!     obs.metrics.counter("contigs").add(3);
//! }
//! obs.tracer.record(1, "comm", "mpi.allgatherv", 0.5, 0.9); // virtual time
//! let trace = obs.tracer.take();
//! assert_eq!(trace.spans.len(), 2);
//! let json = export::chrome_trace(&trace);
//! assert!(json.contains("\"traceEvents\""));
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod diff;
pub mod export;
pub mod flame;
pub mod jsonio;
pub mod metrics;
pub mod sampler;
pub mod span;
pub mod stats;

pub use analyze::{analyze, analyze_vs, Analysis, CommCell, PathStep, Scaling, StageStats};
pub use diff::{diff, DiffReport, Tolerance};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSummary, MetricValue, MetricsRegistry, MetricsSnapshot,
};
pub use sampler::{Sampler, StackSample};
pub use span::{CounterSample, Span, SpanNode, SpanRecord, Trace, Tracer};
pub use stats::PhaseSpread;

/// First track id used for per-thread (OpenMP worker) spans, keeping them
/// visually separate from rank tracks in Chrome/Perfetto. Rank `r` records
/// on track `r`; thread `t` of a replayed loop records on
/// `THREAD_TRACK_BASE + t`.
pub const THREAD_TRACK_BASE: u32 = 1000;

/// A tracer and a metrics registry bundled together — the handle most
/// instrumented call-sites take. Cloning is cheap (both halves are
/// internally reference-counted) and clones record into the same storage.
///
/// # Examples
///
/// ```
/// let obs = obs::Obs::new();
/// let clone = obs.clone();
/// clone.metrics.counter("reads").add(10);
/// assert_eq!(obs.metrics.snapshot().counter("reads"), Some(10));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// The span recorder.
    pub tracer: Tracer,
    /// The metrics registry.
    pub metrics: MetricsRegistry,
}

impl Obs {
    /// A fresh tracer + registry pair.
    pub fn new() -> Self {
        Obs::default()
    }
}

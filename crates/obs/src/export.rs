//! Exporters: plain JSON and Chrome `trace_event` JSON.
//!
//! [`chrome_trace`] emits the [Trace Event Format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! consumed by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//! spans become `ph:"X"` complete events (timestamps in microseconds),
//! counter samples become `ph:"C"` counter events, and track names become
//! `ph:"M"` `thread_name` metadata. [`trace_json`] and [`metrics_json`]
//! emit simpler self-describing JSON for scripted post-processing.
//!
//! All serialization is hand-rolled (the crate is zero-dependency); only
//! finite numbers are emitted, so the output is always strict JSON.

use crate::metrics::{MetricValue, MetricsSnapshot};
use crate::span::Trace;
use std::fmt::Write;

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a number as strict JSON: non-finite values become 0.
pub(crate) fn num(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "0.0".to_string()
    }
}

/// Export a [`Trace`] as Chrome `trace_event` JSON. Open the result in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
///
/// Layout: everything shares `pid` 1; each obs track becomes a `tid`
/// (thread lane). Span/sample times are converted from seconds to the
/// format's microseconds.
pub fn chrome_trace(trace: &Trace) -> String {
    const US: f64 = 1e6;
    let mut events: Vec<String> = Vec::new();
    for (&track, name) in &trace.track_names {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{track},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }
    for s in &trace.spans {
        let mut args = String::new();
        for (i, (k, v)) in s.args.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            let _ = write!(args, "\"{}\":{}", esc(k), num(*v));
        }
        events.push(format!(
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\
             \"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
            s.track,
            esc(&s.name),
            esc(&s.cat),
            num(s.start * US),
            num(s.duration() * US),
        ));
    }
    for c in &trace.counters {
        events.push(format!(
            "{{\"ph\":\"C\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"ts\":{},\
             \"args\":{{\"value\":{}}}}}",
            c.track,
            esc(&c.name),
            num(c.ts * US),
            num(c.value),
        ));
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        events.join(",\n")
    )
}

/// Export a [`Trace`] as plain JSON: `{"spans": [...], "counters": [...],
/// "tracks": {...}}`, times in seconds. Field names are stable — scripts
/// may depend on them.
pub fn trace_json(trace: &Trace) -> String {
    let mut out = String::from("{\"spans\":[\n");
    for (i, s) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let mut args = String::new();
        for (j, (k, v)) in s.args.iter().enumerate() {
            if j > 0 {
                args.push(',');
            }
            let _ = write!(args, "\"{}\":{}", esc(k), num(*v));
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"track\":{},\"start\":{},\
             \"end\":{},\"args\":{{{args}}}}}",
            esc(&s.name),
            esc(&s.cat),
            s.track,
            num(s.start),
            num(s.end),
        );
    }
    out.push_str("\n],\"counters\":[\n");
    for (i, c) in trace.counters.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"track\":{},\"ts\":{},\"value\":{}}}",
            esc(&c.name),
            c.track,
            num(c.ts),
            num(c.value),
        );
    }
    out.push_str("\n],\"tracks\":{");
    for (i, (t, n)) in trace.track_names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{t}\":\"{}\"", esc(n));
    }
    out.push_str("}}\n");
    out
}

/// Export a [`MetricsSnapshot`] as plain JSON, one entry per metric in
/// name order. Counters export as `{"type":"counter","value":N}`, gauges
/// as `{"type":"gauge","value":X}`, histograms as
/// `{"type":"histogram","count":N,"sum":N,"mean":X,"buckets":[[bound,count],...]}`
/// (empty buckets omitted).
pub fn metrics_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n");
    for (i, (name, value)) in snap.metrics.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(out, "\"{}\":", esc(name));
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{{\"type\":\"counter\",\"value\":{v}}}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{}}}", num(*v));
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"mean\":{},\
                     \"buckets\":[",
                    h.count,
                    h.sum,
                    num(h.mean()),
                );
                let mut first = true;
                for (b, &c) in h.buckets.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let bound: u128 = if b == 0 { 1 } else { 1u128 << b };
                    let _ = write!(out, "[{bound},{c}]");
                }
                out.push_str("]}");
            }
        }
    }
    out.push_str("\n}\n");
    out
}

/// Load a [`Trace`] back from JSON text: accepts both the plain
/// [`trace_json`] format (`{"spans": ..., "counters": ..., "tracks": ...}`,
/// seconds) and the Chrome [`chrome_trace`] format (`{"traceEvents":
/// [...]}`, microseconds). `None` when the text is neither.
///
/// This is the entry point for `trinity analyze <trace.json>`: any
/// artifact the pipeline or the figure drivers wrote can be re-analyzed
/// offline.
pub fn trace_from_json(text: &str) -> Option<Trace> {
    use crate::span::{CounterSample, SpanRecord};
    let v = crate::jsonio::parse(text)?;
    let mut trace = Trace::default();
    if let Some(events) = v.get("traceEvents").and_then(|e| e.as_arr()) {
        const US: f64 = 1e-6;
        for e in events {
            let track = e.num("tid").unwrap_or(0.0) as u32;
            match e.str("ph")? {
                "X" => {
                    let start = e.num("ts")? * US;
                    let args = e
                        .get("args")
                        .and_then(|a| a.as_obj())
                        .map(|fields| {
                            fields
                                .iter()
                                .filter_map(|(k, v)| Some((k.clone(), v.as_f64()?)))
                                .collect()
                        })
                        .unwrap_or_default();
                    trace.spans.push(SpanRecord {
                        name: e.str("name")?.to_string(),
                        cat: e.str("cat").unwrap_or("").to_string(),
                        track,
                        start,
                        end: start + e.num("dur").unwrap_or(0.0) * US,
                        args,
                    });
                }
                "C" => trace.counters.push(CounterSample {
                    name: e.str("name")?.to_string(),
                    track,
                    ts: e.num("ts")? * US,
                    value: e.get("args")?.num("value")?,
                }),
                "M" if e.str("name") == Some("thread_name") => {
                    if let Some(n) = e.get("args").and_then(|a| a.str("name")) {
                        trace.track_names.insert(track, n.to_string());
                    }
                }
                _ => {}
            }
        }
        return Some(trace);
    }
    let spans = v.get("spans")?.as_arr()?;
    for s in spans {
        trace.spans.push(SpanRecord {
            name: s.str("name")?.to_string(),
            cat: s.str("cat").unwrap_or("").to_string(),
            track: s.num("track")? as u32,
            start: s.num("start")?,
            end: s.num("end")?,
            args: s
                .get("args")
                .and_then(|a| a.as_obj())
                .map(|fields| {
                    fields
                        .iter()
                        .filter_map(|(k, v)| Some((k.clone(), v.as_f64()?)))
                        .collect()
                })
                .unwrap_or_default(),
        });
    }
    if let Some(counters) = v.get("counters").and_then(|c| c.as_arr()) {
        for c in counters {
            trace.counters.push(CounterSample {
                name: c.str("name")?.to_string(),
                track: c.num("track")? as u32,
                ts: c.num("ts")?,
                value: c.num("value")?,
            });
        }
    }
    if let Some(tracks) = v.get("tracks").and_then(|t| t.as_obj()) {
        for (k, n) in tracks {
            trace
                .track_names
                .insert(k.parse().ok()?, n.as_str()?.to_string());
        }
    }
    Some(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;
    use crate::MetricsRegistry;

    /// Minimal recursive-descent JSON validator: returns true iff `s` is a
    /// single well-formed JSON value. Enough to catch escaping/comma bugs
    /// without a parser dependency.
    fn is_valid_json(s: &str) -> bool {
        fn skip_ws(b: &[u8], mut i: usize) -> usize {
            while i < b.len() && (b[i] as char).is_ascii_whitespace() {
                i += 1;
            }
            i
        }
        fn value(b: &[u8], i: usize) -> Option<usize> {
            let i = skip_ws(b, i);
            match b.get(i)? {
                b'{' => {
                    let mut i = skip_ws(b, i + 1);
                    if b.get(i) == Some(&b'}') {
                        return Some(i + 1);
                    }
                    loop {
                        i = string(b, skip_ws(b, i))?;
                        i = skip_ws(b, i);
                        if b.get(i) != Some(&b':') {
                            return None;
                        }
                        i = value(b, i + 1)?;
                        i = skip_ws(b, i);
                        match b.get(i)? {
                            b',' => i += 1,
                            b'}' => return Some(i + 1),
                            _ => return None,
                        }
                    }
                }
                b'[' => {
                    let mut i = skip_ws(b, i + 1);
                    if b.get(i) == Some(&b']') {
                        return Some(i + 1);
                    }
                    loop {
                        i = value(b, i)?;
                        i = skip_ws(b, i);
                        match b.get(i)? {
                            b',' => i += 1,
                            b']' => return Some(i + 1),
                            _ => return None,
                        }
                    }
                }
                b'"' => string(b, i),
                b't' => b[i..].starts_with(b"true").then_some(i + 4),
                b'f' => b[i..].starts_with(b"false").then_some(i + 5),
                b'n' => b[i..].starts_with(b"null").then_some(i + 4),
                _ => number(b, i),
            }
        }
        fn string(b: &[u8], mut i: usize) -> Option<usize> {
            if b.get(i) != Some(&b'"') {
                return None;
            }
            i += 1;
            while let Some(&c) = b.get(i) {
                match c {
                    b'"' => return Some(i + 1),
                    b'\\' => i += 2,
                    c if c < 0x20 => return None,
                    _ => i += 1,
                }
            }
            None
        }
        fn number(b: &[u8], mut i: usize) -> Option<usize> {
            let start = i;
            if b.get(i) == Some(&b'-') {
                i += 1;
            }
            let digits = |b: &[u8], mut i: usize| {
                let s = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                (i > s).then_some(i)
            };
            i = digits(b, i)?;
            if b.get(i) == Some(&b'.') {
                i = digits(b, i + 1)?;
            }
            if matches!(b.get(i), Some(&b'e') | Some(&b'E')) {
                i += 1;
                if matches!(b.get(i), Some(&b'+') | Some(&b'-')) {
                    i += 1;
                }
                i = digits(b, i)?;
            }
            (i > start).then_some(i)
        }
        let b = s.as_bytes();
        match value(b, 0) {
            Some(end) => skip_ws(b, end) == b.len(),
            None => false,
        }
    }

    fn sample_trace() -> Trace {
        let tr = Tracer::new();
        tr.name_track(0, "rank 0");
        tr.name_track(1, "rank \"1\"\n"); // needs escaping
        tr.record_with(0, "stage", "inchworm", 0.0, 2.0, &[("ram", 4.5)]);
        tr.record(1, "comm", "mpi.allgatherv", 0.5, 0.75);
        tr.counter(0, "ram", 1.0, 4.5);
        tr.take()
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        assert!(is_valid_json(&chrome_trace(&sample_trace())));
    }

    #[test]
    fn chrome_trace_field_names_are_stable() {
        let out = chrome_trace(&sample_trace());
        for field in [
            "\"traceEvents\"",
            "\"displayTimeUnit\"",
            "\"ph\":\"X\"",
            "\"ph\":\"C\"",
            "\"ph\":\"M\"",
            "\"thread_name\"",
            "\"ts\":",
            "\"dur\":",
            "\"pid\":1",
            "\"tid\":0",
            "\"cat\":\"stage\"",
        ] {
            assert!(out.contains(field), "missing {field} in:\n{out}");
        }
    }

    #[test]
    fn chrome_trace_times_are_microseconds() {
        let out = chrome_trace(&sample_trace());
        // the 2 s inchworm span must appear as dur 2_000_000 µs
        assert!(out.contains("\"dur\":2000000"), "{out}");
        // the 0.5 s comm start as ts 500000 µs
        assert!(out.contains("\"ts\":500000"), "{out}");
    }

    #[test]
    fn trace_json_is_valid_and_stable() {
        let out = trace_json(&sample_trace());
        assert!(is_valid_json(&out), "{out}");
        for field in [
            "\"spans\"",
            "\"counters\"",
            "\"tracks\"",
            "\"start\"",
            "\"end\"",
        ] {
            assert!(out.contains(field), "missing {field}");
        }
        assert!(out.contains("\"ram\":4.5"));
    }

    #[test]
    fn metrics_json_is_valid_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("comm.bytes").add(9);
        reg.gauge("table.load\"factor").set(0.5);
        let h = reg.histogram("probe");
        h.record(0);
        h.record(5);
        let out = metrics_json(&reg.snapshot());
        assert!(is_valid_json(&out), "{out}");
        assert!(out.contains("\"type\":\"counter\",\"value\":9"));
        assert!(out.contains("\"type\":\"gauge\""));
        assert!(out.contains("\"type\":\"histogram\",\"count\":2,\"sum\":5"));
    }

    /// A span name engineered to break naive serializers: quotes,
    /// backslashes, newlines, tabs, raw control bytes, and an escape-like
    /// suffix that must not eat the closing quote.
    const EVIL: &str = "gff\"loop\\1\n\t\u{1}\u{1f}end\\";

    #[test]
    fn adversarial_names_stay_valid_json() {
        let tr = Tracer::new();
        tr.name_track(0, EVIL);
        tr.record_with(
            0,
            EVIL,
            EVIL,
            0.0,
            1.0,
            &[
                (EVIL, 1.5),
                ("nan\"arg", f64::NAN),
                ("inf\\arg", f64::NEG_INFINITY),
            ],
        );
        tr.counter(0, EVIL, 0.5, f64::INFINITY);
        let trace = tr.take();
        for out in [chrome_trace(&trace), trace_json(&trace)] {
            assert!(is_valid_json(&out), "unparseable:\n{out}");
            // Control characters must be escaped, never emitted raw.
            assert!(
                !out.bytes().any(|b| b < 0x20 && b != b'\n'),
                "raw control byte"
            );
            assert!(out.contains("\\u0001") && out.contains("\\u001f"), "{out}");
        }
    }

    #[test]
    fn adversarial_metric_names_stay_valid_json() {
        let reg = MetricsRegistry::new();
        reg.counter(EVIL).add(1);
        reg.gauge(format!("{EVIL}.gauge")).set(f64::NAN);
        reg.histogram(format!("{EVIL}.hist")).record(u64::MAX);
        let out = metrics_json(&reg.snapshot());
        assert!(is_valid_json(&out), "unparseable:\n{out}");
        assert!(!out.contains("NaN"), "{out}");
    }

    #[test]
    fn non_finite_values_become_zero() {
        let tr = Tracer::new();
        tr.record_with(
            0,
            "c",
            "weird",
            0.0,
            1.0,
            &[("x", f64::NAN), ("y", f64::INFINITY)],
        );
        let out = chrome_trace(&tr.take());
        assert!(is_valid_json(&out), "{out}");
        assert!(!out.contains("NaN") && !out.contains("inf"), "{out}");
    }

    #[test]
    fn exported_spans_are_monotone() {
        // every exported span must satisfy dur >= 0 (end clamped at record
        // time); spot-check through the plain JSON export
        let tr = Tracer::new();
        tr.record(0, "c", "clamped", 3.0, 1.0);
        let t = tr.take();
        assert!(t.spans.iter().all(|s| s.duration() >= 0.0));
        let out = trace_json(&t);
        assert!(out.contains("\"start\":3.0,\"end\":3.0"), "{out}");
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let t = Trace::default();
        assert!(is_valid_json(&chrome_trace(&t)));
        assert!(is_valid_json(&trace_json(&t)));
        assert!(is_valid_json(&metrics_json(&MetricsSnapshot::default())));
    }

    #[test]
    fn plain_json_round_trips_through_trace_from_json() {
        let t = sample_trace();
        let back = trace_from_json(&trace_json(&t)).expect("parses");
        assert_eq!(back, t);
    }

    #[test]
    fn chrome_json_round_trips_through_trace_from_json() {
        let t = sample_trace();
        let back = trace_from_json(&chrome_trace(&t)).expect("parses");
        assert_eq!(back.spans.len(), t.spans.len());
        assert_eq!(back.counters.len(), t.counters.len());
        assert_eq!(back.track_names, t.track_names);
        for (a, b) in back.spans.iter().zip(&t.spans) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.cat, b.cat);
            assert_eq!(a.track, b.track);
            assert!((a.start - b.start).abs() < 1e-9, "{a:?} vs {b:?}");
            assert!((a.end - b.end).abs() < 1e-9);
            assert_eq!(a.args, b.args);
        }
    }

    #[test]
    fn trace_from_json_rejects_non_traces() {
        assert!(trace_from_json("{}").is_none());
        assert!(trace_from_json("not json").is_none());
        assert!(trace_from_json("{\"spans\": 3}").is_none());
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(!is_valid_json("{\"a\":}"));
        assert!(!is_valid_json("[1,]"));
        assert!(!is_valid_json("{\"a\":1"));
        assert!(!is_valid_json("nope"));
        assert!(is_valid_json("{\"a\":[1,2.5e-3,\"x\\\"y\"],\"b\":null}"));
    }
}
